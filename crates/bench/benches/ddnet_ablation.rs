//! DDnet design ablations (DESIGN.md §6): global shortcuts on/off and
//! growth-rate scaling — forward-pass cost of each variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cc19_ddnet::{Ddnet, DdnetConfig};
use cc19_tensor::rng::Xorshift;

fn bench_ablation(c: &mut Criterion) {
    let n = 64usize;
    let mut rng = Xorshift::new(4);
    let img = rng.uniform_tensor([n, n], 0.0, 1.0);

    let mut group = c.benchmark_group("ddnet_ablation_64");

    let full = Ddnet::new(DdnetConfig::reduced(), 1);
    group.bench_function("with_global_shortcuts", |b| b.iter(|| full.enhance(&img).unwrap()));

    let mut cfg = DdnetConfig::reduced();
    cfg.no_global_shortcuts = true;
    let ablated = Ddnet::new(cfg, 1);
    group.bench_function("no_global_shortcuts", |b| b.iter(|| ablated.enhance(&img).unwrap()));

    for growth in [4usize, 8, 16] {
        let mut cfg = DdnetConfig::reduced();
        cfg.growth = growth;
        let net = Ddnet::new(cfg, 1);
        group.bench_with_input(BenchmarkId::new("growth", growth), &growth, |b, _| {
            b.iter(|| net.enhance(&img).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
