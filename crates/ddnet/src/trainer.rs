//! Enhancement-AI training loop (§3.1.1 of the paper).
//!
//! Loss: `MSE + 0.1 * (1 - MS-SSIM)` (Eq 1). Optimizer: Adam, lr 1e-4,
//! exponentially decayed ×0.8 per epoch. The paper trains one image per
//! batch for 50 epochs; batch size is configurable here because Table 3
//! studies its effect on accuracy.

use cc19_data::dataset::batch_pairs;
use cc19_data::lowdose_pairs::EnhancementPair;
use cc19_nn::graph::Graph;
use cc19_nn::losses::enhancement_loss;
use cc19_nn::ConvBackend;
use cc19_nn::optim::Adam;
use cc19_nn::ssim;
use cc19_tensor::Tensor;

use crate::model::Ddnet;
use crate::Result;

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs (paper: 50).
    pub epochs: usize,
    /// Initial learning rate (paper: 1e-4).
    pub lr: f32,
    /// Per-epoch exponential decay (paper: 0.8).
    pub lr_decay: f32,
    /// Images per batch (paper: 1).
    pub batch_size: usize,
    /// MS-SSIM pyramid depth in the loss (5 at 512², fewer when scaled).
    pub ms_ssim_levels: usize,
    /// Global gradient-norm clip (stabilizes the small-batch scaled runs;
    /// `None` disables).
    pub grad_clip: Option<f32>,
    /// Convolution backend for every graph the trainer builds (forward
    /// and backward). `Auto` picks per layer shape; `CC19_CONV_BACKEND`
    /// overrides at runtime.
    pub conv_backend: ConvBackend,
}

impl TrainConfig {
    /// The paper's §3.1.1 settings.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 50,
            lr: 1e-4,
            lr_decay: 0.8,
            batch_size: 1,
            ms_ssim_levels: 5,
            grad_clip: None,
            conv_backend: ConvBackend::Auto,
        }
    }

    /// A quick configuration for scaled experiments.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            lr: 1e-3,
            lr_decay: 0.9,
            batch_size: 1,
            ms_ssim_levels: 1,
            grad_clip: Some(1.0),
            conv_backend: ConvBackend::Auto,
        }
    }
}

/// Per-epoch record (feeds Fig 11a and Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index, 1-based.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Mean validation loss.
    pub val_loss: f64,
    /// Mean validation MS-SSIM (percent, as the paper reports it).
    pub val_ms_ssim: f64,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
}

/// Enhancement quality metrics (Table 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnhancementMetrics {
    /// Mean squared error.
    pub mse: f64,
    /// Mean MS-SSIM in `[0, 1]`.
    pub ms_ssim: f64,
}

/// Train the network on the given pairs. Returns per-epoch statistics.
pub fn train_enhancement(
    net: &Ddnet,
    train: &[EnhancementPair],
    val: &[EnhancementPair],
    cfg: TrainConfig,
) -> Result<Vec<EpochStats>> {
    assert!(!train.is_empty(), "empty training set");
    let mut opt = Adam::new(cfg.lr);
    let mut stats = Vec::with_capacity(cfg.epochs);

    // Per-step / per-epoch observability (DESIGN.md §12). All timing
    // goes through the registry clock so deterministic runs stay
    // deterministic; gauges hold the most recent step's values.
    let reg = cc19_obs::global();
    let clock = reg.clock();
    let m_loss = reg.gauge("ddnet_step_loss");
    let m_grad = reg.gauge("ddnet_grad_norm");
    let m_lr = reg.gauge("ddnet_lr");
    let m_step_s = reg.histogram("ddnet_step_seconds");
    let m_epoch_s = reg.histogram("ddnet_epoch_seconds");
    let m_steps = reg.counter("ddnet_steps_total");
    let m_skipped = reg.counter("ddnet_steps_skipped_total");
    m_lr.set(cfg.lr as f64);

    for epoch in 1..=cfg.epochs {
        let t0 = clock.now_ns();
        let mut loss_acc = 0.0f64;
        let mut batches = 0usize;
        for chunk in train.chunks(cfg.batch_size) {
            let step_t0 = clock.now_ns();
            let (low, full) = batch_pairs(chunk)?;
            let mut g = Graph::with_conv_backend(cfg.conv_backend);
            let x = g.input(low);
            let t = g.input(full);
            let y = net.forward(&mut g, x, true)?;
            let loss = enhancement_loss(&mut g, y, t, cfg.ms_ssim_levels)?;
            let loss_val = g.value(loss).item()? as f64;
            loss_acc += loss_val;
            batches += 1;
            net.store.zero_grad();
            g.backward(loss);
            let grad_norm = match cfg.grad_clip {
                Some(clip) => net.store.clip_grad_norm(clip),
                None => net.store.grad_norm(),
            };
            m_loss.set(loss_val);
            m_grad.set(grad_norm as f64);
            // Non-finite guard: a NaN/Inf loss or gradient would poison
            // the weights permanently, so drop the step instead.
            let skipped = !loss_val.is_finite() || !net.store.grads_all_finite();
            if skipped {
                net.store.zero_grad();
                m_skipped.inc();
            } else {
                opt.step(&net.store);
                m_steps.inc();
            }
            m_step_s.observe(clock.now_ns().saturating_sub(step_t0) as f64 / 1e9);
        }
        opt.decay_lr(cfg.lr_decay);
        m_lr.set(opt.lr as f64);

        let (val_loss, val_ms) = validate(net, val, cfg)?;
        let seconds = clock.now_ns().saturating_sub(t0) as f64 / 1e9;
        m_epoch_s.observe(seconds);
        stats.push(EpochStats {
            epoch,
            train_loss: loss_acc / batches.max(1) as f64,
            val_loss,
            val_ms_ssim: val_ms * 100.0,
            seconds,
        });
    }
    Ok(stats)
}

fn validate(net: &Ddnet, val: &[EnhancementPair], cfg: TrainConfig) -> Result<(f64, f64)> {
    if val.is_empty() {
        return Ok((0.0, 0.0));
    }
    let mut loss_acc = 0.0f64;
    let mut ms_acc = 0.0f64;
    for p in val {
        let (h, w) = (p.low.dims()[0], p.low.dims()[1]);
        let low = p.low.reshape([1, 1, h, w])?;
        let full = p.full.reshape([1, 1, h, w])?;
        let mut g = Graph::with_conv_backend(cfg.conv_backend);
        let x = g.input(low);
        let t = g.input(full);
        let y = net.forward(&mut g, x, false)?;
        let loss = enhancement_loss(&mut g, y, t, cfg.ms_ssim_levels)?;
        loss_acc += g.value(loss).item()? as f64;
        let levels = ssim::max_levels(h, w).clamp(1, 5);
        ms_acc += ssim::ms_ssim(g.value(y), g.value(t), levels, 1.0)?;
    }
    Ok((loss_acc / val.len() as f64, ms_acc / val.len() as f64))
}

/// Evaluate enhancement quality over pairs: returns metrics for the raw
/// low-dose images (`Y-X` row of Table 8) and for the enhanced images
/// (`Y-f(X)` row).
pub fn evaluate_pairs(net: &Ddnet, pairs: &[EnhancementPair]) -> Result<(EnhancementMetrics, EnhancementMetrics)> {
    assert!(!pairs.is_empty());
    let mut mse_raw = 0.0f64;
    let mut ms_raw = 0.0f64;
    let mut mse_enh = 0.0f64;
    let mut ms_enh = 0.0f64;
    for p in pairs {
        let (h, w) = (p.low.dims()[0], p.low.dims()[1]);
        let levels = ssim::max_levels(h, w).clamp(1, 5);
        let enhanced = net.enhance(&p.low)?;
        mse_raw += cc19_tensor::reduce::mse(&p.full, &p.low)?;
        mse_enh += cc19_tensor::reduce::mse(&p.full, &enhanced)?;
        ms_raw += ssim::ms_ssim_image(&p.full, &p.low, 1.0).or_else(|_| {
            // image too small for the window: fall back to batched form
            let a = p.full.reshape([1, 1, h, w])?;
            let b = p.low.reshape([1, 1, h, w])?;
            ssim::ms_ssim(&a, &b, levels, 1.0)
        })?;
        ms_enh += ssim::ms_ssim_image(&p.full, &enhanced, 1.0).or_else(|_| {
            let a = p.full.reshape([1, 1, h, w])?;
            let b = enhanced.reshape([1, 1, h, w])?;
            ssim::ms_ssim(&a, &b, levels, 1.0)
        })?;
    }
    let n = pairs.len() as f64;
    Ok((
        EnhancementMetrics { mse: mse_raw / n, ms_ssim: ms_raw / n },
        EnhancementMetrics { mse: mse_enh / n, ms_ssim: ms_enh / n },
    ))
}

/// Apply the network slice-by-slice to a `(D, H, W)` volume in `[0,1]`.
pub fn enhance_volume(net: &Ddnet, volume: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::zeros(volume.shape().clone());
    enhance_volume_into(net, volume, &mut out)?;
    Ok(out)
}

/// [`enhance_volume`] into an existing same-shape tensor, reusing one
/// slice staging buffer across slices. Bit-identical to the allocating
/// form (same per-slice forward); this is the buffer-reuse hook the
/// batch-serving path threads through `Scratch`.
// cc19-hot
pub fn enhance_volume_into(net: &Ddnet, volume: &Tensor, out: &mut Tensor) -> Result<()> {
    volume.shape().expect_rank(3)?;
    volume.shape().expect_same(out.shape())?;
    let (d, h, w) = (volume.dims()[0], volume.dims()[1], volume.dims()[2]);
    let plane = h * w;
    // cc19-lint: allow(alloc, "one slice-sized staging buffer per volume; the compiled-plan arena (ROADMAP 3) will own it")
    let mut stage = vec![0.0f32; plane];
    for s in 0..d {
        stage.copy_from_slice(&volume.data()[s * plane..(s + 1) * plane]);
        let slice = Tensor::from_vec([h, w], stage)?;
        let enh = net.enhance(&slice)?;
        out.data_mut()[s * plane..(s + 1) * plane].copy_from_slice(enh.data());
        stage = slice.into_vec();
    }
    Ok(())
}

/// [`enhance_volume`] with all `D` slices coalesced into **one** batched
/// forward under a pinned conv backend — the GEMM-friendly serving path
/// (see [`Ddnet::enhance_stack`] for the bit-identity caveat that makes
/// the backend pin mandatory).
pub fn enhance_volume_stacked(
    net: &Ddnet,
    volume: &Tensor,
    backend: ConvBackend,
) -> Result<Tensor> {
    let mut out = Tensor::zeros(volume.shape().clone());
    enhance_volume_stacked_into(net, volume, backend, &mut out)?;
    Ok(out)
}

/// [`enhance_volume_stacked`] into an existing same-shape tensor — the
/// buffer-reuse form threaded through serving `Scratch` pools.
pub fn enhance_volume_stacked_into(
    net: &Ddnet,
    volume: &Tensor,
    backend: ConvBackend,
    out: &mut Tensor,
) -> Result<()> {
    volume.shape().expect_rank(3)?;
    volume.shape().expect_same(out.shape())?;
    let enh = net.enhance_stack(volume, backend)?;
    out.data_mut().copy_from_slice(enh.data());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DdnetConfig;
    use cc19_data::lowdose_pairs::{make_pair, PairConfig};
    use cc19_data::sources::{DataSource, Modality, ScanMeta};
    use cc19_ctsim::phantom::Severity;

    fn pairs(n_pairs: usize, n: usize) -> Vec<EnhancementPair> {
        (0..n_pairs)
            .map(|i| {
                let meta = ScanMeta {
                    id: 100 + i as u64,
                    source: DataSource::Bimcv,
                    modality: Modality::Ct,
                    positive: i % 2 == 0,
                    severity: if i % 2 == 0 { Some(Severity::Moderate) } else { None },
                    slices: 16,
                    circular_artifact: false,
                    has_projections: false,
                };
                make_pair(&meta, 0.5, PairConfig::reduced(n, 7 + i as u64)).unwrap()
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss_and_improves_quality() {
        let train = pairs(6, 32);
        let val = pairs(2, 32);
        let net = Ddnet::new(DdnetConfig::tiny(), 42);
        let cfg = TrainConfig {
            epochs: 4,
            lr: 2e-3,
            lr_decay: 0.9,
            batch_size: 2,
            ms_ssim_levels: 1,
            grad_clip: Some(1.0),
            conv_backend: ConvBackend::Auto,
        };

        let (raw0, enh0) = evaluate_pairs(&net, &val).unwrap();
        let stats = train_enhancement(&net, &train, &val, cfg).unwrap();
        assert_eq!(stats.len(), 4);
        assert!(
            stats.last().unwrap().train_loss < stats[0].train_loss,
            "loss should fall: {:?}",
            stats.iter().map(|s| s.train_loss).collect::<Vec<_>>()
        );
        let (raw1, enh1) = evaluate_pairs(&net, &val).unwrap();
        // raw metrics don't depend on the net
        assert!((raw0.mse - raw1.mse).abs() < 1e-12);
        // after training, enhancement should beat its own starting point
        assert!(enh1.mse <= enh0.mse * 1.05, "enhanced mse {} vs initial {}", enh1.mse, enh0.mse);
    }

    #[test]
    fn epoch_stats_record_time_and_msssim() {
        let train = pairs(2, 32);
        let val = pairs(1, 32);
        let net = Ddnet::new(DdnetConfig::tiny(), 1);
        let stats =
            train_enhancement(&net, &train, &val, TrainConfig::quick(1)).unwrap();
        assert_eq!(stats[0].epoch, 1);
        assert!(stats[0].seconds > 0.0);
        assert!(stats[0].val_ms_ssim > 0.0 && stats[0].val_ms_ssim <= 100.0);
    }

    #[test]
    fn enhance_volume_processes_all_slices() {
        let net = Ddnet::new(DdnetConfig::tiny(), 2);
        let mut rng = cc19_tensor::rng::Xorshift::new(3);
        let vol = rng.uniform_tensor([3, 32, 32], 0.0, 1.0);
        let out = enhance_volume(&net, &vol).unwrap();
        assert_eq!(out.dims(), &[3, 32, 32]);
        // each slice matches individual enhancement
        let s1 = Tensor::from_vec([32, 32], vol.data()[1024..2048].to_vec()).unwrap();
        let e1 = net.enhance(&s1).unwrap();
        assert_eq!(&out.data()[1024..2048], e1.data());
    }

    #[test]
    fn enhance_volume_into_matches_allocating_form() {
        let net = Ddnet::new(DdnetConfig::tiny(), 4);
        let mut rng = cc19_tensor::rng::Xorshift::new(5);
        let vol = rng.uniform_tensor([4, 16, 16], 0.0, 1.0);
        let fresh = enhance_volume(&net, &vol).unwrap();
        // A dirty reused buffer must be fully overwritten.
        let mut reused = Tensor::full([4, 16, 16], f32::NAN);
        enhance_volume_into(&net, &vol, &mut reused).unwrap();
        assert_eq!(fresh.data(), reused.data());
    }

    #[test]
    fn enhance_volume_stacked_into_matches_allocating_form() {
        use cc19_tensor::conv_backend::ConvBackend;
        let net = Ddnet::new(DdnetConfig::tiny(), 8);
        let mut rng = cc19_tensor::rng::Xorshift::new(9);
        let vol = rng.uniform_tensor([3, 16, 16], 0.0, 1.0);
        let fresh = enhance_volume_stacked(&net, &vol, ConvBackend::Direct).unwrap();
        // A dirty reused buffer must be fully overwritten.
        let mut reused = Tensor::full([3, 16, 16], f32::NAN);
        enhance_volume_stacked_into(&net, &vol, ConvBackend::Direct, &mut reused).unwrap();
        assert_eq!(fresh.data(), reused.data());
    }

    #[test]
    fn enhance_stack_is_batch_invariant_under_pinned_backend() {
        use cc19_tensor::conv_backend::ConvBackend;
        let net = Ddnet::new(DdnetConfig::tiny(), 6);
        let mut rng = cc19_tensor::rng::Xorshift::new(7);
        let stack = rng.uniform_tensor([3, 16, 16], 0.0, 1.0);
        let plane = 16 * 16;
        // With the backend pinned, every sample in the batched forward is
        // an independent row range of the same kernel, so the stacked
        // result must match the one-slice-at-a-time result bit for bit.
        // (Under Auto the dispatch keys on B*OH*OW and may legitimately
        // flip backends between the two shapes — see Ddnet::enhance_stack.)
        for backend in [ConvBackend::Direct, ConvBackend::Gemm] {
            let batched = net.enhance_stack(&stack, backend).unwrap();
            assert_eq!(batched.dims(), &[3, 16, 16]);
            for s in 0..3 {
                let one = Tensor::from_vec(
                    [1, 16, 16],
                    stack.data()[s * plane..(s + 1) * plane].to_vec(),
                )
                .unwrap();
                let e = net.enhance_stack(&one, backend).unwrap();
                assert_eq!(
                    &batched.data()[s * plane..(s + 1) * plane],
                    e.data(),
                    "slice {s} differs under {backend:?}"
                );
            }
        }
    }
}
