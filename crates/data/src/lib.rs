//! # cc19-data
//!
//! Data layer of the ComputeCOVID19+ reproduction.
//!
//! The paper trains on four gated clinical archives (Table 1): Mayo Clinic
//! (8 healthy chest CTs with full/quarter-dose projection data), BIMCV
//! (X-rays *and* CTs of 34 COVID patients), MIDRC (229 COVID CTs) and LIDC
//! (1301 healthy CTs). None are redistributable, so this crate synthesizes
//! *equivalent* archives from `cc19-ctsim` chest phantoms — same modality
//! mix, label balance, slice-count distributions and per-source artifacts
//! (the BIMCV/MIDRC circular reconstruction boundary of Fig 5) — and
//! implements the paper's §2.1 preparation rules on top:
//!
//! 1. keep only chest **CT** scans (BIMCV mixes in X-rays);
//! 2. remove the circular segmentation at the reconstruction boundary;
//! 3. keep scans with ≥ 128 slices (isotropy for the 3D networks);
//! 4. HU → `[0,1]` float conversion for Enhancement AI.


pub mod augment;
pub mod dataset;
pub mod io;
pub mod lowdose_pairs;
pub mod prep;
pub mod progression;
pub mod sources;
pub mod volume;

pub use progression::ProgressionCourse;
pub use sources::{DataSource, ScanMeta, SourceCatalog};
pub use volume::{CtVolume, VoxelSpacing};

/// Crate-wide result alias.
pub type Result<T> = cc19_tensor::Result<T>;
