//! The paper's accuracy experiments, end to end (Tables 8 & 9, Figs 11 &
//! 13), at a configurable scale.
//!
//! Protocol (paper §5.2, reduced per DESIGN.md §5):
//!
//! 1. generate low-dose/full-dose slice pairs (§3.1.2 simulation) and
//!    train DDnet on them (Fig 11a, Table 8);
//! 2. generate the classification corpus (§3.3.2) and train the 3D
//!    classifier on clean, segmented volumes (Fig 11b);
//! 3. degrade the held-out test volumes to low dose, then score them
//!    through the pipeline **without** (grey arm of Fig 13) and **with**
//!    (green arm) Enhancement AI;
//! 4. report accuracy / AUC-ROC / confusion matrices (Eq 3–5, Table 9).

use cc19_analysis::classifier::{ClassifierConfig, DenseNet3d};
use cc19_analysis::metrics::{self, ConfusionMatrix};
use cc19_analysis::segmentation::LungSegmenter;
use cc19_analysis::train::{train_classifier, ClassEpochStats, ClassTrainConfig, Example};
use cc19_data::dataset::{ClassificationDataset, EnhancementDataset};
use cc19_data::lowdose_pairs::{make_pair_from_hu, PairConfig};
use cc19_data::prep::PrepConfig;
use cc19_ddnet::trainer::{
    evaluate_pairs, train_enhancement, EnhancementMetrics, EpochStats, TrainConfig,
};
use cc19_ddnet::{Ddnet, DdnetConfig};
use cc19_tensor::Tensor;

use crate::framework::Framework;
use crate::Result;

/// Scale knobs for the accuracy experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyConfig {
    /// In-plane resolution (divisible by 16).
    pub n: usize,
    /// Slices per volume.
    pub slices: usize,
    /// Classifier training volumes.
    pub train_volumes: usize,
    /// Held-out test volumes (paper: 95 at ratio 36:59).
    pub test_volumes: usize,
    /// Enhancement training pairs.
    pub enh_pairs: usize,
    /// DDnet training epochs.
    pub ddnet_epochs: usize,
    /// Classifier training epochs.
    pub class_epochs: usize,
    /// Blank-scan factor of the low-dose simulation (lower = noisier;
    /// paper: 1e6 — scaled runs use a lower dose so the enhancement
    /// effect is visible at small resolution, see EXPERIMENTS.md).
    pub blank_scan: f64,
    /// Projection views of the degraded acquisition. The nominal reduced
    /// geometry uses `3n/2`; setting this lower simulates *sparse-view*
    /// CT with strong streaking artifacts — DDnet's original task (Zhang
    /// et al. 2018, ref [45]) and the regime where the enhancement effect
    /// is clearly visible at reduced resolution.
    pub views: usize,
    /// Master seed.
    pub seed: u64,
}

impl AccuracyConfig {
    /// Minutes-scale configuration (the table9 harness default).
    pub fn quick() -> Self {
        AccuracyConfig {
            n: 48,
            slices: 8,
            train_volumes: 20,
            test_volumes: 19,
            enh_pairs: 24,
            ddnet_epochs: 25,
            class_epochs: 30,
            blank_scan: 3.0e4,
            views: 24,
            seed: 2021,
        }
    }

    /// Larger configuration for `--full` harness runs.
    pub fn full() -> Self {
        AccuracyConfig {
            n: 64,
            slices: 10,
            train_volumes: 40,
            test_volumes: 38, // 2x the quick set, same 36:59 ratio
            enh_pairs: 40,
            ddnet_epochs: 12,
            class_epochs: 40,
            blank_scan: 3.0e4,
            views: 32,
            seed: 2021,
        }
    }

    fn pair_config(&self) -> PairConfig {
        let mut pc = PairConfig::reduced(self.n, self.seed);
        pc.dose.blank_scan = self.blank_scan;
        pc.views = self.views;
        pc
    }
}

/// Everything the accuracy harnesses need.
#[derive(Debug)]
pub struct AccuracyOutcome {
    /// DDnet per-epoch stats (Fig 11a).
    pub enh_train_stats: Vec<EpochStats>,
    /// Classifier per-epoch stats (Fig 11b).
    pub class_train_stats: Vec<ClassEpochStats>,
    /// Table 8 "Y−X" row (low-dose vs target).
    pub table8_raw: EnhancementMetrics,
    /// Table 8 "Y−f(X)" row (enhanced vs target).
    pub table8_enhanced: EnhancementMetrics,
    /// Ground-truth labels of the test volumes.
    pub labels: Vec<bool>,
    /// Pipeline scores without Enhancement AI (grey arm).
    pub scores_original: Vec<f64>,
    /// Pipeline scores with Enhancement AI (green arm).
    pub scores_enhanced: Vec<f64>,
}

impl AccuracyOutcome {
    /// Accuracy of an arm at its own optimal threshold (the paper reports
    /// accuracy at the optimal threshold, 0.061 on their data).
    pub fn accuracy(&self, scores: &[f64]) -> (f64, f64) {
        let t = metrics::optimal_threshold(scores, &self.labels);
        (metrics::accuracy(scores, &self.labels, t), t)
    }

    /// AUC of an arm.
    pub fn auc(&self, scores: &[f64]) -> f64 {
        metrics::auc_roc(scores, &self.labels)
    }

    /// Confusion matrix of an arm at a threshold (Table 9).
    pub fn confusion(&self, scores: &[f64], threshold: f64) -> ConfusionMatrix {
        metrics::confusion_at(scores, &self.labels, threshold)
    }
}

/// Degrade every slice of an HU volume to low dose via the §3.1.2
/// projection → Poisson → FBP simulation.
pub fn degrade_volume(hu: &Tensor, cfg: PairConfig, seed: u64) -> Result<Tensor> {
    hu.shape().expect_rank(3)?;
    let (d, h, w) = (hu.dims()[0], hu.dims()[1], hu.dims()[2]);
    let plane = h * w;
    let mut out = Tensor::zeros([d, h, w]);
    let prep = cfg.prep;
    for s in 0..d {
        let slice = Tensor::from_vec([h, w], hu.data()[s * plane..(s + 1) * plane].to_vec())?;
        let pair = make_pair_from_hu(&slice, seed ^ (s as u64) << 17, cfg)?;
        // back to HU so the volume stays in the pipeline's input space
        let noisy_hu = cc19_data::prep::denormalize_from_enhancement(&pair.low, prep);
        out.data_mut()[s * plane..(s + 1) * plane].copy_from_slice(noisy_hu.data());
    }
    Ok(out)
}

/// Run the whole §5.2 experiment at the given scale.
pub fn run_accuracy_experiment(cfg: AccuracyConfig) -> Result<AccuracyOutcome> {
    let pair_cfg = cfg.pair_config();

    // --- 1. Enhancement AI ------------------------------------------------
    let enh_data = EnhancementDataset::generate(cfg.enh_pairs, pair_cfg)?;
    let ddnet = Ddnet::new(DdnetConfig::reduced(), cfg.seed);
    let mut tc = TrainConfig::quick(cfg.ddnet_epochs);
    tc.lr = 2e-3;
    tc.ms_ssim_levels = cc19_nn::ssim::max_levels(cfg.n, cfg.n).clamp(1, 5);
    let enh_train_stats = train_enhancement(&ddnet, &enh_data.train, &enh_data.val, tc)?;
    let eval_set = if enh_data.test.is_empty() { &enh_data.val } else { &enh_data.test };
    let (table8_raw, table8_enhanced) = evaluate_pairs(&ddnet, eval_set)?;

    // --- 2. Classification AI ---------------------------------------------
    let class_data =
        ClassificationDataset::generate(cfg.train_volumes, cfg.test_volumes, cfg.n, cfg.slices)?;
    let segmenter = LungSegmenter::default();
    let prep = PrepConfig::scaled(1);

    // Training examples: clean volumes, segmented & masked (the clean arm
    // of Fig 4 — training uses the curated archives).
    let clean_fw = Framework {
        enhancer: None,
        segmenter,
        classifier: DenseNet3d::new(ClassifierConfig::tiny(), 0), // placeholder, unused
        prep,
        clock: cc19_obs::global_clock(),
    };
    let mut examples = Vec::with_capacity(class_data.train.len());
    for item in &class_data.train {
        let (masked, _, _) = clean_fw.preprocess(&item.volume.hu)?;
        examples.push(Example { volume: masked, label: item.label });
    }
    let classifier = DenseNet3d::new(ClassifierConfig::tiny(), cfg.seed ^ 0xC1A55);
    let mut ctc = ClassTrainConfig::quick(cfg.class_epochs);
    ctc.seed = cfg.seed;
    ctc.lr = 1e-2;
    // Contrast/intensity augmentation only: additive-noise augmentation
    // would pre-train robustness to exactly the low-dose noise whose
    // removal Enhancement AI is being credited for, hiding the paper's
    // effect at our scale (EXPERIMENTS.md).
    ctc.augment = Some(cc19_data::augment::AugmentConfig {
        noise_prob: 0.0,
        ..Default::default()
    });
    let class_train_stats = train_classifier(&classifier, &examples, ctc)?;

    // --- 3. Low-dose test volumes -----------------------------------------
    let mut labels = Vec::with_capacity(class_data.test.len());
    let mut noisy_volumes = Vec::with_capacity(class_data.test.len());
    for (i, item) in class_data.test.iter().enumerate() {
        noisy_volumes.push(degrade_volume(&item.volume.hu, pair_cfg, cfg.seed ^ (i as u64) << 32)?);
        labels.push(item.label);
    }

    // --- 4. Score both arms -------------------------------------------------
    // Original arm: Segmentation + Classification only (grey curves).
    let fw_orig =
        Framework { enhancer: None, segmenter, classifier, prep, clock: cc19_obs::global_clock() };
    let mut scores_original = Vec::with_capacity(noisy_volumes.len());
    for v in &noisy_volumes {
        scores_original.push(fw_orig.probability(v)?);
    }
    // Enhanced arm: Enhancement + Segmentation + Classification (green).
    let fw_enh = Framework { enhancer: Some(ddnet), ..fw_orig };
    let mut scores_enhanced = Vec::with_capacity(noisy_volumes.len());
    for v in &noisy_volumes {
        scores_enhanced.push(fw_enh.probability(v)?);
    }

    Ok(AccuracyOutcome {
        enh_train_stats,
        class_train_stats,
        table8_raw,
        table8_enhanced,
        labels,
        scores_original,
        scores_enhanced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_volume_adds_noise_but_keeps_anatomy() {
        use cc19_data::sources::{DataSource, Modality, ScanMeta};
        use cc19_data::volume::CtVolume;
        let meta = ScanMeta {
            id: 77,
            source: DataSource::Lidc,
            modality: Modality::Ct,
            positive: false,
            severity: None,
            slices: 2,
            circular_artifact: false,
            has_projections: false,
        };
        let vol = CtVolume::synthesize(&meta, 32, 2).unwrap();
        let mut pc = PairConfig::reduced(32, 1);
        pc.dose.blank_scan = 3.0e4;
        let noisy = degrade_volume(&vol.hu, pc, 5).unwrap();
        assert_eq!(noisy.dims(), vol.hu.dims());
        let diff = cc19_tensor::reduce::mse(&noisy, &vol.hu).unwrap().sqrt();
        assert!(diff > 1.0, "noise must be visible in HU, rmse {diff}");
        assert!(diff < 500.0, "anatomy must survive, rmse {diff}");
        // different slices get different noise
        let s0 = &noisy.data()[..32 * 32];
        let s1 = &noisy.data()[32 * 32..];
        assert_ne!(s0, s1);
    }
}
