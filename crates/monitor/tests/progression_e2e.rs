//! End-to-end longitudinal monitoring (the PR's acceptance test):
//! a seeded 4-timestep progression phantom series through
//! [`PatientSeries`] yields monotone burden deltas matching the
//! phantom's programmed progression; resubmitting any scan is a cache
//! hit with a bit-identical `Diagnosis` and mask; and the serve-path
//! variants (single-node broker, sharded cluster) match the
//! direct-path report bit for bit.

use std::sync::Arc;
use std::time::Duration;

use cc19_ctsim::phantom::Severity;
use cc19_data::progression::{progression_series, progression_volume, ProgressionCourse};
use cc19_data::volume::CtVolume;
use cc19_monitor::{PatientSeries, Provenance};
use cc19_obs::Registry;
use cc19_serve::{BatchPolicy, ClusterCfg, ClusterMetrics, ServeCluster, Server, ServerCfg};
use computecovid19::framework::Framework;
use computecovid19::monitoring::Trend;

const PATIENT: u64 = 0x5E_2126;
const N: usize = 32;
const SLICES: usize = 4;
const STEPS: usize = 4;
const THRESHOLD: f64 = 0.5;
const CACHE_BYTES: usize = 64 << 20;

fn course() -> ProgressionCourse {
    ProgressionCourse::worsening(STEPS)
}

fn scans() -> Vec<CtVolume> {
    progression_series(PATIENT, &course(), N, SLICES, Severity::Moderate)
        .expect("progression series")
}

fn fresh_series() -> PatientSeries {
    let fw = Framework::untrained_reduced(PATIENT);
    PatientSeries::with_registry(fw, THRESHOLD, CACHE_BYTES, Arc::new(Registry::new()))
}

#[test]
fn four_timestep_series_tracks_the_programmed_progression() {
    let mut series = fresh_series();
    let mut measured = Vec::new();
    for (t, vol) in scans().iter().enumerate() {
        let report = series.add_scan(format!("t{t}"), vol).expect("add_scan");
        assert_eq!(report.provenance, Provenance::Computed);
        measured.push(report.burden.lesion_ml);
        if t > 0 {
            assert_eq!(
                report.trend,
                Some(Trend::Progressing),
                "worsening course must report progression at t{t}"
            );
            assert!(report.delta_ml() > 0.0);
        }
    }
    // measured burden ordering matches the programmed course ordering
    let programmed: Vec<f64> = (0..STEPS)
        .map(|t| course().programmed_burden(PATIENT, t, SLICES, Severity::Moderate))
        .collect();
    for w in programmed.windows(2) {
        assert!(w[1] > w[0], "programmed course must be monotone: {programmed:?}");
    }
    for (i, w) in measured.windows(2).enumerate() {
        assert!(
            w[1] > w[0],
            "measured burden not monotone at step {}: {measured:?}",
            i + 1
        );
    }
}

#[test]
fn resubmission_is_a_cache_hit_with_bit_identical_results() {
    let mut series = fresh_series();
    let all = scans();
    let mut firsts = Vec::new();
    for (t, vol) in all.iter().enumerate() {
        firsts.push(series.add_scan(format!("t{t}"), vol).expect("first pass"));
    }
    assert_eq!(series.cache().stats(), (0, STEPS as u64, 0));

    // resubmit every scan (reordered) — all hits, all bit-identical
    for (t, vol) in all.iter().enumerate().rev() {
        let replay = series.add_scan(format!("t{t}-replay"), vol).expect("replay");
        assert_eq!(replay.provenance, Provenance::CacheHit);
        assert_eq!(
            replay.probability.to_bits(),
            firsts[t].probability.to_bits(),
            "t{t}: cached Diagnosis probability must be bit-identical"
        );
        assert_eq!(replay.positive, firsts[t].positive);
        assert_eq!(replay.burden.lesion_ml.to_bits(), firsts[t].burden.lesion_ml.to_bits());
        assert_eq!(replay.burden.lung_ml.to_bits(), firsts[t].burden.lung_ml.to_bits());
    }
    let (hits, misses, _) = series.cache().stats();
    assert_eq!((hits, misses), (STEPS as u64, STEPS as u64));

    // the memoized mask itself is bit-identical to a fresh computation
    let record = &series.records()[1];
    let key = record.key;
    let mut cache_probe = fresh_series();
    let fresh = cache_probe.add_scan("probe", &all[1]).expect("probe");
    assert_eq!(fresh.burden.lesion_ml.to_bits(), firsts[1].burden.lesion_ml.to_bits());
    assert_eq!(
        cache_probe.records()[0].key,
        key,
        "same scan + same weights + same config must address identically"
    );
}

/// Serve worker config that keeps the monitoring submissions strictly
/// sequential and deterministic.
fn worker_cfg() -> ServerCfg {
    ServerCfg {
        batch: BatchPolicy { max_batch: 1, max_delay: Duration::ZERO },
        threshold: THRESHOLD,
        ..ServerCfg::default()
    }
}

#[test]
fn serve_path_reports_match_the_direct_path_bit_for_bit() {
    let all = scans();

    // direct path
    let mut direct = fresh_series();
    for (t, vol) in all.iter().enumerate() {
        direct.add_scan(format!("t{t}"), vol).expect("direct");
    }
    direct.add_scan("t1-replay", &all[1]).expect("direct replay");

    // served path: same framework seed behind a single-node broker
    let server = Server::start(worker_cfg(), || Framework::untrained_reduced(PATIENT))
        .expect("server starts");
    let client = server.client();
    let mut served = fresh_series();
    for (t, vol) in all.iter().enumerate() {
        let r = served.add_scan_served(format!("t{t}"), vol, &client).expect("served");
        assert_eq!(r.provenance, Provenance::Computed);
    }
    let replay = served.add_scan_served("t1-replay", &all[1], &client).expect("served replay");
    assert_eq!(replay.provenance, Provenance::CacheHit);
    server.shutdown();

    assert_eq!(direct.to_csv(), served.to_csv(), "serve-path CSV must match direct bit-for-bit");
    assert_eq!(direct.to_json(), served.to_json());
    for (d, s) in direct.reports().iter().zip(served.reports()) {
        assert_eq!(d.probability.to_bits(), s.probability.to_bits());
        assert_eq!(d.burden.lesion_ml.to_bits(), s.burden.lesion_ml.to_bits());
    }
}

#[test]
fn cluster_path_reports_match_the_direct_path_bit_for_bit() {
    let all = scans();

    let mut direct = fresh_series();
    for (t, vol) in all.iter().enumerate() {
        direct.add_scan(format!("t{t}"), vol).expect("direct");
    }

    let cfg = ClusterCfg { workers: 2, worker: worker_cfg(), ..ClusterCfg::default() };
    let cluster = ServeCluster::start_with_metrics(
        cfg,
        || Framework::untrained_reduced(PATIENT),
        ClusterMetrics::new(),
    )
    .expect("cluster starts");
    let client = cluster.client();

    let mut clustered = fresh_series();
    for (t, vol) in all.iter().enumerate() {
        clustered.add_scan_clustered(format!("t{t}"), vol, &client).expect("clustered");
    }
    // resubmission through the cluster path is a local cache hit — the
    // broker is never consulted for a content-addressed replay
    let replay =
        clustered.add_scan_clustered("t2-replay", &all[2], &client).expect("cluster replay");
    assert_eq!(replay.provenance, Provenance::CacheHit);
    cluster.shutdown();

    for (d, c) in direct.reports().iter().zip(clustered.reports()) {
        assert_eq!(d.probability.to_bits(), c.probability.to_bits());
        assert_eq!(d.burden.lesion_ml.to_bits(), c.burden.lesion_ml.to_bits());
        assert_eq!(d.burden.lung_ml.to_bits(), c.burden.lung_ml.to_bits());
    }
}

#[test]
fn recovery_course_reports_improvement() {
    let mut series = fresh_series();
    let rec = ProgressionCourse::recovering(STEPS);
    for t in 0..STEPS {
        let vol = progression_volume(PATIENT, t, &rec, N, SLICES, Severity::Moderate)
            .expect("recovering scan");
        let report = series.add_scan(format!("t{t}"), &vol).expect("add_scan");
        if t > 0 {
            assert_eq!(report.trend, Some(Trend::Improving), "t{t} must improve");
            assert!(report.delta_ml() < 0.0);
        }
    }
}
