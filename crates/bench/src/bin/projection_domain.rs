//! Extension experiment (paper §7): projection-domain enhancement.
//!
//! Compares four reconstruction pipelines on held-out low-dose
//! acquisitions:
//!
//! 1. FBP only (no enhancement) — the baseline;
//! 2. image-domain DDnet after FBP — the paper's approach;
//! 3. projection-domain sinogram denoising before FBP — the §7 proposal;
//! 4. both combined.

use cc19_bench::{banner, parse_scale, Scale, TablePrinter};
use cc19_ctsim::fbp::fbp_parallel;
use cc19_ctsim::filter::Window;
use cc19_ctsim::geometry::ParallelBeamGeometry;
use cc19_ctsim::hu;
use cc19_ctsim::lowdose::{apply_poisson_noise, DoseSettings};
use cc19_ctsim::phantom::{ChestPhantom, Severity};
use cc19_ctsim::siddon::{project_parallel, Grid};
use cc19_ctsim::sinogram::Sinogram;
use cc19_data::lowdose_pairs::{Beam, PairConfig};
use cc19_data::prep::{normalize_for_enhancement, PrepConfig};
use cc19_ddnet::projection::SinogramDenoiser;
use cc19_ddnet::trainer::{train_enhancement, TrainConfig};
use cc19_ddnet::{Ddnet, DdnetConfig};
use cc19_nn::optim::Adam;
use cc19_nn::ssim::ms_ssim_image;
use cc19_tensor::Tensor;

struct Setup {
    n: usize,
    grid: Grid,
    geom: ParallelBeamGeometry,
    dose: f64,
}

impl Setup {
    fn acquire(&self, seed: u64) -> (Tensor, Sinogram, Sinogram) {
        // (clean HU slice, clean sinogram, noisy sinogram)
        let phantom = ChestPhantom::subject(seed, 0.5, if seed.is_multiple_of(2) { Some(Severity::Moderate) } else { None });
        let hu_img = phantom.rasterize_hu(self.n);
        let mu = hu::image_hu_to_mu(&hu_img);
        let clean = project_parallel(&mu, self.grid, &self.geom).unwrap();
        let noisy = apply_poisson_noise(&clean, DoseSettings { blank_scan: self.dose, seed });
        (hu_img, clean, noisy)
    }

    fn recon_unit(&self, sino: &Sinogram) -> Tensor {
        let mu = fbp_parallel(sino, &self.geom, self.grid, Window::RamLak).unwrap();
        let hu_img = hu::image_mu_to_hu(&mu);
        normalize_for_enhancement(&hu_img, PrepConfig::scaled(1))
    }
}

fn main() {
    let scale = parse_scale();
    banner("Extension: projection domain", "sinogram denoising vs image-domain DDnet (§7)", scale);

    let (n, train_subjects, sino_steps, ddnet_epochs) = match scale {
        Scale::Full => (48usize, 24usize, 90usize, 20usize),
        Scale::Quick => (32, 12, 60, 14),
    };
    let grid = Grid::fov500(n);
    // sparse-view + low dose, same stress setting as table8/table9
    let geom = ParallelBeamGeometry::for_image(n, grid.px, n / 2);
    let setup = Setup { n, grid, geom, dose: 3.0e3 };

    // --- train the sinogram denoiser ---
    println!("training sinogram denoiser ({sino_steps} steps) ...");
    let sino_net = SinogramDenoiser::new(8, 1);
    let mut opt = Adam::new(5e-3);
    for step in 0..sino_steps {
        let (_, clean, noisy) = setup.acquire(step as u64 % train_subjects as u64);
        sino_net.train_step(noisy.tensor(), clean.tensor(), &mut opt).unwrap();
    }

    // --- train the image-domain DDnet on matching degradations ---
    println!("training image-domain DDnet ({ddnet_epochs} epochs) ...");
    let mut pc = PairConfig::reduced(n, 2021);
    pc.views = n / 2;
    pc.dose.blank_scan = setup.dose;
    pc.beam = Beam::Parallel;
    let ds = cc19_data::dataset::EnhancementDataset::generate(train_subjects, pc).unwrap();
    let ddnet = Ddnet::new(DdnetConfig::reduced(), 2021);
    let mut tc = TrainConfig::quick(ddnet_epochs);
    tc.lr = 1.5e-3;
    train_enhancement(&ddnet, &ds.train, &ds.val, tc).unwrap();

    // --- evaluate the four pipelines on unseen subjects ---
    let test_seeds: Vec<u64> = (1000..1006).collect();
    let mut rows: Vec<(&str, f64, f64)> = Vec::new(); // (name, mse, msssim)
    let mut acc = [(0.0f64, 0.0f64); 4];
    for &seed in &test_seeds {
        let (hu_img, _, noisy) = setup.acquire(seed);
        let target = normalize_for_enhancement(&hu_img, PrepConfig::scaled(1));

        // 1: FBP only
        let fbp_only = setup.recon_unit(&noisy);
        // 2: FBP + image-domain DDnet
        let image_dom = ddnet.enhance(&fbp_only).unwrap();
        // 3: projection denoise + FBP
        let denoised = Sinogram::new(sino_net.denoise(noisy.tensor()).unwrap()).unwrap();
        let proj_dom = setup.recon_unit(&denoised);
        // 4: both
        let both = ddnet.enhance(&proj_dom).unwrap();

        for (i, img) in [&fbp_only, &image_dom, &proj_dom, &both].into_iter().enumerate() {
            acc[i].0 += cc19_tensor::reduce::mse(img, &target).unwrap();
            acc[i].1 += ms_ssim_image(img, &target, 1.0).unwrap();
        }
    }
    let names = ["FBP only", "FBP + DDnet (paper)", "proj. denoise + FBP (sec 7)", "both combined"];
    for (i, name) in names.iter().enumerate() {
        rows.push((name, acc[i].0 / test_seeds.len() as f64, acc[i].1 / test_seeds.len() as f64));
    }

    let t = TablePrinter::new(&[30, 12, 12]);
    t.row(&[&"Pipeline", &"MSE", &"MS-SSIM"]);
    t.sep();
    let mut csv = String::from("pipeline,mse,ms_ssim\n");
    for (name, mse, ms) in &rows {
        t.row(&[name, &format!("{mse:.5}"), &format!("{:.1} %", ms * 100.0)]);
        csv.push_str(&format!("{name},{mse},{ms}\n"));
    }
    t.sep();
    println!("\nexpected shape: each domain helps alone; combining both wins (the paper's §7");
    println!("hypothesis that projection-domain data buys quality beyond image-domain-only).");
    cc19_bench::write_result("projection_domain.csv", &csv);
}
