//~ path: crates/ctsim/src/fixture.rs
//~ expect: api-parity
// A public buffer-reuse variant with no allocating twin anywhere in the
// crate: the api-parity rule demands the pair.

pub fn resample_sinogram_into(src: &[f32], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_form_copies() {
        let src = [1.0f32, 2.0];
        let mut dst = [0.0f32; 2];
        resample_sinogram_into(&src, &mut dst);
        assert_eq!(dst, src);
    }
}
