//! Model checkpointing: a small, versioned, dependency-free binary format
//! for parameter snapshots plus auxiliary buffers (batch-norm running
//! statistics, optimizer moments, trainer counters).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  "CC19CKPT"            8 bytes
//! version u32                  = 2 (1 still readable)
//! n_sections u32
//! per section:
//!   name_len u32, name bytes (utf-8)
//!   data_len u32 (f32 count), data bytes (4 * data_len)
//! crc32 u32                    (v2 only: IEEE CRC-32 of everything after
//!                               the version word)
//! ```
//!
//! Version history:
//!
//! - **v1** — sections only, no integrity check.
//! - **v2** — identical section encoding plus a trailing CRC-32 so a
//!   truncated or bit-flipped file is rejected instead of silently loading
//!   garbage weights. v1 files remain loadable (no checksum verified).
//!
//! This file is on the cc19-lint panic-surface path: checkpoint I/O
//! failures must surface as `io::Result`, never panics.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CC19CKPT";
const VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — shared by the checkpoint
// format and the distributed transport's payload framing.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC-32 (IEEE) accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Finalized checksum.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

/// A named collection of f32 buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// `(name, data)` sections, in order.
    pub sections: Vec<(String, Vec<f32>)>,
}

impl Checkpoint {
    /// New empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section.
    pub fn push(&mut self, name: impl Into<String>, data: Vec<f32>) {
        self.sections.push((name.into(), data));
    }

    /// Append a single-value section.
    pub fn push_scalar(&mut self, name: impl Into<String>, value: f32) {
        self.push(name, vec![value]);
    }

    /// Append a `u64` counter section, bit-cast into two f32 lanes so the
    /// round trip is exact (a plain `as f32` would lose precision past
    /// 2^24 steps).
    pub fn push_u64(&mut self, name: impl Into<String>, value: u64) {
        let lo = f32::from_bits((value & 0xFFFF_FFFF) as u32);
        let hi = f32::from_bits((value >> 32) as u32);
        self.push(name, vec![lo, hi]);
    }

    /// Find a section by name.
    pub fn get(&self, name: &str) -> Option<&[f32]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, d)| d.as_slice())
    }

    /// Read back a single-value section.
    pub fn get_scalar(&self, name: &str) -> Option<f32> {
        match self.get(name) {
            Some([v]) => Some(*v),
            _ => None,
        }
    }

    /// Read back a counter stored with [`Checkpoint::push_u64`].
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some([lo, hi]) => Some((lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32)),
            _ => None,
        }
    }

    /// Encode the section region (count + sections) — the byte span the
    /// v2 checksum covers.
    fn encode_body(&self) -> Vec<u8> {
        let total: usize = self
            .sections
            .iter()
            .map(|(n, d)| 8 + n.len() + 4 * d.len())
            .sum();
        let mut body = Vec::with_capacity(4 + total);
        body.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, data) in &self.sections {
            let nb = name.as_bytes();
            body.extend_from_slice(&(nb.len() as u32).to_le_bytes());
            body.extend_from_slice(nb);
            body.extend_from_slice(&(data.len() as u32).to_le_bytes());
            for v in data {
                body.extend_from_slice(&v.to_le_bytes());
            }
        }
        body
    }

    /// Serialize to a writer (current version, with checksum).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let body = self.encode_body();
        w.write_all(&body)?;
        w.write_all(&crc32(&body).to_le_bytes())?;
        Ok(())
    }

    /// Serialize in the legacy v1 layout (no checksum). Exists so tests
    /// and migration tooling can produce old-format files.
    pub fn write_to_v1(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&self.encode_body())?;
        Ok(())
    }

    /// Deserialize from a reader. Accepts v1 (no checksum) and v2
    /// (trailing CRC-32, verified).
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a CC19 checkpoint"));
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let version = u32::from_le_bytes(u32buf);
        if version == 0 || version > VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        let mut crc = Crc32::new();
        let read_u32 = |r: &mut dyn Read, crc: &mut Crc32| -> io::Result<u32> {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            crc.update(&b);
            Ok(u32::from_le_bytes(b))
        };
        let n = read_u32(r, &mut crc)? as usize;
        // sanity cap: 1e6 sections
        if n > 1_000_000 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt section count"));
        }
        let mut sections = Vec::with_capacity(n);
        for _ in 0..n {
            let name_len = read_u32(r, &mut crc)? as usize;
            if name_len > 4096 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt name length"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            crc.update(&name);
            let name = String::from_utf8(name)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 section name"))?;
            let len = read_u32(r, &mut crc)? as usize;
            if len > (1usize << 30) {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt data length"));
            }
            let mut bytes = vec![0u8; len * 4];
            r.read_exact(&mut bytes)?;
            crc.update(&bytes);
            let data: Vec<f32> =
                bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
            sections.push((name, data));
        }
        if version >= 2 {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            let stored = u32::from_le_bytes(b);
            let computed = crc.finish();
            if stored != computed {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"),
                ));
            }
        }
        Ok(Checkpoint { sections })
    }

    /// Save to a file. Writes to a temporary sibling first and renames, so
    /// a crash mid-write never leaves a truncated checkpoint at `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            self.write_to(&mut w)?;
            w.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Load from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cc19_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let mut c = Checkpoint::new();
        c.push("params", vec![1.0, -2.5, 3.25]);
        c.push("bn.mean", vec![0.5]);
        c.push("bn.var", vec![]);
        let path = tmp("roundtrip.ckpt");
        c.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, c);
        assert_eq!(loaded.get("params").unwrap(), &[1.0, -2.5, 3.25]);
        assert!(loaded.get("missing").is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, b"NOTACKPTxxxxxx").unwrap();
        assert!(Checkpoint::load(&path).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let mut c = Checkpoint::new();
        c.push("w", vec![1.0; 64]);
        let path = tmp("trunc.ckpt");
        c.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
    }

    #[test]
    fn rejects_bitflip() {
        let mut c = Checkpoint::new();
        c.push("w", vec![0.25; 64]);
        let path = tmp("bitflip.ckpt");
        c.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn reads_legacy_v1_files() {
        let mut c = Checkpoint::new();
        c.push("w", vec![1.5, -2.0]);
        c.push("b", vec![0.0]);
        let path = tmp("legacy_v1.ckpt");
        let mut w = BufWriter::new(File::create(&path).unwrap());
        c.write_to_v1(&mut w).unwrap();
        w.flush().unwrap();
        drop(w);
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, c);
    }

    #[test]
    fn preserves_section_order_and_duplicates() {
        let mut c = Checkpoint::new();
        c.push("a", vec![1.0]);
        c.push("a", vec![2.0]);
        let path = tmp("dup.ckpt");
        c.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.sections.len(), 2);
        assert_eq!(loaded.sections[0].1, vec![1.0]);
        assert_eq!(loaded.sections[1].1, vec![2.0]);
        // get() returns the first
        assert_eq!(loaded.get("a").unwrap(), &[1.0]);
    }

    #[test]
    fn u64_roundtrip_is_exact() {
        let mut c = Checkpoint::new();
        for (i, v) in [0u64, 1, (1 << 24) + 1, u64::MAX - 7].iter().enumerate() {
            c.push_u64(format!("t{i}"), *v);
        }
        c.push_scalar("lr", 3.25e-4);
        let path = tmp("u64.ckpt");
        c.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.get_u64("t0"), Some(0));
        assert_eq!(loaded.get_u64("t1"), Some(1));
        assert_eq!(loaded.get_u64("t2"), Some((1 << 24) + 1));
        assert_eq!(loaded.get_u64("t3"), Some(u64::MAX - 7));
        assert_eq!(loaded.get_scalar("lr"), Some(3.25e-4));
        assert_eq!(loaded.get_scalar("missing"), None);
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
