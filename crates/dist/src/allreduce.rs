//! All-reduce implementations over crossbeam channels.
//!
//! [`ring_allreduce`] is the bandwidth-optimal algorithm gloo/NCCL use:
//! reduce-scatter (N−1 steps, each rank ends owning the full sum of one
//! segment) followed by all-gather (N−1 steps distributing the owned
//! segments). Every rank finishes with the *identical* summed buffer,
//! which is what keeps DDP replicas synchronized bit-for-bit.
//!
//! [`naive_allreduce`] is the parameter-server baseline for the ablation
//! bench: gather everything to rank 0, reduce there, broadcast back.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Per-rank communication endpoints for a ring of `n` workers.
pub struct Ring {
    /// Sender to the next rank (rank + 1 mod n).
    pub to_next: Sender<Vec<f32>>,
    /// Receiver from the previous rank.
    pub from_prev: Receiver<Vec<f32>>,
}

/// Build the channel ring for `n` ranks.
pub fn make_ring(n: usize) -> Vec<Ring> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    // rank i sends into channel (i+1) % n and receives from channel i
    let mut rings: Vec<Ring> = Vec::with_capacity(n);
    // rotate senders left by one
    let mut senders_rot = senders.clone();
    senders_rot.rotate_left(1);
    for (s, r) in senders_rot.into_iter().zip(receivers) {
        rings.push(Ring { to_next: s, from_prev: r });
    }
    rings
}

fn segment_bounds(len: usize, n: usize, seg: usize) -> (usize, usize) {
    let base = len / n;
    let rem = len % n;
    let start = seg * base + seg.min(rem);
    let extra = if seg < rem { 1 } else { 0 };
    (start, start + base + extra)
}

/// Ring all-reduce (sum) of `buf` across `n` ranks. Call from every rank's
/// thread with its own `ring` endpoints and `rank` id; all ranks return
/// with the identical summed buffer.
pub fn ring_allreduce(buf: &mut [f32], rank: usize, n: usize, ring: &Ring) {
    if n <= 1 {
        return;
    }
    let len = buf.len();

    // --- reduce-scatter ---
    // step s: send segment (rank - s), receive and accumulate segment
    // (rank - s - 1).
    for s in 0..n - 1 {
        let send_seg = (rank + n - s) % n;
        let (lo, hi) = segment_bounds(len, n, send_seg);
        ring.to_next.send(buf[lo..hi].to_vec()).expect("ring send");
        let recv_seg = (rank + n - s - 1) % n;
        let (lo, hi) = segment_bounds(len, n, recv_seg);
        let incoming = ring.from_prev.recv().expect("ring recv");
        debug_assert_eq!(incoming.len(), hi - lo);
        for (b, v) in buf[lo..hi].iter_mut().zip(incoming) {
            *b += v;
        }
    }

    // --- all-gather ---
    // after reduce-scatter, rank owns the fully-reduced segment
    // (rank + 1) % n.
    for s in 0..n - 1 {
        let send_seg = (rank + 1 + n - s) % n;
        let (lo, hi) = segment_bounds(len, n, send_seg);
        ring.to_next.send(buf[lo..hi].to_vec()).expect("ring send");
        let recv_seg = (rank + n - s) % n;
        let (lo, hi) = segment_bounds(len, n, recv_seg);
        let incoming = ring.from_prev.recv().expect("ring recv");
        debug_assert_eq!(incoming.len(), hi - lo);
        buf[lo..hi].copy_from_slice(&incoming);
    }
}

/// Endpoints for the naive parameter-server reduce.
pub struct Star {
    /// Worker -> server channel (all ranks share the sender clone).
    pub to_server: Sender<(usize, Vec<f32>)>,
    /// Server -> this worker broadcast channel.
    pub from_server: Receiver<Vec<f32>>,
    /// Server side: receives worker buffers (only used by rank 0).
    pub server_rx: Option<Receiver<(usize, Vec<f32>)>>,
    /// Server side: broadcast senders to every rank (only rank 0).
    pub broadcast: Option<Vec<Sender<Vec<f32>>>>,
}

/// Build star (parameter-server) endpoints for `n` ranks; rank 0 is the
/// server.
pub fn make_star(n: usize) -> Vec<Star> {
    let (up_tx, up_rx) = unbounded();
    let mut down_tx = Vec::with_capacity(n);
    let mut down_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        down_tx.push(s);
        down_rx.push(r);
    }
    down_rx
        .into_iter()
        .enumerate()
        .map(|(rank, from_server)| Star {
            to_server: up_tx.clone(),
            from_server,
            server_rx: if rank == 0 { Some(up_rx.clone()) } else { None },
            broadcast: if rank == 0 { Some(down_tx.clone()) } else { None },
        })
        .collect()
}

/// Naive all-reduce: every rank ships its whole buffer to rank 0, which
/// sums and broadcasts. `2·(n−1)` full-buffer transfers through one link —
/// the bandwidth bottleneck the ring avoids.
pub fn naive_allreduce(buf: &mut [f32], rank: usize, n: usize, star: &Star) {
    if n <= 1 {
        return;
    }
    if rank == 0 {
        let rx = star.server_rx.as_ref().expect("rank 0 holds the server receiver");
        for _ in 0..n - 1 {
            let (_, incoming) = rx.recv().expect("server recv");
            for (b, v) in buf.iter_mut().zip(incoming) {
                *b += v;
            }
        }
        let bcast = star.broadcast.as_ref().expect("rank 0 broadcasts");
        for (r, tx) in bcast.iter().enumerate() {
            if r != 0 {
                tx.send(buf.to_vec()).expect("broadcast");
            }
        }
    } else {
        star.to_server.send((rank, buf.to_vec())).expect("worker send");
        let reduced = star.from_server.recv().expect("worker recv");
        buf.copy_from_slice(&reduced);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ring(n: usize, len: usize) -> Vec<Vec<f32>> {
        let rings = make_ring(n);
        let handles: Vec<_> = rings
            .into_iter()
            .enumerate()
            .map(|(rank, ring)| {
                std::thread::spawn(move || {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| (rank * len + i) as f32 * 0.5).collect();
                    ring_allreduce(&mut buf, rank, n, &ring);
                    buf
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn ring_computes_global_sum() {
        for n in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                let results = run_ring(n, len);
                // expected sum per element i: sum over ranks of (rank*len+i)*0.5
                for i in 0..len {
                    let expect: f32 = (0..n).map(|r| (r * len + i) as f32 * 0.5).sum();
                    for (rank, buf) in results.iter().enumerate() {
                        assert!(
                            (buf[i] - expect).abs() < 1e-4,
                            "n={n} len={len} rank={rank} i={i}: {} vs {expect}",
                            buf[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_results_identical_across_ranks() {
        // bit-identity matters for replica synchronization
        let results = run_ring(5, 101);
        for r in 1..5 {
            assert_eq!(results[0], results[r], "rank {r} differs");
        }
    }

    #[test]
    fn naive_matches_ring() {
        let n = 4;
        let len = 37;
        let stars = make_star(n);
        let handles: Vec<_> = stars
            .into_iter()
            .enumerate()
            .map(|(rank, star)| {
                std::thread::spawn(move || {
                    let mut buf: Vec<f32> = (0..len).map(|i| ((rank + 1) * (i + 1)) as f32).collect();
                    naive_allreduce(&mut buf, rank, n, &star);
                    buf
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for i in 0..len {
            let expect: f32 = (0..n).map(|r| ((r + 1) * (i + 1)) as f32).sum();
            for buf in &results {
                assert_eq!(buf[i], expect);
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let rings = make_ring(1);
        let mut buf = vec![1.0f32, 2.0, 3.0];
        ring_allreduce(&mut buf, 0, 1, &rings[0]);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn segment_bounds_partition() {
        for len in [10usize, 16, 17, 3] {
            for n in [2usize, 3, 4] {
                let mut covered = 0;
                for seg in 0..n {
                    let (lo, hi) = segment_bounds(len, n, seg);
                    assert_eq!(lo, covered, "gap at seg {seg}");
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
