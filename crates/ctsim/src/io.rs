//! Image output: binary PGM (P5) writers for the figure harnesses
//! (Fig 8 sinogram/reconstruction, Fig 12 enhancement panels).

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use cc19_tensor::Tensor;

/// Write a rank-2 tensor as an 8-bit binary PGM, linearly mapping
/// `[lo, hi]` to `[0, 255]` (values clamped).
pub fn write_pgm(img: &Tensor, lo: f32, hi: f32, path: &Path) -> std::io::Result<()> {
    assert_eq!(img.shape().rank(), 2, "write_pgm expects a rank-2 image");
    assert!(hi > lo);
    let (h, w) = (img.dims()[0], img.dims()[1]);
    let f = File::create(path)?;
    let mut out = BufWriter::new(f);
    write!(out, "P5\n{w} {h}\n255\n")?;
    let scale = 255.0 / (hi - lo);
    let bytes: Vec<u8> = img
        .data()
        .iter()
        .map(|&v| ((v - lo) * scale).clamp(0.0, 255.0) as u8)
        .collect();
    out.write_all(&bytes)?;
    Ok(())
}

/// Write with automatic window = [min, max] of the image.
pub fn write_pgm_auto(img: &Tensor, path: &Path) -> std::io::Result<()> {
    let lo = cc19_tensor::reduce::min(img);
    let hi = cc19_tensor::reduce::max(img);
    let hi = if hi > lo { hi } else { lo + 1.0 };
    write_pgm(img, lo, hi, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_payload() {
        let img = Tensor::from_vec([2, 3], vec![0.0, 0.5, 1.0, 1.0, 0.5, 0.0]).unwrap();
        let dir = std::env::temp_dir().join("cc19_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        write_pgm(&img, 0.0, 1.0, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = b"P5\n3 2\n255\n";
        assert_eq!(&bytes[..header.len()], header);
        let px = &bytes[header.len()..];
        assert_eq!(px.len(), 6);
        assert_eq!(px[0], 0);
        assert_eq!(px[2], 255);
        assert!((px[1] as i32 - 127).abs() <= 1);
    }

    #[test]
    fn auto_window_handles_constant_image() {
        let img = Tensor::full([4, 4], 7.0);
        let dir = std::env::temp_dir().join("cc19_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.pgm");
        write_pgm_auto(&img, &path).unwrap();
        assert!(path.exists());
    }
}
