//! Baseline comparison (the paper's §6.3 related-work landscape, made
//! concrete): on identical sparse-view low-dose degradations, compare
//!
//! 1. FBP only;
//! 2. FBP + Gaussian smoothing (non-learned denoiser);
//! 3. sinogram view-interpolation + FBP (classical sinogram completion);
//! 4. SIRT iterative reconstruction (Beister et al.);
//! 5. FBP + U-Net (Jin et al. / Chen et al. style);
//! 6. FBP + DDnet (this paper).

use cc19_bench::{banner, parse_scale, Scale, TablePrinter};
use cc19_ctsim::fbp::fbp_parallel;
use cc19_ctsim::filter::Window;
use cc19_ctsim::geometry::ParallelBeamGeometry;
use cc19_ctsim::hu;
use cc19_ctsim::iterative::{interpolate_views, sirt, SirtConfig};
use cc19_ctsim::lowdose::{apply_poisson_noise, DoseSettings};
use cc19_ctsim::phantom::{ChestPhantom, Severity};
use cc19_ctsim::siddon::{project_parallel, Grid};
use cc19_data::lowdose_pairs::{Beam, PairConfig};
use cc19_data::prep::{normalize_for_enhancement, PrepConfig};
use cc19_ddnet::baselines::{gaussian_smooth, UNetLite};
use cc19_ddnet::trainer::{train_enhancement, TrainConfig};
use cc19_ddnet::{Ddnet, DdnetConfig};
use cc19_nn::graph::Graph;
use cc19_nn::optim::Adam;
use cc19_nn::ssim::ms_ssim_image;
use cc19_tensor::Tensor;

fn main() {
    let scale = parse_scale();
    banner("Baselines", "enhancement baselines head-to-head (paper §6.3)", scale);

    let (n, subjects, epochs) = match scale {
        Scale::Full => (48usize, 24usize, 20usize),
        Scale::Quick => (32, 16, 14),
    };
    let views = n / 2;
    let dose = 3.0e4;
    let grid = Grid::fov500(n);
    let sparse_geom = ParallelBeamGeometry::for_image(n, grid.px, views);
    let dense_geom = ParallelBeamGeometry::for_image(n, grid.px, views * 3);
    let prep = PrepConfig::scaled(1);

    let acquire = |seed: u64| {
        let sev = if seed.is_multiple_of(2) { Some(Severity::Moderate) } else { None };
        let hu_img = ChestPhantom::subject(seed, 0.5, sev).rasterize_hu(n);
        let mu = hu::image_hu_to_mu(&hu_img);
        let clean_sino = project_parallel(&mu, grid, &sparse_geom).unwrap();
        let noisy = apply_poisson_noise(&clean_sino, DoseSettings { blank_scan: dose, seed });
        (hu_img, noisy)
    };
    let to_unit = |mu: &Tensor| normalize_for_enhancement(&hu::image_mu_to_hu(mu), prep);

    // --- train DDnet and U-Net on the same degradation distribution ---
    let mut pc = PairConfig::reduced(n, 2021);
    pc.views = views;
    pc.dose.blank_scan = dose;
    pc.beam = Beam::Parallel;
    let ds = cc19_data::dataset::EnhancementDataset::generate(subjects, pc).unwrap();

    println!("training DDnet ({} epochs) ...", epochs);
    let ddnet = Ddnet::new(DdnetConfig::reduced(), 2021);
    let mut tc = TrainConfig::quick(epochs);
    tc.lr = 1.5e-3;
    train_enhancement(&ddnet, &ds.train, &ds.val, tc).unwrap();

    println!("training U-Net baseline (same pairs, same steps) ...");
    let unet = UNetLite::new(8, 2021);
    let mut opt = Adam::new(1.5e-3);
    for _ in 0..epochs {
        for p in &ds.train {
            let (h, w) = (p.low.dims()[0], p.low.dims()[1]);
            let x = p.low.reshape([1, 1, h, w]).unwrap();
            let t = p.full.reshape([1, 1, h, w]).unwrap();
            let mut g = Graph::new();
            let xv = g.input(x);
            let tv = g.input(t);
            let y = unet.forward(&mut g, xv, true).unwrap();
            let loss = g.mse_loss(y, tv).unwrap();
            unet.store.zero_grad();
            g.backward(loss);
            unet.store.clip_grad_norm(1.0);
            opt.step(&unet.store);
        }
    }

    // --- evaluate all six pipelines on unseen subjects ---
    let labels = [
        "FBP only",
        "FBP + Gaussian smoothing",
        "view interp + FBP",
        "SIRT (iterative)",
        "FBP + U-Net [19][5]",
        "FBP + DDnet (paper)",
    ];
    let mut acc = vec![(0.0f64, 0.0f64); labels.len()];
    let test_seeds: Vec<u64> = (3000..3006).collect();
    for &seed in &test_seeds {
        let (hu_img, noisy) = acquire(seed);
        let target = normalize_for_enhancement(&hu_img, prep);

        let fbp_mu = fbp_parallel(&noisy, &sparse_geom, grid, Window::RamLak).unwrap();
        let fbp_unit = to_unit(&fbp_mu);

        let variants: Vec<Tensor> = vec![
            fbp_unit.clone(),
            gaussian_smooth(&fbp_unit, 0.8).unwrap(),
            {
                let completed = interpolate_views(&noisy, views * 3).unwrap();
                to_unit(&fbp_parallel(&completed, &dense_geom, grid, Window::RamLak).unwrap())
            },
            to_unit(&sirt(&noisy, &sparse_geom, grid, SirtConfig { iterations: 40, ..Default::default() }).unwrap()),
            unet.enhance(&fbp_unit).unwrap(),
            ddnet.enhance(&fbp_unit).unwrap(),
        ];
        for (i, img) in variants.iter().enumerate() {
            acc[i].0 += cc19_tensor::reduce::mse(img, &target).unwrap();
            acc[i].1 += ms_ssim_image(img, &target, 1.0).unwrap();
        }
    }

    let t = TablePrinter::new(&[28, 12, 12]);
    t.row(&[&"Pipeline", &"MSE", &"MS-SSIM"]);
    t.sep();
    let mut csv = String::from("pipeline,mse,ms_ssim\n");
    let m = test_seeds.len() as f64;
    for (i, label) in labels.iter().enumerate() {
        t.row(&[label, &format!("{:.5}", acc[i].0 / m), &format!("{:.1} %", acc[i].1 / m * 100.0)]);
        csv.push_str(&format!("{label},{},{}\n", acc[i].0 / m, acc[i].1 / m));
    }
    t.sep();
    println!("\nexpected shape: learned enhancement beats the unlearned FBP/smoothing");
    println!("baselines. At paper scale DDnet wins outright (ref [45]); at this reduced");
    println!("scale the much lighter U-Net trains further within the same step budget, so");
    println!("it can lead — the gap closes as --full raises the training budget.");
    cc19_bench::write_result("baselines.csv", &csv);
}
