//! Lightweight token-level Rust scanner.
//!
//! Produces a flat token stream (identifiers and single-character
//! punctuation) with comments, string/char literals, and lifetimes
//! stripped, so rule matching can never be fooled by a banned name
//! appearing inside a doc comment or a format string. Tokens inside
//! `#[cfg(test)]` / `#[test]` items are tagged `in_test`, which lets the
//! panic-surface and determinism rules skip test code while the
//! api-parity rule searches exactly that region for parity tests.
//!
//! This is deliberately *not* a parser: the grammar subset it understands
//! (nested block comments, raw strings, lifetimes vs. char literals,
//! attribute groups, brace-delimited items) is the subset needed to scan
//! this workspace reliably.

/// One lexical token: an identifier/number or a single punctuation char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (identifier, number, or one punctuation character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// True when the token sits inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// Tokenize `src`, stripping comments and literals and tagging test code.
pub fn tokenize(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment (nesting, as in Rust).
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, br"…", b"…".
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && b.get(j) == Some(&'r') {
                j += 1;
            }
            let is_raw = b.get(j.saturating_sub(1)) == Some(&'r') || c == 'r';
            if is_raw && matches!(b.get(j), Some(&'#') | Some(&'"')) {
                let mut hashes = 0usize;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&'"') {
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == '\n' {
                            line += 1;
                        } else if b[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    continue;
                }
            } else if c == 'b' && b.get(i + 1) == Some(&'"') {
                i = skip_string(&b, i + 1, &mut line);
                continue;
            }
            // Fall through: ordinary identifier starting with r/b.
        }
        // Ordinary string literal.
        if c == '"' {
            i = skip_string(&b, i, &mut line);
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            let next_is_ident =
                b.get(i + 1).is_some_and(|ch| ch.is_alphabetic() || *ch == '_');
            if next_is_ident && b.get(i + 2) != Some(&'\'') {
                // Lifetime: skip the quote and the identifier.
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                continue;
            }
            i += 1;
            while i < b.len() {
                match b[i] {
                    '\\' => i += 2,
                    '\'' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Identifier / number.
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Token { text: b[start..i].iter().collect(), line, in_test: false });
            continue;
        }
        toks.push(Token { text: c.to_string(), line, in_test: false });
        i += 1;
    }
    mark_test_regions(&mut toks);
    toks
}

/// Skip a `"…"` literal starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(b: &[char], open: usize, line: &mut usize) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            ch => {
                if ch == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consume an attribute group starting at the `[` token index; returns
/// the index just past the matching `]` and whether the group names
/// `test` (ignoring `cfg(not(test))`).
fn scan_attr_group(toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut negated = false;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, has_test && !negated);
                }
            }
            "test" => has_test = true,
            "not" => negated = true,
            _ => {}
        }
        j += 1;
    }
    (j, false)
}

/// Tag every token belonging to a `#[cfg(test)]`/`#[test]` item.
fn mark_test_regions(toks: &mut [Token]) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let (mut j, is_test) = scan_attr_group(toks, i + 1);
        if !is_test {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            j = scan_attr_group(toks, j + 1).0;
        }
        // The item body ends at a top-level `;` or the matching `}` of
        // its first top-level brace.
        let mut end = j;
        let mut opened = false;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "{" => {
                    opened = true;
                    break;
                }
                ";" => break,
                _ => end += 1,
            }
        }
        if opened {
            let mut depth = 0usize;
            while end < toks.len() {
                match toks[end].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
        }
        let stop = end.min(toks.len().saturating_sub(1));
        for t in &mut toks[i..=stop] {
            t.in_test = true;
        }
        i = stop + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks = texts("fn a() { // Instant::now\n let s = \"panic!\"; /* unwrap */ }");
        assert!(toks.contains(&"fn".to_string()));
        assert!(!toks.contains(&"Instant".to_string()));
        assert!(!toks.contains(&"panic".to_string()));
        assert!(!toks.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = texts("fn f<'a>(x: &'a str) { let r = r#\"unwrap()\"#; let c = '\"'; }");
        assert!(!toks.contains(&"unwrap".to_string()));
        assert!(toks.contains(&"str".to_string()));
        // The identifier after the raw string is still seen.
        assert!(toks.contains(&"c".to_string()));
    }

    #[test]
    fn tracks_lines() {
        let toks = tokenize("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn marks_cfg_test_items() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let toks = tokenize(src);
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("token");
        assert!(unwrap.in_test);
        let live = toks.iter().find(|t| t.text == "live").expect("token");
        assert!(!live.in_test);
        let tail = toks.iter().find(|t| t.text == "tail").expect("token");
        assert!(!tail.in_test, "marking must stop at the matching brace");
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let toks = tokenize(src);
        assert!(toks.iter().filter(|t| t.text == "unwrap").all(|t| !t.in_test));
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = "#[test]\nfn one() { a.unwrap(); }\nfn two() { b.other(); }";
        let toks = tokenize(src);
        assert!(toks.iter().find(|t| t.text == "unwrap").expect("tok").in_test);
        assert!(!toks.iter().find(|t| t.text == "other").expect("tok").in_test);
    }
}
