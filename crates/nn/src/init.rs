//! Weight initialization.
//!
//! The paper initializes all filters with `N(0, 0.01)` (§3.1.1). We also
//! provide Kaiming-style fan-in scaling, used by the classifier where the
//! paper-style tiny init would stall training at the reduced scale.

use cc19_tensor::rng::Xorshift;
use cc19_tensor::{Shape, Tensor};

/// Initialization scheme for a parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// The paper's scheme: zero-mean Gaussian with fixed std 0.01.
    PaperGaussian,
    /// Gaussian with explicit std.
    Gaussian(f32),
    /// Kaiming / He fan-in scaling for leaky-ReLU nets:
    /// `std = sqrt(2 / ((1 + a^2) * fan_in))`.
    KaimingLeaky {
        /// The leaky-ReLU slope the activation uses.
        negative_slope: f32,
    },
    /// All zeros (bias default).
    Zeros,
    /// All ones (batch-norm gamma default).
    Ones,
}

impl Init {
    /// Materialize a tensor of the given shape.
    ///
    /// `fan_in` is the product of input-channel and kernel extents for conv
    /// weights (`dims[1..]` for the `(Cout, Cin, K...)` layout), which is
    /// what [`Init::KaimingLeaky`] uses.
    pub fn build(&self, shape: impl Into<Shape>, rng: &mut Xorshift) -> Tensor {
        let shape = shape.into();
        match self {
            Init::PaperGaussian => rng.normal_tensor(shape, 0.0, 0.01),
            Init::Gaussian(std) => rng.normal_tensor(shape, 0.0, *std),
            Init::KaimingLeaky { negative_slope } => {
                let fan_in: usize = shape.dims().get(1..).map(|d| d.iter().product()).unwrap_or(1);
                let fan_in = fan_in.max(1);
                let std = (2.0 / ((1.0 + negative_slope * negative_slope) * fan_in as f32)).sqrt();
                rng.normal_tensor(shape, 0.0, std)
            }
            Init::Zeros => Tensor::zeros(shape),
            Init::Ones => Tensor::ones(shape),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_tensor::reduce;

    #[test]
    fn paper_gaussian_std() {
        let mut rng = Xorshift::new(1);
        let t = Init::PaperGaussian.build([32, 16, 5, 5], &mut rng);
        let std = reduce::variance(&t).sqrt();
        assert!((std - 0.01).abs() < 2e-3, "std {std}");
        assert!(reduce::mean(&t).abs() < 1e-3);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Xorshift::new(2);
        let t_small = Init::KaimingLeaky { negative_slope: 0.0 }.build([8, 4, 3, 3], &mut rng);
        let t_large = Init::KaimingLeaky { negative_slope: 0.0 }.build([8, 64, 3, 3], &mut rng);
        let s_small = reduce::variance(&t_small).sqrt();
        let s_large = reduce::variance(&t_large).sqrt();
        // fan_in 36 vs 576: std ratio should be ~ sqrt(16) = 4
        let ratio = s_small / s_large;
        assert!((ratio - 4.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn zeros_and_ones() {
        let mut rng = Xorshift::new(3);
        assert!(Init::Zeros.build([4], &mut rng).data().iter().all(|&v| v == 0.0));
        assert!(Init::Ones.build([4], &mut rng).data().iter().all(|&v| v == 1.0));
    }
}
