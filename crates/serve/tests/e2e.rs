//! End-to-end serving tests: concurrent clients against a live server,
//! exactly-once delivery, bit-identity with direct `Framework` calls —
//! in-process and across the TCP front end — and exact latency
//! accounting under an injected frozen clock.

use std::collections::HashSet;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use cc19_obs::{Clock, ManualClock, Registry};
use cc19_serve::{
    serve_on, BatchPolicy, Priority, Rejected, ServeMetrics, ServeRequest, Server, ServerCfg,
    TcpServeClient,
};
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;
use computecovid19::framework::Framework;

const SEED: u64 = 0x5EED_2026;
const THRESHOLD: f64 = 0.5;

fn factory() -> Framework {
    Framework::untrained_reduced(SEED)
}

fn volume(seed: u64) -> Tensor {
    let mut rng = Xorshift::new(0x9E3779B9 ^ seed.wrapping_mul(0x85EB_CA6B));
    rng.uniform_tensor([4, 32, 32], -1000.0, 400.0)
}

fn priority_for(i: u64) -> Priority {
    Priority::DISPATCH_ORDER[(i % 3) as usize]
}

#[test]
fn concurrent_clients_get_exactly_once_bit_identical_answers() {
    const CLIENTS: u64 = 4;
    const PER_CLIENT: u64 = 6;

    let cfg = ServerCfg {
        queue_bound: 64,
        batch: BatchPolicy { max_batch: 4, max_delay: Duration::from_millis(1) },
        pipelines: 2,
        threshold: THRESHOLD,
        ..ServerCfg::default()
    };
    let server = Server::start(cfg, factory).expect("server starts");

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = server.client();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for i in 0..PER_CLIENT {
                    let seed = c * PER_CLIENT + i;
                    let pending = client
                        .submit(ServeRequest {
                            volume: volume(seed),
                            priority: priority_for(seed),
                            deadline: None,
                        })
                        .expect("queue bound is above total offered load");
                    let expected_id = pending.id();
                    let resp = pending.wait().expect("server dropped a reply");
                    assert_eq!(resp.id, expected_id, "reply routed to the wrong request");
                    out.push((seed, resp));
                }
                out
            })
        })
        .collect();

    let mut responses = Vec::new();
    for h in handles {
        responses.extend(h.join().unwrap());
    }
    let metrics = server.shutdown();

    // Exactly once: every submission answered, every admission id unique.
    assert_eq!(responses.len(), (CLIENTS * PER_CLIENT) as usize);
    let ids: HashSet<u64> = responses.iter().map(|(_, r)| r.id).collect();
    assert_eq!(ids.len(), responses.len(), "an admission id was reused");
    let snap = metrics.snapshot();
    assert_eq!(snap.accepted, CLIENTS * PER_CLIENT);
    assert_eq!(snap.completed, CLIENTS * PER_CLIENT);
    assert_eq!(snap.failed, 0);

    // Bit-identity: the served diagnosis equals a direct Framework call
    // on an identically-constructed replica, per volume.
    let reference = factory();
    for (seed, resp) in &responses {
        let served = resp.result.as_ref().expect("stage failure");
        let direct = reference.diagnose(&volume(*seed), THRESHOLD).unwrap();
        assert_eq!(
            served.probability.to_bits(),
            direct.probability.to_bits(),
            "seed {seed}: served probability differs from direct diagnose"
        );
        assert_eq!(served.positive, direct.positive);
    }
}

#[test]
fn tcp_front_end_serves_bit_identical_answers() {
    let server = Server::start(
        ServerCfg { threshold: THRESHOLD, ..ServerCfg::default() },
        factory,
    )
    .expect("server starts");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let conn_client = server.client();
    std::thread::spawn(move || serve_on(listener, conn_client));

    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut remote = TcpServeClient::connect(addr).expect("connect");
                let mut out = Vec::new();
                for i in 0..3u64 {
                    let seed = 100 + c * 3 + i;
                    let req = ServeRequest {
                        volume: volume(seed),
                        priority: priority_for(seed),
                        deadline: Some(Duration::from_secs(60)),
                    };
                    let (id, d) = remote
                        .diagnose(&req)
                        .expect("transport")
                        .expect("admission");
                    out.push((seed, id, d));
                }
                out
            })
        })
        .collect();

    let mut responses = Vec::new();
    for h in handles {
        responses.extend(h.join().unwrap());
    }

    let ids: HashSet<u64> = responses.iter().map(|&(_, id, _)| id).collect();
    assert_eq!(ids.len(), 9, "admission ids must be unique across connections");

    let reference = factory();
    for (seed, _, served) in &responses {
        let direct = reference.diagnose(&volume(*seed), THRESHOLD).unwrap();
        assert_eq!(
            served.probability.to_bits(),
            direct.probability.to_bits(),
            "seed {seed}: TCP answer differs from direct diagnose"
        );
        assert_eq!(served.positive, direct.positive);
    }

    // A malformed study is rejected with the typed reason, across the wire.
    let mut remote = TcpServeClient::connect(addr).unwrap();
    let bad = ServeRequest::routine(Tensor::zeros([4, 32])); // rank 2
    match remote.diagnose(&bad).expect("transport") {
        Err(Rejected::Invalid(_)) => {}
        other => panic!("expected Invalid rejection, got {other:?}"),
    }

    let metrics = server.shutdown();
    assert_eq!(metrics.snapshot().completed, 9);
}

/// With a frozen [`ManualClock`] injected into both the metrics registry
/// and every `Framework` replica, latency accounting stops being
/// "roughly" testable and becomes *exact*: queue wait equals precisely
/// what the test advanced the clock by, the compute stages measure
/// exactly zero, and the deadline-miss decision flips at the exact
/// nanosecond the budget expires.
#[test]
fn frozen_clock_makes_serving_latencies_exactly_assertable() {
    let clock = Arc::new(ManualClock::new()); // frozen at t=0
    let reg = Arc::new(Registry::with_clock(clock.clone() as Arc<dyn Clock>));
    let metrics = ServeMetrics::with_registry(Arc::clone(&reg));
    let cfg = ServerCfg {
        // max_batch 1 + the pause gate keep the coalescing window (the
        // one real-time wait in the serving path) out of the picture.
        batch: BatchPolicy { max_batch: 1, max_delay: Duration::ZERO },
        start_paused: true,
        threshold: THRESHOLD,
        ..ServerCfg::default()
    };
    let fw_clock = clock.clone();
    let server = Server::start_with_metrics(
        cfg,
        move || factory().with_clock(fw_clock.clone() as Arc<dyn Clock>),
        metrics,
    )
    .expect("server starts");
    let client = server.client();

    // Submitted at t=0: one stat read with a 2 ms budget, one routine
    // study without a deadline.
    let p_stat = client
        .submit(ServeRequest {
            volume: volume(7),
            priority: Priority::Stat,
            deadline: Some(Duration::from_millis(2)),
        })
        .unwrap();
    let p_routine = client.submit(ServeRequest::routine(volume(8))).unwrap();

    // Exactly 5 ms pass while the server is paused, then it drains.
    clock.advance(5_000_000);
    server.resume();
    let d_stat = p_stat.wait().unwrap().result.unwrap();
    let d_routine = p_routine.wait().unwrap().result.unwrap();

    // Queue wait is exactly the advance; nothing else moved the clock.
    assert_eq!(d_stat.t_queue, Duration::from_millis(5));
    assert_eq!(d_routine.t_queue, Duration::from_millis(5));
    // On a frozen clock the compute stages measure exactly zero.
    for d in [&d_stat, &d_routine] {
        assert_eq!(d.t_enhance, Duration::ZERO);
        assert_eq!(d.t_segment, Duration::ZERO);
        assert_eq!(d.t_classify, Duration::ZERO);
        assert_eq!(d.t_total, Duration::ZERO);
    }

    let metrics = server.shutdown();
    let snap = metrics.snapshot();
    assert_eq!(snap.completed, 2);
    // The 2 ms budget expired 3 ms before dispatch; the no-deadline
    // study cannot miss. Exactly one miss, deterministically.
    assert_eq!(snap.deadline_missed, 1);
    // The registry histogram recorded the exact queue waits (in ms).
    let queue_hist = reg
        .snapshot()
        .histograms
        .into_iter()
        .find(|h| h.key == "serve_stage_ms{stage=\"queue\"}")
        .expect("queue-stage histogram registered");
    assert_eq!(queue_hist.value.samples(), &[5.0, 5.0]);
}
