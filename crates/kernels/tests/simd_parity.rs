//! Scalar ↔ SIMD parity suite for the kernel ladder (DESIGN.md §13).
//!
//! Tolerance contract, stated per kernel and enforced pixel-class by
//! pixel-class:
//!
//! - **Border ring and vector tail** (any output whose filter window
//!   leaves the input, plus the ≤7-column remainder of each interior
//!   row): **bit-exact**. The AVX2 path computes these through the same
//!   scalar per-pixel helpers as the scalar ladder, so any difference
//!   is a dispatch bug, not rounding.
//! - **Conv interior**: the vector path walks the identical
//!   `(ci, ky, kx)` tap order per lane but uses fused multiply-adds
//!   (one rounding per tap instead of two), so each of the ≤ `cin·k²`
//!   taps may shift the accumulator by ≤1 ulp. With the ≤ 4·7·7 taps
//!   and O(1) magnitudes generated here, `|g−e| ≤ 1e-4 + 1e-5·|e|` is
//!   a comfortable envelope for that drift.
//! - **Deconv interior**: same argument with the gather's reversed tap
//!   traversal; same envelope. The Baseline scatter has no vector twin
//!   (`OptLevel::deconv_kernel` maps it to the scalar scatter at every
//!   dispatch level), so its "parity" is exactness by construction.
//!
//! The suite runs under both tier-1 invocations: bare (auto dispatch —
//! AVX2 wherever the host supports it) and `CC19_SIMD=scalar`, where
//! `public_entry_points_follow_ambient_dispatch` pins the public API to
//! the forced-scalar ladder bit-for-bit.

use proptest::prelude::*;

use cc19_kernels::conv::{conv2d, conv2d_with, ConvShape};
use cc19_kernels::deconv::{deconv2d, deconv2d_with, out_h, out_w};
use cc19_kernels::simd::{self, SimdLevel};
use cc19_kernels::OptLevel;
use cc19_tensor::rng::Xorshift;

fn case(seed: u64, s: ConvShape) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = Xorshift::new(seed.wrapping_mul(6364136223846793005).wrapping_add(1));
    let input: Vec<f32> = (0..s.cin * s.h * s.w).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let wlen = s.cin * s.cout * s.k * s.k;
    let weight: Vec<f32> = (0..wlen).map(|_| rng.uniform(-0.5, 0.5)).collect();
    let bias: Vec<f32> = (0..s.cout).map(|_| rng.uniform(-0.2, 0.2)).collect();
    (input, weight, bias)
}

/// Interior box of the conv output (every tap in bounds) — mirrors the
/// microkernel's split so the test can assert bit-exactness elsewhere.
fn conv_interior(s: ConvShape) -> (usize, usize, usize, usize) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let y0 = s.pad.min(oh);
    let y1 = (s.h + s.pad + 1).saturating_sub(s.k).clamp(y0, oh);
    let x0 = s.pad.min(ow);
    let x1 = (s.w + s.pad + 1).saturating_sub(s.k).clamp(x0, ow);
    (y0, y1, x0, x1)
}

/// Interior box of the deconv output.
fn deconv_interior(s: ConvShape) -> (usize, usize, usize, usize) {
    let (oh, ow) = (out_h(s), out_w(s));
    let y0 = (s.k - 1).saturating_sub(s.pad).min(oh);
    let y1 = s.h.saturating_sub(s.pad).clamp(y0, oh);
    let x0 = (s.k - 1).saturating_sub(s.pad).min(ow);
    let x1 = s.w.saturating_sub(s.pad).clamp(x0, ow);
    (y0, y1, x0, x1)
}

/// FMA-contraction envelope for interior pixels (see module docs).
fn interior_close(g: f32, e: f32) -> bool {
    (g - e).abs() <= 1e-4 + 1e-5 * e.abs()
}

#[allow(clippy::too_many_arguments)]
fn check_parity(
    label: &str,
    scalar: &[f32],
    vector: &[f32],
    oh: usize,
    ow: usize,
    cout: usize,
    interior: (usize, usize, usize, usize),
) {
    let (y0, y1, x0, x1) = interior;
    assert_eq!(scalar.len(), vector.len(), "{label}: length");
    assert_eq!(scalar.len(), cout * oh * ow, "{label}: plane size");
    for co in 0..cout {
        for oy in 0..oh {
            for ox in 0..ow {
                let i = co * oh * ow + oy * ow + ox;
                let (e, g) = (scalar[i], vector[i]);
                if oy >= y0 && oy < y1 && ox >= x0 && ox < x1 {
                    assert!(
                        interior_close(g, e),
                        "{label} interior ({co},{oy},{ox}): {g} vs {e}"
                    );
                } else {
                    assert!(
                        g.to_bits() == e.to_bits(),
                        "{label} border ({co},{oy},{ox}) must be bit-exact: {g} vs {e}"
                    );
                }
            }
        }
    }
}

/// The k/pad grid the issue names: k ∈ {1,3,5,7}, pad 0 or 'same'.
fn kernel_grid(kidx: usize, same: bool) -> (usize, usize) {
    let k = [1usize, 3, 5, 7][kidx];
    (k, if same { k / 2 } else { 0 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every conv stage: AVX2 twin vs scalar ladder, exact at borders,
    /// FMA envelope in the interior. Widths deliberately straddle the
    /// 8-lane and 40-column (×5-unrolled) block boundaries.
    #[test]
    fn conv_simd_matches_scalar(
        seed in 0u64..10_000,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 5usize..12,
        w in 5usize..52,
        kidx in 0usize..4,
        same in proptest::bool::ANY,
    ) {
        prop_assume!(simd::detected() == SimdLevel::Avx2);
        let (k, pad) = kernel_grid(kidx, same);
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let s = ConvShape { cin, cout, h, w, k, pad };
        let (input, weight, bias) = case(seed, s);
        for level in OptLevel::ALL {
            let scalar = conv2d_with(level, SimdLevel::Scalar, &input, &weight, &bias, s);
            let vector = conv2d_with(level, SimdLevel::Avx2, &input, &weight, &bias, s);
            check_parity(
                &format!("conv {level:?} k={k} pad={pad} {h}x{w}"),
                &scalar, &vector, s.out_h(), s.out_w(), cout, conv_interior(s),
            );
        }
    }

    /// Every deconv stage: AVX2 gather twin vs scalar ladder (Baseline
    /// scatter maps to itself and must therefore be bit-exact overall).
    #[test]
    fn deconv_simd_matches_scalar(
        seed in 0u64..10_000,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 4usize..10,
        w in 4usize..50,
        kidx in 0usize..4,
        same in proptest::bool::ANY,
    ) {
        prop_assume!(simd::detected() == SimdLevel::Avx2);
        let (k, pad) = kernel_grid(kidx, same);
        prop_assume!(h + k > 1 + 2 * pad && w + k > 1 + 2 * pad);
        let s = ConvShape { cin, cout, h, w, k, pad };
        let (input, weight, bias) = case(seed, s);
        for level in OptLevel::ALL {
            let scalar = deconv2d_with(level, SimdLevel::Scalar, &input, &weight, &bias, s);
            let vector = deconv2d_with(level, SimdLevel::Avx2, &input, &weight, &bias, s);
            let interior = if level == OptLevel::Baseline {
                (0, 0, 0, 0) // scatter has no vector twin: all bit-exact
            } else {
                deconv_interior(s)
            };
            check_parity(
                &format!("deconv {level:?} k={k} pad={pad} {h}x{w}"),
                &scalar, &vector, out_h(s), out_w(s), cout, interior,
            );
        }
    }

    /// The public entry points must equal explicit dispatch at
    /// `simd::active()` bit-for-bit — under `CC19_SIMD=scalar` (the
    /// second tier-1 invocation) this pins `conv2d`/`deconv2d` to the
    /// forced-scalar ladder.
    #[test]
    fn public_entry_points_follow_ambient_dispatch(
        seed in 0u64..10_000,
        cin in 1usize..3,
        cout in 1usize..3,
        h in 5usize..10,
        w in 5usize..20,
        kidx in 0usize..4,
    ) {
        let (k, pad) = kernel_grid(kidx, true);
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let s = ConvShape { cin, cout, h, w, k, pad };
        let (input, weight, bias) = case(seed, s);
        let active = simd::active();
        for level in OptLevel::ALL {
            let pub_conv = conv2d(level, &input, &weight, &bias, s);
            let exp_conv = conv2d_with(level, active, &input, &weight, &bias, s);
            prop_assert_eq!(
                pub_conv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                exp_conv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "conv {:?} public vs explicit {:?}", level, active
            );
            let pub_dec = deconv2d(level, &input, &weight, &bias, s);
            let exp_dec = deconv2d_with(level, active, &input, &weight, &bias, s);
            prop_assert_eq!(
                pub_dec.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                exp_dec.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "deconv {:?} public vs explicit {:?}", level, active
            );
        }
    }
}

/// Deterministic regression at a width that exercises every code path
/// of the ×5-unrolled kernel in one row: one 40-column block, one
/// 8-column block, and a scalar tail, for both dedicated extents.
#[test]
fn unrolled_blocks_and_tails_all_exercised() {
    if simd::detected() != SimdLevel::Avx2 {
        eprintln!("skipping: host has no AVX2+FMA");
        return;
    }
    for (k, pad) in [(3usize, 1usize), (5, 2), (7, 3)] {
        let s = ConvShape { cin: 2, cout: 2, h: 9, w: 57, k, pad };
        let (input, weight, bias) = case(99 + k as u64, s);
        for level in [OptLevel::RefactoredPrefetch, OptLevel::RefactoredPrefetchUnrolled] {
            let scalar = conv2d_with(level, SimdLevel::Scalar, &input, &weight, &bias, s);
            let vector = conv2d_with(level, SimdLevel::Avx2, &input, &weight, &bias, s);
            check_parity(
                &format!("conv wide {level:?} k={k}"),
                &scalar, &vector, s.out_h(), s.out_w(), s.cout, conv_interior(s),
            );
            let dscalar = deconv2d_with(level, SimdLevel::Scalar, &input, &weight, &bias, s);
            let dvector = deconv2d_with(level, SimdLevel::Avx2, &input, &weight, &bias, s);
            check_parity(
                &format!("deconv wide {level:?} k={k}"),
                &dscalar, &dvector, out_h(s), out_w(s), s.cout, deconv_interior(s),
            );
        }
    }
}
