//! Exporters: Prometheus text exposition, CSV, JSON registry dump, and
//! a JSONL span-trace dump.
//!
//! Every exporter renders from a sorted [`Snapshot`], formats floats
//! with Rust's shortest-round-trip `{:?}` representation, and contains
//! no timestamps of its own — so two exports of identical registry
//! state are byte-identical. That property is what lets `tier1.sh`
//! byte-compare consecutive `results/bench_obs.json` runs under the
//! manual clock.

use crate::registry::{Registry, Snapshot};

/// Deterministic float rendering: shortest round-trip form; non-finite
/// values (which no well-behaved metric produces) degrade to `0`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() { format!("{v:?}") } else { "0".to_string() }
}

/// Escape a string for a JSON string literal (without the quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Quote a CSV field (RFC 4180): wraps in `"` when it contains a comma,
/// quote, or newline, doubling interior quotes.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a key with one extra label appended (for summary quantiles).
fn key_with_label(name: &str, labels: &[(String, String)], extra: (&str, &str)) -> String {
    let mut body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    body.push(format!("{}=\"{}\"", extra.0, extra.1));
    format!("{name}{{{}}}", body.join(","))
}

/// Render a suffixed series name keeping the labels, e.g.
/// `serve_stage_ms_sum{stage="queue"}`.
fn key_suffixed(name: &str, labels: &[(String, String)], suffix: &str) -> String {
    if labels.is_empty() {
        return format!("{name}{suffix}");
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{suffix}{{{}}}", body.join(","))
}

/// Prometheus text exposition (version 0.0.4): counters and gauges as
/// single series, histograms as summaries with nearest-rank
/// `quantile="0.5|0.95|0.99"` series plus `_sum`/`_count`. Sorted, no
/// timestamps.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };
    for e in &snap.counters {
        type_line(&mut out, &e.name, "counter");
        out.push_str(&format!("{} {}\n", e.key, e.value));
    }
    for e in &snap.gauges {
        type_line(&mut out, &e.name, "gauge");
        out.push_str(&format!("{} {}\n", e.key, fmt_f64(e.value)));
    }
    for e in &snap.histograms {
        type_line(&mut out, &e.name, "summary");
        for q in ["0.5", "0.95", "0.99"] {
            let qv = e.value.quantile(q.parse().unwrap_or(0.5));
            out.push_str(&format!(
                "{} {}\n",
                key_with_label(&e.name, &e.labels, ("quantile", q)),
                fmt_f64(qv)
            ));
        }
        out.push_str(&format!(
            "{} {}\n",
            key_suffixed(&e.name, &e.labels, "_sum"),
            fmt_f64(e.value.sum())
        ));
        out.push_str(&format!(
            "{} {}\n",
            key_suffixed(&e.name, &e.labels, "_count"),
            e.value.count()
        ));
    }
    out
}

/// CSV dump: header `kind,key,stat,value`, one row per scalar; each
/// histogram expands into count/sum/mean/p50/p95/p99/max rows. Sorted.
pub fn to_csv(snap: &Snapshot) -> String {
    let mut out = String::from("kind,key,stat,value\n");
    for e in &snap.counters {
        out.push_str(&format!("counter,{},value,{}\n", csv_field(&e.key), e.value));
    }
    for e in &snap.gauges {
        out.push_str(&format!("gauge,{},value,{}\n", csv_field(&e.key), fmt_f64(e.value)));
    }
    for e in &snap.histograms {
        let k = csv_field(&e.key);
        let h = &e.value;
        out.push_str(&format!("histogram,{k},count,{}\n", h.count()));
        out.push_str(&format!("histogram,{k},sum,{}\n", fmt_f64(h.sum())));
        out.push_str(&format!("histogram,{k},mean,{}\n", fmt_f64(h.mean())));
        for (stat, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            out.push_str(&format!("histogram,{k},{stat},{}\n", fmt_f64(h.quantile(q))));
        }
        out.push_str(&format!("histogram,{k},max,{}\n", fmt_f64(h.max())));
    }
    for (path, stat) in &snap.spans {
        let k = csv_field(path);
        out.push_str(&format!("span,{k},count,{}\n", stat.count));
        out.push_str(&format!("span,{k},total_ns,{}\n", stat.total_ns));
    }
    out
}

/// JSON registry dump (the `results/bench_obs.json` format): four
/// sorted maps — counters, gauges, histogram summaries, span
/// aggregates. 2-space indented, keys escaped, floats shortest
/// round-trip.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    push_map(&mut out, snap.counters.iter().map(|e| (e.key.as_str(), e.value.to_string())));
    out.push_str(",\n  \"gauges\": {");
    push_map(&mut out, snap.gauges.iter().map(|e| (e.key.as_str(), fmt_f64(e.value))));
    out.push_str(",\n  \"histograms\": {");
    push_map(
        &mut out,
        snap.histograms.iter().map(|e| {
            let h = &e.value;
            let body = format!(
                "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                h.count(),
                fmt_f64(h.sum()),
                fmt_f64(h.mean()),
                fmt_f64(h.quantile(0.5)),
                fmt_f64(h.quantile(0.95)),
                fmt_f64(h.quantile(0.99)),
                fmt_f64(h.max()),
            );
            (e.key.as_str(), body)
        }),
    );
    out.push_str(",\n  \"spans\": {");
    push_map(
        &mut out,
        snap.spans.iter().map(|(path, s)| {
            (path.as_str(), format!("{{\"count\": {}, \"total_ns\": {}}}", s.count, s.total_ns))
        }),
    );
    out.push_str("\n}\n");
    out
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", json_escape(key), value));
    }
    if first {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

/// JSONL span-trace dump: one event per line, in completion order.
/// Locking goes through the poison-recovering [`crate::lock::lock`], so
/// a panicked instrumented thread cannot blank the dump.
pub fn trace_jsonl(reg: &Registry) -> String {
    let store = crate::lock::lock(&reg.spans);
    let mut out = String::new();
    for e in store.trace() {
        out.push_str(&format!(
            "{{\"seq\": {}, \"span\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}}}\n",
            e.seq,
            json_escape(&e.path),
            e.start_ns,
            e.dur_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::span::enter_on;
    use std::sync::Arc;

    fn sample_registry() -> Arc<Registry> {
        let clock = Arc::new(ManualClock::with_tick(1_000));
        let reg = Arc::new(Registry::with_clock(clock as Arc<dyn Clock>));
        reg.counter("obs_demo_total").add(7);
        reg.gauge_with("obs_demo_ratio", &[("kind", "test")]).set(0.5);
        let h = reg.histogram("obs_demo_seconds");
        for v in [0.001, 0.002, 0.003] {
            h.observe(v);
        }
        {
            let _s = enter_on(Arc::clone(&reg), "demo");
        }
        reg
    }

    #[test]
    fn exports_are_deterministic() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        assert_eq!(to_prometheus(&snap), to_prometheus(&snap));
        assert_eq!(to_json(&snap), to_json(&snap));
        assert_eq!(to_csv(&snap), to_csv(&snap));
    }

    #[test]
    fn prometheus_has_types_and_quantiles() {
        let text = to_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE obs_demo_total counter"));
        assert!(text.contains("obs_demo_total 7"));
        assert!(text.contains("# TYPE obs_demo_ratio gauge"));
        assert!(text.contains("obs_demo_ratio{kind=\"test\"} 0.5"));
        assert!(text.contains("obs_demo_seconds{quantile=\"0.5\"} 0.002"));
        assert!(text.contains("obs_demo_seconds_count 3"));
    }

    #[test]
    fn json_is_structured_and_escaped() {
        let text = to_json(&sample_registry().snapshot());
        assert!(text.contains("\"obs_demo_total\": 7"));
        assert!(text.contains("\"obs_demo_ratio{kind=\\\"test\\\"}\": 0.5"));
        assert!(text.contains("\"p95\": 0.003"));
        assert!(text.contains("\"spans\""));
    }

    #[test]
    fn trace_jsonl_one_line_per_event() {
        let reg = sample_registry();
        let text = trace_jsonl(&reg);
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("{\"seq\": 0, \"span\": \"demo\""));
    }

    #[test]
    fn csv_rows_are_three_stats_wide() {
        let text = to_csv(&sample_registry().snapshot());
        assert!(text.starts_with("kind,key,stat,value\n"));
        assert!(text.contains("counter,obs_demo_total,value,7"));
        // Labelled keys contain commas only when multi-labelled; quoting
        // keeps rows parseable either way.
        for line in text.lines().skip(1) {
            assert!(line.split(',').count() >= 4, "short row: {line}");
        }
    }
}
