//! Procedural chest phantoms.
//!
//! Stand-ins for the gated clinical datasets (Mayo / BIMCV / MIDRC / LIDC —
//! see DESIGN.md §2): anatomically-plausible 2D chest slices built from
//! ellipses (body, lungs, spine, heart, ribs) in Hounsfield units, with
//! optional COVID-like lesions — ground-glass opacities (GGOs) as soft
//! Gaussian blobs and denser consolidations — placed inside the lungs.
//! A smooth deterministic texture field adds parenchymal variation so the
//! classifier cannot key on perfectly uniform tissue.
//!
//! Everything is deterministic per seed; the z-profile support lets the
//! data crate stack slices into 3D volumes with anatomy that waxes and
//! wanes along the scan axis like a real chest.

use rayon::prelude::*;

use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

/// An additive ellipse in HU. Coordinates in mm, isocenter origin,
/// +y up; `theta` rotates counter-clockwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipse {
    /// Center x (mm).
    pub cx: f32,
    /// Center y (mm).
    pub cy: f32,
    /// Semi-axis along the (rotated) x direction (mm).
    pub a: f32,
    /// Semi-axis along the (rotated) y direction (mm).
    pub b: f32,
    /// Rotation (radians, CCW).
    pub theta: f32,
    /// Additive HU contribution inside the ellipse.
    pub hu: f32,
}

impl Ellipse {
    /// True if the point (mm) lies inside.
    pub fn contains(&self, x: f32, y: f32) -> bool {
        let dx = x - self.cx;
        let dy = y - self.cy;
        let (c, s) = (self.theta.cos(), self.theta.sin());
        let u = dx * c + dy * s;
        let v = -dx * s + dy * c;
        (u / self.a).powi(2) + (v / self.b).powi(2) <= 1.0
    }
}

/// A soft lesion: Gaussian HU bump `peak * exp(-r^2 / (2 sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lesion {
    /// Center x (mm).
    pub cx: f32,
    /// Center y (mm).
    pub cy: f32,
    /// Gaussian sigma (mm). The visible extent is roughly `2.5 sigma`.
    pub sigma: f32,
    /// Peak additive HU. GGOs raise lung (~-850 HU) toward -300..-500;
    /// consolidations go higher.
    pub peak: f32,
}

impl Lesion {
    /// Additive HU at a point.
    pub fn hu_at(&self, x: f32, y: f32) -> f32 {
        let r2 = (x - self.cx).powi(2) + (y - self.cy).powi(2);
        self.peak * (-r2 / (2.0 * self.sigma * self.sigma)).exp()
    }
}

/// COVID severity, controls lesion count and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A couple of small GGOs.
    Mild,
    /// Several GGOs, the classic bilateral peripheral pattern.
    Moderate,
    /// Many GGOs plus consolidations.
    Severe,
}

/// Lung pathology classes — the §7 "other maladies" extension. COVID-19
/// presents as bilateral peripheral GGOs; (lobar) viral/bacterial
/// pneumonia as a dense unilateral consolidation; a malignant nodule as a
/// small, solid, sharply-bounded mass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pathology {
    /// COVID-19 with the given severity (bilateral peripheral GGOs).
    Covid(Severity),
    /// Lobar pneumonia: one large dense consolidation in a single lung.
    Pneumonia,
    /// A solitary pulmonary nodule (cancer-like): small, dense, compact.
    Nodule,
}

/// A single chest slice: anatomy ellipses + lesions + texture parameters.
#[derive(Debug, Clone)]
pub struct ChestPhantom {
    /// Anatomy, painted in order (later entries overlay earlier ones
    /// additively).
    pub ellipses: Vec<Ellipse>,
    /// The two lung ellipses (subset of `ellipses`, kept separately as the
    /// segmentation ground truth).
    pub lungs: [Ellipse; 2],
    /// COVID lesions (empty for healthy subjects).
    pub lesions: Vec<Lesion>,
    /// Smooth-texture amplitude in HU.
    pub texture_amp: f32,
    /// Texture phase seeds.
    texture: [(f32, f32, f32); 6],
}

/// HU of air (background).
const HU_AIR: f32 = -1000.0;

impl ChestPhantom {
    /// Build the anatomy for one subject and axial position.
    ///
    /// - `seed`: subject identity (anatomy jitter);
    /// - `z`: axial position in `[0, 1]` — lungs are largest mid-scan and
    ///   vanish toward the apices/bases;
    /// - `severity`: `None` for healthy, `Some(..)` adds lesions whose
    ///   layout is also deterministic in `(seed, z)`.
    pub fn subject(seed: u64, z: f32, severity: Option<Severity>) -> Self {
        Self::subject_with(seed, z, severity.map(Pathology::Covid))
    }

    /// Like [`ChestPhantom::subject`] but for any [`Pathology`] — the §7
    /// "other maladies" extension (pneumonia, nodules).
    pub fn subject_with(seed: u64, z: f32, pathology: Option<Pathology>) -> Self {
        let mut rng = Xorshift::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        // Subject-level jitter (drawn before slice-level values so the
        // subject's anatomy is stable across z).
        let body_a = 170.0 * rng.uniform(0.92, 1.08);
        let body_b = 115.0 * rng.uniform(0.92, 1.08);
        let lung_scale = rng.uniform(0.9, 1.1);
        let tilt = rng.uniform(-0.05, 0.05);
        let heart_shift = rng.uniform(-8.0, 8.0);
        let texture_amp = rng.uniform(15.0, 30.0);
        let texture: [(f32, f32, f32); 6] = std::array::from_fn(|_| {
            (rng.uniform(0.01, 0.06), rng.uniform(0.01, 0.06), rng.uniform(0.0, std::f32::consts::TAU))
        });

        // Axial profile: lungs shrink away from mid-chest.
        let zc = (z.clamp(0.0, 1.0) - 0.5) * 2.0; // [-1, 1]
        let axial = (1.0 - 0.75 * zc * zc).max(0.15);
        let la0 = 62.0 * lung_scale * axial;
        let lb0 = 95.0 * lung_scale * axial;

        let body = Ellipse { cx: 0.0, cy: 0.0, a: body_a, b: body_b, theta: tilt, hu: 1040.0 };

        // Shrink the lungs until they sit strictly inside the body with an
        // 8 mm tissue margin — otherwise lung air connects to outside air,
        // which both breaks threshold segmentation and is anatomically
        // wrong. Binary search over a shared scale factor, testing sampled
        // boundary points of both (rotated) lung ellipses.
        let margin = 8.0f32;
        let fits = |scale: f32| -> bool {
            for (cx, th) in [(-72.0f32, tilt + 0.12), (72.0, tilt - 0.12)] {
                let (a, b) = (la0 * scale, lb0 * scale);
                for k in 0..64 {
                    let t = std::f32::consts::TAU * k as f32 / 64.0;
                    let (lx, ly) = (a * t.cos(), b * t.sin());
                    let x = cx + lx * th.cos() - ly * th.sin();
                    let y = 5.0 + lx * th.sin() + ly * th.cos();
                    // into the body frame
                    let (c, s) = (tilt.cos(), tilt.sin());
                    let u = x * c + y * s;
                    let v = -x * s + y * c;
                    if (u / (body_a - margin)).powi(2) + (v / (body_b - margin)).powi(2) > 1.0 {
                        return false;
                    }
                }
            }
            true
        };
        let mut lo = 0.3f32;
        let mut hi = 1.0f32;
        if fits(hi) {
            lo = hi;
        } else {
            for _ in 0..16 {
                let mid = 0.5 * (lo + hi);
                if fits(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
        let la = la0 * lo;
        let lb = lb0 * lo;

        let lung_l = Ellipse { cx: -72.0, cy: 5.0, a: la, b: lb, theta: tilt + 0.12, hu: -890.0 };
        let lung_r = Ellipse { cx: 72.0, cy: 5.0, a: la, b: lb, theta: tilt - 0.12, hu: -890.0 };
        let spine = Ellipse { cx: 0.0, cy: -82.0, a: 17.0, b: 20.0, theta: 0.0, hu: 660.0 };
        let heart = Ellipse {
            cx: -18.0 + heart_shift,
            cy: -10.0,
            a: 42.0 * axial.max(0.5),
            b: 48.0 * axial.max(0.5),
            theta: 0.35,
            hu: 890.0, // raises lung area back to soft tissue where it overlaps
        };

        let mut ellipses = vec![body, lung_l, lung_r, heart, spine];
        // Ribs: small dense circles around the body boundary.
        for k in 0..8 {
            let ang = std::f32::consts::PI * (0.15 + 0.7 * k as f32 / 7.0);
            for side in [-1.0f32, 1.0] {
                ellipses.push(Ellipse {
                    cx: side * (body_a - 12.0) * ang.sin(),
                    cy: (body_b - 10.0) * ang.cos(),
                    a: 5.0,
                    b: 5.0,
                    theta: 0.0,
                    hu: 760.0,
                });
            }
        }

        let lesions = match pathology {
            None => Vec::new(),
            Some(Pathology::Covid(sev)) => {
                // Slice-dependent lesion stream, but subject-consistent.
                let mut lrng =
                    Xorshift::new(seed.wrapping_mul(0x2545F4914F6CDD1D) ^ ((z * 64.0) as u64) | 1);
                let (count, consolidation) = match sev {
                    Severity::Mild => (lrng.next_u64() as usize % 2 + 1, 0),
                    Severity::Moderate => (lrng.next_u64() as usize % 3 + 3, 0),
                    Severity::Severe => (lrng.next_u64() as usize % 4 + 5, 2),
                };
                let mut lesions = Vec::new();
                for i in 0..count + consolidation {
                    let lung = if lrng.next_f32() < 0.5 { &lung_l } else { &lung_r };
                    // Peripheral bias: GGOs in COVID favour the lung rim.
                    let rad = lrng.uniform(0.45, 0.92);
                    let ang = lrng.uniform(0.0, std::f32::consts::TAU);
                    let cx = lung.cx + lung.a * rad * ang.cos();
                    let cy = lung.cy + lung.b * rad * ang.sin();
                    let is_consolidation = i >= count;
                    lesions.push(Lesion {
                        cx,
                        cy,
                        sigma: if is_consolidation {
                            lrng.uniform(6.0, 12.0)
                        } else {
                            lrng.uniform(10.0, 26.0)
                        },
                        peak: if is_consolidation {
                            lrng.uniform(700.0, 850.0)
                        } else {
                            lrng.uniform(350.0, 550.0)
                        },
                    });
                }
                lesions
            }
            Some(Pathology::Pneumonia) => {
                // Lobar pneumonia: one dense consolidation cluster filling
                // the lower part of a single (subject-fixed) lung.
                let mut srng = Xorshift::new(seed.wrapping_mul(0xD1B54A32D192ED03) | 1);
                let lung = if srng.next_f32() < 0.5 { &lung_l } else { &lung_r };
                let mut lrng =
                    Xorshift::new(seed.wrapping_mul(0x2545F4914F6CDD1D) ^ ((z * 64.0) as u64) | 1);
                let mut lesions = Vec::new();
                for _ in 0..3 {
                    lesions.push(Lesion {
                        cx: lung.cx + lrng.uniform(-0.3, 0.3) * lung.a,
                        // lower-lobe bias
                        cy: lung.cy - lung.b * lrng.uniform(0.2, 0.6),
                        sigma: lrng.uniform(16.0, 30.0),
                        peak: lrng.uniform(750.0, 900.0),
                    });
                }
                lesions
            }
            Some(Pathology::Nodule) => {
                // Solitary pulmonary nodule: small, solid, sharply bounded;
                // subject-fixed location, present only in nearby slices.
                let mut srng = Xorshift::new(seed.wrapping_mul(0xD1B54A32D192ED03) | 1);
                let lung = if srng.next_f32() < 0.5 { &lung_l } else { &lung_r };
                let rad = srng.uniform(0.1, 0.6);
                let ang = srng.uniform(0.0, std::f32::consts::TAU);
                let z0 = srng.uniform(0.35, 0.65);
                if (z - z0).abs() < 0.12 {
                    vec![Lesion {
                        cx: lung.cx + lung.a * rad * ang.cos(),
                        cy: lung.cy + lung.b * rad * ang.sin(),
                        sigma: srng.uniform(3.0, 6.0),
                        peak: srng.uniform(900.0, 1100.0),
                    }]
                } else {
                    Vec::new()
                }
            }
        };

        ChestPhantom { ellipses, lungs: [lung_l, lung_r], lesions, texture_amp, texture }
    }

    /// HU value at a point (mm).
    pub fn hu_at(&self, x: f32, y: f32) -> f32 {
        let mut hu = HU_AIR;
        for e in &self.ellipses {
            if e.contains(x, y) {
                hu += e.hu;
            }
        }
        // Lesions only act inside lung tissue (their physical substrate).
        if self.in_lungs(x, y) {
            for l in &self.lesions {
                hu += l.hu_at(x, y);
            }
            // Parenchymal texture.
            let mut t = 0.0f32;
            for &(fx, fy, ph) in &self.texture {
                t += (x * fx + y * fy + ph).sin();
            }
            hu += self.texture_amp * t / self.texture.len() as f32;
        }
        // The additive composition can overshoot where structures overlap
        // (e.g. two consolidations on the heart border); clamp to the
        // physical CT range — nothing in a chest exceeds dense bone.
        hu.clamp(-1000.0, 1400.0)
    }

    /// True inside either lung ellipse.
    pub fn in_lungs(&self, x: f32, y: f32) -> bool {
        self.lungs.iter().any(|l| l.contains(x, y))
    }

    /// Rasterize to an `n`×`n` HU image over a 500 mm field of view.
    pub fn rasterize_hu(&self, n: usize) -> Tensor {
        let px = 500.0 / n as f32;
        let half = 250.0;
        let mut img = Tensor::zeros([n, n]);
        img.data_mut().par_chunks_mut(n).enumerate().for_each(|(r, row)| {
            let y = half - (r as f32 + 0.5) * px;
            for (c, out) in row.iter_mut().enumerate() {
                let x = (c as f32 + 0.5) * px - half;
                *out = self.hu_at(x, y);
            }
        });
        img
    }

    /// Ground-truth lung mask (1 inside lungs, 0 elsewhere) at `n`×`n`.
    pub fn lung_mask(&self, n: usize) -> Tensor {
        let px = 500.0 / n as f32;
        let half = 250.0;
        let mut img = Tensor::zeros([n, n]);
        img.data_mut().par_chunks_mut(n).enumerate().for_each(|(r, row)| {
            let y = half - (r as f32 + 0.5) * px;
            for (c, out) in row.iter_mut().enumerate() {
                let x = (c as f32 + 0.5) * px - half;
                *out = if self.in_lungs(x, y) { 1.0 } else { 0.0 };
            }
        });
        img
    }

    /// Total lesion burden (sum of peak × area), a severity proxy used by
    /// tests and the dataset builder.
    pub fn lesion_burden(&self) -> f32 {
        self.lesions.iter().map(|l| l.peak * l.sigma * l.sigma).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ellipse_containment() {
        let e = Ellipse { cx: 10.0, cy: 0.0, a: 5.0, b: 2.0, theta: 0.0, hu: 1.0 };
        assert!(e.contains(10.0, 0.0));
        assert!(e.contains(14.9, 0.0));
        assert!(!e.contains(15.1, 0.0));
        assert!(e.contains(10.0, 1.9));
        assert!(!e.contains(10.0, 2.1));
    }

    #[test]
    fn rotated_ellipse_containment() {
        let e = Ellipse {
            cx: 0.0,
            cy: 0.0,
            a: 10.0,
            b: 2.0,
            theta: std::f32::consts::FRAC_PI_2,
            hu: 1.0,
        };
        // long axis now along y
        assert!(e.contains(0.0, 9.0));
        assert!(!e.contains(9.0, 0.0));
    }

    #[test]
    fn anatomy_hu_ranges() {
        let p = ChestPhantom::subject(1, 0.5, None);
        let img = p.rasterize_hu(128);
        // corners: air
        assert!((img.at(&[0, 0]) - HU_AIR).abs() < 1.0);
        // center of left lung: lung HU (plus texture)
        let px = 500.0 / 128.0;
        let to_idx = |x: f32, y: f32| {
            let c = ((x + 250.0) / px) as usize;
            let r = ((250.0 - y) / px) as usize;
            (r, c)
        };
        let (r, c) = to_idx(p.lungs[0].cx, p.lungs[0].cy + 40.0);
        let lung_hu = img.at(&[r, c]);
        assert!((-950.0..=-700.0).contains(&lung_hu), "lung HU {lung_hu}");
        // spine is dense
        let (r, c) = to_idx(0.0, -82.0);
        let spine_hu = img.at(&[r, c]);
        assert!(spine_hu > 500.0, "spine HU {spine_hu}");
    }

    #[test]
    fn covid_raises_lung_hu() {
        let healthy = ChestPhantom::subject(7, 0.5, None);
        let sick = ChestPhantom::subject(7, 0.5, Some(Severity::Severe));
        let hi = healthy.rasterize_hu(128);
        let si = sick.rasterize_hu(128);
        // Mean HU inside the lungs must go up with lesions.
        let mask = healthy.lung_mask(128);
        let mean_in = |img: &Tensor| {
            let mut acc = 0.0f64;
            let mut cnt = 0usize;
            for (v, m) in img.data().iter().zip(mask.data()) {
                if *m > 0.5 {
                    acc += *v as f64;
                    cnt += 1;
                }
            }
            acc / cnt as f64
        };
        assert!(
            mean_in(&si) > mean_in(&hi) + 10.0,
            "sick {} healthy {}",
            mean_in(&si),
            mean_in(&hi)
        );
        assert!(sick.lesion_burden() > 0.0);
        assert_eq!(healthy.lesion_burden(), 0.0);
    }

    #[test]
    fn determinism_per_seed() {
        let a = ChestPhantom::subject(3, 0.5, Some(Severity::Moderate)).rasterize_hu(64);
        let b = ChestPhantom::subject(3, 0.5, Some(Severity::Moderate)).rasterize_hu(64);
        let c = ChestPhantom::subject(4, 0.5, Some(Severity::Moderate)).rasterize_hu(64);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn lungs_shrink_toward_apex() {
        let mid = ChestPhantom::subject(5, 0.5, None);
        let apex = ChestPhantom::subject(5, 0.05, None);
        let area = |p: &ChestPhantom| {
            let m = p.lung_mask(96);
            m.data().iter().sum::<f32>()
        };
        assert!(area(&apex) < 0.5 * area(&mid), "apex {} mid {}", area(&apex), area(&mid));
    }

    #[test]
    fn lesions_are_inside_lungs() {
        for seed in 0..10u64 {
            let p = ChestPhantom::subject(seed, 0.5, Some(Severity::Severe));
            for l in &p.lesions {
                // Lesion centers were sampled at <= 0.92 of the lung radii,
                // so they must be inside the (slightly inflated) lung.
                let inside = p.lungs.iter().any(|lung| {
                    let dx = l.cx - lung.cx;
                    let dy = l.cy - lung.cy;
                    let (c, s) = (lung.theta.cos(), lung.theta.sin());
                    let u = dx * c + dy * s;
                    let v = -dx * s + dy * c;
                    (u / (lung.a * 1.05)).powi(2) + (v / (lung.b * 1.05)).powi(2) <= 1.0
                });
                assert!(inside, "seed {seed}: lesion at ({}, {}) outside lungs", l.cx, l.cy);
            }
        }
    }

    #[test]
    fn pneumonia_is_unilateral_and_dense() {
        for seed in 0..8u64 {
            let p = ChestPhantom::subject_with(seed, 0.5, Some(Pathology::Pneumonia));
            assert!(!p.lesions.is_empty());
            // all lesions in the same lung (same sign of cx offset)
            let sides: Vec<bool> = p.lesions.iter().map(|l| l.cx > 0.0).collect();
            assert!(sides.iter().all(|&s| s == sides[0]), "seed {seed}: bilateral pneumonia");
            // denser than typical GGOs
            assert!(p.lesions.iter().all(|l| l.peak >= 700.0));
        }
    }

    #[test]
    fn nodule_is_small_and_axially_localized() {
        let mut seen_any = false;
        for seed in 0..8u64 {
            let mid = ChestPhantom::subject_with(seed, 0.5, Some(Pathology::Nodule));
            let apex = ChestPhantom::subject_with(seed, 0.02, Some(Pathology::Nodule));
            assert!(apex.lesions.is_empty(), "nodule must not span the whole scan");
            if !mid.lesions.is_empty() {
                seen_any = true;
                assert_eq!(mid.lesions.len(), 1);
                assert!(mid.lesions[0].sigma <= 6.0);
                assert!(mid.lesions[0].peak >= 900.0);
            }
        }
        assert!(seen_any, "some subject must show the nodule mid-scan");
    }

    #[test]
    fn covid_pathology_equals_severity_api() {
        let a = ChestPhantom::subject(5, 0.5, Some(Severity::Moderate)).rasterize_hu(48);
        let b = ChestPhantom::subject_with(5, 0.5, Some(Pathology::Covid(Severity::Moderate)))
            .rasterize_hu(48);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn severity_orders_burden() {
        // Averaged over subjects, severe > moderate > mild.
        let avg = |sev: Severity| {
            (0..20u64)
                .map(|s| ChestPhantom::subject(s, 0.5, Some(sev)).lesion_burden() as f64)
                .sum::<f64>()
                / 20.0
        };
        let (m, mo, se) = (avg(Severity::Mild), avg(Severity::Moderate), avg(Severity::Severe));
        assert!(se > mo && mo > m, "mild {m} moderate {mo} severe {se}");
    }
}
