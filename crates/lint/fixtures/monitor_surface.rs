//~ path: crates/monitor/src/fixture.rs
//~ expect: determinism
//~ expect: panic-surface
// The longitudinal-monitoring crate sits on BOTH enforced surfaces:
// its cache keys and burden numbers must be bit-reproducible (no
// ambient clocks/RNG), and its cache/timeline paths must stay
// panic-free — a stale-entry unwrap would take down a serving replica
// mid-study. One sneaky clock read plus one unwrap must trip exactly
// the two rules.

use std::time::Instant;

pub fn evict_with_wall_clock_tiebreak(entries: &mut Vec<(u64, f64)>) -> (u64, f64) {
    let jitter = Instant::now().elapsed().as_nanos() as u64;
    let victim = entries.pop().unwrap();
    (victim.0 ^ jitter, victim.1)
}
