//! Operation counting for Table 6: global memory loads, stores and
//! floating-point operations per kernel, for an input of size
//! `H × W × C`.
//!
//! Counting conventions (reverse-engineered from the paper's Table 6 and
//! validated in the tests below):
//!
//! - convolution / deconvolution (k×k, `C -> C` channels, 'same' size):
//!   each output element runs `C·k²` taps; each tap issues one input load
//!   and one weight load (2 loads) and one multiply + one add (2 flops);
//!   one store per output. With `H·W·C` outputs:
//!   `loads = flops = 2·H·W·C·C·k²`, `stores = H·W·C`.
//! - pooling (3×3, stride 2): `out = (H/2)·(W/2)·C` outputs × 9 loads,
//!   1 store, 0 flops (comparisons are not counted as flops).
//! - un-pooling (bilinear ×2): `out = 4·H·W·C` outputs × 4 loads, 1 store,
//!   14 flops (the 2D lerp).
//! - leaky-ReLU: 1 load, 1 store, 1 flop per element.
//! - batch norm (inference): 5 loads (x, mean, var, gamma, beta), 1 store,
//!   5 flops per element.

/// Loads / stores / flops of one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Global memory load operations.
    pub loads: u64,
    /// Global memory store operations.
    pub stores: u64,
    /// Floating-point operations.
    pub flops: u64,
}

impl OpCounts {
    /// Pretty numbers in the paper's unit (10^6 operations).
    pub fn in_millions(&self) -> (f64, f64, f64) {
        (self.loads as f64 / 1e6, self.stores as f64 / 1e6, self.flops as f64 / 1e6)
    }
}

/// The six Table 6 rows for a given input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounts {
    /// Convolution row.
    pub convolution: OpCounts,
    /// Deconvolution row.
    pub deconvolution: OpCounts,
    /// Pooling row.
    pub pooling: OpCounts,
    /// Un-pooling row.
    pub unpooling: OpCounts,
    /// Leaky-ReLU row.
    pub leaky_relu: OpCounts,
    /// Batch-normalization row.
    pub batch_norm: OpCounts,
}

/// Counts of a single convolution/deconvolution layer with distinct
/// input/output channel widths: `loads = flops = 2·H·W·Cout·Cin·k²`,
/// `stores = H·W·Cout` (H, W are the *output* extents).
pub fn conv_layer_counts(h: u64, w: u64, cin: u64, cout: u64, k: u64) -> OpCounts {
    let taps = h * w * cout * cin * k * k;
    OpCounts { loads: 2 * taps, stores: h * w * cout, flops: 2 * taps }
}

/// Counts of one pooling layer (3×3, stride 2) with `h × w` *input*.
pub fn pool_layer_counts(h: u64, w: u64, c: u64) -> OpCounts {
    let out = (h / 2) * (w / 2) * c;
    OpCounts { loads: 9 * out, stores: out, flops: 0 }
}

/// Counts of one bilinear ×2 un-pooling layer with `h × w` *input*.
pub fn unpool_layer_counts(h: u64, w: u64, c: u64) -> OpCounts {
    let out = 4 * h * w * c;
    OpCounts { loads: 4 * out, stores: out, flops: 14 * out }
}

/// Counts of one leaky-ReLU pass over `e` elements.
pub fn leaky_relu_counts(e: u64) -> OpCounts {
    OpCounts { loads: e, stores: e, flops: e }
}

/// Counts of one inference batch-norm pass over `e` elements.
pub fn batch_norm_counts(e: u64) -> OpCounts {
    OpCounts { loads: 5 * e, stores: e, flops: 5 * e }
}

/// Counts of a channel concatenation producing `e` elements (pure copy).
pub fn concat_counts(e: u64) -> OpCounts {
    OpCounts { loads: e, stores: e, flops: 0 }
}

impl std::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(self, o: OpCounts) -> OpCounts {
        OpCounts {
            loads: self.loads + o.loads,
            stores: self.stores + o.stores,
            flops: self.flops + o.flops,
        }
    }
}

impl std::ops::AddAssign for OpCounts {
    fn add_assign(&mut self, o: OpCounts) {
        *self = *self + o;
    }
}

/// Analytic counts for an `h × w × c` input with `k × k` filters
/// (the paper's Table 6 uses 512 × 512 × 32 and k = 5).
pub fn kernel_counts(h: u64, w: u64, c: u64, k: u64) -> KernelCounts {
    let e = h * w * c;
    let conv_taps = e * c * k * k;
    let conv = OpCounts { loads: 2 * conv_taps, stores: e, flops: 2 * conv_taps };

    let pool_out = (h / 2) * (w / 2) * c;
    let pooling = OpCounts { loads: 9 * pool_out, stores: pool_out, flops: 0 };

    let up_out = 4 * e;
    let unpooling = OpCounts { loads: 4 * up_out, stores: up_out, flops: 14 * up_out };

    let leaky_relu = OpCounts { loads: e, stores: e, flops: e };
    let batch_norm = OpCounts { loads: 5 * e, stores: e, flops: 5 * e };

    KernelCounts {
        convolution: conv,
        deconvolution: conv,
        pooling,
        unpooling,
        leaky_relu,
        batch_norm,
    }
}

/// Instrumented (loop-counted) convolution/deconvolution taps — used by
/// tests to validate the analytic formula against an actual kernel loop.
/// Counts one tap per `(output element, input channel, filter tap)`
/// triple, i.e. the iteration count of the gather kernel without the
/// boundary short-circuit (the paper's counters count kernel iterations).
pub fn counted_conv_taps(h: u64, w: u64, c: u64, k: u64) -> OpCounts {
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut flops = 0u64;
    for _oy in 0..h {
        for _ox in 0..w {
            for _co in 0..c {
                for _ci in 0..c {
                    for _ky in 0..k {
                        for _kx in 0..k {
                            loads += 2; // input element + weight
                            flops += 2; // multiply + add
                        }
                    }
                }
                stores += 1;
            }
        }
    }
    OpCounts { loads, stores, flops }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline check: Table 6 of the paper, input 512×512×32, 5×5
    /// filters. Paper values (in 10^6): conv/deconv loads 13421.7, stores
    /// 8.4, flops 13421.7; pooling 18.9/2.1/0; un-pooling 134.3/33.5/469.7;
    /// leaky-ReLU 8.4/8.4/8.4; batch norm 41.9/8.4/41.9.
    #[test]
    fn table6_values_reproduced() {
        let k = kernel_counts(512, 512, 32, 5);
        let close = |got: f64, paper: f64| {
            assert!((got - paper).abs() / paper < 0.01, "got {got} vs paper {paper}");
        };
        let (l, s, f) = k.convolution.in_millions();
        close(l, 13421.7);
        close(s, 8.4);
        close(f, 13421.7);
        assert_eq!(k.deconvolution, k.convolution);

        let (l, s, f) = k.pooling.in_millions();
        close(l, 18.9);
        close(s, 2.1);
        assert_eq!(f, 0.0);

        let (l, s, f) = k.unpooling.in_millions();
        close(l, 134.3);
        close(s, 33.5);
        close(f, 469.7);

        let (l, s, f) = k.leaky_relu.in_millions();
        close(l, 8.4);
        close(s, 8.4);
        close(f, 8.4);

        let (l, s, f) = k.batch_norm.in_millions();
        close(l, 41.9);
        close(s, 8.4);
        close(f, 41.9);
    }

    #[test]
    fn analytic_matches_instrumented_loop() {
        for (h, w, c, k) in [(6u64, 5, 2, 3), (8, 8, 3, 5), (4, 7, 1, 1)] {
            let analytic = kernel_counts(h, w, c, k).convolution;
            let counted = counted_conv_taps(h, w, c, k);
            assert_eq!(analytic, counted, "h={h} w={w} c={c} k={k}");
        }
    }

    #[test]
    fn conv_dominates_other_kernels() {
        // The paper's §5.1.3 profiling rests on conv/deconv dwarfing the
        // rest; the counts should reflect that by orders of magnitude.
        let k = kernel_counts(512, 512, 32, 5);
        assert!(k.convolution.flops > 1000 * k.unpooling.flops / 100);
        assert!(k.convolution.loads > 100 * k.batch_norm.loads);
        assert!(k.convolution.loads > 500 * k.pooling.loads);
    }

    #[test]
    fn counts_scale_quadratically_in_channels() {
        let a = kernel_counts(64, 64, 8, 5).convolution;
        let b = kernel_counts(64, 64, 16, 5).convolution;
        assert_eq!(b.loads, 4 * a.loads);
        assert_eq!(b.stores, 2 * a.stores);
    }
}
