//! Property-based tests for the metrics module (Eq 3–5, ROC/AUC) and
//! segmentation invariants.

use proptest::prelude::*;

use cc19_analysis::metrics::{accuracy, auc_roc, confusion_at, optimal_threshold, roc_curve};
use cc19_analysis::segmentation::dice;
use cc19_tensor::Tensor;

fn scores_and_labels() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 2..40)
        .prop_map(|v| v.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Confusion-matrix counts always partition the dataset.
    #[test]
    fn confusion_partitions((scores, labels) in scores_and_labels(), t in 0.0f64..1.0) {
        let cm = confusion_at(&scores, &labels, t);
        prop_assert_eq!(cm.tp + cm.fp + cm.fn_ + cm.tn, scores.len());
        let pos = labels.iter().filter(|&&l| l).count();
        prop_assert_eq!(cm.tp + cm.fn_, pos);
        prop_assert_eq!(cm.fp + cm.tn, scores.len() - pos);
    }

    /// Accuracy is within [0, 1] and the optimal threshold is optimal.
    #[test]
    fn optimal_threshold_dominates((scores, labels) in scores_and_labels(), t in 0.0f64..1.0) {
        let topt = optimal_threshold(&scores, &labels);
        let a_opt = accuracy(&scores, &labels, topt);
        let a_t = accuracy(&scores, &labels, t);
        prop_assert!((0.0..=1.0).contains(&a_opt));
        prop_assert!(a_opt >= a_t - 1e-12, "opt {} < {} at t {}", a_opt, a_t, t);
    }

    /// AUC is within [0, 1] and invariant under strictly monotone
    /// transformations of the scores.
    #[test]
    fn auc_monotone_invariant((scores, labels) in scores_and_labels()) {
        let auc = auc_roc(&scores, &labels);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&auc), "auc {}", auc);
        // strictly monotone transform: s -> exp(2s) + s
        let transformed: Vec<f64> = scores.iter().map(|s| (2.0 * s).exp() + s).collect();
        let auc_t = auc_roc(&transformed, &labels);
        prop_assert!((auc - auc_t).abs() < 1e-9, "{} vs {}", auc, auc_t);
    }

    /// Flipping all labels mirrors the AUC around 0.5.
    #[test]
    fn auc_label_flip_symmetry((scores, labels) in scores_and_labels()) {
        let pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(pos > 0 && pos < labels.len());
        let auc = auc_roc(&scores, &labels);
        let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
        let auc_f = auc_roc(&scores, &flipped);
        prop_assert!((auc + auc_f - 1.0).abs() < 1e-9, "{} + {} != 1", auc, auc_f);
    }

    /// ROC curves are monotone staircases from (0,0) to (1,1).
    #[test]
    fn roc_monotone((scores, labels) in scores_and_labels()) {
        let pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(pos > 0 && pos < labels.len());
        let curve = roc_curve(&scores, &labels);
        prop_assert_eq!(curve[0], (0.0, 0.0));
        prop_assert_eq!(*curve.last().unwrap(), (1.0, 1.0));
        for w in curve.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 - 1e-12);
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    /// Dice is symmetric, bounded, and 1 exactly on identical masks.
    #[test]
    fn dice_properties(bits in proptest::collection::vec(proptest::bool::ANY, 16)) {
        let a = Tensor::from_vec([16], bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect::<Vec<f32>>()).unwrap();
        let b = Tensor::from_vec([16], bits.iter().rev().map(|&b| if b { 1.0 } else { 0.0 }).collect::<Vec<f32>>()).unwrap();
        let dab = dice(&a, &b).unwrap();
        let dba = dice(&b, &a).unwrap();
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(dice(&a, &a).unwrap(), 1.0);
    }
}
