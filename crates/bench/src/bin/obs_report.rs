//! `obs_report`: one deterministic pass over every instrumented subsystem,
//! exported as `results/bench_obs.json`.
//!
//! The point of this binary is not throughput numbers — the other benches
//! own those — but an end-to-end exercise of the `cc19-obs` registry:
//! seeded GEMM and conv kernels, the CT simulation stages, a tiny
//! Enhancement-AI training run, a 4-rank lockstep all-reduce under a
//! pinned fault plan, a serve smoke test, and a longitudinal-monitoring
//! pass (progression series + one cache-hit replay), all writing into
//! the process-global registry, which is then exported with the
//! deterministic sorted-key exporters.
//!
//! Under `CC19_OBS_DETERMINISTIC=1` the global registry runs on the
//! auto-ticking manual clock and every clock read in this binary is
//! causally ordered (the all-reduce runs lockstep on one thread; serve
//! requests are submitted strictly sequentially with `max_batch: 1`; the
//! rayon workers inside the kernels never touch the clock), so the JSON
//! is byte-identical run over run — `scripts/tier1.sh` runs it twice and
//! compares. Without the variable, the same report carries real timings.

use std::time::Duration;

use cc19_bench::TablePrinter;
use cc19_ctsim::fbp::fbp_parallel;
use cc19_ctsim::filter::Window;
use cc19_ctsim::geometry::ParallelBeamGeometry;
use cc19_ctsim::hu::image_hu_to_mu;
use cc19_ctsim::lowdose::{apply_poisson_noise, DoseSettings};
use cc19_ctsim::phantom::{ChestPhantom, Severity};
use cc19_ctsim::siddon::{project_parallel, Grid};
use cc19_data::lowdose_pairs::{make_pair, EnhancementPair, PairConfig};
use cc19_data::progression::{progression_series, ProgressionCourse};
use cc19_data::sources::{DataSource, Modality, ScanMeta};
use cc19_ddnet::model::{Ddnet, DdnetConfig};
use cc19_ddnet::trainer::{train_enhancement, TrainConfig};
use cc19_dist::fault::{FaultConfig, FaultPlan};
use cc19_dist::transport::{make_ring_in, TimeoutCfg};
use cc19_kernels::conv::{conv2d_with, ConvShape};
use cc19_kernels::deconv::{deconv2d_with, out_h, out_w};
use cc19_kernels::simd::{self, SimdLevel};
use cc19_kernels::OptLevel;
use cc19_monitor::{PatientSeries, Provenance};
use cc19_obs::span::enter_on;
use cc19_obs::{Registry, Snapshot, SpanStatus};
use cc19_serve::{
    BatchPolicy, ClusterCfg, ClusterMetrics, ServeCluster, ServeMetrics, ServeRequest, Server,
    ServerCfg,
};
use cc19_tensor::conv::{conv2d, conv2d_backward, Conv2dSpec};
use cc19_tensor::gemm::sgemm;
use cc19_tensor::rng::Xorshift;
use computecovid19::framework::Framework;

/// Everything in this binary is seeded from here.
const SEED: u64 = 0x0B5_2026;

/// GEMM edge: big enough to hit the blocked path, small enough for tier-1.
const GEMM_N: usize = 96;

/// In-plane resolution for the ctsim / trainer stages.
const CT_N: usize = 64;

/// Views for the explicit ctsim stage.
const CT_VIEWS: usize = 48;

/// Serve smoke request count.
const SERVE_REQS: u64 = 8;

/// Requests offered to the sharded cluster stage.
const CLUSTER_REQS: u64 = 12;

/// Initial worker count for the cluster stage.
const CLUSTER_WORKERS: usize = 2;

/// Timesteps in the longitudinal-monitoring stage's progression course.
const MONITOR_STEPS: usize = 4;

fn stage_gemm() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.gemm");
    let mut rng = Xorshift::new(SEED);
    let a = rng.uniform_tensor([GEMM_N, GEMM_N], -1.0, 1.0);
    let b = rng.uniform_tensor([GEMM_N, GEMM_N], -1.0, 1.0);
    let mut c = vec![0.0f32; GEMM_N * GEMM_N];
    sgemm(false, false, GEMM_N, GEMM_N, GEMM_N, a.data(), b.data(), &mut c);
}

fn stage_conv() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.conv");
    let mut rng = Xorshift::new(SEED ^ 1);
    let input = rng.uniform_tensor([1, 2, 24, 24], -1.0, 1.0);
    let weight = rng.uniform_tensor([4, 2, 3, 3], -0.5, 0.5);
    let spec = Conv2dSpec::default();
    let out = conv2d(&input, &weight, None, spec).expect("conv2d forward");
    let _grads = conv2d_backward(&input, &weight, &out, spec).expect("conv2d backward");
}

fn stage_ctsim() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.ctsim");
    let grid = Grid::fov500(CT_N);
    let geom = ParallelBeamGeometry::for_image(CT_N, grid.px, CT_VIEWS);
    let hu_img = ChestPhantom::subject(SEED, 0.5, Some(Severity::Moderate)).rasterize_hu(CT_N);
    let mu_img = image_hu_to_mu(&hu_img);
    let sino = project_parallel(&mu_img, grid, &geom).expect("projection");
    let noisy = apply_poisson_noise(&sino, DoseSettings::quarter(SEED));
    let _rec = fbp_parallel(&noisy, &geom, grid, Window::Hann).expect("fbp");
}

fn pairs(n_pairs: usize, salt: u64) -> Vec<EnhancementPair> {
    (0..n_pairs)
        .map(|i| {
            let meta = ScanMeta {
                id: SEED + salt + i as u64,
                source: DataSource::Bimcv,
                modality: Modality::Ct,
                positive: i % 2 == 0,
                severity: if i % 2 == 0 { Some(Severity::Moderate) } else { None },
                slices: 16,
                circular_artifact: false,
                has_projections: false,
            };
            make_pair(&meta, 0.5, PairConfig::reduced(32, SEED + salt + i as u64))
                .expect("pair synthesis")
        })
        .collect()
}

fn stage_trainer() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.trainer");
    let train = pairs(2, 100);
    let val = pairs(1, 200);
    let net = Ddnet::new(DdnetConfig::tiny(), SEED);
    let stats = train_enhancement(&net, &train, &val, TrainConfig::quick(1)).expect("training");
    assert!(!stats.is_empty(), "trainer must report at least one epoch");
}

fn stage_allreduce() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.allreduce");
    let plan = FaultPlan::seeded(
        1234,
        FaultConfig { p_drop: 0.05, p_duplicate: 0.05, ..FaultConfig::clean() },
    );
    let (_cluster, mut rings) = make_ring_in(4, plan, TimeoutCfg::fast(), cc19_obs::global());
    let mut bufs: Vec<Vec<f32>> = (0..4)
        .map(|r| (0..2048).map(|i| i as f32 * 0.001 + r as f32).collect())
        .collect();
    cc19_dist::allreduce::ring_allreduce_lockstep(&mut bufs, &mut rings).expect("all-reduce");
}

fn stage_serve() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.serve");
    let cfg = ServerCfg {
        // max_batch 1 keeps the batcher's real-time coalescing window (the
        // one wall-clock wait in the serving path) out of the picture, so
        // the sequential submit/wait loop below is fully deterministic.
        batch: BatchPolicy { max_batch: 1, max_delay: Duration::ZERO },
        threshold: 0.5,
        ..ServerCfg::default()
    };
    let metrics = ServeMetrics::with_registry(cc19_obs::global_arc());
    let server =
        Server::start_with_metrics(cfg, || Framework::untrained_reduced(SEED), metrics)
            .expect("server starts");
    let client = server.client();
    for i in 0..SERVE_REQS {
        let mut rng = Xorshift::new(SEED ^ (0x9E37_79B9 + i));
        let volume = rng.uniform_tensor([4, 32, 32], -1000.0, 400.0);
        let pending = client.submit(ServeRequest::routine(volume)).expect("admission");
        let resp = pending.wait().expect("reply");
        resp.result.expect("diagnosis");
    }
    server.shutdown();
}

fn stage_serve_cluster() -> std::sync::Arc<Registry> {
    let _span = enter_on(cc19_obs::global_arc(), "bench.serve_cluster");
    let reg = cc19_obs::global();
    let clock = reg.clock();
    // The cluster's own metrics live on a *private* registry: its clock
    // is read only by the router's recovery timer (two reads on the
    // death path), so in deterministic mode the recovery latency is an
    // exact, reproducible tick — worker frameworks read the global
    // clock, but strictly sequentially (one request in flight at a
    // time), keeping the global export byte-stable.
    let metrics = ClusterMetrics::new();
    let cfg = ClusterCfg {
        workers: CLUSTER_WORKERS,
        worker: ServerCfg {
            batch: BatchPolicy { max_batch: 1, max_delay: Duration::ZERO },
            threshold: 0.5,
            ..ServerCfg::default()
        },
        // Kill-only plan: worker 1 dies on its third dispatch, the
        // router re-dispatches the orphan to the survivor.
        faults: FaultPlan::seeded(
            1234,
            FaultConfig { kill: Some((1, 2)), ..FaultConfig::clean() },
        ),
        ..ClusterCfg::default()
    };
    let cluster =
        ServeCluster::start_with_metrics(cfg, || Framework::untrained_reduced(SEED), metrics)
            .expect("cluster starts");
    let client = cluster.client();
    let t0 = clock.now_ns();
    for i in 0..CLUSTER_REQS {
        let mut rng = Xorshift::new(SEED ^ (0x9E37_79B9 + i));
        let volume = rng.uniform_tensor([4, 32, 32], -1000.0, 400.0);
        let pending = client.submit(i, ServeRequest::routine(volume)).expect("admission");
        let resp = pending.wait().expect("reply");
        resp.result.expect("diagnosis");
    }
    let wall_s = clock.now_ns().saturating_sub(t0) as f64 / 1e9;

    let metrics = cluster.shutdown();
    let snap = metrics.snapshot();
    assert_eq!(snap.completed, CLUSTER_REQS, "a study was lost to the kill");
    assert_eq!(snap.worker_deaths, 1, "the scheduled kill must fire");
    assert!(snap.redispatched >= 1, "the orphaned dispatch was not re-dispatched");

    // Surface the cluster's behaviour as bench_* gauges on the global
    // registry (the private registry itself is not exported).
    let rsnap = metrics.registry().snapshot();
    for node in 0..CLUSTER_WORKERS {
        let key = format!("serve_cluster_node_dispatched_total{{node=\"{node}\"}}");
        let dispatched =
            rsnap.counters.iter().find(|c| c.key == key).map(|c| c.value).unwrap_or(0);
        let qps = if wall_s > 0.0 { dispatched as f64 / wall_s } else { 0.0 };
        reg.gauge_with("bench_serve_cluster_node_qps", &[("node", &node.to_string())])
            .set(qps);
    }
    reg.gauge("bench_serve_cluster_redispatched").set(snap.redispatched as f64);
    reg.gauge("bench_serve_cluster_worker_deaths").set(snap.worker_deaths as f64);
    reg.gauge("bench_serve_cluster_recovery_ms").set(metrics.mean_recovery_ms());
    // Hand the router registry back so main() can derive the critical-
    // path report from its stitched request traces (DESIGN.md §17).
    std::sync::Arc::clone(metrics.registry())
}

fn stage_monitor() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.monitor");
    let reg = cc19_obs::global();
    // The series registers its monitor_* counters and histograms on the
    // global registry, so they land in the exported JSON alongside the
    // other subsystems. add_scan is strictly sequential on this thread,
    // keeping the deterministic manual clock causal.
    let course = ProgressionCourse::worsening(MONITOR_STEPS);
    let scans = progression_series(SEED, &course, 32, 4, Severity::Moderate)
        .expect("progression synthesis");
    let fw = Framework::untrained_reduced(SEED);
    let mut series = PatientSeries::with_registry(fw, 0.5, 64 << 20, cc19_obs::global_arc());
    let mut last_burden = 0.0;
    for (t, vol) in scans.iter().enumerate() {
        let report = series.add_scan(format!("t{t}"), vol).expect("add_scan");
        assert_eq!(report.provenance, Provenance::Computed);
        assert!(report.burden.lesion_ml > last_burden, "worsening course must progress");
        last_burden = report.burden.lesion_ml;
    }
    // replay the final scan: content-addressed hit, stages skipped
    let replay = series.add_scan("t3-replay", &scans[MONITOR_STEPS - 1]).expect("replay");
    assert_eq!(replay.provenance, Provenance::CacheHit);
    assert_eq!(replay.burden.lesion_ml.to_bits(), last_burden.to_bits());

    reg.gauge("bench_monitor_final_burden_ml").set(last_burden);
    reg.gauge("bench_monitor_scans").set(series.reports().len() as f64);
    let (hits, misses, _) = series.cache().stats();
    let ratio = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
    reg.gauge("bench_monitor_cache_hit_ratio").set(ratio);
}

/// In-plane resolution / channels for the kernel-ladder stage — small:
/// the point here is the GFLOP/s *gauges* (tracked across PRs via the
/// exported JSON), not peak numbers, which `kernel_ladder` owns.
const LADDER_N: usize = 32;
const LADDER_C: usize = 4;

fn stage_kernel_ladder() {
    let _span = enter_on(cc19_obs::global_arc(), "bench.kernel_ladder");
    let reg = cc19_obs::global();
    let clock = reg.clock();
    let dispatches: &[SimdLevel] = if simd::detected() == SimdLevel::Avx2 {
        &[SimdLevel::Scalar, SimdLevel::Avx2]
    } else {
        &[SimdLevel::Scalar]
    };
    for (name, k, deconv) in
        [("conv3x3", 3usize, false), ("conv5x5", 5, false), ("deconv5x5", 5, true)]
    {
        let s = ConvShape { cin: LADDER_C, cout: LADDER_C, h: LADDER_N, w: LADDER_N, k, pad: k / 2 };
        let mut rng = Xorshift::new(SEED ^ k as u64 ^ (deconv as u64) << 8);
        let input: Vec<f32> = (0..s.cin * s.h * s.w).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let weight: Vec<f32> =
            (0..s.cin * s.cout * s.k * s.k).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let bias: Vec<f32> = (0..s.cout).map(|_| rng.uniform(-0.2, 0.2)).collect();
        let (oh, ow) = if deconv { (out_h(s), out_w(s)) } else { (s.out_h(), s.out_w()) };
        let flops = 2.0 * (oh * ow * s.cin * s.cout * k * k) as f64;
        for &dispatch in dispatches {
            for level in OptLevel::ALL {
                // The clock is read only here, strictly sequentially on
                // this thread (the kernels' rayon workers never touch
                // it), so the deterministic manual clock stays causal.
                let t0 = clock.now_ns();
                let out = if deconv {
                    deconv2d_with(level, dispatch, &input, &weight, &bias, s)
                } else {
                    conv2d_with(level, dispatch, &input, &weight, &bias, s)
                };
                let secs = clock.now_ns().saturating_sub(t0) as f64 / 1e9;
                assert!(out.iter().all(|v| v.is_finite()), "{name} non-finite output");
                let gflops = if secs > 0.0 { flops / secs / 1e9 } else { 0.0 };
                reg.gauge_with(
                    "bench_kernel_ladder_gflops",
                    &[("kernel", name), ("stage", level.tag()), ("dispatch", dispatch.tag())],
                )
                .set(gflops);
            }
        }
    }
}

fn counter_sum(snap: &Snapshot, name: &str) -> u64 {
    snap.counters.iter().filter(|e| e.name == name).map(|e| e.value).sum()
}

fn histogram_sum(snap: &Snapshot, name: &str) -> f64 {
    snap.histograms.iter().filter(|e| e.name == name).map(|e| e.value.sum()).sum()
}

/// Derive `bench_*_gflops` gauges from the kernel flop counters and
/// second histograms accumulated across all stages above.
fn derive_gauges() {
    let reg = cc19_obs::global();
    let snap = reg.snapshot();
    for (gauge, flops_name, secs_name) in [
        ("bench_gemm_gflops", "tensor_gemm_flops_total", "tensor_gemm_seconds"),
        ("bench_conv_gflops", "tensor_conv_flops_total", "tensor_conv_seconds"),
    ] {
        let flops = counter_sum(&snap, flops_name) as f64;
        let secs = histogram_sum(&snap, secs_name);
        let gflops = if secs > 0.0 { flops / secs / 1e9 } else { 0.0 };
        reg.gauge(gauge).set(gflops);
    }
}

/// One sorted-key JSON object of every `bench_*` gauge — the line
/// appended per run to `results/bench_history.jsonl`, which
/// `scripts/bench_check.sh` diffs against the previous run.
fn bench_history_line(snap: &Snapshot) -> String {
    let mut entries: Vec<(String, f64)> = snap
        .gauges
        .iter()
        .filter(|g| g.name.starts_with("bench_"))
        .map(|g| (g.key.clone(), g.value))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{");
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let key = k.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("\"{key}\": {v:?}"));
    }
    out.push_str("}\n");
    out
}

fn print_summary(snap: &Snapshot) {
    let t = TablePrinter::new(&[34, 16]);
    t.row(&[&"metric", &"value"]);
    t.row(&[&"tensor_gemm_flops_total", &counter_sum(snap, "tensor_gemm_flops_total")]);
    t.row(&[&"tensor_conv_flops_total", &counter_sum(snap, "tensor_conv_flops_total")]);
    t.row(&[&"ddnet_steps_total", &counter_sum(snap, "ddnet_steps_total")]);
    let faults = counter_sum(snap, "dist_faults_injected_total");
    t.row(&[&"dist_faults_injected_total", &faults]);
    t.row(&[&"serve_completed_total", &counter_sum(snap, "serve_completed_total")]);
    t.row(&[&"monitor_cache_hits_total", &counter_sum(snap, "monitor_cache_hits_total")]);
    let burden = snap
        .gauges
        .iter()
        .find(|e| e.name == "bench_monitor_final_burden_ml")
        .map(|e| e.value)
        .unwrap_or(0.0);
    t.row(&[&"bench_monitor_final_burden_ml", &format!("{burden:.1}")]);
    let recovery = snap
        .gauges
        .iter()
        .find(|e| e.name == "bench_serve_cluster_recovery_ms")
        .map(|e| e.value)
        .unwrap_or(0.0);
    t.row(&[&"bench_serve_cluster_recovery_ms", &format!("{recovery:.3}")]);
    let gemm_gflops = snap
        .gauges
        .iter()
        .find(|e| e.name == "bench_gemm_gflops")
        .map(|e| e.value)
        .unwrap_or(0.0);
    t.row(&[&"bench_gemm_gflops", &format!("{gemm_gflops:.3}")]);
    let ladder_top = snap
        .gauges
        .iter()
        .filter(|e| e.name == "bench_kernel_ladder_gflops")
        .map(|e| e.value)
        .fold(0.0, f64::max);
    t.row(&[&"bench_kernel_ladder_gflops (max)", &format!("{ladder_top:.3}")]);
}

fn main() {
    let deterministic = std::env::var("CC19_OBS_DETERMINISTIC").is_ok_and(|v| v == "1");
    println!(
        "== obs_report: deterministic observability sweep (manual clock: {}) ==",
        if deterministic { "on" } else { "off" }
    );

    stage_gemm();
    stage_conv();
    stage_ctsim();
    stage_trainer();
    stage_allreduce();
    stage_serve();
    let cluster_reg = stage_serve_cluster();
    stage_monitor();
    stage_kernel_ladder();
    derive_gauges();

    let snap = cc19_obs::global().snapshot();
    assert!(counter_sum(&snap, "tensor_gemm_flops_total") > 0, "GEMM flops must be nonzero");
    let ladder_gauges =
        snap.gauges.iter().filter(|e| e.name == "bench_kernel_ladder_gflops").count();
    // 3 kernels × 4 stages × dispatch levels available on this host.
    let expect_ladder = 12 * if simd::detected() == SimdLevel::Avx2 { 2 } else { 1 };
    assert_eq!(ladder_gauges, expect_ladder, "kernel-ladder gauge set incomplete");
    assert!(counter_sum(&snap, "ddnet_steps_total") > 0, "trainer must record steps");
    // Cluster worker nodes carry private serve registries, so the global
    // serve counters still reflect exactly the single-server stage.
    assert_eq!(counter_sum(&snap, "serve_completed_total"), SERVE_REQS);
    // The monitoring stage runs 4 computed scans plus one replay: the
    // cache counters in the export must say exactly that.
    assert_eq!(counter_sum(&snap, "monitor_cache_hits_total"), 1);
    assert_eq!(counter_sum(&snap, "monitor_cache_misses_total"), MONITOR_STEPS as u64);
    assert_eq!(counter_sum(&snap, "monitor_cache_evictions_total"), 0);
    let burden_obs: u64 =
        snap.histograms.iter().filter(|e| e.name == "monitor_burden_ml").map(|e| e.value.count()).sum();
    assert_eq!(burden_obs as usize, MONITOR_STEPS + 1, "one burden observation per submission");
    let qps_gauges =
        snap.gauges.iter().filter(|e| e.name == "bench_serve_cluster_node_qps").count();
    assert_eq!(qps_gauges, CLUSTER_WORKERS, "per-node QPS gauge set incomplete");
    let deaths = snap
        .gauges
        .iter()
        .find(|e| e.name == "bench_serve_cluster_worker_deaths")
        .map(|e| e.value)
        .unwrap_or(0.0);
    assert_eq!(deaths, 1.0, "cluster stage must record the scheduled worker death");

    // The cluster stage must leave one stitched span tree per request in
    // the router registry: a router-level `serve.request` root, its
    // dispatch span(s), and the worker subtree grafted beneath — the
    // killed worker's aborted dispatch marked `redispatched`, not lost.
    let spans = cluster_reg.trace_records();
    let roots =
        spans.iter().filter(|r| r.parent_id == 0 && r.path == "serve.request").count() as u64;
    assert_eq!(roots, CLUSTER_REQS, "every clustered request must root one span tree");
    let aborted = spans.iter().filter(|r| r.status == SpanStatus::Redispatched).count();
    assert!(aborted >= 1, "the scheduled kill must leave a redispatched dispatch span");
    // Critical-path invariant: per trace, the segment decomposition sums
    // exactly to the root's end-to-end latency (DESIGN.md §17).
    for root in spans.iter().filter(|r| r.parent_id == 0 && r.path == "serve.request") {
        let (e2e, segs) = cc19_obs::trace::trace_segments(&spans, root.trace_id)
            .expect("completed trace must decompose");
        let total: u64 = segs.values().sum();
        assert_eq!(total, e2e, "trace {} segments must sum to end-to-end", root.trace_id);
    }

    print_summary(&snap);
    cc19_bench::write_result("bench_obs.json", &cc19_obs::export::to_json(&snap));
    cc19_bench::write_result("bench_obs.prom", &cc19_obs::export::to_prometheus(&snap));
    cc19_bench::write_result(
        "trace_report.json",
        &cc19_obs::trace::critical_path_report(&cluster_reg, 3),
    );
    cc19_bench::append_result("bench_history.jsonl", &bench_history_line(&snap));
}
