//! Direct convolution vs im2col+GEMM lowering across channel widths —
//! the framework-internals ablation (see `cc19-tensor::gemm_conv`),
//! plus a sweep of `ConvBackend::Auto` against both forced backends to
//! confirm the dispatch heuristic tracks the faster side at every width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cc19_tensor::conv::{conv2d, Conv2dSpec};
use cc19_tensor::conv_backend::conv2d_dispatch;
use cc19_tensor::gemm_conv::conv2d_gemm;
use cc19_tensor::rng::Xorshift;
use cc19_tensor::ConvBackend;

fn bench_gemm_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_lowering_64x64_5x5");
    let spec = Conv2dSpec { stride: 1, padding: 2 };
    for ch in [4usize, 16, 64] {
        let mut rng = Xorshift::new(ch as u64);
        let x = rng.uniform_tensor([1, ch, 64, 64], -1.0, 1.0);
        let w = rng.uniform_tensor([ch, ch, 5, 5], -0.5, 0.5);
        let b = rng.uniform_tensor([ch], -0.1, 0.1);
        group.bench_with_input(BenchmarkId::new("direct", ch), &ch, |bch, _| {
            bch.iter(|| conv2d(&x, &w, Some(&b), spec).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("im2col_gemm", ch), &ch, |bch, _| {
            bch.iter(|| conv2d_gemm(&x, &w, Some(&b), spec).unwrap())
        });
    }
    group.finish();
}

/// `Auto` against the forced backends across the crossover region.
/// `Auto` should sit on top of whichever forced line is lower: direct at
/// 4 channels (reduction 100), GEMM at 16+ (reduction ≥ 400).
fn bench_backend_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_backend_64x64_5x5");
    let spec = Conv2dSpec { stride: 1, padding: 2 };
    for ch in [4usize, 16, 64] {
        let mut rng = Xorshift::new(100 + ch as u64);
        let x = rng.uniform_tensor([1, ch, 64, 64], -1.0, 1.0);
        let w = rng.uniform_tensor([ch, ch, 5, 5], -0.5, 0.5);
        let b = rng.uniform_tensor([ch], -0.1, 0.1);
        for (name, backend) in [
            ("auto", ConvBackend::Auto),
            ("direct", ConvBackend::Direct),
            ("gemm", ConvBackend::Gemm),
        ] {
            group.bench_with_input(BenchmarkId::new(name, ch), &ch, |bch, _| {
                bch.iter(|| conv2d_dispatch(backend, &x, &w, Some(&b), spec).unwrap())
            });
        }
    }
    group.finish();
}

/// Small-shape end of the crossover: 3×3 kernels on small grids with
/// few channels, where im2col/packing overhead is a large fraction of
/// the work and the direct kernels can still win. These points anchor
/// the low side of `ConvBackend::prefers_gemm`.
fn bench_backend_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_backend_small_3x3");
    let spec = Conv2dSpec { stride: 1, padding: 1 };
    for (ch, img) in [(1usize, 8usize), (1, 32), (2, 16), (4, 32)] {
        let mut rng = Xorshift::new(200 + (ch * img) as u64);
        let x = rng.uniform_tensor([1, ch, img, img], -1.0, 1.0);
        let w = rng.uniform_tensor([ch, ch, 3, 3], -0.5, 0.5);
        let id = format!("{ch}ch_{img}px");
        for (name, backend) in
            [("direct", ConvBackend::Direct), ("gemm", ConvBackend::Gemm)]
        {
            group.bench_with_input(BenchmarkId::new(name, &id), &ch, |bch, _| {
                bch.iter(|| conv2d_dispatch(backend, &x, &w, None, spec).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm_vs_direct, bench_backend_dispatch, bench_backend_small
}
criterion_main!(benches);
