//! Cluster wire protocol: the messages the router and worker nodes
//! exchange over reliable [`cc19_dist::link`] byte links.
//!
//! Payload layouts reuse the serve TCP wire encoders ([`crate::wire`])
//! so probabilities keep crossing process boundaries as raw `f64` bits —
//! the cluster inherits the bit-identity guarantee of the single-node
//! wire. Framing integrity (CRC, sequencing, retransmit) lives a layer
//! below, in the byte link itself.
//!
//! | kind | direction | payload |
//! |------|-----------|---------|
//! | `1` dispatch | router → worker | `[req_id u64][trace ctx 3×u64][encoded ServeRequest]` |
//! | `2` shutdown | router → worker | empty (drain and exit) |
//! | `1` reply-ok | worker → router | `[span section][encode_ok(req_id, diagnosis)]` |
//! | `2` reply-fail | worker → router | `[req_id u64][span section][utf-8 error]` |
//! | `3` reply-reject | worker → router | `[req_id u64][encode_reject]` |
//!
//! Dispatch frames carry the router-minted [`TraceCtx`] so the worker's
//! local span subtree records under the right trace id; `Ok`/`Fail`
//! replies ship that subtree back in a `u32`-length-prefixed *span
//! section* ([`cc19_dist::framing::put_section`]) ahead of the existing
//! payload, and the router grafts it under its dispatch span
//! (DESIGN.md §17). A locally rejected dispatch records no spans, so
//! reject replies stay section-free.

use std::io;

use cc19_dist::framing::{put_section, take_section};
use cc19_obs::{SpanRecord, SpanStatus, TraceCtx};

use computecovid19::Diagnosis;

use crate::request::{Rejected, ServeRequest};
use crate::wire;

const KIND_DISPATCH: u8 = 1;
const KIND_SHUTDOWN: u8 = 2;

const REPLY_OK: u8 = 1;
const REPLY_FAIL: u8 = 2;
const REPLY_REJECT: u8 = 3;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn split_u64(payload: &[u8]) -> io::Result<(u64, &[u8])> {
    if payload.len() < 8 {
        return Err(invalid("truncated cluster frame"));
    }
    let (head, rest) = payload.split_at(8);
    let mut b = [0u8; 8];
    b.copy_from_slice(head);
    Ok((u64::from_le_bytes(b), rest))
}

/// Router → worker message.
#[derive(Debug)]
pub(crate) enum Dispatch {
    /// Serve this study and reply with `req_id`.
    Request {
        /// Router-assigned cluster request id.
        req_id: u64,
        /// Router-minted trace context of the dispatch span; the
        /// worker's local span subtree links under it.
        ctx: TraceCtx,
        /// The study.
        req: ServeRequest,
    },
    /// Drain outstanding work, then exit.
    Shutdown,
}

/// Worker → router message.
#[derive(Debug)]
pub(crate) enum Reply {
    /// Diagnosis completed; `spans` is the worker-local span subtree.
    Ok { req_id: u64, diagnosis: Diagnosis, spans: Vec<SpanRecord> },
    /// Accepted locally but a stage failed; partial spans still ship.
    Fail { req_id: u64, message: String, spans: Vec<SpanRecord> },
    /// The worker's local admission turned the dispatch away.
    Rejected { req_id: u64, why: Rejected },
}

impl Reply {
    /// The cluster request id this reply answers.
    pub(crate) fn req_id(&self) -> u64 {
        match self {
            Reply::Ok { req_id, .. } | Reply::Fail { req_id, .. } | Reply::Rejected { req_id, .. } => {
                *req_id
            }
        }
    }
}

fn split_u32(payload: &[u8]) -> io::Result<(u32, &[u8])> {
    if payload.len() < 4 {
        return Err(invalid("truncated cluster frame"));
    }
    let (head, rest) = payload.split_at(4);
    let mut b = [0u8; 4];
    b.copy_from_slice(head);
    Ok((u32::from_le_bytes(b), rest))
}

/// Serialize a span subtree: `[count u32]` then, per record, five `u64`
/// fields, a status code byte, and a length-prefixed UTF-8 path.
fn encode_spans(spans: &[SpanRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + spans.len() * 64);
    out.extend_from_slice(&(spans.len() as u32).to_le_bytes());
    for s in spans {
        out.extend_from_slice(&s.trace_id.to_le_bytes());
        out.extend_from_slice(&s.span_id.to_le_bytes());
        out.extend_from_slice(&s.parent_id.to_le_bytes());
        out.extend_from_slice(&s.start_ns.to_le_bytes());
        out.extend_from_slice(&s.end_ns.to_le_bytes());
        out.push(s.status.code());
        out.extend_from_slice(&(s.path.len() as u32).to_le_bytes());
        out.extend_from_slice(s.path.as_bytes());
    }
    out
}

fn decode_spans(block: &[u8]) -> io::Result<Vec<SpanRecord>> {
    let (count, mut rest) = split_u32(block)?;
    let mut out = Vec::with_capacity((count as usize).min(1024));
    for _ in 0..count {
        let (trace_id, r) = split_u64(rest)?;
        let (span_id, r) = split_u64(r)?;
        let (parent_id, r) = split_u64(r)?;
        let (start_ns, r) = split_u64(r)?;
        let (end_ns, r) = split_u64(r)?;
        let (&code, r) = r.split_first().ok_or_else(|| invalid("truncated span record"))?;
        let status =
            SpanStatus::from_code(code).ok_or_else(|| invalid("unknown span status code"))?;
        let (path_len, r) = split_u32(r)?;
        if (path_len as usize) > r.len() {
            return Err(invalid("span path overruns frame"));
        }
        let (path, r) = r.split_at(path_len as usize);
        let path = std::str::from_utf8(path)
            .map_err(|_| invalid("non-UTF-8 span path"))?
            .to_owned();
        out.push(SpanRecord { trace_id, span_id, parent_id, path, start_ns, end_ns, status });
        rest = r;
    }
    Ok(out)
}

pub(crate) fn encode_dispatch(req_id: u64, ctx: TraceCtx, req: &ServeRequest) -> Vec<u8> {
    let body = wire::encode_request(req);
    let mut out = Vec::with_capacity(33 + body.len());
    out.push(KIND_DISPATCH);
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&ctx.trace_id.to_le_bytes());
    out.extend_from_slice(&ctx.span_id.to_le_bytes());
    out.extend_from_slice(&ctx.parent_id.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

pub(crate) fn encode_shutdown() -> Vec<u8> {
    vec![KIND_SHUTDOWN]
}

pub(crate) fn decode_dispatch(payload: &[u8]) -> io::Result<Dispatch> {
    let (&kind, rest) = payload.split_first().ok_or_else(|| invalid("empty cluster frame"))?;
    match kind {
        KIND_DISPATCH => {
            let (req_id, rest) = split_u64(rest)?;
            let (trace_id, rest) = split_u64(rest)?;
            let (span_id, rest) = split_u64(rest)?;
            let (parent_id, body) = split_u64(rest)?;
            Ok(Dispatch::Request {
                req_id,
                ctx: TraceCtx { trace_id, span_id, parent_id },
                req: wire::decode_request(body)?,
            })
        }
        KIND_SHUTDOWN => Ok(Dispatch::Shutdown),
        other => Err(invalid(format!("unknown dispatch kind {other}"))),
    }
}

pub(crate) fn encode_reply_ok(req_id: u64, d: &Diagnosis, spans: &[SpanRecord]) -> Vec<u8> {
    let mut out = vec![REPLY_OK];
    put_section(&mut out, &encode_spans(spans));
    out.extend_from_slice(&wire::encode_ok(req_id, d));
    out
}

pub(crate) fn encode_reply_fail(req_id: u64, message: &str, spans: &[SpanRecord]) -> Vec<u8> {
    let mut out = vec![REPLY_FAIL];
    out.extend_from_slice(&req_id.to_le_bytes());
    put_section(&mut out, &encode_spans(spans));
    out.extend_from_slice(message.as_bytes());
    out
}

pub(crate) fn encode_reply_rejected(req_id: u64, why: &Rejected) -> Vec<u8> {
    let mut out = vec![REPLY_REJECT];
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&wire::encode_reject(why));
    out
}

pub(crate) fn decode_reply(payload: &[u8]) -> io::Result<Reply> {
    let (&kind, rest) = payload.split_first().ok_or_else(|| invalid("empty cluster reply"))?;
    match kind {
        REPLY_OK => {
            let (block, rest) = take_section(rest)?;
            let spans = decode_spans(block)?;
            let (req_id, diagnosis) = wire::decode_ok(rest)?;
            Ok(Reply::Ok { req_id, diagnosis, spans })
        }
        REPLY_FAIL => {
            let (req_id, rest) = split_u64(rest)?;
            let (block, msg) = take_section(rest)?;
            let spans = decode_spans(block)?;
            let message = std::str::from_utf8(msg)
                .map_err(|_| invalid("non-UTF-8 failure message"))?
                .to_owned();
            Ok(Reply::Fail { req_id, message, spans })
        }
        REPLY_REJECT => {
            let (req_id, body) = split_u64(rest)?;
            Ok(Reply::Rejected { req_id, why: wire::decode_reject(body)? })
        }
        other => Err(invalid(format!("unknown reply kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::request::Priority;
    use cc19_tensor::Tensor;
    use std::time::Duration;

    fn sample_ctx() -> TraceCtx {
        TraceCtx { trace_id: 9, span_id: 2, parent_id: 1 }
    }

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                trace_id: 9,
                span_id: 1,
                parent_id: 0,
                path: "serve.request".to_string(),
                start_ns: 1_000,
                end_ns: 9_000,
                status: SpanStatus::Ok,
            },
            SpanRecord {
                trace_id: 9,
                span_id: 2,
                parent_id: 1,
                path: "serve.queue".to_string(),
                start_ns: 1_000,
                end_ns: 2_000,
                status: SpanStatus::Redispatched,
            },
        ]
    }

    #[test]
    fn dispatch_roundtrips_bit_exact() {
        let req = ServeRequest {
            volume: Tensor::from_vec([1, 2, 2], vec![1.5, -2.0, 0.25, 9.0]).unwrap(),
            priority: Priority::Urgent,
            deadline: Some(Duration::from_millis(40)),
        };
        match decode_dispatch(&encode_dispatch(77, sample_ctx(), &req)).unwrap() {
            Dispatch::Request { req_id, ctx, req: back } => {
                assert_eq!(req_id, 77);
                assert_eq!(ctx, sample_ctx());
                assert_eq!(back.priority, req.priority);
                assert_eq!(back.deadline, req.deadline);
                assert_eq!(back.volume.data(), req.volume.data());
            }
            other => panic!("wrong decode: {other:?}"),
        }
        assert!(matches!(decode_dispatch(&encode_shutdown()).unwrap(), Dispatch::Shutdown));
    }

    #[test]
    fn replies_roundtrip_probability_bits_and_reasons() {
        let d = Diagnosis {
            probability: 0.987654321234,
            positive: true,
            t_queue: Duration::from_micros(3),
            t_enhance: Duration::from_millis(5),
            t_segment: Duration::from_millis(7),
            t_classify: Duration::from_micros(11),
            t_total: Duration::from_millis(13),
        };
        match decode_reply(&encode_reply_ok(5, &d, &sample_spans())).unwrap() {
            Reply::Ok { req_id, diagnosis, spans } => {
                assert_eq!(req_id, 5);
                assert_eq!(diagnosis.probability.to_bits(), d.probability.to_bits());
                assert_eq!(spans, sample_spans(), "span subtree survives the wire");
            }
            other => panic!("wrong decode: {other:?}"),
        }
        match decode_reply(&encode_reply_fail(6, "stage exploded", &[])).unwrap() {
            Reply::Fail { req_id, message, spans } => {
                assert_eq!((req_id, message.as_str()), (6, "stage exploded"));
                assert!(spans.is_empty());
            }
            other => panic!("wrong decode: {other:?}"),
        }
        let why = Rejected::QueueFull { depth: 9, bound: 9 };
        match decode_reply(&encode_reply_rejected(7, &why)).unwrap() {
            Reply::Rejected { req_id, why: back } => assert_eq!((req_id, back), (7, why)),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        assert!(decode_dispatch(&[]).is_err());
        assert!(decode_dispatch(&[KIND_DISPATCH, 1, 2]).is_err());
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[REPLY_FAIL, 0, 1]).is_err());
        assert!(decode_reply(&[9]).is_err());
    }
}
