//! Request/response types and typed admission rejections.

use std::fmt;
use std::time::Duration;

use cc19_tensor::Tensor;
use computecovid19::Diagnosis;

/// Clinical priority classes, ordered `Routine < Urgent < Stat`
/// (emergency-department "stat" reads dispatch first; the broker never
/// dispatches a lower class while a higher one is queued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Scheduled / screening studies.
    Routine,
    /// Symptomatic-patient studies.
    Urgent,
    /// Emergency reads.
    Stat,
}

impl Priority {
    /// All classes, highest first (dispatch order).
    pub const DISPATCH_ORDER: [Priority; 3] = [Priority::Stat, Priority::Urgent, Priority::Routine];

    /// Queue index (0 = Stat) used by the broker's per-class queues.
    pub(crate) fn class(self) -> usize {
        match self {
            Priority::Stat => 0,
            Priority::Urgent => 1,
            Priority::Routine => 2,
        }
    }

    /// Stable wire/metrics label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Stat => "stat",
            Priority::Urgent => "urgent",
            Priority::Routine => "routine",
        }
    }

    /// Wire discriminant (see [`crate::wire`]).
    pub fn code(self) -> u8 {
        self.class() as u8
    }

    /// Inverse of [`Priority::code`].
    pub fn from_code(code: u8) -> Option<Priority> {
        match code {
            0 => Some(Priority::Stat),
            1 => Some(Priority::Urgent),
            2 => Some(Priority::Routine),
            _ => None,
        }
    }
}

/// One study submitted for diagnosis.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// `(D, H, W)` HU volume.
    pub volume: Tensor,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional latency budget measured from submission; requests whose
    /// budget cannot possibly be met are rejected at admission
    /// ([`Rejected::DeadlineImpossible`]) instead of wasting worker time.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// Routine request without a deadline.
    pub fn routine(volume: Tensor) -> Self {
        ServeRequest { volume, priority: Priority::Routine, deadline: None }
    }
}

/// The answer for one accepted request (delivered exactly once).
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Server-assigned admission id.
    pub id: u64,
    /// The diagnosis, or a stage-failure description. Admission-time
    /// validation makes stage failures unreachable for well-formed
    /// volumes; the error arm exists so a worker never silently drops
    /// an accepted request.
    pub result: Result<Diagnosis, String>,
}

/// Typed admission backpressure: why a submission was turned away
/// *synchronously* (accepted requests are always answered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded admission queue is at capacity.
    QueueFull {
        /// Queue depth observed at submission.
        depth: usize,
        /// Configured bound.
        bound: usize,
    },
    /// The request's latency budget is smaller than the configured
    /// estimated service time, so it would miss its deadline even on an
    /// idle server.
    DeadlineImpossible {
        /// The budget the client asked for.
        deadline: Duration,
        /// The server's estimated minimum service time.
        est_service: Duration,
    },
    /// The volume failed validation (wrong rank, empty extent, …).
    Invalid(String),
    /// The server is draining and no longer admits work.
    ShuttingDown,
}

impl Rejected {
    /// Stable wire code.
    pub fn code(&self) -> u8 {
        match self {
            Rejected::QueueFull { .. } => 0,
            Rejected::DeadlineImpossible { .. } => 1,
            Rejected::Invalid(_) => 2,
            Rejected::ShuttingDown => 3,
        }
    }

    /// Stable metrics label.
    pub fn label(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::DeadlineImpossible { .. } => "deadline_impossible",
            Rejected::Invalid(_) => "invalid",
            Rejected::ShuttingDown => "shutting_down",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth, bound } => {
                write!(f, "admission queue full ({depth}/{bound})")
            }
            Rejected::DeadlineImpossible { deadline, est_service } => write!(
                f,
                "deadline {deadline:?} impossible: estimated service time is {est_service:?}"
            ),
            Rejected::Invalid(why) => write!(f, "invalid request: {why}"),
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_dispatch_order_is_descending() {
        assert!(Priority::Stat > Priority::Urgent);
        assert!(Priority::Urgent > Priority::Routine);
        for (i, p) in Priority::DISPATCH_ORDER.iter().enumerate() {
            assert_eq!(p.class(), i);
            assert_eq!(Priority::from_code(p.code()), Some(*p));
        }
    }

    #[test]
    fn reject_codes_are_stable() {
        assert_eq!(Rejected::QueueFull { depth: 1, bound: 1 }.code(), 0);
        assert_eq!(
            Rejected::DeadlineImpossible {
                deadline: Duration::ZERO,
                est_service: Duration::from_millis(1)
            }
            .code(),
            1
        );
        assert_eq!(Rejected::Invalid("x".into()).code(), 2);
        assert_eq!(Rejected::ShuttingDown.code(), 3);
    }
}
