//! Iterative (algebraic) reconstruction — SIRT — the classical alternative
//! to FBP that the paper's related work cites (§6.3, Beister et al.,
//! "Iterative Reconstruction Methods in X-ray CT").
//!
//! SIRT update: `x ← x + λ · Aᵀ R (b − A x)` with row/column
//! normalizations `R = diag(1/row_sums)`, folded into a per-pixel scale
//! here. We implement it matrix-free on top of the Siddon projector for
//! the parallel-beam geometry, with a non-negativity constraint (linear
//! attenuation cannot be negative).

use rayon::prelude::*;

use cc19_tensor::Tensor;

use crate::geometry::ParallelBeamGeometry;
use crate::siddon::{project_parallel, Grid};
use crate::sinogram::Sinogram;
use crate::Result;

/// SIRT settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SirtConfig {
    /// Number of sweeps over all views.
    pub iterations: usize,
    /// Relaxation factor (0 < λ ≤ 1).
    pub lambda: f32,
    /// Clamp negative attenuation to zero each iteration.
    pub nonneg: bool,
}

impl Default for SirtConfig {
    fn default() -> Self {
        SirtConfig { iterations: 30, lambda: 0.25, nonneg: true }
    }
}

/// Matrix-free back projection of a residual sinogram (unfiltered Aᵀ r),
/// normalized per pixel by the ray length through the grid.
fn backproject_residual(
    residual: &Sinogram,
    geom: &ParallelBeamGeometry,
    grid: Grid,
) -> Tensor {
    let n = grid.n;
    let half = grid.half();
    let mut img = Tensor::zeros([n, n]);
    let det_center = geom.detectors as f32 / 2.0 - 0.5;
    let inv_pitch = 1.0 / geom.det_pitch;
    let angles: Vec<(f32, f32)> =
        (0..geom.views).map(|v| { let a = geom.view_angle(v); (a.cos(), a.sin()) }).collect();
    let rd = residual.tensor().data();
    let det = geom.detectors;

    img.data_mut().par_chunks_mut(n).enumerate().for_each(|(r, row)| {
        let y = half - (r as f32 + 0.5) * grid.px;
        for (c, out) in row.iter_mut().enumerate() {
            let x = (c as f32 + 0.5) * grid.px - half;
            let mut acc = 0.0f32;
            for (v, &(cos_t, sin_t)) in angles.iter().enumerate() {
                let s = x * cos_t + y * sin_t;
                let fd = s * inv_pitch + det_center;
                let i0 = fd.floor();
                let frac = fd - i0;
                let i0 = i0 as isize;
                if i0 < 0 || i0 as usize + 1 >= det {
                    continue;
                }
                let base = v * det + i0 as usize;
                acc += rd[base] * (1.0 - frac) + rd[base + 1] * frac;
            }
            // normalize by accumulated ray length (~views * average chord)
            *out = acc / (geom.views as f32 * grid.px * (n as f32).sqrt());
        }
    });
    img
}

/// SIRT reconstruction of a parallel-beam sinogram onto an `n`×`n` grid.
pub fn sirt(
    sino: &Sinogram,
    geom: &ParallelBeamGeometry,
    grid: Grid,
    cfg: SirtConfig,
) -> Result<Tensor> {
    let mut x = Tensor::zeros([grid.n, grid.n]);
    for _ in 0..cfg.iterations {
        let fwd = project_parallel(&x, grid, geom)?;
        // residual = b - A x
        let mut residual = Sinogram::zeros(geom.views, geom.detectors);
        for ((r, &b), &a) in residual
            .tensor_mut()
            .data_mut()
            .iter_mut()
            .zip(sino.tensor().data())
            .zip(fwd.tensor().data())
        {
            *r = b - a;
        }
        let update = backproject_residual(&residual, geom, grid);
        cc19_tensor::ops::axpy(cfg.lambda, &update, &mut x)?;
        if cfg.nonneg {
            for v in x.data_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }
    Ok(x)
}

/// Sinogram completion by linear view interpolation — the cheap classical
/// fix for sparse-view acquisition the related work cites (§6.3, sinogram
/// inpainting): upsample an `m`-view sinogram to `target_views` by
/// linearly blending adjacent measured views.
pub fn interpolate_views(sino: &Sinogram, target_views: usize) -> Result<Sinogram> {
    let m = sino.views();
    let det = sino.detectors();
    assert!(m >= 2, "need at least two views");
    let mut out = Sinogram::zeros(target_views, det);
    for tv in 0..target_views {
        // position in source-view coordinates
        let f = tv as f32 * m as f32 / target_views as f32;
        let v0 = (f.floor() as usize).min(m - 1);
        let v1 = (v0 + 1).min(m - 1);
        let w = f - v0 as f32;
        let src0 = sino.view(v0);
        let src1 = sino.view(v1);
        let dst = &mut out.tensor_mut().data_mut()[tv * det..(tv + 1) * det];
        for ((d, &a), &b) in dst.iter_mut().zip(src0).zip(src1) {
            *d = a * (1.0 - w) + b * w;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fbp::fbp_parallel;
    use crate::filter::Window;
    use crate::hu;
    use crate::lowdose::{apply_poisson_noise, DoseSettings};
    use crate::phantom::ChestPhantom;

    fn setup(n: usize, views: usize) -> (Tensor, ParallelBeamGeometry, Grid, Sinogram) {
        let grid = Grid::fov500(n);
        let mu = hu::image_hu_to_mu(&ChestPhantom::subject(1, 0.5, None).rasterize_hu(n));
        let geom = ParallelBeamGeometry::for_image(n, grid.px, views);
        let sino = project_parallel(&mu, grid, &geom).unwrap();
        (mu, geom, grid, sino)
    }

    #[test]
    fn sirt_converges_toward_the_phantom() {
        let (mu, geom, grid, sino) = setup(48, 48);
        let short = sirt(&sino, &geom, grid, SirtConfig { iterations: 2, ..Default::default() }).unwrap();
        let long = sirt(&sino, &geom, grid, SirtConfig { iterations: 25, ..Default::default() }).unwrap();
        let err_short = cc19_tensor::reduce::mse(&short, &mu).unwrap();
        let err_long = cc19_tensor::reduce::mse(&long, &mu).unwrap();
        assert!(err_long < err_short, "more iterations must help: {err_long} vs {err_short}");
        // and the long run should be a decent reconstruction
        let rel = err_long.sqrt() / cc19_tensor::reduce::mean(&mu).abs().max(1e-9);
        assert!(rel < 1.5, "relative error {rel}");
    }

    #[test]
    fn sirt_is_nonnegative_when_constrained() {
        let (_, geom, grid, sino) = setup(32, 32);
        let x = sirt(&sino, &geom, grid, SirtConfig::default()).unwrap();
        assert!(x.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sirt_beats_fbp_on_noisy_sparse_data() {
        // The classical selling point of iterative methods: robustness to
        // noise + few views.
        let n = 48;
        let grid = Grid::fov500(n);
        let mu = hu::image_hu_to_mu(&ChestPhantom::subject(2, 0.5, None).rasterize_hu(n));
        let geom = ParallelBeamGeometry::for_image(n, grid.px, 16); // very sparse
        let sino = project_parallel(&mu, grid, &geom).unwrap();
        let noisy = apply_poisson_noise(&sino, DoseSettings { blank_scan: 2.0e4, seed: 3 });

        let fbp = fbp_parallel(&noisy, &geom, grid, Window::RamLak).unwrap();
        let it = sirt(&noisy, &geom, grid, SirtConfig { iterations: 40, ..Default::default() }).unwrap();
        let err_fbp = cc19_tensor::reduce::mse(&fbp, &mu).unwrap();
        let err_sirt = cc19_tensor::reduce::mse(&it, &mu).unwrap();
        assert!(
            err_sirt < err_fbp,
            "SIRT should beat FBP on sparse noisy data: {err_sirt} vs {err_fbp}"
        );
    }

    #[test]
    fn view_interpolation_upsamples_consistently() {
        let (_, _, _, sino) = setup(32, 16);
        let up = interpolate_views(&sino, 64).unwrap();
        assert_eq!(up.views(), 64);
        assert_eq!(up.detectors(), sino.detectors());
        // measured views are preserved exactly at their positions
        assert_eq!(up.view(0), sino.view(0));
        assert_eq!(up.view(4), sino.view(1)); // 64/16 = 4
        // interpolated views lie between neighbours
        for d in 0..sino.detectors() {
            let a = sino.at(0, d).min(sino.at(1, d));
            let b = sino.at(0, d).max(sino.at(1, d));
            let mid = up.at(2, d);
            assert!(mid >= a - 1e-5 && mid <= b + 1e-5);
        }
    }

    #[test]
    fn interpolated_sparse_recon_improves_over_raw_sparse() {
        // Sparse FBP has streaks; interpolating views before FBP reduces
        // them — the classical sinogram-completion result.
        let n = 48;
        let grid = Grid::fov500(n);
        let mu = hu::image_hu_to_mu(&ChestPhantom::subject(4, 0.5, None).rasterize_hu(n));
        let dense_geom = ParallelBeamGeometry::for_image(n, grid.px, 72);
        let sparse_geom = ParallelBeamGeometry::for_image(n, grid.px, 18);
        let sparse = project_parallel(&mu, grid, &sparse_geom).unwrap();

        let raw = fbp_parallel(&sparse, &sparse_geom, grid, Window::RamLak).unwrap();
        let completed = interpolate_views(&sparse, 72).unwrap();
        let comp = fbp_parallel(&completed, &dense_geom, grid, Window::RamLak).unwrap();

        let err_raw = cc19_tensor::reduce::mse(&raw, &mu).unwrap();
        let err_comp = cc19_tensor::reduce::mse(&comp, &mu).unwrap();
        assert!(
            err_comp < err_raw,
            "view interpolation should reduce streaking: {err_comp} vs {err_raw}"
        );
    }
}
