//! The device catalog — Table 4's platform column, with the published
//! specs the paper lists (cores, bandwidth, frequency) plus the derived
//! model parameters.

/// Broad device class, selects model special cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Many-core GPU.
    Gpu,
    /// Multi-core CPU.
    Cpu,
    /// FPGA with OpenCL-generated pipelines.
    Fpga,
}

/// One evaluation platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Display name, matching the paper's Table 4.
    pub name: &'static str,
    /// Class.
    pub class: DeviceClass,
    /// "Number of cores" column (CUDA cores / stream processors / CPU
    /// cores / compute units).
    pub cores: u32,
    /// Peak memory bandwidth, GB/s (Table 4 column).
    pub mem_bw_gbs: f64,
    /// Max clock, MHz (Table 4 column).
    pub freq_mhz: f64,
    /// Peak f32 throughput, GFLOP/s (cores × 2 FMA × freq for GPUs;
    /// cores × SIMD width × 2 × freq for the CPU).
    pub peak_gflops: f64,
    /// Fraction of peak bandwidth the optimized kernels achieve. The
    /// paper's kernels mix row-/column-major accesses, "providing little
    /// opportunity for coalesced memory accesses" (§5.1.3), so this is
    /// well below 1.
    pub bw_efficiency: f64,
    /// Fraction of peak flops achievable.
    pub flop_efficiency: f64,
    /// Sustained global atomic / read-modify-write operations per second —
    /// the bottleneck of the baseline scatter deconvolution.
    pub atomic_ops_per_sec: f64,
    /// Fraction of per-tap conv/deconv loads that actually reach DRAM.
    /// GPUs/CPUs fold cache reuse into `bw_efficiency` (1.0 here); the
    /// FPGA's dedicated kernels tile inputs into block RAM, so almost no
    /// tap re-load touches DDR.
    pub tap_dram_fraction: f64,
    /// Whether the PyTorch runtime exists for this platform (Table 4 has
    /// no PyTorch numbers for Vega and the FPGA).
    pub has_pytorch: bool,
    /// PyTorch-runtime slowdown vs the hand OpenCL kernels (framework
    /// overhead: kernel launches, non-fused ops). Calibrated from the
    /// paper's Table 4 ratios.
    pub pytorch_overhead: f64,
}

/// The paper Xeon's f32 SIMD lane count (AVX-512) — the fallback lane
/// width [`crate::host`] uses when runtime feature detection is
/// unavailable (non-x86 builds).
pub const XEON_FALLBACK_LANES_F32: u32 = 16;

/// AVX-heavy code runs at a reduced clock; the catalog's Xeon peak is
/// derated ~2× from the nominal `cores × lanes × 2 × freq` product
/// ("~1300 GFLOP/s nominal"). [`crate::host`] applies the same derate to
/// runtime-derived peaks so they stay comparable with this catalog.
pub const AVX_CLOCK_DERATE: f64 = 0.5;

/// The catalog's Xeon Gold 6128 peak: 24 cores × 16 f32 lanes (AVX-512)
/// × 2 (FMA) × 3.4 GHz × [`AVX_CLOCK_DERATE`], rounded as published in
/// earlier revisions of this table. This is the *fallback* number —
/// [`crate::host::host_cpu_device`] derives the real host's peak from
/// `is_x86_feature_detected!` lane widths and the detected core count,
/// and only the paper-platform *predictions* keep using this constant.
pub const XEON_FALLBACK_PEAK_GFLOPS: f64 = 1305.0;

/// The six platforms of Table 4.
pub const DEVICES: [Device; 6] = [
    Device {
        name: "Nvidia V100 GPU",
        class: DeviceClass::Gpu,
        cores: 5120,
        mem_bw_gbs: 900.0,
        freq_mhz: 1380.0,
        peak_gflops: 14130.0, // 5120 * 2 * 1.38 GHz
        bw_efficiency: 0.80,
        flop_efficiency: 0.50,
        atomic_ops_per_sec: 1.5e8,
        tap_dram_fraction: 1.0,
        has_pytorch: true,
        pytorch_overhead: 2.2,
    },
    Device {
        name: "Nvidia P100 GPU",
        class: DeviceClass::Gpu,
        cores: 3584,
        mem_bw_gbs: 732.0,
        freq_mhz: 1328.0,
        peak_gflops: 9519.0,
        bw_efficiency: 0.33,
        flop_efficiency: 0.40,
        atomic_ops_per_sec: 6.0e7,
        tap_dram_fraction: 1.0,
        has_pytorch: true,
        pytorch_overhead: 2.9,
    },
    Device {
        name: "AMD Radeon Vega Frontier GPU",
        class: DeviceClass::Gpu,
        cores: 4096,
        mem_bw_gbs: 480.0,
        freq_mhz: 1600.0,
        peak_gflops: 13107.0,
        bw_efficiency: 0.50,
        flop_efficiency: 0.40,
        atomic_ops_per_sec: 4.0e7,
        tap_dram_fraction: 1.0,
        has_pytorch: false,
        pytorch_overhead: 0.0,
    },
    Device {
        name: "Nvidia T4 GPU",
        class: DeviceClass::Gpu,
        cores: 2560,
        mem_bw_gbs: 320.0,
        freq_mhz: 1590.0,
        peak_gflops: 8141.0,
        bw_efficiency: 0.55,
        flop_efficiency: 0.40,
        atomic_ops_per_sec: 1.5e8,
        tap_dram_fraction: 1.0,
        has_pytorch: true,
        pytorch_overhead: 4.4,
    },
    Device {
        name: "Intel Xeon Gold 6128 CPU",
        class: DeviceClass::Cpu,
        cores: 24,
        mem_bw_gbs: 119.0,
        freq_mhz: 3400.0,
        // 24 cores x AVX-512 (16 f32 lanes) x 2 (FMA) x 3.4 GHz, derated
        // for the non-AVX clock — the documented fallback constant;
        // crate::host derives the running host's value at runtime.
        peak_gflops: XEON_FALLBACK_PEAK_GFLOPS,
        bw_efficiency: 0.55,
        flop_efficiency: 0.15,
        // CPU caches absorb most of the scatter RMW traffic, so the CPU
        // baseline is only a few times slower, not hundreds (Table 7).
        atomic_ops_per_sec: 2.5e9,
        tap_dram_fraction: 1.0,
        has_pytorch: true,
        pytorch_overhead: 3.4,
    },
    Device {
        name: "Intel Arria 10 GX 1150 FPGA",
        class: DeviceClass::Fpga,
        cores: 2, // compute units, per the paper's num_compute_units(2)
        mem_bw_gbs: 3.0, // the paper lists "< 3"
        freq_mhz: 184.0,
        // 2 CUs x 2 (mul+add) x 184 MHz = 0.736 GFLOP/s scalar pipelines;
        // vectorization (x5, deconv only) is applied in the model.
        peak_gflops: 0.736,
        bw_efficiency: 0.85,
        flop_efficiency: 0.95,
        atomic_ops_per_sec: 3.5e7,
        tap_dram_fraction: 0.04,
        has_pytorch: false,
        pytorch_overhead: 0.0,
    },
];

impl Device {
    /// Find a device by (case-insensitive) substring of its name.
    pub fn find(needle: &str) -> Option<&'static Device> {
        let n = needle.to_ascii_lowercase();
        DEVICES.iter().find(|d| d.name.to_ascii_lowercase().contains(&n))
    }

    /// Effective memory bandwidth in bytes/s.
    pub fn effective_bw(&self) -> f64 {
        self.mem_bw_gbs * 1e9 * self.bw_efficiency
    }

    /// Effective compute throughput in FLOP/s, with the FPGA's
    /// deconvolution-vectorization special case exposed via `vector5`.
    pub fn effective_flops(&self, vector5: bool) -> f64 {
        let base = self.peak_gflops * 1e9 * self.flop_efficiency;
        if self.class == DeviceClass::Fpga && vector5 {
            base * 5.0
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table4_columns() {
        let v100 = Device::find("V100").unwrap();
        assert_eq!(v100.cores, 5120);
        assert_eq!(v100.mem_bw_gbs, 900.0);
        assert_eq!(v100.freq_mhz, 1380.0);
        let cpu = Device::find("6128").unwrap();
        assert_eq!(cpu.cores, 24);
        assert_eq!(cpu.mem_bw_gbs, 119.0);
        let fpga = Device::find("Arria").unwrap();
        assert_eq!(fpga.cores, 2);
        assert!(fpga.mem_bw_gbs <= 3.0);
    }

    #[test]
    fn bandwidth_ordering_matches_paper_result_ordering() {
        // §5.1.3: performance tracks memory bandwidth; the catalog must
        // preserve the paper's effective-bandwidth ordering V100 > P100 >
        // Vega/T4 > CPU > FPGA (effective, not nominal).
        let bw = |n: &str| Device::find(n).unwrap().effective_bw();
        assert!(bw("V100") > bw("P100"));
        assert!(bw("P100") > bw("T4"));
        assert!(bw("T4") > bw("6128"));
        assert!(bw("6128") > bw("Arria"));
    }

    #[test]
    fn pytorch_availability_matches_table4_dashes() {
        assert!(Device::find("V100").unwrap().has_pytorch);
        assert!(Device::find("T4").unwrap().has_pytorch);
        assert!(!Device::find("Vega").unwrap().has_pytorch);
        assert!(!Device::find("Arria").unwrap().has_pytorch);
    }

    #[test]
    fn fpga_vectorization_quintuples_flops() {
        let fpga = Device::find("Arria").unwrap();
        assert!((fpga.effective_flops(true) / fpga.effective_flops(false) - 5.0).abs() < 1e-9);
        let gpu = Device::find("V100").unwrap();
        assert_eq!(gpu.effective_flops(true), gpu.effective_flops(false));
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert!(Device::find("v100").is_some());
        assert!(Device::find("xeon").is_some());
        assert!(Device::find("gtx 9000").is_none());
        assert_eq!(DEVICES.len(), 6);
    }
}
