//! End-to-end test of the `cc19` CLI binary: simulate → save container →
//! train a tiny enhancer → enhance → diagnose from the saved container.

use std::path::PathBuf;
use std::process::Command;

fn cc19() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cc19"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cc19_cli_e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn simulate_save_and_diagnose_roundtrip() {
    let dir = workdir("diag");
    let vol = dir.join("study.cc19v");

    let out = cc19()
        .args(["simulate", "--seed", "3", "--n", "32", "--slices", "4", "--positive"])
        .args(["--out"])
        .arg(dir.join("pgms"))
        .args(["--save"])
        .arg(&vol)
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(vol.exists());
    assert!(dir.join("pgms/slice_000.pgm").exists());

    let out = cc19()
        .args(["diagnose", "--input"])
        .arg(&vol)
        .output()
        .expect("run diagnose");
    assert!(out.status.success(), "diagnose failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p(COVID-19)"), "missing probability line: {stdout}");
    assert!(stdout.contains("ground truth: positive"), "meta lost in container: {stdout}");
}

#[test]
fn train_and_enhance_flow() {
    let dir = workdir("train");
    let ckpt = dir.join("ddnet.ckpt");

    let out = cc19()
        .args(["train-enhancer", "--pairs", "6", "--epochs", "2", "--n", "32"])
        .args(["--out"])
        .arg(&ckpt)
        .output()
        .expect("run train-enhancer");
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(ckpt.exists());

    let out = cc19()
        .args(["enhance", "--seed", "4", "--n", "32", "--model"])
        .arg(&ckpt)
        .args(["--out"])
        .arg(dir.join("panels"))
        .output()
        .expect("run enhance");
    assert!(out.status.success(), "enhance failed: {}", String::from_utf8_lossy(&out.stderr));
    for f in ["lowdose.pgm", "enhanced.pgm", "target.pgm"] {
        assert!(dir.join("panels").join(f).exists(), "missing {f}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cc19().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "no usage text: {err}");
}
