//~ path: crates/data/src/fixture2.rs
//~ expect: none
// cc19-lint: allow(unsafe, "fixture demonstrating the per-file opt-out marker")
// With the explicit marker above, the unsafe budget rule stays silent.

pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
