//! Offline shim for the subset of [crossbeam](https://docs.rs/crossbeam)
//! this workspace uses: `crossbeam::channel::{unbounded, Sender, Receiver}`.
//!
//! The build container has no crates.io access (see
//! `third_party/README.md`). The one property callers need beyond
//! `std::sync::mpsc` is that `Receiver` is `Clone` (multiple consumers
//! share one queue), so this shim implements a small MPMC queue with a
//! `Mutex<VecDeque>` + `Condvar`. Blocking `recv` returns `Err` once all
//! senders are dropped and the queue is drained, matching crossbeam's
//! disconnect semantics.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by `send` when every `Receiver` has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` when the channel is empty and every
    /// `Sender` has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// The channel is empty and every `Sender` has been dropped.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they can observe disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a value; never blocks (unbounded queue).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        /// Non-blocking pop; `None` if the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }

        /// Block until a value is available, every sender is gone, or
        /// `timeout` elapses — crossbeam's `recv_timeout` semantics.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) =
                    self.shared.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if res.timed_out() && st.items.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn disconnect_unblocks_recv() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 1);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use super::RecvTimeoutError;
            let (tx, rx) = unbounded::<u32>();
            let t = std::time::Duration::from_millis(10);
            assert_eq!(rx.recv_timeout(t), Err(RecvTimeoutError::Timeout));
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(t), Ok(5));
            drop(tx);
            assert_eq!(rx.recv_timeout(t), Err(RecvTimeoutError::Disconnected));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(7).unwrap();
            drop(tx);
            let got = h.join().unwrap();
            assert!(got == 7 || rx.try_recv() == Some(7));
        }
    }
}
