//! GEMM-based convolution: im2col/col2im lowering onto the blocked
//! SGEMM engine in [`crate::gemm`], forward **and** backward, plus the
//! transposed convolution. This is the lowering most deep-learning
//! frameworks use; the direct kernels in [`crate::conv`] are the
//! alternative.
//!
//! The trade-off: the direct path wins for small channel counts (its
//! working set stays in cache and im2col's `C*K*K`-fold input blow-up
//! buys nothing), while the GEMM path wins as `C*K*K` grows because all
//! FLOPs then flow through the register-tiled, packed SGEMM instead of
//! short strided dot products. `ConvBackend::Auto` in `cc19-nn` picks a
//! side per shape; the `gemm_vs_direct` bench in `cc19-bench` measures
//! the crossover.
//!
//! Layout conventions (identical to [`crate::conv`]):
//!
//! * conv2d weight `(Cout, Cin, K, K)`; transposed-conv weight
//!   `(Cin, Cout, K, K)`;
//! * im2col matrix: `(N*OH*OW, Cin*K*K)` — one row per output position;
//! * every GEMM against a transposed operand goes through
//!   [`crate::gemm::matmul_tn`] / [`crate::gemm::matmul_nt`], so no
//!   transpose is ever materialized.
//!
//! The backward pass is two GEMMs plus one col2im:
//!
//! ```text
//! grad_rows = relayout(grad_out)            // (N*OH*OW, Cout)
//! gw = grad_rows^T x cols                   // (Cout, Cin*K*K)
//! gx = col2im(grad_rows x wmat)             // via gather, parallel-safe
//! ```
//!
//! and `conv_transpose2d_gemm` reuses `col2im` for its *forward* pass —
//! transposed convolution is exactly the adjoint of the conv2d
//! input-gradient, with `im2col(grad)` showing up in its backward.

use rayon::prelude::*;

use crate::conv::Conv2dSpec;
use crate::gemm::{matmul, matmul_nt, matmul_tn};
use crate::{Result, Tensor, TensorError};

/// Lower a `(N, C, H, W)` input into the im2col matrix of shape
/// `(N * OH * OW, C * K * K)`: each row is the receptive field of one
/// output position. Parallel over output rows (disjoint output slices).
pub fn im2col(input: &Tensor, k: usize, spec: Conv2dSpec) -> Result<Tensor> {
    if input.shape().rank() != 4 {
        return Err(TensorError::Incompatible("im2col expects rank-4 NCHW input".into()));
    }
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = spec.out_extent(h, k);
    let ow = spec.out_extent(w, k);
    let cols = c * k * k;
    let mut out = Tensor::zeros([n * oh * ow, cols]);
    if n * oh * ow == 0 || cols == 0 {
        return Ok(out);
    }
    let ind = input.data();
    let p = spec.padding as isize;

    out.data_mut().par_chunks_mut(cols).enumerate().for_each(|(row_idx, row)| {
        let ox = row_idx % ow;
        let oy = (row_idx / ow) % oh;
        let ni = row_idx / (oh * ow);
        for ci in 0..c {
            let ibase = (ni * c + ci) * h * w;
            for ky in 0..k {
                let iy = (oy * spec.stride + ky) as isize - p;
                let dst = &mut row[ci * k * k + ky * k..ci * k * k + ky * k + k];
                if iy < 0 || iy >= h as isize {
                    dst.fill(0.0);
                    continue;
                }
                let src_row = &ind[ibase + iy as usize * w..ibase + iy as usize * w + w];
                for (kx, o) in dst.iter_mut().enumerate() {
                    let ix = (ox * spec.stride + kx) as isize - p;
                    *o = if ix >= 0 && ix < w as isize { src_row[ix as usize] } else { 0.0 };
                }
            }
        }
    });
    Ok(out)
}

/// Inverse lowering: scatter-add an im2col-shaped matrix
/// `(N*OH*OW, C*K*K)` back onto a `(N, C, H, W)` image, where
/// `OH = spec.out_extent(h, k)` etc.
///
/// Written in *gather* form — each input pixel sums every
/// `(oy, ox, ky, kx)` combination that covers it — so output pixels are
/// written exactly once and the loop parallelizes over `(n, c)` planes
/// with no scatter races or atomics.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    cols.shape().expect_rank(2)?;
    let oh = spec.out_extent(h, k);
    let ow = spec.out_extent(w, k);
    let ckk = c * k * k;
    if cols.dims() != [n * oh * ow, ckk] {
        return Err(TensorError::Incompatible(format!(
            "col2im: cols shape {:?} inconsistent with (n={n}, c={c}, h={h}, w={w}, k={k}, {spec:?})",
            cols.dims()
        )));
    }
    let mut out = Tensor::zeros([n, c, h, w]);
    if out.numel() == 0 {
        return Ok(out);
    }
    let cd = cols.data();
    let s = spec.stride;
    let p = spec.padding;
    out.data_mut().par_chunks_mut(h * w).enumerate().for_each(|(plane, od)| {
        let ci = plane % c;
        let ni = plane / c;
        for iy in 0..h {
            for ix in 0..w {
                let mut acc = 0.0f32;
                for ky in 0..k {
                    // oy * s + ky - p == iy  =>  oy = (iy + p - ky) / s
                    let ty = iy + p;
                    if ty < ky || !(ty - ky).is_multiple_of(s) {
                        continue;
                    }
                    let oy = (ty - ky) / s;
                    if oy >= oh {
                        continue;
                    }
                    for kx in 0..k {
                        let tx = ix + p;
                        if tx < kx || !(tx - kx).is_multiple_of(s) {
                            continue;
                        }
                        let ox = (tx - kx) / s;
                        if ox >= ow {
                            continue;
                        }
                        let row = ((ni * oh + oy) * ow + ox) * ckk;
                        acc += cd[row + ci * k * k + ky * k + kx];
                    }
                }
                od[iy * w + ix] = acc;
            }
        }
    });
    Ok(out)
}

/// Re-layout `(N, C, H, W)` into row-major `(N*H*W, C)` — the GEMM-side
/// view where each spatial position is a row.
fn nchw_to_rows(t: &Tensor) -> Result<Tensor> {
    if t.shape().rank() != 4 {
        return Err(TensorError::Incompatible("nchw_to_rows expects rank-4 input".into()));
    }
    let d = t.dims();
    let (n, c, hw) = (d[0], d[1], d[2] * d[3]);
    let mut out = Tensor::zeros([n * hw, c]);
    let td = t.data();
    out.data_mut().par_chunks_mut(c).enumerate().for_each(|(row_idx, row)| {
        let pos = row_idx % hw;
        let ni = row_idx / hw;
        for (ci, o) in row.iter_mut().enumerate() {
            *o = td[(ni * c + ci) * hw + pos];
        }
    });
    Ok(out)
}

/// Inverse of [`nchw_to_rows`]: `(N*H*W, C)` rows back to `(N, C, H, W)`.
fn rows_to_nchw(rows: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Result<Tensor> {
    let hw = h * w;
    if rows.dims() != [n * hw, c] {
        return Err(TensorError::Incompatible(format!(
            "rows_to_nchw: rows shape {:?} inconsistent with ({n}, {c}, {h}, {w})",
            rows.dims()
        )));
    }
    let mut out = Tensor::zeros([n, c, h, w]);
    let rd = rows.data();
    out.data_mut().par_chunks_mut(hw).enumerate().for_each(|(plane, od)| {
        let ci = plane % c;
        let ni = plane / c;
        for (pos, o) in od.iter_mut().enumerate() {
            *o = rd[(ni * hw + pos) * c + ci];
        }
    });
    Ok(out)
}

/// Add a per-channel bias in place on an NCHW tensor.
fn add_bias_nchw(out: &mut Tensor, bias: &Tensor, cout: usize) -> Result<()> {
    if bias.numel() != cout {
        return Err(TensorError::Incompatible(format!(
            "bias has {} elements, want {cout}",
            bias.numel()
        )));
    }
    let d = out.dims();
    let hw = d[2] * d[3];
    let bd = bias.data().to_vec();
    out.data_mut().par_chunks_mut(hw).enumerate().for_each(|(plane, od)| {
        let bb = bd[plane % cout];
        for v in od {
            *v += bb;
        }
    });
    Ok(())
}

/// Per-output-channel sum of an NCHW gradient (the bias gradient).
fn channel_sums(grad_out: &Tensor, cout: usize) -> Tensor {
    let d = grad_out.dims();
    let (n, hw) = (d[0], d[2] * d[3]);
    let gd = grad_out.data();
    let mut gb = Tensor::zeros([cout]);
    let gbd = gb.data_mut();
    for ni in 0..n {
        for (co, g) in gbd.iter_mut().enumerate() {
            let base = (ni * cout + co) * hw;
            *g += gd[base..base + hw].iter().sum::<f32>();
        }
    }
    gb
}

/// GEMM-backed convolution, same semantics as [`crate::conv::conv2d`]
/// (square kernels): `im2col` then one `(N*OH*OW, C*K*K) x (C*K*K, Cout)`
/// product against the reshaped weight.
pub fn conv2d_gemm(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    if weight.shape().rank() != 4 {
        return Err(TensorError::Incompatible("conv2d_gemm expects rank-4 weight".into()));
    }
    let wd = weight.dims();
    let (cout, cin, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    if kh != kw {
        return Err(TensorError::Incompatible("conv2d_gemm supports square kernels only".into()));
    }
    let d = input.dims();
    if d[1] != cin {
        return Err(TensorError::Incompatible(format!(
            "conv2d_gemm: input has {} channels, weight expects {cin}",
            d[1]
        )));
    }
    let (n, h, w) = (d[0], d[2], d[3]);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let _obs = crate::obs::conv_call(
        "conv2d_gemm",
        "fwd",
        2 * crate::obs::macs(&[n, cout, cin, kh, kw, oh, ow]),
    );

    // (N*OH*OW, C*K*K) x (Cout, C*K*K)^T = (N*OH*OW, Cout); the weight
    // transpose is folded into GEMM packing, not materialized.
    let cols = im2col(input, kh, spec)?;
    let wmat = weight.reshape([cout, cin * kh * kw])?;
    let prod = matmul_nt(&cols, &wmat)?;

    let mut out = rows_to_nchw(&prod, n, cout, oh, ow)?;
    if let Some(b) = bias {
        add_bias_nchw(&mut out, b, cout)?;
    }
    Ok(out)
}

/// Backward pass of [`conv2d_gemm`]; returns
/// `(grad_input, grad_weight, grad_bias)`, matching
/// [`crate::conv::conv2d_backward`].
///
/// Both gradients are single GEMMs over the same im2col matrix the
/// forward pass uses:
/// `gw = grad_rows^T x cols` and `gx = col2im(grad_rows x wmat)`.
pub fn conv2d_gemm_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    let wd = weight.dims();
    let (cout, cin, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    if kh != kw {
        return Err(TensorError::Incompatible(
            "conv2d_gemm_backward supports square kernels only".into(),
        ));
    }
    let d = input.dims();
    let (n, h, w) = (d[0], d[2], d[3]);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);
    let god = grad_out.dims();
    if god != [n, cout, oh, ow] {
        return Err(TensorError::Incompatible(format!(
            "conv2d_gemm_backward: grad_out shape {god:?} inconsistent with input {:?} / weight {wd:?}",
            input.dims()
        )));
    }
    let _obs = crate::obs::conv_call(
        "conv2d_gemm",
        "bwd",
        4 * crate::obs::macs(&[n, cout, cin, kh, kw, oh, ow]),
    );

    let grad_rows = nchw_to_rows(grad_out)?; // (N*OH*OW, Cout)
    let cols = im2col(input, kh, spec)?; // (N*OH*OW, Cin*K*K)

    // grad_weight: (Cout, N*OH*OW) x (N*OH*OW, Cin*K*K).
    let gw_mat = matmul_tn(&grad_rows, &cols)?;
    let gw = gw_mat.reshape([cout, cin, kh, kw])?;

    // grad_input: spread (N*OH*OW, Cout) x (Cout, Cin*K*K) back onto the
    // input grid.
    let wmat = weight.reshape([cout, cin * kh * kw])?;
    let gcols = matmul(&grad_rows, &wmat)?;
    let gx = col2im(&gcols, n, cin, h, w, kh, spec)?;

    let gb = channel_sums(grad_out, cout);
    Ok((gx, gw, gb))
}

/// GEMM-backed transposed convolution, same semantics as
/// [`crate::conv::conv_transpose2d`] (weight `(Cin, Cout, K, K)`).
///
/// The transposed convolution *is* the adjoint of the conv2d
/// input-gradient, so its forward pass is the `gx` path of
/// [`conv2d_gemm_backward`] run with the roles swapped: one GEMM
/// `(N*H*W, Cin) x (Cin, Cout*K*K)` followed by `col2im` onto the
/// up-sampled output grid.
pub fn conv_transpose2d_gemm(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    if input.shape().rank() != 4 || weight.shape().rank() != 4 {
        return Err(TensorError::Incompatible(
            "conv_transpose2d_gemm expects rank-4 input and weight".into(),
        ));
    }
    let wd = weight.dims();
    let (cin_w, cout, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    if kh != kw {
        return Err(TensorError::Incompatible(
            "conv_transpose2d_gemm supports square kernels only".into(),
        ));
    }
    let d = input.dims();
    let (n, cin, h, w) = (d[0], d[1], d[2], d[3]);
    if cin != cin_w {
        return Err(TensorError::Incompatible(format!(
            "conv_transpose2d_gemm: input has {cin} channels, weight expects {cin_w}"
        )));
    }
    let oht = spec.transposed_out_extent(h, kh);
    let owt = spec.transposed_out_extent(w, kw);
    let _obs = crate::obs::conv_call(
        "conv_transpose2d_gemm",
        "fwd",
        2 * crate::obs::macs(&[n, cin, h, w, cout, kh, kw]),
    );

    let rows = nchw_to_rows(input)?; // (N*H*W, Cin)
    let wmat = weight.reshape([cin, cout * kh * kw])?;
    let gcols = matmul(&rows, &wmat)?; // (N*H*W, Cout*K*K)
    // The conv geometry linking the two grids: the *output* (oht, owt)
    // plays the input role, and spec.out_extent(oht, k) == h exactly.
    let mut out = col2im(&gcols, n, cout, oht, owt, kh, spec)?;
    if let Some(b) = bias {
        add_bias_nchw(&mut out, b, cout)?;
    }
    Ok(out)
}

/// Backward pass of [`conv_transpose2d_gemm`]; returns
/// `(grad_input, grad_weight, grad_bias)`, matching
/// [`crate::conv::conv_transpose2d_backward`].
///
/// By adjointness the roles flip once more: `im2col(grad_out)` is the
/// shared matrix, `gx = im2col(grad) x wmat^T` and
/// `gw = x_rows^T x im2col(grad)`.
pub fn conv_transpose2d_gemm_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    let wd = weight.dims();
    let (cin, cout, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    if kh != kw {
        return Err(TensorError::Incompatible(
            "conv_transpose2d_gemm_backward supports square kernels only".into(),
        ));
    }
    let d = input.dims();
    let (n, h, w) = (d[0], d[2], d[3]);
    let oht = spec.transposed_out_extent(h, kh);
    let owt = spec.transposed_out_extent(w, kw);
    if grad_out.dims() != [n, cout, oht, owt] {
        return Err(TensorError::Incompatible(format!(
            "conv_transpose2d_gemm_backward: grad_out shape {:?} inconsistent with input {:?} / weight {wd:?}",
            grad_out.dims(),
            input.dims()
        )));
    }
    let _obs = crate::obs::conv_call(
        "conv_transpose2d_gemm",
        "bwd",
        4 * crate::obs::macs(&[n, cin, h, w, cout, kh, kw]),
    );

    // (N*H*W, Cout*K*K): receptive fields of grad_out seen from the
    // input grid (out_extent(oht, k) == h).
    let cols_g = im2col(grad_out, kh, spec)?;
    let wmat = weight.reshape([cin, cout * kh * kw])?;

    // grad_input: (N*H*W, Cout*K*K) x (Cin, Cout*K*K)^T.
    let gx_rows = matmul_nt(&cols_g, &wmat)?;
    let gx = rows_to_nchw(&gx_rows, n, cin, h, w)?;

    // grad_weight: (Cin, N*H*W) x (N*H*W, Cout*K*K).
    let x_rows = nchw_to_rows(input)?;
    let gw_mat = matmul_tn(&x_rows, &cols_g)?;
    let gw = gw_mat.reshape([cin, cout, kh, kw])?;

    let gb = channel_sums(grad_out, cout);
    Ok((gx, gw, gb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d, conv2d_backward, conv_transpose2d, conv_transpose2d_backward};
    use crate::rng::Xorshift;

    #[test]
    fn im2col_shapes_and_content() {
        // 1x1x3x3 input, k=2, stride 1, no padding: 4 rows of 4
        let input = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let cols = im2col(&input, 2, Conv2dSpec { stride: 1, padding: 0 }).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // first receptive field: [1,2,4,5]
        assert_eq!(&cols.data()[..4], &[1.0, 2.0, 4.0, 5.0]);
        // last: [5,6,8,9]
        assert_eq!(&cols.data()[12..], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_zero_pads() {
        let input = Tensor::ones([1, 1, 2, 2]);
        let cols = im2col(&input, 3, Conv2dSpec { stride: 1, padding: 1 }).unwrap();
        assert_eq!(cols.dims(), &[4, 9]);
        // top-left output: receptive field has 5 padded zeros, 4 ones
        let first: f32 = cols.data()[..9].iter().sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property, checked over stride/padding combinations.
        let mut rng = Xorshift::new(5);
        for (stride, padding, k) in [(1usize, 0usize, 3usize), (2, 1, 3), (1, 2, 5), (3, 1, 2)] {
            let spec = Conv2dSpec { stride, padding };
            let (n, c, h, w) = (2, 3, 7, 6);
            if h + 2 * padding < k || w + 2 * padding < k {
                continue;
            }
            let x = rng.uniform_tensor([n, c, h, w], -1.0, 1.0);
            let cols_shape = im2col(&x, k, spec).unwrap();
            let y = rng.uniform_tensor(cols_shape.dims().to_vec(), -1.0, 1.0);
            let lhs: f32 = cols_shape.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
            let back = col2im(&y, n, c, h, w, k, spec).unwrap();
            let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
            assert!(
                (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
                "adjoint mismatch at stride {stride} pad {padding} k {k}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn gemm_matches_direct_conv() {
        let mut rng = Xorshift::new(1);
        for (stride, padding, k) in [(1usize, 1usize, 3usize), (2, 2, 5), (1, 0, 1)] {
            let spec = Conv2dSpec { stride, padding };
            let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
            let wgt = rng.uniform_tensor([4, 3, k, k], -0.5, 0.5);
            let b = rng.uniform_tensor([4], -0.2, 0.2);
            let direct = conv2d(&x, &wgt, Some(&b), spec).unwrap();
            let gemm = conv2d_gemm(&x, &wgt, Some(&b), spec).unwrap();
            assert_eq!(direct.dims(), gemm.dims());
            assert!(
                direct.all_close(&gemm, 1e-4),
                "mismatch at stride {stride} pad {padding} k {k}: max diff {}",
                direct.max_abs_diff(&gemm).unwrap()
            );
        }
    }

    #[test]
    fn gemm_backward_matches_direct_backward() {
        let mut rng = Xorshift::new(2);
        for (stride, padding, k) in [(1usize, 1usize, 3usize), (2, 2, 5), (1, 0, 1), (2, 0, 2)] {
            let spec = Conv2dSpec { stride, padding };
            let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
            let wgt = rng.uniform_tensor([4, 3, k, k], -0.5, 0.5);
            let oh = spec.out_extent(8, k);
            let grad = rng.uniform_tensor([2, 4, oh, oh], -1.0, 1.0);
            let (gx_d, gw_d, gb_d) = conv2d_backward(&x, &wgt, &grad, spec).unwrap();
            let (gx_g, gw_g, gb_g) = conv2d_gemm_backward(&x, &wgt, &grad, spec).unwrap();
            assert!(
                gx_d.all_close(&gx_g, 1e-3),
                "gx mismatch at stride {stride} pad {padding} k {k}: {}",
                gx_d.max_abs_diff(&gx_g).unwrap()
            );
            assert!(
                gw_d.all_close(&gw_g, 1e-3),
                "gw mismatch at stride {stride} pad {padding} k {k}: {}",
                gw_d.max_abs_diff(&gw_g).unwrap()
            );
            assert!(gb_d.all_close(&gb_g, 1e-3), "gb mismatch at stride {stride} pad {padding} k {k}");
        }
    }

    #[test]
    fn gemm_transpose_matches_direct_transpose() {
        let mut rng = Xorshift::new(3);
        for (stride, padding, k) in [(1usize, 0usize, 3usize), (2, 1, 3), (2, 0, 2), (1, 1, 5)] {
            let spec = Conv2dSpec { stride, padding };
            let x = rng.uniform_tensor([2, 4, 5, 6], -1.0, 1.0);
            let wgt = rng.uniform_tensor([4, 3, k, k], -0.5, 0.5); // (Cin, Cout, K, K)
            let b = rng.uniform_tensor([3], -0.2, 0.2);
            let direct = conv_transpose2d(&x, &wgt, Some(&b), spec).unwrap();
            let gemm = conv_transpose2d_gemm(&x, &wgt, Some(&b), spec).unwrap();
            assert_eq!(direct.dims(), gemm.dims());
            assert!(
                direct.all_close(&gemm, 1e-3),
                "mismatch at stride {stride} pad {padding} k {k}: {}",
                direct.max_abs_diff(&gemm).unwrap()
            );
        }
    }

    #[test]
    fn gemm_transpose_backward_matches_direct() {
        let mut rng = Xorshift::new(4);
        for (stride, padding, k) in [(1usize, 0usize, 3usize), (2, 1, 3), (2, 0, 2)] {
            let spec = Conv2dSpec { stride, padding };
            let x = rng.uniform_tensor([2, 4, 5, 5], -1.0, 1.0);
            let wgt = rng.uniform_tensor([4, 3, k, k], -0.5, 0.5);
            let oht = spec.transposed_out_extent(5, k);
            let grad = rng.uniform_tensor([2, 3, oht, oht], -1.0, 1.0);
            let (gx_d, gw_d, gb_d) = conv_transpose2d_backward(&x, &wgt, &grad, spec).unwrap();
            let (gx_g, gw_g, gb_g) =
                conv_transpose2d_gemm_backward(&x, &wgt, &grad, spec).unwrap();
            assert!(
                gx_d.all_close(&gx_g, 1e-3),
                "gx mismatch at stride {stride} pad {padding} k {k}: {}",
                gx_d.max_abs_diff(&gx_g).unwrap()
            );
            assert!(
                gw_d.all_close(&gw_g, 1e-3),
                "gw mismatch at stride {stride} pad {padding} k {k}: {}",
                gw_d.max_abs_diff(&gw_g).unwrap()
            );
            assert!(gb_d.all_close(&gb_g, 1e-3), "gb mismatch at stride {stride} pad {padding} k {k}");
        }
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let x = Tensor::zeros([1, 2, 4, 4]);
        let w_bad_cin = Tensor::zeros([4, 3, 3, 3]);
        assert!(conv2d_gemm(&x, &w_bad_cin, None, Conv2dSpec::default()).is_err());
        let w_rect = Tensor::zeros([4, 2, 3, 5]);
        assert!(conv2d_gemm(&x, &w_rect, None, Conv2dSpec::default()).is_err());
        let w_ok = Tensor::zeros([4, 2, 3, 3]);
        let bad_grad = Tensor::zeros([1, 4, 9, 9]);
        assert!(conv2d_gemm_backward(&x, &w_ok, &bad_grad, Conv2dSpec::default()).is_err());
    }
}
