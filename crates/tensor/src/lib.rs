//! # cc19-tensor
//!
//! Contiguous, row-major `f32` N-dimensional tensors with rayon-parallel
//! primitives. This crate is the numerical substrate for the
//! ComputeCOVID19+ reproduction: the autograd engine (`cc19-nn`), the CT
//! simulator (`cc19-ctsim`) and the hand-written inference kernels
//! (`cc19-kernels`) are all built on it.
//!
//! Design notes (see DESIGN.md §7):
//! - all data is `f32` and contiguous; views/strides are deliberately not
//!   supported — every op produces a fresh contiguous tensor, which keeps
//!   the hot loops simple, vectorizable, and race-free under rayon;
//! - shape errors at API boundaries are `Result`s (`TensorError`), while
//!   internal invariant violations are `debug_assert!`s;
//! - parallel reductions use fixed-shape chunking so results are
//!   bit-reproducible for a given thread-count-independent chunking.


pub mod conv;
pub mod conv_backend;
pub mod error;
pub mod gemm;
pub mod gemm_conv;
mod obs;
pub mod ops;
pub mod pool;
pub mod reduce;
pub mod resize;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use conv_backend::ConvBackend;
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
