//! `cc19-lint`: a workspace-wide invariant linter.
//!
//! The compiler cannot check the repo-specific invariants that keep the
//! pipeline's results bit-reproducible and its serving/training paths
//! panic-free (DESIGN.md §11). This crate is a self-contained,
//! dependency-free static-analysis pass over the workspace `.rs` sources
//! — a lightweight token-level scanner, not a full parser — enforcing:
//!
//! * **determinism** — no ambient clocks (`Instant::now`,
//!   `SystemTime::now`) or ambient RNG (`thread_rng`, `from_entropy`,
//!   `rand::random`) in the numeric crates (`tensor`, `kernels`, `nn`,
//!   `ddnet`, `ctsim`) or in `obs` itself; the sole sanctioned
//!   wall-clock read is `cc19_obs::MonotonicClock`, allowlisted in
//!   `lint.toml` with a reason.
//! * **metric-naming** — every metric name registered against the
//!   `cc19-obs` registry with a string literal is snake_case and carries
//!   its crate's prefix (`serve_…` in `crates/serve`, `tensor_…` in
//!   `crates/tensor`, …), so exported keys sort by subsystem.
//! * **panic-surface** — no `unwrap`/`expect`/`panic!`-family calls in
//!   the fault-tolerant paths (`dist::transport`, the `serve` dispatch
//!   crate, `nn::checkpoint` I/O); those paths carry typed errors.
//! * **api-parity** — every public `*_into` buffer-reuse function has an
//!   allocating twin, and both are named together in at least one test.
//! * **unsafe-budget** — the workspace is `unsafe`-free; a file may opt
//!   out only with an explicit `// cc19-lint: allow(unsafe, "reason")`
//!   marker.
//! * **doc-coverage** — every crate opts into the `[workspace.lints]`
//!   table (which carries `missing_docs = "warn"`, escalated to an error
//!   by the tier-1 `clippy -D warnings` gate).
//! * **whitespace** — the `cargo fmt --check`-equivalent gate: no
//!   trailing whitespace, tab indentation, carriage returns, or missing
//!   final newline.
//!
//! The v2 cross-function rules (DESIGN.md §16) build a workspace call
//! graph ([`graph`]) and a lock-site model ([`locks`]) on top of the
//! same token stream:
//!
//! * **lock-order** — the may-hold-while-acquiring graph over the
//!   serve/dist/monitor lock sites must be acyclic; any cycle is a
//!   potential deadlock, reported with both lock names and the
//!   witnessing call chain.
//! * **blocking-under-lock** — no channel `recv`, `JoinHandle::join`,
//!   TCP I/O, or condvar wait on a *different* lock while a lock guard
//!   is held (directly or through calls).
//! * **hot-path-alloc** — functions annotated `// cc19-hot` transitively
//!   may not reach allocation calls (`Vec::new`, `vec!`, `to_vec`,
//!   `collect`, `Box::new`, `format!`, owned-buffer `clone`) except
//!   through a `// cc19-lint: allow(alloc, "reason")` opt-out — the
//!   static twin of ROADMAP item 3's zero-alloc counting-allocator goal.
//!
//! Run it with `cargo run -p cc19-lint`; it exits non-zero on any
//! violation and is wired into `scripts/tier1.sh`, which also
//! byte-compares the deterministic `--report results/lint_report.json`
//! artifact across two consecutive runs.

pub mod config;
pub mod graph;
pub mod locks;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod walk;

pub use config::LintConfig;
pub use report::Violation;
pub use rules::{run_rules, SourceFile, RULE_NAMES};
