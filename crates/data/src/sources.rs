//! The four radiological data sources of Table 1, as synthetic catalogs.
//!
//! Each source yields `ScanMeta` records whose statistics mirror the
//! paper's description; actual pixel data is synthesized lazily by
//! [`crate::volume::CtVolume::synthesize`].

use cc19_tensor::rng::Xorshift;

use cc19_ctsim::phantom::Severity;

/// Imaging modality of a study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modality {
    /// 3D computed tomography.
    Ct,
    /// Plain 2D radiograph — present in BIMCV, filtered out by data prep.
    XRay,
}

/// The four archives of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Mayo Clinic: 8 healthy chest CTs with projection data at full and
    /// quarter dosage.
    Mayo,
    /// Medical Imaging Databank of the Valencia Region: 34 COVID-19
    /// patients, mixed X-ray and CT studies, circular boundary artifact.
    Bimcv,
    /// Medical Imaging and Data Resource Center: 229 COVID-19 CTs,
    /// circular boundary artifact.
    Midrc,
    /// Lung Image Database Consortium: 1301 healthy chest CTs.
    Lidc,
}

impl DataSource {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DataSource::Mayo => "Mayo Clinic",
            DataSource::Bimcv => "BIMCV",
            DataSource::Midrc => "MIDRC",
            DataSource::Lidc => "LIDC",
        }
    }
}

/// Metadata for one study in a catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanMeta {
    /// Unique id within the catalog (also the synthesis seed).
    pub id: u64,
    /// Originating archive.
    pub source: DataSource,
    /// CT or X-ray.
    pub modality: Modality,
    /// Ground-truth COVID-19 status.
    pub positive: bool,
    /// Lesion severity for positives.
    pub severity: Option<Severity>,
    /// Number of 2D slices in the study.
    pub slices: usize,
    /// Whether the reconstruction has the circular boundary artifact
    /// (BIMCV / MIDRC, Fig 5 of the paper).
    pub circular_artifact: bool,
    /// Whether the archive provides raw projection data (Mayo only).
    pub has_projections: bool,
}

/// A deterministic synthetic catalog for one archive.
#[derive(Debug, Clone)]
pub struct SourceCatalog {
    /// Which archive this models.
    pub source: DataSource,
    /// The studies.
    pub scans: Vec<ScanMeta>,
}

impl SourceCatalog {
    /// Build a catalog. `scale` divides the paper's study counts so tests
    /// and scaled experiments stay fast (`scale = 1` reproduces Table 1
    /// exactly; `scale = 10` gives a 10× smaller archive, minimum 2
    /// studies).
    pub fn generate(source: DataSource, scale: usize) -> Self {
        let scale = scale.max(1);
        let mut rng = Xorshift::new(match source {
            DataSource::Mayo => 0xA0_u64 ^ 0x1111,
            DataSource::Bimcv => 0xB1_u64 ^ 0x2222,
            DataSource::Midrc => 0x3D_u64 ^ 0x3333,
            DataSource::Lidc => 0x71_u64 ^ 0x4444,
        });
        let n = |paper: usize| (paper / scale).max(2);
        let mut scans = Vec::new();
        let mut id = (match source {
            DataSource::Mayo => 1_000_000u64,
            DataSource::Bimcv => 2_000_000,
            DataSource::Midrc => 3_000_000,
            DataSource::Lidc => 4_000_000,
        }) + 1;

        let severity_for = |rng: &mut Xorshift| match rng.next_u64() % 3 {
            0 => Severity::Mild,
            1 => Severity::Moderate,
            _ => Severity::Severe,
        };

        match source {
            DataSource::Mayo => {
                // 8 healthy, CT with projection data (full & quarter dose).
                for _ in 0..n(8) {
                    scans.push(ScanMeta {
                        id,
                        source,
                        modality: Modality::Ct,
                        positive: false,
                        severity: None,
                        slices: 128 + (rng.next_u64() % 96) as usize,
                        circular_artifact: false,
                        has_projections: true,
                    });
                    id += 1;
                }
            }
            DataSource::Bimcv => {
                // 34 COVID patients; roughly half the studies are X-rays
                // that data prep must discard; some CTs are thin stacks
                // (< 128 slices) that the slice rule drops.
                for _ in 0..n(34) {
                    let is_xray = rng.next_f32() < 0.4;
                    let slices = if is_xray {
                        1
                    } else if rng.next_f32() < 0.25 {
                        32 + (rng.next_u64() % 64) as usize // thin stack
                    } else {
                        128 + (rng.next_u64() % 128) as usize
                    };
                    let sev = severity_for(&mut rng);
                    scans.push(ScanMeta {
                        id,
                        source,
                        modality: if is_xray { Modality::XRay } else { Modality::Ct },
                        positive: true,
                        severity: Some(sev),
                        slices,
                        circular_artifact: !is_xray,
                        has_projections: false,
                    });
                    id += 1;
                }
            }
            DataSource::Midrc => {
                // 229 COVID CTs, circular artifact, occasional thin stacks.
                for _ in 0..n(229) {
                    let slices = if rng.next_f32() < 0.15 {
                        64 + (rng.next_u64() % 48) as usize
                    } else {
                        128 + (rng.next_u64() % 128) as usize
                    };
                    let sev = severity_for(&mut rng);
                    scans.push(ScanMeta {
                        id,
                        source,
                        modality: Modality::Ct,
                        positive: true,
                        severity: Some(sev),
                        slices,
                        circular_artifact: true,
                        has_projections: false,
                    });
                    id += 1;
                }
            }
            DataSource::Lidc => {
                // 1301 healthy CTs, clean reconstructions.
                for _ in 0..n(1301) {
                    scans.push(ScanMeta {
                        id,
                        source,
                        modality: Modality::Ct,
                        positive: false,
                        severity: None,
                        slices: 96 + (rng.next_u64() % 160) as usize,
                        circular_artifact: false,
                        has_projections: false,
                    });
                    id += 1;
                }
            }
        }
        SourceCatalog { source, scans }
    }

    /// All four archives at a given scale.
    pub fn all(scale: usize) -> Vec<SourceCatalog> {
        [DataSource::Mayo, DataSource::Bimcv, DataSource::Midrc, DataSource::Lidc]
            .into_iter()
            .map(|s| SourceCatalog::generate(s, scale))
            .collect()
    }

    /// Number of studies.
    pub fn len(&self) -> usize {
        self.scans.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.scans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts_match_table1() {
        assert_eq!(SourceCatalog::generate(DataSource::Mayo, 1).len(), 8);
        assert_eq!(SourceCatalog::generate(DataSource::Bimcv, 1).len(), 34);
        assert_eq!(SourceCatalog::generate(DataSource::Midrc, 1).len(), 229);
        assert_eq!(SourceCatalog::generate(DataSource::Lidc, 1).len(), 1301);
    }

    #[test]
    fn labels_match_sources() {
        for cat in SourceCatalog::all(1) {
            for s in &cat.scans {
                match cat.source {
                    DataSource::Mayo | DataSource::Lidc => {
                        assert!(!s.positive);
                        assert!(s.severity.is_none());
                    }
                    DataSource::Bimcv | DataSource::Midrc => {
                        assert!(s.positive);
                        assert!(s.severity.is_some());
                    }
                }
            }
        }
    }

    #[test]
    fn bimcv_mixes_modalities_others_are_ct() {
        let bimcv = SourceCatalog::generate(DataSource::Bimcv, 1);
        let xrays = bimcv.scans.iter().filter(|s| s.modality == Modality::XRay).count();
        assert!(xrays > 0 && xrays < bimcv.len(), "xrays {xrays}");
        for src in [DataSource::Mayo, DataSource::Midrc, DataSource::Lidc] {
            let cat = SourceCatalog::generate(src, 1);
            assert!(cat.scans.iter().all(|s| s.modality == Modality::Ct));
        }
    }

    #[test]
    fn artifacts_and_projections_flags() {
        let mayo = SourceCatalog::generate(DataSource::Mayo, 1);
        assert!(mayo.scans.iter().all(|s| s.has_projections && !s.circular_artifact));
        let midrc = SourceCatalog::generate(DataSource::Midrc, 1);
        assert!(midrc.scans.iter().all(|s| s.circular_artifact && !s.has_projections));
    }

    #[test]
    fn ids_are_globally_unique() {
        let mut all_ids = std::collections::HashSet::new();
        for cat in SourceCatalog::all(1) {
            for s in &cat.scans {
                assert!(all_ids.insert(s.id), "duplicate id {}", s.id);
            }
        }
    }

    #[test]
    fn scaling_reduces_counts() {
        let full = SourceCatalog::generate(DataSource::Lidc, 1);
        let tenth = SourceCatalog::generate(DataSource::Lidc, 10);
        assert_eq!(tenth.len(), full.len() / 10);
        let tiny = SourceCatalog::generate(DataSource::Mayo, 100);
        assert_eq!(tiny.len(), 2, "minimum floor");
    }

    #[test]
    fn deterministic_catalogs() {
        let a = SourceCatalog::generate(DataSource::Bimcv, 1);
        let b = SourceCatalog::generate(DataSource::Bimcv, 1);
        assert_eq!(a.scans, b.scans);
    }
}
