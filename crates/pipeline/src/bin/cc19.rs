//! `cc19` — command-line interface to the ComputeCOVID19+ pipeline.
//!
//! ```text
//! cc19 simulate         --seed 7 --n 64 --slices 8 --positive --out out/
//! cc19 train-enhancer   --pairs 24 --epochs 15 --n 48 --out ddnet.ckpt
//! cc19 enhance          --model ddnet.ckpt --seed 9 --out out/
//! cc19 train-classifier --volumes 20 --epochs 20 --n 48 --slices 8 --out cls.ckpt
//! cc19 diagnose         --seed 11 [--enhancer ddnet.ckpt] [--classifier cls.ckpt]
//! ```
//!
//! Everything runs on synthetic studies (see DESIGN.md §2 on data
//! substitution); the commands exercise the same public APIs a DICOM-fed
//! deployment would.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cc19_analysis::classifier::{ClassifierConfig, DenseNet3d};
use cc19_analysis::segmentation::LungSegmenter;
use cc19_analysis::train::{train_classifier, ClassTrainConfig, Example};
use cc19_ctsim::io::write_pgm;
use cc19_ctsim::phantom::Severity;
use cc19_data::dataset::{ClassificationDataset, EnhancementDataset};
use cc19_data::lowdose_pairs::{make_pair_from_hu, PairConfig};
use cc19_data::prep::{normalize_for_enhancement, PrepConfig};
use cc19_data::sources::{DataSource, Modality, ScanMeta};
use cc19_data::volume::CtVolume;
use cc19_ddnet::trainer::{evaluate_pairs, train_enhancement, TrainConfig};
use cc19_ddnet::{Ddnet, DdnetConfig};
use computecovid19::framework::Framework;

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    switches.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { flags, switches }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn path(&self, key: &str) -> Option<PathBuf> {
        self.flags.get(key).map(PathBuf::from)
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

fn synth_meta(seed: u64, positive: bool, slices: usize) -> ScanMeta {
    ScanMeta {
        id: seed,
        source: if positive { DataSource::Midrc } else { DataSource::Lidc },
        modality: Modality::Ct,
        positive,
        severity: if positive { Some(Severity::Moderate) } else { None },
        slices,
        circular_artifact: false,
        has_projections: false,
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get("seed", 7);
    let n: usize = args.get("n", 64);
    let slices: usize = args.get("slices", 8);
    let positive = args.has("positive");
    let out = args.path("out").unwrap_or_else(|| PathBuf::from("out"));
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let vol = CtVolume::synthesize(&synth_meta(seed, positive, slices), n, slices)
        .map_err(|e| e.to_string())?;
    for s in 0..vol.slices() {
        let img = vol.slice(s);
        write_pgm(&img, -1000.0, 400.0, &out.join(format!("slice_{s:03}.pgm")))
            .map_err(|e| e.to_string())?;
    }
    if let Some(save) = args.path("save") {
        cc19_data::io::save_volume(&vol, &save).map_err(|e| e.to_string())?;
        println!("saved volume container to {}", save.display());
    }
    println!(
        "wrote {} slices of a {} study (seed {seed}) to {}",
        vol.slices(),
        if positive { "COVID-positive" } else { "healthy" },
        out.display()
    );
    Ok(())
}

fn cmd_train_enhancer(args: &Args) -> Result<(), String> {
    let pairs: usize = args.get("pairs", 24);
    let epochs: usize = args.get("epochs", 15);
    let n: usize = args.get("n", 48);
    let views: usize = args.get("views", n / 2);
    let out = args.path("out").unwrap_or_else(|| PathBuf::from("ddnet.ckpt"));

    let mut pc = PairConfig::reduced(n, args.get("seed", 2021u64));
    pc.views = views;
    pc.dose.blank_scan = args.get("blank-scan", 3.0e4);
    println!("generating {pairs} training pairs at {n}x{n}, {views} views ...");
    let ds = EnhancementDataset::generate(pairs, pc).map_err(|e| e.to_string())?;

    let net = Ddnet::new(DdnetConfig::reduced(), args.get("seed", 2021u64));
    let mut tc = TrainConfig::quick(epochs);
    tc.lr = args.get("lr", 2e-3f32);
    println!("training DDnet ({} params) for {epochs} epochs ...", net.num_params());
    let stats = train_enhancement(&net, &ds.train, &ds.val, tc).map_err(|e| e.to_string())?;
    for s in stats.iter().step_by((epochs / 5).max(1)) {
        println!("  epoch {:>3}: train {:.5}  val {:.5}  ms-ssim {:.2}%", s.epoch, s.train_loss, s.val_loss, s.val_ms_ssim);
    }
    let (raw, enh) = evaluate_pairs(&net, &ds.test).map_err(|e| e.to_string())?;
    println!(
        "test: raw mse {:.5}/ms-ssim {:.1}% -> enhanced mse {:.5}/ms-ssim {:.1}%",
        raw.mse,
        raw.ms_ssim * 100.0,
        enh.mse,
        enh.ms_ssim * 100.0
    );
    net.save(&out).map_err(|e| e.to_string())?;
    println!("saved checkpoint to {}", out.display());
    Ok(())
}

fn load_enhancer(path: &Path) -> Result<Ddnet, String> {
    let net = Ddnet::new(DdnetConfig::reduced(), 0);
    net.load(path).map_err(|e| format!("loading {}: {e}", path.display()))?;
    Ok(net)
}

fn cmd_enhance(args: &Args) -> Result<(), String> {
    let model = args.path("model").ok_or("--model <ckpt> is required")?;
    let seed: u64 = args.get("seed", 9);
    let n: usize = args.get("n", 48);
    let out = args.path("out").unwrap_or_else(|| PathBuf::from("out"));
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let net = load_enhancer(&model)?;
    let phantom = cc19_ctsim::phantom::ChestPhantom::subject(seed, 0.5, Some(Severity::Moderate));
    let hu = phantom.rasterize_hu(n);
    let mut pc = PairConfig::reduced(n, seed);
    pc.views = args.get("views", n / 2);
    pc.dose.blank_scan = args.get("blank-scan", 3.0e4);
    let pair = make_pair_from_hu(&hu, seed, pc).map_err(|e| e.to_string())?;
    let enhanced = net.enhance(&pair.low).map_err(|e| e.to_string())?;

    write_pgm(&pair.low, 0.0, 1.0, &out.join("lowdose.pgm")).map_err(|e| e.to_string())?;
    write_pgm(&enhanced, 0.0, 1.0, &out.join("enhanced.pgm")).map_err(|e| e.to_string())?;
    write_pgm(&pair.full, 0.0, 1.0, &out.join("target.pgm")).map_err(|e| e.to_string())?;
    let mse_before = cc19_tensor::reduce::mse(&pair.low, &pair.full).map_err(|e| e.to_string())?;
    let mse_after = cc19_tensor::reduce::mse(&enhanced, &pair.full).map_err(|e| e.to_string())?;
    println!("mse {mse_before:.5} -> {mse_after:.5}; panels written to {}", out.display());
    Ok(())
}

fn cmd_train_classifier(args: &Args) -> Result<(), String> {
    let volumes: usize = args.get("volumes", 20);
    let epochs: usize = args.get("epochs", 20);
    let n: usize = args.get("n", 48);
    let slices: usize = args.get("slices", 8);
    let out = args.path("out").unwrap_or_else(|| PathBuf::from("cls.ckpt"));

    println!("generating {volumes} training volumes at {n}x{n}x{slices} ...");
    let ds = ClassificationDataset::generate(volumes, 2, n, slices).map_err(|e| e.to_string())?;
    let seg = LungSegmenter::default();
    let prep = PrepConfig::scaled(1);
    let examples: Vec<Example> = ds
        .train
        .iter()
        .map(|item| {
            let unit = normalize_for_enhancement(&item.volume.hu, prep);
            let mask = seg.segment_volume(&item.volume.hu).expect("segment");
            let masked = cc19_analysis::segmentation::apply_mask(&unit, &mask).expect("mask");
            Example { volume: masked, label: item.label }
        })
        .collect();
    let net = DenseNet3d::new(ClassifierConfig::tiny(), args.get("seed", 5u64));
    let mut cfg = ClassTrainConfig::quick(epochs);
    cfg.lr = args.get("lr", 1e-2f32);
    cfg.augment = None;
    let stats = train_classifier(&net, &examples, cfg).map_err(|e| e.to_string())?;
    println!(
        "trained: loss {:.4} -> {:.4}",
        stats[0].train_loss,
        stats.last().unwrap().train_loss
    );
    net.save(&out).map_err(|e| e.to_string())?;
    println!("saved checkpoint to {}", out.display());
    Ok(())
}

fn cmd_diagnose(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get("seed", 11);
    let n: usize = args.get("n", 48);
    let slices: usize = args.get("slices", 8);
    let positive = args.has("positive");
    let threshold: f64 = args.get("threshold", 0.5);

    let vol = match args.path("input") {
        Some(p) => cc19_data::io::load_volume(&p).map_err(|e| format!("loading {}: {e}", p.display()))?,
        None => CtVolume::synthesize(&synth_meta(seed, positive, slices), n, slices)
            .map_err(|e| e.to_string())?,
    };

    let enhancer = match args.path("enhancer") {
        Some(p) => Some(load_enhancer(&p)?),
        None => None,
    };
    let classifier = match args.path("classifier") {
        Some(p) => {
            let net = DenseNet3d::new(ClassifierConfig::tiny(), 0);
            net.load(&p).map_err(|e| format!("loading {}: {e}", p.display()))?;
            net
        }
        None => {
            println!("(no --classifier checkpoint: using an untrained classifier)");
            DenseNet3d::new(ClassifierConfig::tiny(), 0)
        }
    };
    let fw = Framework {
        enhancer,
        segmenter: LungSegmenter::default(),
        classifier,
        prep: PrepConfig::scaled(1),
        clock: cc19_obs::global_clock(),
    };
    let d = fw.diagnose(&vol.hu, threshold).map_err(|e| e.to_string())?;
    println!(
        "study {} (ground truth: {}):",
        vol.meta.id,
        if vol.meta.positive { "positive" } else { "healthy" }
    );
    println!("  p(COVID-19) = {:.4}", d.probability);
    println!("  decision @ {threshold}: {}", if d.positive { "POSITIVE" } else { "negative" });
    println!(
        "  stage times: enhance {:?}, segment {:?}, classify {:?} (total incl. masking {:?})",
        d.t_enhance, d.t_segment, d.t_classify, d.total_time()
    );
    Ok(())
}

fn usage() -> &'static str {
    "usage: cc19 <command> [--flag value ...]\n\
     commands:\n\
       simulate          --seed N --n 64 --slices 8 [--positive] --out DIR [--save F.cc19v]\n\
       train-enhancer    --pairs 24 --epochs 15 --n 48 --out ddnet.ckpt\n\
       enhance           --model ddnet.ckpt --seed 9 --out DIR\n\
       train-classifier  --volumes 20 --epochs 20 --n 48 --slices 8 --out cls.ckpt\n\
       diagnose          --seed 11 [--positive] [--input F.cc19v] [--enhancer CKPT] [--classifier CKPT]"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "train-enhancer" => cmd_train_enhancer(&args),
        "enhance" => cmd_enhance(&args),
        "train-classifier" => cmd_train_classifier(&args),
        "diagnose" => cmd_diagnose(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flags_and_switches() {
        let a = parse(&["--seed", "42", "--positive", "--out", "dir"]);
        assert_eq!(a.get::<u64>("seed", 0), 42);
        assert!(a.has("positive"));
        assert_eq!(a.path("out").unwrap().to_str().unwrap(), "dir");
        assert!(!a.has("missing"));
        assert_eq!(a.get::<usize>("n", 64), 64);
    }

    #[test]
    fn trailing_switch_is_a_switch() {
        let a = parse(&["--n", "32", "--positive"]);
        assert_eq!(a.get::<usize>("n", 0), 32);
        assert!(a.has("positive"));
    }

    #[test]
    fn unparsable_values_fall_back_to_default() {
        let a = parse(&["--seed", "notanumber"]);
        assert_eq!(a.get::<u64>("seed", 7), 7);
    }

    #[test]
    fn scientific_notation_parses() {
        let a = parse(&["--blank-scan", "3.0e4"]);
        assert_eq!(a.get::<f64>("blank-scan", 0.0), 3.0e4);
    }

    #[test]
    fn synth_meta_labels() {
        let m = synth_meta(5, true, 8);
        assert!(m.positive && m.severity.is_some());
        let m = synth_meta(5, false, 8);
        assert!(!m.positive && m.severity.is_none());
    }
}
