//! Property-based coverage of the content-addressed study cache:
//! digest-key injectivity on phantom volumes, cache-hit bit-identity
//! with recomputation, and eviction/weight-change safety — a stale
//! entry must never be served after the model weights change.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use cc19_ctsim::phantom::Severity;
use cc19_data::progression::{progression_volume, ProgressionCourse};
use cc19_data::volume::CtVolume;
use cc19_monitor::digest::{volume_digest, StudyKey};
use cc19_monitor::{PatientSeries, Provenance, StudyCache};
use cc19_obs::Registry;
use cc19_tensor::Tensor;
use computecovid19::framework::{Diagnosis, Framework, Scratch};

fn scan(patient: u64, t: usize) -> CtVolume {
    let course = ProgressionCourse::worsening(4);
    progression_volume(patient, t, &course, 32, 4, Severity::Moderate)
        .expect("progression synthesis")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Distinct (seed, timestep) phantom volumes never collide: no
    /// false cache hits across patients or scans of one patient.
    #[test]
    fn digests_are_injective_across_seeds_and_timesteps(base in 0u64..5_000) {
        let mut seen: HashMap<u64, (u64, usize)> = HashMap::new();
        for patient in [base, base + 1, base + 2] {
            for t in 0..4usize {
                let d = volume_digest(&scan(patient, t).hu);
                if let Some(prior) = seen.insert(d, (patient, t)) {
                    prop_assert!(
                        false,
                        "digest collision: ({patient}, {t}) vs {prior:?} -> {d:#x}"
                    );
                }
            }
        }
    }

    /// A single flipped voxel bit flips the volume digest.
    #[test]
    fn digest_sees_single_voxel_changes(idx in 0usize..(4 * 32 * 32), nudge in 1u32..1000) {
        let mut vol = scan(9, 1).hu;
        let before = volume_digest(&vol);
        let bits = vol.data()[idx].to_bits();
        vol.data_mut()[idx] = f32::from_bits(bits ^ nudge);
        prop_assert!(before != volume_digest(&vol), "flipped voxel bit left digest unchanged");
    }
}

/// Helper: diagnosis with fixed probability for cache-level tests.
fn diag(p: f64) -> Diagnosis {
    use std::time::Duration;
    Diagnosis {
        probability: p,
        positive: p >= 0.5,
        t_queue: Duration::ZERO,
        t_enhance: Duration::ZERO,
        t_segment: Duration::ZERO,
        t_classify: Duration::ZERO,
        t_total: Duration::ZERO,
    }
}

#[test]
fn cache_hits_are_bit_identical_to_recomputation() {
    let fw = Framework::untrained_reduced(0xBEE);
    let vol = scan(0xBEE, 2);

    // ground truth: run the capture pipeline twice without a cache
    let compute = || {
        let mut scratch = Scratch::new();
        let enh = fw.run_enhance(&vol.hu, &mut scratch).expect("enhance");
        let (seg, cap) = fw.run_segment_capturing(enh, &mut scratch).expect("segment");
        let d = fw.run_classify(seg, 0.5, &mut scratch).expect("classify");
        (cap.enhanced_hu, cap.mask, d)
    };
    let (hu_a, mask_a, d_a) = compute();

    // cached replay
    let mut cache = StudyCache::with_registry(64 << 20, Arc::new(Registry::new()));
    let key = StudyKey::for_study(&fw, &vol.hu, 0.5);
    cache.insert(key, &hu_a, &mask_a, d_a.clone()).expect("insert");
    let hit = cache.get(&key).expect("hit");

    let (hu_b, mask_b, d_b) = compute();
    let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&hit.enhanced_hu), bits(&hu_b), "cached enhanced volume differs");
    assert_eq!(bits(&hit.mask), bits(&mask_b), "cached mask differs");
    assert_eq!(hit.diagnosis.probability.to_bits(), d_b.probability.to_bits());
    assert_eq!(hit.diagnosis.positive, d_b.positive);
    // the cache returns the original computation's Diagnosis verbatim,
    // wall-clock timings included
    assert_eq!(hit.diagnosis, d_a, "cached Diagnosis must be bit-identical");
}

#[test]
fn eviction_under_a_small_budget_never_serves_stale_weights() {
    // budget fits roughly one 3×32×32 study (2 buffers × 3072 × 4 B)
    let registry = Arc::new(Registry::new());
    let mut cache = StudyCache::with_registry(25_000, Arc::clone(&registry));

    let fw_v1 = Framework::untrained_reduced(1);
    let fw_v2 = Framework::untrained_reduced(2); // "retrained" weights
    let vol = scan(0xA, 0);
    let hu = Tensor::full([3, 32, 32], -700.0);
    let mask = Tensor::full([3, 32, 32], 1.0);

    let key_v1 = StudyKey::for_study(&fw_v1, &vol.hu, 0.5);
    let key_v2 = StudyKey::for_study(&fw_v2, &vol.hu, 0.5);
    assert_ne!(key_v1, key_v2, "a weight change must re-address the study");

    cache.insert(key_v1, &hu, &mask, diag(0.9)).expect("insert v1");
    // same scan under the new weights: MISS — the stale v1 entry is
    // unreachable by construction
    assert!(cache.get(&key_v2).is_none());

    // churn the tiny cache until v1 evicts; stale entries age out
    for i in 0..4u64 {
        let k = StudyKey { volume: i.wrapping_mul(0x9E37), ..key_v2 };
        cache.insert(k, &hu, &mask, diag(0.5)).expect("churn insert");
    }
    assert!(cache.get(&key_v1).is_none(), "evicted v1 entry must not resurface");
    let (_, _, evictions) = cache.stats();
    assert!(evictions > 0, "small budget must have evicted");
    assert!(cache.bytes() <= cache.byte_budget());
}

#[test]
fn series_replays_from_cache_after_unrelated_churn() {
    // Budget sized for ~2 studies: day-0 survives one interleaved scan
    // but the timeline still answers every submission correctly.
    let registry = Arc::new(Registry::new());
    let fw = Framework::untrained_reduced(0xCAFE);
    let mut s = PatientSeries::with_registry(fw, 0.5, 70_000, registry);

    let r0 = s.add_scan("day 0", &scan(0xCAFE, 0)).expect("day 0");
    let r1 = s.add_scan("day 5", &scan(0xCAFE, 1)).expect("day 5");
    assert_eq!(r0.provenance, Provenance::Computed);
    assert_eq!(r1.provenance, Provenance::Computed);

    let replay = s.add_scan("day 0 re-read", &scan(0xCAFE, 0)).expect("replay");
    assert_eq!(replay.provenance, Provenance::CacheHit);
    assert_eq!(replay.probability.to_bits(), r0.probability.to_bits());
    assert_eq!(replay.burden.lesion_ml.to_bits(), r0.burden.lesion_ml.to_bits());
}
