//! TCP front end over the CRC-framed wire protocol from
//! [`cc19_dist::framing`] (one shared framing layer for training traffic
//! and serving traffic — same magic, same integrity guarantee).
//!
//! One frame per message; the server echoes the request frame's `seq` in
//! its response, so a client can pipeline requests over one connection
//! and match answers. Frame kinds:
//!
//! | kind | direction | payload |
//! |------|-----------|---------|
//! | [`KIND_REQUEST`] | client → server | `[priority u8][has_deadline u8][deadline_micros u64][d u32][h u32][w u32][f32-LE × d·h·w]` |
//! | [`KIND_RESPONSE_OK`] | server → client | `[id u64][probability f64-bits u64][positive u8][t_queue..t_total nanos u64 × 5]` |
//! | [`KIND_RESPONSE_REJECT`] | server → client | structured [`Rejected`] (see [`encode_reject`]) |
//! | [`KIND_RESPONSE_FAIL`] | server → client | `[id u64][utf-8 error]` |
//!
//! The probability crosses the wire as raw `f64` bits, so the remote
//! answer is *bit-identical* to the in-process one — the serving
//! acceptance criterion holds across the TCP boundary too.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use cc19_dist::framing::WireFrame;
use cc19_tensor::Tensor;
use computecovid19::Diagnosis;

use crate::request::{Priority, Rejected, ServeRequest};
use crate::server::Client;

/// Client → server diagnosis request.
pub const KIND_REQUEST: u8 = 1;
/// Server → client accepted-and-diagnosed response.
pub const KIND_RESPONSE_OK: u8 = 2;
/// Server → client synchronous admission rejection.
pub const KIND_RESPONSE_REJECT: u8 = 3;
/// Server → client stage-failure response (accepted but errored).
pub const KIND_RESPONSE_FAIL: u8 = 4;

/// Outcome of one remote diagnosis call, mirroring the in-process
/// `submit` + `wait` pair.
pub type WireOutcome = Result<(u64, Diagnosis), Rejected>;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> io::Result<u8> {
        let b = *self.0.first().ok_or_else(|| invalid("truncated payload"))?;
        self.0 = &self.0[1..];
        Ok(b)
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?.try_into().map_err(|_| invalid("truncated u32"))?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?.try_into().map_err(|_| invalid("truncated u64"))?;
        Ok(u64::from_le_bytes(b))
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(invalid("truncated payload"));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn rest_utf8(&mut self) -> io::Result<String> {
        let s = std::str::from_utf8(self.0).map_err(|_| invalid("non-UTF-8 message"))?.to_owned();
        self.0 = &[];
        Ok(s)
    }
}

/// Encode a [`ServeRequest`] payload.
pub fn encode_request(req: &ServeRequest) -> Vec<u8> {
    let dims = req.volume.dims();
    let mut out = Vec::with_capacity(2 + 8 + 12 + req.volume.data().len() * 4);
    out.push(req.priority.code());
    out.push(req.deadline.is_some() as u8);
    out.extend_from_slice(&req.deadline.unwrap_or(Duration::ZERO).as_micros().to_le_bytes()[..8]);
    for i in 0..3 {
        out.extend_from_slice(&(*dims.get(i).unwrap_or(&0) as u32).to_le_bytes());
    }
    for v in req.volume.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a [`ServeRequest`] payload.
pub fn decode_request(payload: &[u8]) -> io::Result<ServeRequest> {
    let mut c = Cursor(payload);
    let priority =
        Priority::from_code(c.u8()?).ok_or_else(|| invalid("unknown priority code"))?;
    let has_deadline = c.u8()? != 0;
    let micros = c.u64()?;
    let deadline = has_deadline.then(|| Duration::from_micros(micros));
    let (d, h, w) = (c.u32()? as usize, c.u32()? as usize, c.u32()? as usize);
    let n = d
        .checked_mul(h)
        .and_then(|v| v.checked_mul(w))
        .ok_or_else(|| invalid("volume extent overflow"))?;
    let raw = c.take(n * 4)?;
    // chunks_exact(4) yields exactly-4-byte slices, so the array indexing
    // cannot go out of bounds.
    let data: Vec<f32> =
        raw.chunks_exact(4).map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])).collect();
    let volume = Tensor::from_vec([d, h, w], data).map_err(|e| invalid(e.to_string()))?;
    Ok(ServeRequest { volume, priority, deadline })
}

/// Encode an OK response payload.
pub fn encode_ok(id: u64, d: &Diagnosis) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 1 + 40);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&d.probability.to_bits().to_le_bytes());
    out.push(d.positive as u8);
    for t in [d.t_queue, d.t_enhance, d.t_segment, d.t_classify, d.t_total] {
        out.extend_from_slice(&(t.as_nanos() as u64).to_le_bytes());
    }
    out
}

/// Decode an OK response payload.
pub fn decode_ok(payload: &[u8]) -> io::Result<(u64, Diagnosis)> {
    let mut c = Cursor(payload);
    let id = c.u64()?;
    let probability = f64::from_bits(c.u64()?);
    let positive = c.u8()? != 0;
    let mut times = [Duration::ZERO; 5];
    for t in &mut times {
        *t = Duration::from_nanos(c.u64()?);
    }
    Ok((
        id,
        Diagnosis {
            probability,
            positive,
            t_queue: times[0],
            t_enhance: times[1],
            t_segment: times[2],
            t_classify: times[3],
            t_total: times[4],
        },
    ))
}

/// Encode a [`Rejected`] payload (structured, so the client reconstructs
/// the exact rejection, not just a message).
pub fn encode_reject(why: &Rejected) -> Vec<u8> {
    let mut out = vec![why.code()];
    match why {
        Rejected::QueueFull { depth, bound } => {
            out.extend_from_slice(&(*depth as u64).to_le_bytes());
            out.extend_from_slice(&(*bound as u64).to_le_bytes());
        }
        Rejected::DeadlineImpossible { deadline, est_service } => {
            out.extend_from_slice(&(deadline.as_nanos() as u64).to_le_bytes());
            out.extend_from_slice(&(est_service.as_nanos() as u64).to_le_bytes());
        }
        Rejected::Invalid(msg) => out.extend_from_slice(msg.as_bytes()),
        Rejected::ShuttingDown => {}
    }
    out
}

/// Decode a [`Rejected`] payload.
pub fn decode_reject(payload: &[u8]) -> io::Result<Rejected> {
    let mut c = Cursor(payload);
    match c.u8()? {
        0 => Ok(Rejected::QueueFull { depth: c.u64()? as usize, bound: c.u64()? as usize }),
        1 => Ok(Rejected::DeadlineImpossible {
            deadline: Duration::from_nanos(c.u64()?),
            est_service: Duration::from_nanos(c.u64()?),
        }),
        2 => Ok(Rejected::Invalid(c.rest_utf8()?)),
        3 => Ok(Rejected::ShuttingDown),
        code => Err(invalid(format!("unknown reject code {code}"))),
    }
}

fn handle_connection(stream: TcpStream, client: Client) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame = match WireFrame::read_from(&mut reader) {
            Ok(f) => f,
            Err(_) => return, // EOF or corrupt stream: drop the connection
        };
        let seq = frame.seq;
        if frame.kind != KIND_REQUEST {
            let payload = encode_reject(&Rejected::Invalid(format!(
                "unexpected frame kind {}",
                frame.kind
            )));
            if WireFrame::new(KIND_RESPONSE_REJECT, seq, payload).write_to(&mut writer).is_err() {
                return;
            }
            continue;
        }
        let reply = match decode_request(&frame.payload) {
            Ok(req) => match client.submit(req) {
                // Blocking per-request turnaround: a connection carries
                // one request in flight at a time, which keeps the
                // server loop trivially exactly-once. Concurrency comes
                // from multiple connections.
                Ok(pending) => {
                    let id = pending.id();
                    match pending.wait() {
                        Some(resp) => match resp.result {
                            Ok(d) => WireFrame::new(KIND_RESPONSE_OK, seq, encode_ok(resp.id, &d)),
                            Err(msg) => {
                                let mut p = resp.id.to_le_bytes().to_vec();
                                p.extend_from_slice(msg.as_bytes());
                                WireFrame::new(KIND_RESPONSE_FAIL, seq, p)
                            }
                        },
                        None => {
                            let mut p = id.to_le_bytes().to_vec();
                            p.extend_from_slice(b"server terminated before reply");
                            WireFrame::new(KIND_RESPONSE_FAIL, seq, p)
                        }
                    }
                }
                Err(why) => WireFrame::new(KIND_RESPONSE_REJECT, seq, encode_reject(&why)),
            },
            Err(e) => WireFrame::new(
                KIND_RESPONSE_REJECT,
                seq,
                encode_reject(&Rejected::Invalid(e.to_string())),
            ),
        };
        if reply.write_to(&mut writer).is_err() {
            return;
        }
    }
}

/// Accept loop: serve every connection on `listener` against an
/// in-process [`Client`], one handler thread per connection. Blocks for
/// the life of the listener — run it in a spawned thread:
///
/// ```ignore
/// let listener = TcpListener::bind("127.0.0.1:0")?;
/// let addr = listener.local_addr()?;
/// std::thread::spawn(move || serve_on(listener, server.client()));
/// ```
pub fn serve_on(listener: TcpListener, client: Client) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let client = client.clone();
        std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || handle_connection(stream, client))
            .map_err(io::Error::other)?;
    }
    Ok(())
}

/// Blocking TCP client for the serve wire protocol.
pub struct TcpServeClient {
    stream: TcpStream,
    seq: u64,
}

impl TcpServeClient {
    /// Connect to a server started with [`serve_on`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpServeClient { stream, seq: 0 })
    }

    /// Submit one study and block for its outcome. `Ok(Err(_))` is a
    /// typed admission rejection; `Err(_)` is a transport or stage
    /// failure.
    pub fn diagnose(&mut self, req: &ServeRequest) -> io::Result<WireOutcome> {
        let seq = self.seq;
        self.seq += 1;
        WireFrame::new(KIND_REQUEST, seq, encode_request(req)).write_to(&mut self.stream)?;
        self.stream.flush()?;
        let frame = WireFrame::read_from(&mut self.stream)?;
        if frame.seq != seq {
            return Err(invalid(format!("response seq {} for request {seq}", frame.seq)));
        }
        match frame.kind {
            KIND_RESPONSE_OK => decode_ok(&frame.payload).map(Ok),
            KIND_RESPONSE_REJECT => decode_reject(&frame.payload).map(Err),
            KIND_RESPONSE_FAIL => {
                let mut c = Cursor(&frame.payload);
                let id = c.u64()?;
                Err(io::Error::other(format!("request {id} failed: {}", c.rest_utf8()?)))
            }
            kind => Err(invalid(format!("unknown response kind {kind}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn sample_request() -> ServeRequest {
        let data: Vec<f32> = (0..2 * 3 * 4).map(|i| i as f32 * 0.5 - 3.0).collect();
        ServeRequest {
            volume: Tensor::from_vec([2, 3, 4], data).unwrap(),
            priority: Priority::Urgent,
            deadline: Some(Duration::from_millis(250)),
        }
    }

    #[test]
    fn request_roundtrips_bit_exact() {
        let req = sample_request();
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back.priority, req.priority);
        assert_eq!(back.deadline, req.deadline);
        assert_eq!(back.volume.dims(), req.volume.dims());
        assert_eq!(back.volume.data(), req.volume.data());
    }

    #[test]
    fn ok_response_roundtrips_probability_bits() {
        let d = Diagnosis {
            probability: 0.123456789012345,
            positive: false,
            t_queue: Duration::from_micros(7),
            t_enhance: Duration::from_millis(11),
            t_segment: Duration::from_millis(13),
            t_classify: Duration::from_micros(17),
            t_total: Duration::from_millis(41),
        };
        let (id, back) = decode_ok(&encode_ok(99, &d)).unwrap();
        assert_eq!(id, 99);
        assert_eq!(back.probability.to_bits(), d.probability.to_bits());
        assert_eq!(back.positive, d.positive);
        assert_eq!(back.t_queue, d.t_queue);
        assert_eq!(back.t_total, d.t_total);
    }

    #[test]
    fn every_reject_variant_roundtrips() {
        let all = [
            Rejected::QueueFull { depth: 64, bound: 64 },
            Rejected::DeadlineImpossible {
                deadline: Duration::from_millis(1),
                est_service: Duration::from_millis(8),
            },
            Rejected::Invalid("rank mismatch".into()),
            Rejected::ShuttingDown,
        ];
        for why in all {
            assert_eq!(decode_reject(&encode_reject(&why)).unwrap(), why);
        }
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let full = encode_request(&sample_request());
        for cut in [0, 1, 5, 10, full.len() - 1] {
            assert!(decode_request(&full[..cut]).is_err(), "cut at {cut} must fail");
        }
        assert!(decode_ok(&[0u8; 10]).is_err());
        assert!(decode_reject(&[]).is_err());
    }
}
