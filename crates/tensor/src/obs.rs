//! Cached `cc19-obs` handles for the tensor hot paths.
//!
//! GEMM runs thousands of times per training step, so its handles are
//! `OnceLock`-cached and the timer reads the clock exactly twice per
//! call, on the caller thread (rayon workers never touch the clock —
//! that keeps clock reads causally ordered under the deterministic
//! manual clock). Conv entries are chunky enough that a per-call
//! registry lookup is noise.

use std::sync::{Arc, OnceLock};

use cc19_obs::{Clock, Counter, HistogramHandle, Timer};

/// Handles for [`crate::gemm::sgemm`] instrumentation.
pub(crate) struct GemmObs {
    /// `tensor_gemm_flops_total`: 2·m·n·k per call.
    pub flops: Counter,
    /// `tensor_gemm_seconds` histogram.
    pub seconds: HistogramHandle,
    /// The registry clock, read on the caller thread only.
    pub clock: Arc<dyn Clock>,
}

pub(crate) fn gemm() -> &'static GemmObs {
    static OBS: OnceLock<GemmObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = cc19_obs::global();
        GemmObs {
            flops: reg.counter("tensor_gemm_flops_total"),
            seconds: reg.histogram("tensor_gemm_seconds"),
            clock: reg.clock(),
        }
    })
}

/// Count `flops` into `tensor_conv_flops_total{op,pass}` and start a
/// `tensor_conv_seconds{op,pass}` timer; dropping the guard observes the
/// elapsed seconds. Forward passes cost `2·MACs` flops, backward passes
/// `4·MACs` (the input- and weight-gradient loops each re-run the MACs).
/// Widening product of dimension extents (the MAC count of a conv loop
/// nest), safe against `usize` overflow on large-but-valid shapes.
pub(crate) fn macs(dims: &[usize]) -> u64 {
    dims.iter().map(|&x| x as u64).product()
}

pub(crate) fn conv_call(op: &'static str, pass: &'static str, flops: u64) -> Timer {
    let reg = cc19_obs::global();
    let labels = [("op", op), ("pass", pass)];
    reg.counter_with("tensor_conv_flops_total", &labels).add(flops);
    reg.timer_with("tensor_conv_seconds", &labels)
}
