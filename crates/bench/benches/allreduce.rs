//! Ring vs naive (parameter-server) all-reduce at DDnet gradient size —
//! the gloo-algorithm ablation of DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cc19_dist::allreduce::{make_ring, make_star, naive_allreduce, ring_allreduce};

fn run_ring(n: usize, len: usize) {
    let rings = make_ring(n);
    let handles: Vec<_> = rings
        .into_iter()
        .enumerate()
        .map(|(rank, mut ring)| {
            std::thread::spawn(move || {
                let mut buf = vec![rank as f32; len];
                ring_allreduce(&mut buf, &mut ring).unwrap();
                buf[0]
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn run_naive(n: usize, len: usize) {
    let stars = make_star(n);
    let handles: Vec<_> = stars
        .into_iter()
        .enumerate()
        .map(|(rank, mut star)| {
            std::thread::spawn(move || {
                let mut buf = vec![rank as f32; len];
                let _ = rank;
                naive_allreduce(&mut buf, &mut star).unwrap();
                buf[0]
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_allreduce(c: &mut Criterion) {
    // DDnet gradient size (~175k params)
    let len = 175_000;
    let mut group = c.benchmark_group("allreduce_175k");
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, &n| b.iter(|| run_ring(n, len)));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| b.iter(|| run_naive(n, len)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allreduce
}
criterion_main!(benches);
