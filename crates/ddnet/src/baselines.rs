//! Enhancement baselines the paper's related work compares against
//! (§6.3): Jin et al. and Chen et al. apply a **U-Net-like CNN** to the
//! FBP reconstruction. [`UNetLite`] is that comparator — a two-level
//! encoder/decoder with skip connections and a residual output — used by
//! the `baselines` harness head-to-head against DDnet on identical
//! degradations, plus a non-learned Gaussian-smoothing baseline.

use cc19_nn::graph::{Graph, Var};
use cc19_nn::init::Init;
use cc19_nn::layers::{BatchNorm, BnForward, Conv2d};
use cc19_nn::param::ParamStore;
use cc19_tensor::conv::Conv2dSpec;
use cc19_tensor::pool::PoolSpec;
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

use crate::Result;

/// A small two-level U-Net for image enhancement.
pub struct UNetLite {
    /// Trainable parameters.
    pub store: ParamStore,
    enc1: Conv2d,
    bn_e1: BatchNorm,
    enc2: Conv2d,
    bn_e2: BatchNorm,
    mid: Conv2d,
    bn_mid: BatchNorm,
    dec2: Conv2d,
    bn_d2: BatchNorm,
    dec1: Conv2d,
    bn_d1: BatchNorm,
    out: Conv2d,
}

impl UNetLite {
    /// Build with `width` base channels.
    pub fn new(width: usize, seed: u64) -> Self {
        let mut rng = Xorshift::new(seed);
        let mut store = ParamStore::new();
        let init = Init::KaimingLeaky { negative_slope: 0.01 };
        let spec = Conv2dSpec { stride: 1, padding: 1 };
        let c = |store: &mut ParamStore, name: &str, cin: usize, cout: usize, rng: &mut Xorshift| {
            Conv2d::new(store, name, cin, cout, 3, spec, init, rng)
        };
        let enc1 = c(&mut store, "unet.enc1", 1, width, &mut rng);
        let bn_e1 = BatchNorm::new(&mut store, "unet.bn_e1", width);
        let enc2 = c(&mut store, "unet.enc2", width, 2 * width, &mut rng);
        let bn_e2 = BatchNorm::new(&mut store, "unet.bn_e2", 2 * width);
        let mid = c(&mut store, "unet.mid", 2 * width, 2 * width, &mut rng);
        let bn_mid = BatchNorm::new(&mut store, "unet.bn_mid", 2 * width);
        let dec2 = c(&mut store, "unet.dec2", 4 * width, width, &mut rng);
        let bn_d2 = BatchNorm::new(&mut store, "unet.bn_d2", width);
        let dec1 = c(&mut store, "unet.dec1", 2 * width, width, &mut rng);
        let bn_d1 = BatchNorm::new(&mut store, "unet.bn_d1", width);
        let out = Conv2d::new(
            &mut store,
            "unet.out",
            width,
            1,
            1,
            Conv2dSpec { stride: 1, padding: 0 },
            init,
            &mut rng,
        );
        // residual zero-init (same rationale as DDnet's scaled config)
        {
            let mut w = out.weight.borrow_mut();
            for v in w.value.data_mut() {
                *v = 0.0;
            }
        }
        UNetLite { store, enc1, bn_e1, enc2, bn_e2, mid, bn_mid, dec2, bn_d2, dec1, bn_d1, out }
    }

    /// Forward a `(B, 1, H, W)` batch (extents divisible by 4);
    /// residual output. Inference uses instance statistics in the BN
    /// layers (same rationale as `DdnetConfig::instance_norm_eval`).
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Result<Var> {
        let pool = PoolSpec { kernel: 2, stride: 2, padding: 0 };
        let act = |g: &mut Graph, v: Var| g.leaky_relu(v, 0.01);
        let bn = if training { BnForward::Train } else { BnForward::InstanceEval };

        let e1 = self.enc1.forward(g, x)?;
        let e1 = self.bn_e1.forward_with(g, e1, bn)?;
        let e1 = act(g, e1); // (B, w, H, W)

        let p1 = g.max_pool2d(e1, pool)?;
        let e2 = self.enc2.forward(g, p1)?;
        let e2 = self.bn_e2.forward_with(g, e2, bn)?;
        let e2 = act(g, e2); // (B, 2w, H/2, W/2)

        let p2 = g.max_pool2d(e2, pool)?;
        let m = self.mid.forward(g, p2)?;
        let m = self.bn_mid.forward_with(g, m, bn)?;
        let m = act(g, m); // (B, 2w, H/4, W/4)

        let u2 = g.upsample_bilinear2d(m, 2)?;
        let cat2 = g.concat_channels(&[u2, e2])?; // 4w
        let d2 = self.dec2.forward(g, cat2)?;
        let d2 = self.bn_d2.forward_with(g, d2, bn)?;
        let d2 = act(g, d2); // w

        let u1 = g.upsample_bilinear2d(d2, 2)?;
        let cat1 = g.concat_channels(&[u1, e1])?; // 2w
        let d1 = self.dec1.forward(g, cat1)?;
        let d1 = self.bn_d1.forward_with(g, d1, bn)?;
        let d1 = act(g, d1);

        let r = self.out.forward(g, d1)?;
        g.add(r, x)
    }

    /// Enhance one `(n, n)` image in `[0,1]`.
    pub fn enhance(&self, img: &Tensor) -> Result<Tensor> {
        img.shape().expect_rank(2)?;
        let (h, w) = (img.dims()[0], img.dims()[1]);
        let x = img.reshape([1, 1, h, w])?;
        let mut g = Graph::new();
        let xv = g.input(x);
        let y = self.forward(&mut g, xv, false)?;
        g.value(y).reshape([h, w])
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }
}

/// Non-learned baseline: Gaussian smoothing (the "just blur it" denoiser).
pub fn gaussian_smooth(img: &Tensor, sigma: f32) -> Result<Tensor> {
    img.shape().expect_rank(2)?;
    let (h, w) = (img.dims()[0], img.dims()[1]);
    let radius = (3.0 * sigma).ceil() as usize;
    let k = 2 * radius + 1;
    let mut kern = vec![0.0f32; k * k];
    let mut sum = 0.0f32;
    for y in 0..k {
        for x in 0..k {
            let dy = y as f32 - radius as f32;
            let dx = x as f32 - radius as f32;
            let v = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
            kern[y * k + x] = v;
            sum += v;
        }
    }
    for v in &mut kern {
        *v /= sum;
    }
    let x = img.reshape([1, 1, h, w])?;
    let kt = Tensor::from_vec([1, 1, k, k], kern)?;
    let spec = Conv2dSpec { stride: 1, padding: radius };
    let num = cc19_tensor::conv::conv2d(&x, &kt, None, spec)?;
    // Renormalize by the in-bounds kernel mass so zero padding does not
    // darken the borders (and shift the image mean).
    let ones = Tensor::ones([1, 1, h, w]);
    let den = cc19_tensor::conv::conv2d(&ones, &kt, None, spec)?;
    let out = cc19_tensor::ops::div(&num, &den)?;
    out.reshape([h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_nn::optim::Adam;

    #[test]
    fn unet_shapes_and_identity_start() {
        let net = UNetLite::new(4, 1);
        let mut rng = Xorshift::new(2);
        let img = rng.uniform_tensor([32, 32], 0.0, 1.0);
        let out = net.enhance(&img).unwrap();
        assert_eq!(out.dims(), &[32, 32]);
        assert!(out.all_close(&img, 1e-4), "zero-init residual starts at identity");
    }

    #[test]
    fn unet_learns_denoising() {
        let net = UNetLite::new(4, 3);
        let mut opt = Adam::new(2e-3);
        let mut rng = Xorshift::new(4);
        // clean = smooth ramp; noisy = +gaussian noise
        let make = |rng: &mut Xorshift| {
            let mut clean = Tensor::zeros([32, 32]);
            let fx = rng.uniform(0.05, 0.2);
            let fy = rng.uniform(0.05, 0.2);
            for y in 0..32 {
                for x in 0..32 {
                    clean.set(&[y, x], 0.5 + 0.3 * ((x as f32 * fx).sin() * (y as f32 * fy).cos()));
                }
            }
            let mut noisy = clean.clone();
            for v in noisy.data_mut() {
                *v += rng.normal_ms(0.0, 0.08);
            }
            (noisy, clean)
        };
        for _ in 0..30 {
            let (noisy, clean) = make(&mut rng);
            let x = noisy.reshape([1, 1, 32, 32]).unwrap();
            let t = clean.reshape([1, 1, 32, 32]).unwrap();
            let mut g = Graph::new();
            let xv = g.input(x);
            let tv = g.input(t);
            let y = net.forward(&mut g, xv, true).unwrap();
            let loss = g.mse_loss(y, tv).unwrap();
            net.store.zero_grad();
            g.backward(loss);
            opt.step(&net.store);
        }
        let (noisy, clean) = make(&mut rng);
        let out = net.enhance(&noisy).unwrap();
        let before = cc19_tensor::reduce::mse(&noisy, &clean).unwrap();
        let after = cc19_tensor::reduce::mse(&out, &clean).unwrap();
        assert!(after < before, "unet should denoise: {after} vs {before}");
    }

    #[test]
    fn gaussian_smooth_reduces_noise_preserves_mean() {
        let mut rng = Xorshift::new(5);
        let mut img = Tensor::full([32, 32], 0.5);
        for v in img.data_mut() {
            *v += rng.normal_ms(0.0, 0.1);
        }
        let smooth = gaussian_smooth(&img, 1.0).unwrap();
        let var_before = cc19_tensor::reduce::variance(&img);
        let var_after = cc19_tensor::reduce::variance(&smooth);
        assert!(var_after < var_before / 2.0);
        // interior mean preserved
        let m_before = cc19_tensor::reduce::mean(&img);
        let m_after = cc19_tensor::reduce::mean(&smooth);
        assert!((m_before - m_after).abs() < 0.02);
    }

    #[test]
    fn unet_is_smaller_than_ddnet() {
        // sanity: the baseline is the lighter model (as in the literature
        // comparison — DDnet's dense blocks carry more layers)
        let unet = UNetLite::new(8, 1);
        let ddnet = crate::Ddnet::new(crate::DdnetConfig::reduced(), 1);
        assert!(unet.num_params() < ddnet.num_params());
    }
}
