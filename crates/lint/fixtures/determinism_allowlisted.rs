//~ path: crates/kernels/src/fixture.rs
//~ expect: none
//~ allow: determinism crates/kernels/src/fixture.rs timing instrumentation, values never feed numerics
// Same clock read as determinism_clock.rs, but the file is allowlisted
// in lint.toml with a reason — the linter must stay silent.

use std::time::Instant;

pub fn timed_section(n: usize) -> (u64, std::time::Duration) {
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..n as u64 {
        acc = acc.wrapping_add(i);
    }
    (acc, t0.elapsed())
}
