//! # cc19-kernels
//!
//! Hand-written CPU inference kernels for DDnet, mirroring the paper's
//! OpenCL kernels (§4.2) and their optimization stages:
//!
//! - **Baseline** — the naive kernel translation. Deconvolution is the
//!   *scatter* formulation: every input element multiplies the whole
//!   filter and accumulates into the output with recurring global
//!   loads/stores (the memory-traffic pathology §4.2.1 describes).
//! - **+REF (refactoring)** — deconvolution rewritten in the *gather* form
//!   via inverse coefficient mapping: each output element determines the
//!   input block that affects it and multiply-adds once before a single
//!   store.
//! - **+PF (prefetching)** — loop bounds and filter rows hoisted into
//!   locals outside the inner loops (the OpenCL kernels prefetch sizes
//!   into private memory; on the CPU this corresponds to hoisting
//!   bounds-checks and slices out of the hot loop).
//! - **+LU (loop unrolling)** — the multiply-add loop over the 5-wide
//!   filter row fully unrolled (factor 5, matching §4.2.2); a *dedicated
//!   kernel* specialized to the 5×5 filter, like the paper's
//!   FPGA-dedicated kernels.
//!
//! Six kernel types exist, matching Table 6: convolution, deconvolution,
//! pooling, un-pooling, leaky-ReLU, batch normalization. Every kernel has
//! an instrumented twin that counts global loads / stores / flops; the
//! analytic count formulas in [`count`] are validated against those
//! instrumented kernels in the tests.
//!
//! ## The SIMD twin ladder
//!
//! Every stage also has an explicit AVX2+FMA twin (8-lane f32
//! microkernels in `microkernel`, DESIGN.md §13), selected at runtime by
//! [`simd::active`] — hardware detection narrowed by the `CC19_SIMD` env
//! override. The stage → concrete-kernel mapping is *data*, not buried
//! control flow: [`OptLevel::conv_kernel`] / [`OptLevel::deconv_kernel`]
//! return the [`ConvKernel`] / [`DeconvKernel`] a `(stage, dispatch)`
//! pair runs, and a unit test pins the full table so a future stage
//! cannot silently alias an existing kernel unnoticed.

pub mod conv;
pub mod count;
pub mod ddnet_exec;
pub mod deconv;
#[cfg(target_arch = "x86_64")]
mod microkernel;
pub mod others;
pub mod simd;

pub use count::{KernelCounts, OpCounts};
pub use ddnet_exec::{run_ddnet_inference, DdnetShape, KernelTimes};

/// The paper's cumulative optimization stages (Table 7 columns).
///
/// A stage names a *set of optimizations*, not one function: each stage
/// maps to a concrete kernel per operation × dispatch level via
/// [`OptLevel::conv_kernel`] / [`OptLevel::deconv_kernel`]. Two mappings
/// are intentionally non-obvious and are part of the stage semantics:
///
/// - **REF changes only the deconvolution** (scatter → gather, §4.2.1);
///   the `Refactored` *conv* runs the same kernel as `Baseline`.
/// - **The scatter deconvolution has no vector twin**: its atomic
///   read-modify-write scatter is the memory-traffic pathology the
///   ladder exists to remove, so `Baseline` deconv stays scalar even
///   under AVX2 dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Naive kernels; scatter deconvolution.
    Baseline,
    /// + refactored (gather) deconvolution. Conv is unchanged at this
    ///   stage — REF is a deconvolution-only optimization.
    Refactored,
    /// + bounds/filter prefetching (scalar: hoisted bounds/slices; AVX2:
    ///   `_mm_prefetch` software prefetch).
    RefactoredPrefetch,
    /// + 5× loop unrolling (scalar: dedicated 5-wide expression; AVX2:
    ///   ×5 column register blocking + dedicated 3×3/5×5 kernels).
    RefactoredPrefetchUnrolled,
}

/// The concrete convolution implementation a `(stage, dispatch)` pair
/// selects — see [`OptLevel::conv_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvKernel {
    /// Naive translation, bounds checked per tap (`conv_baseline`).
    ScalarNaive,
    /// Hoisted bounds + sliced filter rows (`conv_prefetch`).
    ScalarHoisted,
    /// Hoisted + dedicated ×5-unrolled 5-wide row expression.
    ScalarHoistedUnrolled,
    /// AVX2+FMA 8-lane vector kernel, no prefetch/unroll.
    Avx2,
    /// + `_mm_prefetch` of the next column block / filter row.
    Avx2Prefetch,
    /// + ×5 column register blocking and dedicated 3×3/5×5 kernels.
    Avx2PrefetchUnrolled,
}

/// The concrete deconvolution implementation a `(stage, dispatch)` pair
/// selects — see [`OptLevel::deconv_kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeconvKernel {
    /// Atomic scatter — the baseline pathology; never vectorized.
    ScalarScatter,
    /// Gather via inverse coefficient mapping, bounds per tap.
    ScalarGather,
    /// Gather with hoisted tap ranges + sliced rows.
    ScalarGatherHoisted,
    /// Hoisted gather + dedicated ×5-unrolled 5-wide expression.
    ScalarGatherHoistedUnrolled,
    /// AVX2+FMA 8-lane gather, no prefetch/unroll.
    Avx2Gather,
    /// + software prefetch.
    Avx2GatherPrefetch,
    /// + ×5 register blocking and dedicated 3×3/5×5 kernels.
    Avx2GatherPrefetchUnrolled,
}

impl OptLevel {
    /// All stages in Table 7 order.
    pub const ALL: [OptLevel; 4] = [
        OptLevel::Baseline,
        OptLevel::Refactored,
        OptLevel::RefactoredPrefetch,
        OptLevel::RefactoredPrefetchUnrolled,
    ];

    /// Column header as in Table 7.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::Baseline => "Baseline",
            OptLevel::Refactored => "Baseline + REF",
            OptLevel::RefactoredPrefetch => "Baseline + REF + PF",
            OptLevel::RefactoredPrefetchUnrolled => "Baseline + REF + PF + LU",
        }
    }

    /// Short lowercase stage tag for CSV columns / metric labels.
    pub fn tag(&self) -> &'static str {
        match self {
            OptLevel::Baseline => "base",
            OptLevel::Refactored => "ref",
            OptLevel::RefactoredPrefetch => "pf",
            OptLevel::RefactoredPrefetchUnrolled => "lu",
        }
    }

    /// The convolution kernel this stage runs at a dispatch level. REF
    /// intentionally aliases the Baseline conv — refactoring is a
    /// deconvolution-only optimization (see the type-level docs).
    pub fn conv_kernel(&self, simd: simd::SimdLevel) -> ConvKernel {
        use simd::SimdLevel::*;
        match (simd, self) {
            (Scalar, OptLevel::Baseline | OptLevel::Refactored) => ConvKernel::ScalarNaive,
            (Scalar, OptLevel::RefactoredPrefetch) => ConvKernel::ScalarHoisted,
            (Scalar, OptLevel::RefactoredPrefetchUnrolled) => ConvKernel::ScalarHoistedUnrolled,
            (Avx2, OptLevel::Baseline | OptLevel::Refactored) => ConvKernel::Avx2,
            (Avx2, OptLevel::RefactoredPrefetch) => ConvKernel::Avx2Prefetch,
            (Avx2, OptLevel::RefactoredPrefetchUnrolled) => ConvKernel::Avx2PrefetchUnrolled,
        }
    }

    /// The deconvolution kernel this stage runs at a dispatch level. The
    /// Baseline scatter intentionally stays scalar under AVX2 dispatch —
    /// the atomic scatter *is* the baseline being measured (see the
    /// type-level docs).
    pub fn deconv_kernel(&self, simd: simd::SimdLevel) -> DeconvKernel {
        use simd::SimdLevel::*;
        match (simd, self) {
            (_, OptLevel::Baseline) => DeconvKernel::ScalarScatter,
            (Scalar, OptLevel::Refactored) => DeconvKernel::ScalarGather,
            (Scalar, OptLevel::RefactoredPrefetch) => DeconvKernel::ScalarGatherHoisted,
            (Scalar, OptLevel::RefactoredPrefetchUnrolled) => {
                DeconvKernel::ScalarGatherHoistedUnrolled
            }
            (Avx2, OptLevel::Refactored) => DeconvKernel::Avx2Gather,
            (Avx2, OptLevel::RefactoredPrefetch) => DeconvKernel::Avx2GatherPrefetch,
            (Avx2, OptLevel::RefactoredPrefetchUnrolled) => DeconvKernel::Avx2GatherPrefetchUnrolled,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = cc19_tensor::Result<T>;

#[cfg(test)]
mod tests {
    use super::simd::SimdLevel;
    use super::*;

    #[test]
    fn stage_to_kernel_mapping_is_pinned() {
        // The full Table-7 stage → kernel table, pinned so a new stage
        // (or a refactor of the dispatch match) cannot silently alias an
        // existing kernel the way `Refactored` conv once did with only a
        // comment to mark the intent.
        use {ConvKernel as C, DeconvKernel as D, OptLevel as O};
        let expect: [(O, C, C, D, D); 4] = [
            (O::Baseline, C::ScalarNaive, C::Avx2, D::ScalarScatter, D::ScalarScatter),
            // REF changes only the deconvolution: conv aliases Baseline.
            (O::Refactored, C::ScalarNaive, C::Avx2, D::ScalarGather, D::Avx2Gather),
            (
                O::RefactoredPrefetch,
                C::ScalarHoisted,
                C::Avx2Prefetch,
                D::ScalarGatherHoisted,
                D::Avx2GatherPrefetch,
            ),
            (
                O::RefactoredPrefetchUnrolled,
                C::ScalarHoistedUnrolled,
                C::Avx2PrefetchUnrolled,
                D::ScalarGatherHoistedUnrolled,
                D::Avx2GatherPrefetchUnrolled,
            ),
        ];
        assert_eq!(expect.len(), OptLevel::ALL.len(), "pin every stage");
        for (i, (level, conv_s, conv_v, deconv_s, deconv_v)) in expect.into_iter().enumerate() {
            assert_eq!(level, OptLevel::ALL[i], "table must follow ALL order");
            assert_eq!(level.conv_kernel(SimdLevel::Scalar), conv_s, "{level:?} scalar conv");
            assert_eq!(level.conv_kernel(SimdLevel::Avx2), conv_v, "{level:?} avx2 conv");
            assert_eq!(level.deconv_kernel(SimdLevel::Scalar), deconv_s, "{level:?} scalar deconv");
            assert_eq!(level.deconv_kernel(SimdLevel::Avx2), deconv_v, "{level:?} avx2 deconv");
        }
    }

    #[test]
    fn stage_tags_are_unique_and_snake() {
        let tags: Vec<&str> = OptLevel::ALL.iter().map(|l| l.tag()).collect();
        assert_eq!(tags, ["base", "ref", "pf", "lu"]);
    }
}
