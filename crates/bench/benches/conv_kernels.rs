//! Convolution kernel across the paper's optimization stages
//! (Table 7 ablation at kernel granularity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cc19_kernels::conv::{conv2d, ConvShape};
use cc19_kernels::OptLevel;
use cc19_tensor::rng::Xorshift;

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_5x5");
    let s = ConvShape { cin: 16, cout: 16, h: 128, w: 128, k: 5, pad: 2 };
    let mut rng = Xorshift::new(1);
    let input: Vec<f32> = (0..s.in_len()).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let weight: Vec<f32> = (0..s.cout * s.cin * 25).map(|_| rng.uniform(-0.5, 0.5)).collect();
    let bias: Vec<f32> = (0..s.cout).map(|_| rng.uniform(-0.1, 0.1)).collect();

    for level in OptLevel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(level.label()), &level, |b, &level| {
            b.iter(|| conv2d(level, &input, &weight, &bias, s));
        });
    }
    group.finish();

    // the 7x7 stem at full resolution
    let mut group = c.benchmark_group("conv2d_stem_7x7");
    let s = ConvShape { cin: 1, cout: 16, h: 256, w: 256, k: 7, pad: 3 };
    let input: Vec<f32> = (0..s.in_len()).map(|_| rng.uniform(0.0, 1.0)).collect();
    let weight: Vec<f32> = (0..s.cout * 49).map(|_| rng.uniform(-0.5, 0.5)).collect();
    let bias = vec![0.0f32; 16];
    group.bench_function("prefetch_unrolled", |b| {
        b.iter(|| conv2d(OptLevel::RefactoredPrefetchUnrolled, &input, &weight, &bias, s));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_conv
}
criterion_main!(benches);
