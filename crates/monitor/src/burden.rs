//! Lesion-burden quantification in physical units.
//!
//! Counts lung and lesion voxels from the segmentation output (mask ×
//! enhanced HU volume) and converts them to mL via the phantom
//! [`VoxelSpacing`] — the fluid-volume-calculation direction: burden is
//! a volume, not a voxel count. The HU threshold separating healthy
//! parenchyma from GGO/consolidation territory is the pipeline's
//! [`LESION_HU_THRESHOLD`].

use cc19_data::volume::VoxelSpacing;
use cc19_tensor::Tensor;
use computecovid19::monitoring::LESION_HU_THRESHOLD;

use crate::Result;

/// Quantified lesion burden of one scan, in physical units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LesionBurden {
    /// Segmented lung volume (mL).
    pub lung_ml: f64,
    /// GGO/consolidation volume inside the lungs (mL).
    pub lesion_ml: f64,
    /// Mean HU inside the lungs (rises with disease).
    pub mean_lung_hu: f64,
}

impl LesionBurden {
    /// Lesion fraction of the lung volume (0..1); 0 for empty lungs.
    pub fn fraction(&self) -> f64 {
        if self.lung_ml <= 0.0 {
            return 0.0;
        }
        self.lesion_ml / self.lung_ml
    }
}

/// Quantify the burden of a `(D, H, W)` HU volume against its binary
/// lung mask. Both tensors must share dims; the mask is the
/// segmentation stage's output (1 inside lungs).
pub fn quantify_masked(
    volume_hu: &Tensor,
    mask: &Tensor,
    spacing: VoxelSpacing,
) -> Result<LesionBurden> {
    volume_hu.shape().expect_rank(3)?;
    if volume_hu.dims() != mask.dims() {
        return Err(cc19_tensor::TensorError::Incompatible(
            "burden quantification needs matching volume and mask dims".into(),
        ));
    }
    let mut lung_voxels = 0u64;
    let mut lesion_voxels = 0u64;
    let mut hu_acc = 0.0f64;
    for (&hu, &m) in volume_hu.data().iter().zip(mask.data()) {
        if m > 0.5 {
            lung_voxels += 1;
            hu_acc += hu as f64;
            if hu > LESION_HU_THRESHOLD {
                lesion_voxels += 1;
            }
        }
    }
    let voxel_ml = spacing.voxel_ml();
    Ok(LesionBurden {
        lung_ml: lung_voxels as f64 * voxel_ml,
        lesion_ml: lesion_voxels as f64 * voxel_ml,
        mean_lung_hu: if lung_voxels > 0 { hu_acc / lung_voxels as f64 } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn spacing() -> VoxelSpacing {
        VoxelSpacing::for_volume_dims(4, 32)
    }

    #[test]
    fn counts_scale_by_voxel_volume() {
        // 2 lung voxels, 1 above the lesion threshold
        let mut vol = Tensor::full([1, 2, 2], -1000.0);
        vol.data_mut()[0] = -800.0;
        vol.data_mut()[1] = -300.0;
        let mut mask = Tensor::zeros([1, 2, 2]);
        mask.data_mut()[0] = 1.0;
        mask.data_mut()[1] = 1.0;
        let b = quantify_masked(&vol, &mask, spacing()).unwrap();
        let vml = spacing().voxel_ml();
        assert!((b.lung_ml - 2.0 * vml).abs() < 1e-12);
        assert!((b.lesion_ml - vml).abs() < 1e-12);
        assert!((b.fraction() - 0.5).abs() < 1e-12);
        assert!((b.mean_lung_hu - (-550.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_mask_is_zero_burden() {
        let vol = Tensor::full([1, 2, 2], -300.0);
        let mask = Tensor::zeros([1, 2, 2]);
        let b = quantify_masked(&vol, &mask, spacing()).unwrap();
        assert_eq!(b.lung_ml, 0.0);
        assert_eq!(b.fraction(), 0.0);
    }

    #[test]
    fn dim_mismatch_is_an_error() {
        let vol = Tensor::zeros([1, 2, 2]);
        let mask = Tensor::zeros([1, 2, 3]);
        assert!(quantify_masked(&vol, &mask, spacing()).is_err());
        assert!(quantify_masked(&Tensor::zeros([2, 2]), &Tensor::zeros([2, 2]), spacing())
            .is_err());
    }
}
