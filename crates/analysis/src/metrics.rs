//! Classification metrics (§5.2 of the paper).
//!
//! - Accuracy, Eq (3): `(TP + TN) / (TP + FP + FN + TN)`
//! - TPR, Eq (4): `TP / (TP + FN)`
//! - FPR, Eq (5): `FP / (FP + TN)`
//! - ROC curve and AUC (trapezoidal / rank statistic)
//! - Confusion matrix at a threshold (Table 9 uses 0.061)

/// Counts of a binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Positives predicted positive.
    pub tp: usize,
    /// Negatives predicted positive.
    pub fp: usize,
    /// Positives predicted negative.
    pub fn_: usize,
    /// Negatives predicted negative.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Accuracy, Eq (3).
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// True-positive rate (sensitivity / recall), Eq (4).
    pub fn tpr(&self) -> f64 {
        let p = self.tp + self.fn_;
        if p == 0 {
            return 0.0;
        }
        self.tp as f64 / p as f64
    }

    /// False-positive rate, Eq (5).
    pub fn fpr(&self) -> f64 {
        let n = self.fp + self.tn;
        if n == 0 {
            return 0.0;
        }
        self.fp as f64 / n as f64
    }

    /// Specificity = 1 - FPR.
    pub fn specificity(&self) -> f64 {
        1.0 - self.fpr()
    }

    /// Precision (positive predictive value).
    pub fn precision(&self) -> f64 {
        let pp = self.tp + self.fp;
        if pp == 0 {
            return 0.0;
        }
        self.tp as f64 / pp as f64
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Confusion matrix for `scores` against boolean `labels` at a decision
/// threshold (score ≥ threshold ⇒ predicted positive).
pub fn confusion_at(scores: &[f64], labels: &[bool], threshold: f64) -> ConfusionMatrix {
    assert_eq!(scores.len(), labels.len());
    let mut cm = ConfusionMatrix::default();
    for (&s, &y) in scores.iter().zip(labels) {
        match (s >= threshold, y) {
            (true, true) => cm.tp += 1,
            (true, false) => cm.fp += 1,
            (false, true) => cm.fn_ += 1,
            (false, false) => cm.tn += 1,
        }
    }
    cm
}

/// Accuracy at a threshold, Eq (3).
pub fn accuracy(scores: &[f64], labels: &[bool], threshold: f64) -> f64 {
    confusion_at(scores, labels, threshold).accuracy()
}

/// ROC curve: `(fpr, tpr)` points swept over every distinct score
/// threshold, ordered from (0,0) to (1,1).
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let p = labels.iter().filter(|&&l| l).count();
    let n = labels.len() - p;
    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        // advance over ties together
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push((
            if n == 0 { 0.0 } else { fp as f64 / n as f64 },
            if p == 0 { 0.0 } else { tp as f64 / p as f64 },
        ));
    }
    curve
}

/// Area under the ROC curve (trapezoidal rule over [`roc_curve`]).
pub fn auc_roc(scores: &[f64], labels: &[bool]) -> f64 {
    let curve = roc_curve(scores, labels);
    let mut auc = 0.0;
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        auc += (x1 - x0) * (y0 + y1) / 2.0;
    }
    auc
}

/// The threshold maximizing accuracy (the paper reports an "optimal
/// threshold value of 0.061" for Table 9). Ties break toward the smaller
/// threshold.
pub fn optimal_threshold(scores: &[f64], labels: &[bool]) -> f64 {
    let mut cands: Vec<f64> = scores.to_vec();
    // A threshold above every score ("predict all negative") must be a
    // candidate too; threshold == min already covers "all positive".
    if let Some(max) = scores.iter().cloned().fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v)))) {
        cands.push(max + 1.0);
    }
    cands.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    cands.dedup();
    let mut best = (0.0f64, f64::NEG_INFINITY);
    for &t in &cands {
        let acc = accuracy(scores, labels, t);
        if acc > best.1 {
            best = (t, acc);
        }
    }
    best.0
}

/// Wilson score interval for a binomial proportion — the honest error bar
/// for accuracy/sensitivity on small test sets like the paper's 95 scans
/// (or our scaled 19). Returns `(low, high)` at the given z (1.96 ≈ 95 %).
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Brier score — mean squared error of predicted probabilities against
/// outcomes; a proper scoring rule for the classifier's calibration.
pub fn brier_score(scores: &[f64], labels: &[bool]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores
        .iter()
        .zip(labels)
        .map(|(&s, &y)| {
            let t = if y { 1.0 } else { 0.0 };
            (s - t) * (s - t)
        })
        .sum::<f64>()
        / scores.len() as f64
}

/// Mean predicted probability of the positive class over true positives —
/// the paper reports this improving by 0.1136 with enhancement (§5.2.3).
pub fn mean_positive_probability(scores: &[f64], labels: &[bool]) -> f64 {
    let pos: Vec<f64> =
        scores.iter().zip(labels).filter(|(_, &l)| l).map(|(&s, _)| s).collect();
    if pos.is_empty() {
        return 0.0;
    }
    pos.iter().sum::<f64>() / pos.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, false, true, false];
        let cm = confusion_at(&scores, &labels, 0.5);
        assert_eq!(cm, ConfusionMatrix { tp: 1, fp: 1, fn_: 1, tn: 1 });
        assert_eq!(cm.accuracy(), 0.5);
        assert_eq!(cm.tpr(), 0.5);
        assert_eq!(cm.fpr(), 0.5);
    }

    #[test]
    fn perfect_classifier_auc_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auc_roc(&scores, &labels), 1.0);
        let cm = confusion_at(&scores, &labels, 0.5);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn random_classifier_auc_is_half() {
        // scores identical -> single diagonal step -> AUC 0.5
        let scores = [0.5; 10];
        let labels = [true, false, true, false, true, false, true, false, true, false];
        assert!((auc_roc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inverted_classifier_auc_is_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert_eq!(auc_roc(&scores, &labels), 0.0);
    }

    #[test]
    fn roc_curve_endpoints() {
        let scores = [0.7, 0.4, 0.6, 0.2];
        let labels = [true, false, false, true];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.first().unwrap(), &(0.0, 0.0));
        assert_eq!(curve.last().unwrap(), &(1.0, 1.0));
        // monotone non-decreasing in both coordinates
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn auc_equals_rank_statistic() {
        // AUC == P(score_pos > score_neg) + 0.5 P(tie)
        let scores = [0.9, 0.8, 0.8, 0.4, 0.3, 0.2];
        let labels = [true, true, false, true, false, false];
        let mut stat = 0.0;
        let mut pairs = 0.0;
        for (i, &li) in labels.iter().enumerate() {
            if !li {
                continue;
            }
            for (j, &lj) in labels.iter().enumerate() {
                if lj {
                    continue;
                }
                pairs += 1.0;
                if scores[i] > scores[j] {
                    stat += 1.0;
                } else if scores[i] == scores[j] {
                    stat += 0.5;
                }
            }
        }
        assert!((auc_roc(&scores, &labels) - stat / pairs).abs() < 1e-12);
    }

    #[test]
    fn optimal_threshold_maximizes_accuracy() {
        let scores = [0.9, 0.7, 0.65, 0.3, 0.2];
        let labels = [true, true, false, false, false];
        let t = optimal_threshold(&scores, &labels);
        let acc = accuracy(&scores, &labels, t);
        // best achievable: threshold 0.7 -> all correct
        assert_eq!(acc, 1.0);
        assert!((0.65..=0.7).contains(&t) || t == 0.7);
    }

    #[test]
    fn mean_positive_probability_averages_positives_only() {
        let scores = [0.8, 0.2, 0.6];
        let labels = [true, false, true];
        assert!((mean_positive_probability(&scores, &labels) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_properties() {
        // contains the point estimate and shrinks with n
        let (lo, hi) = wilson_interval(8, 10, 1.96);
        assert!(lo < 0.8 && 0.8 < hi);
        let (lo2, hi2) = wilson_interval(800, 1000, 1.96);
        assert!(hi2 - lo2 < hi - lo, "narrower with more trials");
        assert!(lo2 < 0.8 && 0.8 < hi2);
        // bounds are clamped to [0,1]
        let (lo, hi) = wilson_interval(0, 5, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 1.0);
        let (lo, hi) = wilson_interval(5, 5, 1.96);
        assert!(lo > 0.0 && lo < 1.0);
        assert_eq!(hi, 1.0);
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn brier_score_properties() {
        // perfect confident predictions score 0; maximally wrong score 1
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]), 1.0);
        // uninformative 0.5 predictions score 0.25
        assert!((brier_score(&[0.5; 4], &[true, false, true, false]) - 0.25).abs() < 1e-12);
        assert_eq!(brier_score(&[], &[]), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(auc_roc(&[], &[]), 0.0);
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.tpr(), 0.0);
        assert_eq!(cm.fpr(), 0.0);
    }
}
