//! Offline shim for the subset of [proptest](https://docs.rs/proptest)
//! this workspace uses.
//!
//! The build container has no crates.io access (see
//! `third_party/README.md`), so this crate provides a small
//! property-testing runner with the same surface syntax:
//!
//! * the `proptest!` macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `fn name(pat in strategy, ...)` test items,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! * strategies: numeric ranges (`0u64..500`, `-1.0f32..1.0`),
//!   `proptest::bool::ANY`, tuples of strategies,
//!   `proptest::collection::vec(elem, len_or_range)`, and `.prop_map`.
//!
//! Differences from real proptest: sampling is purely random from a
//! fixed deterministic seed (every run explores the same inputs), and
//! there is **no shrinking** — a failure panics with the formatted
//! assertion message instead of a minimized counterexample.
//! `.proptest-regressions` files are ignored.

/// Per-test configuration (`cases` = number of accepted samples to run).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; the runner draws a new one.
    Reject(String),
    /// `prop_assert!`-style failure; the runner panics with this message.
    Fail(String),
}

/// Deterministic RNG used by the runner (xorshift64*).
pub mod test_runner {
    /// Random source handed to `Strategy::sample`.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed generator so every `cargo test` run replays the
        /// same sample sequence.
        pub fn deterministic() -> Self {
            TestRng { state: 0x853C49E6748FEA9B }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform usize in [lo, hi).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(hi > lo, "empty range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// A source of random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// draws one concrete value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f` (mirrors proptest's
    /// `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length spec for [`vec`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: every element drawn from `element`, length from
    /// `size` (a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the test files import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Non-fatal assertion: on failure the current case errors out (here:
/// the whole test panics — no shrinking to report afterwards).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Reject the current case (the runner draws a replacement sample).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(format!($($fmt)+)));
        }
    };
}

/// Property-test entry macro. Mirrors proptest's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(0f32..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// As with the real crate, the `#[test]` attribute is written by the
/// caller; the macro only wraps the body in the sampling loop.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      )*
    ) => {
        $(
            // The user writes `#[test]` inside the block (as with real
            // proptest); it arrives through `$meta`, so don't add another
            // or libtest registers the function twice.
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                while __accepted < __cfg.cases {
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            assert!(
                                __rejected < 65536,
                                "proptest shim: too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case failed in {}: {}", stringify!($name), __msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
        crate::collection::vec((0.0f64..1.0, crate::bool::ANY), 2..5)
            .prop_map(|v| v.into_iter().unzip())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_len_and_assume(v in crate::collection::vec(0u8..4, 1..6)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuple_pattern((xs, ls) in pair()) {
            prop_assert_eq!(xs.len(), ls.len());
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn fixed_len_vec(bits in crate::collection::vec(crate::bool::ANY, 16)) {
            prop_assert_eq!(bits.len(), 16);
        }
    }
}
