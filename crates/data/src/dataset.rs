//! Assembled datasets with the paper's splits.
//!
//! - Enhancement AI (§3.1.2): 5120 slices total — Mayo 2286/300/300
//!   (train/val/test) and simulated-BIMCV 2816/484/484. We reproduce the
//!   *proportions* at a configurable total so scaled runs stay tractable.
//! - Classification AI (§3.3.2, §5.2.2): 305 training/validation volumes;
//!   the held-out test set has 95 volumes — 36 COVID-positive, 59 healthy.

use rayon::prelude::*;

use cc19_tensor::Tensor;

use crate::lowdose_pairs::{make_pair, EnhancementPair, PairConfig};
use crate::prep::{filter_catalog, PrepConfig};
use crate::sources::{DataSource, ScanMeta, SourceCatalog};
use crate::volume::CtVolume;
use crate::Result;

/// A train/val/test split of enhancement pairs.
#[derive(Debug)]
pub struct EnhancementDataset {
    /// Training pairs.
    pub train: Vec<EnhancementPair>,
    /// Validation pairs.
    pub val: Vec<EnhancementPair>,
    /// Held-out test pairs.
    pub test: Vec<EnhancementPair>,
}

impl EnhancementDataset {
    /// Generate with the paper's split proportions at `total` pairs.
    ///
    /// Paper totals: 5120 pairs → train 5102/5120 ≈ 0.7, val/test ≈ 0.15
    /// each (2286+2816 / 300+484 / 300+484). Subjects are drawn from the
    /// Mayo (healthy) and BIMCV (positive) catalogs like the paper's mix.
    pub fn generate(total: usize, cfg: PairConfig) -> Result<Self> {
        let total = total.max(6);
        let n_train = total * 7 / 10;
        let n_val = (total - n_train) / 2;
        let n_test = total - n_train - n_val;

        let mayo = SourceCatalog::generate(DataSource::Mayo, 1);
        let bimcv = SourceCatalog::generate(DataSource::Bimcv, 1);
        let (bimcv_ct, _) = filter_catalog(&bimcv.scans, PrepConfig::scaled(1));

        // Interleave subjects from the two sources; slice positions sweep z.
        let jobs: Vec<(ScanMeta, f32)> = (0..total)
            .map(|i| {
                let z = 0.2 + 0.6 * ((i * 37) % 100) as f32 / 100.0;
                let meta = if i % 2 == 0 {
                    mayo.scans[(i / 2) % mayo.scans.len()].clone()
                } else {
                    bimcv_ct[(i / 2) % bimcv_ct.len()].clone()
                };
                (meta, z)
            })
            .collect();

        let pairs: Vec<EnhancementPair> = jobs
            .par_iter()
            .enumerate()
            .map(|(i, (meta, z))| {
                let mut c = cfg;
                c.dose.seed = cfg.dose.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                make_pair(meta, *z, c)
            })
            .collect::<Result<Vec<_>>>()?;

        let mut it = pairs.into_iter();
        let train: Vec<_> = it.by_ref().take(n_train).collect();
        let val: Vec<_> = it.by_ref().take(n_val).collect();
        let test: Vec<_> = it.take(n_test).collect();
        Ok(EnhancementDataset { train, val, test })
    }
}

/// One classification example.
#[derive(Debug, Clone)]
pub struct ClassificationItem {
    /// The CT volume (HU), shape `(D, H, W)`.
    pub volume: CtVolume,
    /// Ground truth: true = COVID-positive.
    pub label: bool,
}

/// Classification dataset with the paper's test composition.
#[derive(Debug)]
pub struct ClassificationDataset {
    /// Training + validation volumes (the paper's 305).
    pub train: Vec<ClassificationItem>,
    /// Held-out test volumes (the paper's 95: 36 positive / 59 negative).
    pub test: Vec<ClassificationItem>,
}

impl ClassificationDataset {
    /// Generate at reduced size: `train_total` training volumes (balanced)
    /// and a test set with the paper's 36:59 positive:negative ratio scaled
    /// to `test_total`.
    ///
    /// `n` and `slices` control the synthesized resolution.
    pub fn generate(train_total: usize, test_total: usize, n: usize, slices: usize) -> Result<Self> {
        let midrc = SourceCatalog::generate(DataSource::Midrc, 1);
        let lidc = SourceCatalog::generate(DataSource::Lidc, 1);
        let (midrc_ct, _) = filter_catalog(&midrc.scans, PrepConfig::scaled(1));
        let (lidc_ct, _) = filter_catalog(&lidc.scans, PrepConfig::scaled(1));

        // Paper test ratio: 36 pos / 95 total.
        let test_pos = (test_total * 36 + 47) / 95;
        let test_neg = test_total - test_pos;
        let train_pos = train_total / 2;
        let train_neg = train_total - train_pos;

        let mut jobs: Vec<(ScanMeta, bool)> = Vec::new();
        for i in 0..train_pos {
            jobs.push((midrc_ct[i % midrc_ct.len()].clone(), true));
        }
        for i in 0..train_neg {
            jobs.push((lidc_ct[i % lidc_ct.len()].clone(), false));
        }
        // Test subjects must be disjoint from training subjects.
        for i in 0..test_pos {
            jobs.push((midrc_ct[(train_pos + i) % midrc_ct.len()].clone(), true));
        }
        for i in 0..test_neg {
            jobs.push((lidc_ct[(train_neg + i) % lidc_ct.len()].clone(), false));
        }

        let items: Vec<ClassificationItem> = jobs
            .par_iter()
            .map(|(meta, label)| {
                let mut vol = CtVolume::synthesize(meta, n, slices)?;
                if vol.meta.circular_artifact {
                    crate::prep::remove_circular_boundary(&mut vol);
                }
                Ok(ClassificationItem { volume: vol, label: *label })
            })
            .collect::<Result<Vec<_>>>()?;

        let mut it = items.into_iter();
        let train: Vec<_> = it.by_ref().take(train_total).collect();
        let test: Vec<_> = it.collect();
        Ok(ClassificationDataset { train, test })
    }

    /// Test-set composition `(positives, negatives)`.
    pub fn test_composition(&self) -> (usize, usize) {
        let pos = self.test.iter().filter(|i| i.label).count();
        (pos, self.test.len() - pos)
    }
}

/// Stack enhancement pairs into `(B, 1, n, n)` batches.
pub fn batch_pairs(pairs: &[EnhancementPair]) -> Result<(Tensor, Tensor)> {
    assert!(!pairs.is_empty());
    let n = pairs[0].low.dims()[0];
    let b = pairs.len();
    let mut low = Tensor::zeros([b, 1, n, n]);
    let mut full = Tensor::zeros([b, 1, n, n]);
    let plane = n * n;
    for (i, p) in pairs.iter().enumerate() {
        low.data_mut()[i * plane..(i + 1) * plane].copy_from_slice(p.low.data());
        full.data_mut()[i * plane..(i + 1) * plane].copy_from_slice(p.full.data());
    }
    Ok((low, full))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhancement_split_proportions() {
        let cfg = PairConfig::reduced(32, 1);
        let ds = EnhancementDataset::generate(20, cfg).unwrap();
        assert_eq!(ds.train.len(), 14);
        assert_eq!(ds.val.len(), 3);
        assert_eq!(ds.test.len(), 3);
    }

    #[test]
    fn classification_test_ratio_matches_paper() {
        let ds = ClassificationDataset::generate(8, 19, 32, 4).unwrap();
        let (pos, neg) = ds.test_composition();
        // 19 * 36/95 = 7.2 -> 7 positives, 12 negatives
        assert_eq!(pos, 7);
        assert_eq!(neg, 12);
        assert_eq!(ds.train.len(), 8);
    }

    #[test]
    fn classification_volumes_have_artifact_removed() {
        let ds = ClassificationDataset::generate(2, 3, 32, 2).unwrap();
        for item in ds.train.iter().chain(&ds.test) {
            assert!(!item.volume.meta.circular_artifact);
            // no padding sentinel values survive
            assert!(item.volume.hu.data().iter().all(|&v| v > -1500.0));
        }
    }

    #[test]
    fn train_and_test_subjects_disjoint() {
        let ds = ClassificationDataset::generate(6, 6, 32, 2).unwrap();
        let train_ids: std::collections::HashSet<u64> =
            ds.train.iter().map(|i| i.volume.meta.id).collect();
        for t in &ds.test {
            assert!(
                !train_ids.contains(&t.volume.meta.id),
                "subject {} leaks into test",
                t.volume.meta.id
            );
        }
    }

    #[test]
    fn batching_stacks_pairs() {
        let cfg = PairConfig::reduced(32, 2);
        let ds = EnhancementDataset::generate(6, cfg).unwrap();
        let (low, full) = batch_pairs(&ds.train[..2]).unwrap();
        assert_eq!(low.dims(), &[2, 1, 32, 32]);
        assert_eq!(full.dims(), &[2, 1, 32, 32]);
        assert_eq!(&low.data()[..32 * 32], ds.train[0].low.data());
    }
}
