//! Convolution kernel (stride 1, square filter, zero padding) in the
//! paper's optimization stages.
//!
//! Operates on plain row-major buffers — one image `(Cin, H, W)`, weights
//! `(Cout, Cin, K, K)` — mirroring the OpenCL kernel signatures.

use rayon::prelude::*;

use crate::simd::{self, SimdLevel};
use crate::{ConvKernel, OptLevel};

/// Shape of a stride-1 'same'-padded convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
    /// Square filter extent.
    pub k: usize,
    /// Zero padding on each side.
    pub pad: usize,
}

impl ConvShape {
    /// Buffer length of the input.
    pub fn in_len(&self) -> usize {
        self.cin * self.h * self.w
    }

    /// Buffer length of the output (stride 1: spatial size preserved when
    /// `pad = k/2`).
    pub fn out_len(&self) -> usize {
        self.cout * self.out_h() * self.out_w()
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.h + 2 * self.pad - self.k + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.w + 2 * self.pad - self.k + 1
    }
}

/// Run the convolution kernel at an optimization level, dispatching to
/// the scalar or AVX2 ladder per [`simd::active`] (the `CC19_SIMD`
/// override narrowed by hardware detection).
pub fn conv2d(level: OptLevel, input: &[f32], weight: &[f32], bias: &[f32], s: ConvShape) -> Vec<f32> {
    conv2d_with(level, simd::active(), input, weight, bias, s)
}

/// Run the convolution kernel at an explicit `(stage, dispatch)` pair —
/// the parity suite's entry point. Passing [`SimdLevel::Avx2`] requires
/// `simd::detected() == Avx2` (the vector entry asserts it; the AVX2
/// arms are compiled out entirely on non-x86_64).
// cc19-hot
pub fn conv2d_with(
    level: OptLevel,
    simd: SimdLevel,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
) -> Vec<f32> {
    debug_assert_eq!(input.len(), s.in_len());
    debug_assert_eq!(weight.len(), s.cout * s.cin * s.k * s.k);
    debug_assert_eq!(bias.len(), s.cout);
    match level.conv_kernel(simd) {
        ConvKernel::ScalarNaive => conv_baseline(input, weight, bias, s),
        ConvKernel::ScalarHoisted => conv_prefetch(input, weight, bias, s, false),
        ConvKernel::ScalarHoistedUnrolled => conv_prefetch(input, weight, bias, s, true),
        ConvKernel::Avx2 => conv_avx2(input, weight, bias, s, false, false),
        ConvKernel::Avx2Prefetch => conv_avx2(input, weight, bias, s, true, false),
        ConvKernel::Avx2PrefetchUnrolled => conv_avx2(input, weight, bias, s, true, true),
    }
}

#[cfg(target_arch = "x86_64")]
fn conv_avx2(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
    prefetch: bool,
    unroll: bool,
) -> Vec<f32> {
    crate::microkernel::conv2d_avx2(
        input,
        weight,
        bias,
        s,
        crate::microkernel::Mode { prefetch, unroll },
    )
}

#[cfg(not(target_arch = "x86_64"))]
fn conv_avx2(_: &[f32], _: &[f32], _: &[f32], _: ConvShape, _: bool, _: bool) -> Vec<f32> {
    // `simd::active()` never selects AVX2 off x86_64; only an explicit
    // `conv2d_with(.., Avx2, ..)` on a non-x86 build can reach this.
    unreachable!("AVX2 dispatch requested on a non-x86_64 build")
}

/// Naive kernel: every bound and index recomputed in the innermost loop,
/// exactly as a line-by-line OpenCL port would do.
fn conv_baseline(input: &[f32], weight: &[f32], bias: &[f32], s: ConvShape) -> Vec<f32> {
    let (oh, ow) = (s.out_h(), s.out_w());
    // cc19-lint: allow(alloc, "allocating twin: the output buffer is the return value; _into callers reuse theirs")
    let mut out = vec![0.0f32; s.out_len()];
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(co, plane)| {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[co];
                for ci in 0..s.cin {
                    for ky in 0..s.k {
                        for kx in 0..s.k {
                            let iy = oy as isize + ky as isize - s.pad as isize;
                            let ix = ox as isize + kx as isize - s.pad as isize;
                            if iy >= 0 && iy < s.h as isize && ix >= 0 && ix < s.w as isize {
                                acc += input[ci * s.h * s.w + iy as usize * s.w + ix as usize]
                                    * weight[co * s.cin * s.k * s.k + ci * s.k * s.k + ky * s.k + kx];
                            }
                        }
                    }
                }
                plane[oy * ow + ox] = acc;
            }
        }
    });
    out
}

/// Prefetched kernel: bounds hoisted, filter rows sliced outside the inner
/// loop, optional ×5 unrolling for the 5-wide dedicated path.
fn conv_prefetch(input: &[f32], weight: &[f32], bias: &[f32], s: ConvShape, unroll: bool) -> Vec<f32> {
    let (oh, ow) = (s.out_h(), s.out_w());
    // prefetch scalar bounds into locals (the paper's PF optimization)
    let (h, w, k, pad, cin) = (s.h, s.w, s.k, s.pad, s.cin);
    let hw = h * w;
    let kk = k * k;
    // cc19-lint: allow(alloc, "allocating twin: the output buffer is the return value; _into callers reuse theirs")
    let mut out = vec![0.0f32; s.out_len()];
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(co, plane)| {
        let wbase = &weight[co * cin * kk..(co + 1) * cin * kk];
        let b = bias[co];
        for oy in 0..oh {
            // hoist the valid ky range for this row
            let ky_lo = pad.saturating_sub(oy);
            let ky_hi = k.min(h + pad - oy);
            for ox in 0..ow {
                let kx_lo = pad.saturating_sub(ox);
                let kx_hi = k.min(w + pad - ox);
                let mut acc = b;
                for ci in 0..cin {
                    let iplane = &input[ci * hw..(ci + 1) * hw];
                    let wchan = &wbase[ci * kk..(ci + 1) * kk];
                    for ky in ky_lo..ky_hi {
                        let iy = oy + ky - pad;
                        let irow = &iplane[iy * w..iy * w + w];
                        let wrow = &wchan[ky * k..(ky + 1) * k];
                        if unroll && k == 5 && kx_lo == 0 && kx_hi == 5 {
                            // dedicated fully-unrolled 5-wide path
                            let ix = ox - pad;
                            acc += irow[ix] * wrow[0]
                                + irow[ix + 1] * wrow[1]
                                + irow[ix + 2] * wrow[2]
                                + irow[ix + 3] * wrow[3]
                                + irow[ix + 4] * wrow[4];
                        } else {
                            for kx in kx_lo..kx_hi {
                                acc += irow[ox + kx - pad] * wrow[kx];
                            }
                        }
                    }
                }
                plane[oy * ow + ox] = acc;
            }
        }
    });
    out
}

/// One scalar output element in exactly the scalar ladder's accumulation
/// order — the clipped-range `(ci, ky, kx)` traversal of `conv_prefetch`,
/// including its dedicated ×5 expression when `unroll` (which is also
/// the surviving-tap order of `conv_baseline`, whose out-of-bounds taps
/// merely add nothing). The AVX2 path computes its border ring and
/// vector tail through this helper, so those lanes are bit-identical to
/// the same-stage scalar kernel. `wbase` is `&weight[co*cin*k*k..]`.
#[cfg(target_arch = "x86_64")]
pub(crate) fn conv_px(
    input: &[f32],
    wbase: &[f32],
    s: ConvShape,
    oy: usize,
    ox: usize,
    b: f32,
    unroll: bool,
) -> f32 {
    let (h, w, k, pad, cin) = (s.h, s.w, s.k, s.pad, s.cin);
    let hw = h * w;
    let kk = k * k;
    let ky_lo = pad.saturating_sub(oy);
    let ky_hi = k.min(h + pad - oy);
    let kx_lo = pad.saturating_sub(ox);
    let kx_hi = k.min(w + pad - ox);
    let mut acc = b;
    for ci in 0..cin {
        let iplane = &input[ci * hw..(ci + 1) * hw];
        let wchan = &wbase[ci * kk..(ci + 1) * kk];
        for ky in ky_lo..ky_hi {
            let iy = oy + ky - pad;
            let irow = &iplane[iy * w..iy * w + w];
            let wrow = &wchan[ky * k..(ky + 1) * k];
            if unroll && k == 5 && kx_lo == 0 && kx_hi == 5 {
                let ix = ox - pad;
                acc += irow[ix] * wrow[0]
                    + irow[ix + 1] * wrow[1]
                    + irow[ix + 2] * wrow[2]
                    + irow[ix + 3] * wrow[3]
                    + irow[ix + 4] * wrow[4];
            } else {
                for kx in kx_lo..kx_hi {
                    acc += irow[ox + kx - pad] * wrow[kx];
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_tensor::conv::{conv2d as ref_conv, Conv2dSpec};
    use cc19_tensor::rng::Xorshift;
    use cc19_tensor::Tensor;

    fn reference(input: &[f32], weight: &[f32], bias: &[f32], s: ConvShape) -> Vec<f32> {
        let x = Tensor::from_vec([1, s.cin, s.h, s.w], input.to_vec()).unwrap();
        let wt = Tensor::from_vec([s.cout, s.cin, s.k, s.k], weight.to_vec()).unwrap();
        let b = Tensor::from_vec([s.cout], bias.to_vec()).unwrap();
        ref_conv(&x, &wt, Some(&b), Conv2dSpec { stride: 1, padding: s.pad })
            .unwrap()
            .into_vec()
    }

    fn random_case(seed: u64, s: ConvShape) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = Xorshift::new(seed);
        let input: Vec<f32> = (0..s.in_len()).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let weight: Vec<f32> =
            (0..s.cout * s.cin * s.k * s.k).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let bias: Vec<f32> = (0..s.cout).map(|_| rng.uniform(-0.2, 0.2)).collect();
        (input, weight, bias)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn all_levels_match_reference_5x5() {
        let s = ConvShape { cin: 3, cout: 4, h: 12, w: 10, k: 5, pad: 2 };
        let (input, weight, bias) = random_case(1, s);
        let expect = reference(&input, &weight, &bias, s);
        for level in OptLevel::ALL {
            let got = conv2d(level, &input, &weight, &bias, s);
            assert_close(&got, &expect, 1e-4);
        }
    }

    #[test]
    fn all_levels_match_reference_1x1_and_7x7() {
        for (k, pad) in [(1usize, 0usize), (7, 3)] {
            let s = ConvShape { cin: 2, cout: 3, h: 9, w: 9, k, pad };
            let (input, weight, bias) = random_case(k as u64, s);
            let expect = reference(&input, &weight, &bias, s);
            for level in OptLevel::ALL {
                let got = conv2d(level, &input, &weight, &bias, s);
                assert_close(&got, &expect, 1e-4);
            }
        }
    }

    #[test]
    fn valid_convolution_no_padding() {
        let s = ConvShape { cin: 1, cout: 1, h: 8, w: 8, k: 3, pad: 0 };
        let (input, weight, bias) = random_case(9, s);
        assert_eq!(s.out_h(), 6);
        let expect = reference(&input, &weight, &bias, s);
        for level in OptLevel::ALL {
            assert_close(&conv2d(level, &input, &weight, &bias, s), &expect, 1e-4);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn conv_px_is_bitwise_the_scalar_ladder() {
        // The per-pixel helper (the AVX2 border/tail path) must be
        // bit-identical to each scalar kernel's accumulation order.
        for (k, pad) in [(3usize, 1usize), (5, 2), (5, 0)] {
            let s = ConvShape { cin: 2, cout: 3, h: 13, w: 11, k, pad };
            let (input, weight, bias) = random_case(21 + k as u64, s);
            let (oh, ow) = (s.out_h(), s.out_w());
            for unroll in [false, true] {
                let expect = conv_prefetch(&input, &weight, &bias, s, unroll);
                for co in 0..s.cout {
                    let wbase = &weight[co * s.cin * k * k..];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let got = conv_px(&input, wbase, s, oy, ox, bias[co], unroll);
                            let want = expect[co * oh * ow + oy * ow + ox];
                            assert!(
                                got.to_bits() == want.to_bits(),
                                "({co},{oy},{ox}) k={k} unroll={unroll}: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unrolled_path_exercised_at_larger_size() {
        // 5x5 with interior large enough that the unrolled path dominates.
        let s = ConvShape { cin: 2, cout: 2, h: 32, w: 32, k: 5, pad: 2 };
        let (input, weight, bias) = random_case(5, s);
        let base = conv2d(OptLevel::Baseline, &input, &weight, &bias, s);
        let lu = conv2d(OptLevel::RefactoredPrefetchUnrolled, &input, &weight, &bias, s);
        assert_close(&lu, &base, 1e-3);
    }
}
