//! Extension experiment (paper §7): "we intend to analyze the
//! applicability of ComputeCOVID19+ for diagnosing other maladies, such
//! as viral pneumonia and cancer."
//!
//! Three binary discrimination tasks over synthetic pathologies:
//! COVID vs healthy, pneumonia vs healthy, and the clinically interesting
//! COVID vs pneumonia (both are opacities — can the 3D features tell the
//! bilateral-peripheral-GGO pattern from a unilateral lobar
//! consolidation?).

use cc19_analysis::classifier::{ClassifierConfig, DenseNet3d};
use cc19_analysis::metrics::auc_roc;
use cc19_analysis::segmentation::{apply_mask, LungSegmenter};
use cc19_analysis::train::{train_classifier, ClassTrainConfig, Example};
use cc19_bench::{banner, parse_scale, Scale, TablePrinter};
use cc19_ctsim::phantom::{ChestPhantom, Pathology, Severity};
use cc19_data::prep::{normalize_for_enhancement, PrepConfig};
use cc19_tensor::Tensor;

fn volume(seed: u64, pathology: Option<Pathology>, n: usize, slices: usize) -> Tensor {
    let mut vol = Tensor::zeros([slices, n, n]);
    let plane = n * n;
    for s in 0..slices {
        let z = (s as f32 + 0.5) / slices as f32;
        let img = ChestPhantom::subject_with(seed, z, pathology).rasterize_hu(n);
        vol.data_mut()[s * plane..(s + 1) * plane].copy_from_slice(img.data());
    }
    vol
}

fn preprocess(hu: &Tensor, seg: &LungSegmenter) -> Tensor {
    let unit = normalize_for_enhancement(hu, PrepConfig::scaled(1));
    let mask = seg.segment_volume(hu).unwrap();
    apply_mask(&unit, &mask).unwrap()
}

fn run_task(
    name: &str,
    pos: Option<Pathology>,
    neg: Option<Pathology>,
    n: usize,
    slices: usize,
    train_per_class: usize,
    test_per_class: usize,
    epochs: usize,
) -> (String, f64, f64) {
    let seg = LungSegmenter::default();
    let mut examples = Vec::new();
    for i in 0..train_per_class {
        examples.push(Example {
            volume: preprocess(&volume(1000 + i as u64, pos, n, slices), &seg),
            label: true,
        });
        examples.push(Example {
            volume: preprocess(&volume(2000 + i as u64, neg, n, slices), &seg),
            label: false,
        });
    }
    let net = DenseNet3d::new(ClassifierConfig::tiny(), 42);
    let mut cfg = ClassTrainConfig::quick(epochs);
    cfg.lr = 1e-2;
    cfg.augment = None;
    let stats = train_classifier(&net, &examples, cfg).unwrap();

    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for i in 0..test_per_class {
        scores.push(net.predict_proba(&preprocess(&volume(5000 + i as u64, pos, n, slices), &seg)).unwrap());
        labels.push(true);
        scores.push(net.predict_proba(&preprocess(&volume(6000 + i as u64, neg, n, slices), &seg)).unwrap());
        labels.push(false);
    }
    let auc = auc_roc(&scores, &labels);
    (name.to_string(), stats.last().unwrap().train_loss, auc)
}

fn main() {
    let scale = parse_scale();
    banner("Extension: other maladies", "pneumonia & nodule discrimination (§7)", scale);

    let (n, slices, train, test, epochs) = match scale {
        Scale::Full => (48usize, 8usize, 12usize, 8usize, 25usize),
        Scale::Quick => (48, 8, 8, 6, 18),
    };
    let covid = Some(Pathology::Covid(Severity::Moderate));
    println!(
        "per task: {train} train + {test} test volumes per class at {n}x{n}x{slices}, {epochs} epochs\n"
    );

    let tasks = [
        run_task("COVID vs healthy", covid, None, n, slices, train, test, epochs),
        run_task("pneumonia vs healthy", Some(Pathology::Pneumonia), None, n, slices, train, test, epochs),
        run_task("nodule vs healthy", Some(Pathology::Nodule), None, n, slices, train, test, epochs),
        run_task("COVID vs pneumonia", covid, Some(Pathology::Pneumonia), n, slices, train, test, epochs),
    ];

    let t = TablePrinter::new(&[24, 16, 10]);
    t.row(&[&"Task", &"Final BCE loss", &"Test AUC"]);
    t.sep();
    let mut csv = String::from("task,final_loss,test_auc\n");
    for (name, loss, auc) in &tasks {
        t.row(&[name, &format!("{loss:.4}"), &format!("{auc:.3}")]);
        csv.push_str(&format!("{name},{loss},{auc}\n"));
    }
    t.sep();
    println!("\nexpected shape: opacity-vs-healthy tasks are easy (AUC near 1); the subtle");
    println!("nodule and the COVID-vs-pneumonia pattern discrimination are harder — the");
    println!("framework generalizes beyond COVID, supporting the paper's §7 outlook.");
    cc19_bench::write_result("other_maladies.csv", &csv);
}
