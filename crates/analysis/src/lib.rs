//! # cc19-analysis
//!
//! The "Analysis AI" half of ComputeCOVID19+ (§2.3): Segmentation AI +
//! Classification AI, plus the evaluation metrics of §5.2.
//!
//! - **Segmentation AI** — the paper uses NVIDIA Clara's pre-trained
//!   AH-Net "as is". Our stand-in is [`segmentation::LungSegmenter`], a
//!   classical HU-threshold + connected-components + morphology pipeline
//!   that plays the same pipeline role (a fixed, pre-built model producing
//!   a binary lung mask that multiplies the volume). A small *trainable*
//!   CNN segmenter ([`seg_cnn::CnnSegmenter`]) is provided as well.
//! - **Classification AI** — a 3D densely-connected classifier
//!   ([`classifier::DenseNet3d`], DenseNet-121-lite) producing the
//!   COVID-positive probability of a volume, trained with the paper's BCE
//!   loss (Eq 2) and §3.3.1 augmentations.
//! - **Metrics** — accuracy (Eq 3), TPR/FPR (Eq 4/5), ROC curves, AUC, and
//!   the confusion matrix of Table 9.


pub mod classifier;
pub mod metrics;
pub mod seg_cnn;
pub mod segmentation;
pub mod train;

pub use classifier::{ClassifierConfig, DenseNet3d};
pub use metrics::{accuracy, auc_roc, confusion_at, roc_curve, ConfusionMatrix};
pub use segmentation::LungSegmenter;

/// Crate-wide result alias.
pub type Result<T> = cc19_tensor::Result<T>;
