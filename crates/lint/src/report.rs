//! Violation records and report formatting, including the
//! byte-deterministic JSON report (`results/lint_report.json`).

use std::fmt;

use crate::rules::Artifacts;

/// One lint violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (kebab-case, one of [`crate::rules::RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description, including the remedy.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.msg)
        } else {
            write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
        }
    }
}

/// Render a per-rule violation summary, e.g. `determinism: 2`.
pub fn summary(violations: &[Violation], rule_names: &[&'static str]) -> String {
    let mut out = String::new();
    for rule in rule_names {
        let n = violations.iter().filter(|v| v.rule == *rule).count();
        if n > 0 {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
    }
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the full lint report as byte-deterministic JSON: keys sorted
/// at every level, arrays in the already-sorted orders produced by
/// [`crate::rules::run_analysis`], no timestamps. Two runs over the
/// same tree produce identical bytes (`tier1.sh` enforces this with a
/// run-twice `cmp`).
pub fn render_json(
    files: usize,
    enabled: &[&str],
    violations: &[Violation],
    art: &Artifacts,
) -> String {
    let mut o = String::new();
    o.push_str("{\n");
    // alloc_sites
    o.push_str("  \"alloc_sites\": [");
    for (i, s) in art.alloc_sites.iter().enumerate() {
        o.push_str(if i == 0 { "\n" } else { ",\n" });
        o.push_str(&format!(
            "    {{\"allowed\": {}, \"chain\": \"{}\", \"fn\": \"{}\", \"line\": {}, \
             \"path\": \"{}\", \"what\": \"{}\"}}",
            s.allowed,
            esc(&s.chain),
            esc(&s.func),
            s.line,
            esc(&s.path),
            esc(&s.what)
        ));
    }
    o.push_str(if art.alloc_sites.is_empty() { "],\n" } else { "\n  ],\n" });
    // call_graph
    o.push_str(&format!(
        "  \"call_graph\": {{\"edges\": {}, \"fns\": {}, \"hot_fns\": [{}], \
         \"hot_reachable\": {}}},\n",
        art.graph_edges,
        art.graph_fns,
        art.hot_fns.iter().map(|f| format!("\"{}\"", esc(f))).collect::<Vec<_>>().join(", "),
        art.hot_reachable
    ));
    o.push_str(&format!("  \"files\": {files},\n"));
    // lock_edges
    o.push_str("  \"lock_edges\": [");
    for (i, (from, to, witness)) in art.lock_edges.iter().enumerate() {
        o.push_str(if i == 0 { "\n" } else { ",\n" });
        o.push_str(&format!(
            "    {{\"from\": \"{}\", \"to\": \"{}\", \"witness\": \"{}\"}}",
            esc(from),
            esc(to),
            esc(witness)
        ));
    }
    o.push_str(if art.lock_edges.is_empty() { "],\n" } else { "\n  ],\n" });
    // lock_sites
    o.push_str("  \"lock_sites\": [");
    for (i, (lock, path, line)) in art.lock_sites.iter().enumerate() {
        o.push_str(if i == 0 { "\n" } else { ",\n" });
        o.push_str(&format!(
            "    {{\"line\": {line}, \"lock\": \"{}\", \"path\": \"{}\"}}",
            esc(lock),
            esc(path)
        ));
    }
    o.push_str(if art.lock_sites.is_empty() { "],\n" } else { "\n  ],\n" });
    // rules
    o.push_str(&format!(
        "  \"rules\": [{}],\n",
        enabled.iter().map(|r| format!("\"{}\"", esc(r))).collect::<Vec<_>>().join(", ")
    ));
    // violation_counts (every enabled rule, zeroes included)
    o.push_str("  \"violation_counts\": {");
    for (i, rule) in enabled.iter().enumerate() {
        let n = violations.iter().filter(|v| v.rule == *rule).count();
        o.push_str(if i == 0 { "" } else { ", " });
        o.push_str(&format!("\"{}\": {n}", esc(rule)));
    }
    o.push_str("},\n");
    // violations
    o.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        o.push_str(if i == 0 { "\n" } else { ",\n" });
        o.push_str(&format!(
            "    {{\"line\": {}, \"msg\": \"{}\", \"path\": \"{}\", \"rule\": \"{}\"}}",
            v.line,
            esc(&v.msg),
            esc(&v.path),
            esc(v.rule)
        ));
    }
    o.push_str(if violations.is_empty() { "]\n" } else { "\n  ]\n" });
    o.push_str("}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_with_and_without_line() {
        let v = Violation { rule: "determinism", path: "a.rs".into(), line: 3, msg: "m".into() };
        assert_eq!(v.to_string(), "a.rs:3: [determinism] m");
        let v0 = Violation { rule: "whitespace", path: "a.rs".into(), line: 0, msg: "m".into() };
        assert_eq!(v0.to_string(), "a.rs: [whitespace] m");
    }

    #[test]
    fn summary_counts_by_rule() {
        let vs = vec![
            Violation { rule: "determinism", path: "a.rs".into(), line: 1, msg: String::new() },
            Violation { rule: "determinism", path: "b.rs".into(), line: 1, msg: String::new() },
        ];
        let s = summary(&vs, &["determinism", "whitespace"]);
        assert!(s.contains("determinism: 2"));
        assert!(!s.contains("whitespace"));
    }

    #[test]
    fn json_report_is_byte_deterministic_and_escaped() {
        let vs = vec![Violation {
            rule: "hot-path-alloc",
            path: "crates/a/src/x.rs".into(),
            line: 3,
            msg: "has \"quotes\" and\nnewline".into(),
        }];
        let art = Artifacts::default();
        let a = render_json(10, &["hot-path-alloc"], &vs, &art);
        let b = render_json(10, &["hot-path-alloc"], &vs, &art);
        assert_eq!(a, b);
        assert!(a.contains("\\\"quotes\\\" and\\nnewline"), "{a}");
        assert!(a.contains("\"violation_counts\": {\"hot-path-alloc\": 1}"), "{a}");
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn json_report_empty_arrays_stay_on_one_line() {
        let art = Artifacts::default();
        let s = render_json(0, &[], &[], &art);
        assert!(s.contains("\"alloc_sites\": [],"), "{s}");
        assert!(s.contains("\"violations\": []\n"), "{s}");
    }
}
