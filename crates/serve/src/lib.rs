//! # cc19-serve
//!
//! The serving subsystem of the ComputeCOVID19+ reproduction: the layer
//! that turns one-volume-at-a-time [`computecovid19::Framework`] calls
//! into a concurrent diagnosis *service* (the paper's headline claim is
//! clinical turnaround — §5, Table 3 — and the ROADMAP north star is
//! heavy multi-user traffic).
//!
//! Architecture (DESIGN.md §10):
//!
//! ```text
//! clients ──▶ broker (bounded admission, stat/urgent/routine classes,
//!         │           EDF within class, typed backpressure)
//!         │      │
//!         │      ▼  dynamic batcher (max-batch / max-delay coalescing)
//!         │   worker pipelines × P:
//!         │      enhance thread ─▶ segment thread ─▶ classify thread
//!         │      (stage N of study A overlaps stage N−1 of study B)
//!         │      ▼
//!         ◀── replies (exactly once per accepted request) + metrics
//! ```
//!
//! - [`broker`] — bounded admission queue with priority classes and
//!   deadline-aware scheduling; over-capacity submissions get a typed
//!   [`Rejected`] instead of unbounded queue growth.
//! - [`batcher`] — the max-batch / max-delay coalescing policy (the
//!   Triton-style latency/throughput knob) and the pause gate used for
//!   deterministic tests.
//! - [`worker`] — warm pool of `Framework` replicas; each pipeline runs
//!   the three stages on separate threads connected by channels,
//!   threading a `Scratch` buffer pool through each stage.
//! - [`server`] — ties the pieces together; in-process [`Client`].
//! - [`wire`] — TCP front end over `std::net::TcpStream`, framed with
//!   the CRC framing reused from [`cc19_dist::framing`].
//! - [`metrics`] — per-stage latency histograms, queue depth, batch-size
//!   distribution, reject counters, p50/p95/p99; dumps CSV under
//!   `results/`.
//!
//! This crate is on the cc19-lint panic-surface path: recoverable
//! failures must surface as typed errors (`Rejected`, failed
//! `ServeResponse`s, `io::Result`), never panics. Unit-test modules opt
//! back into `unwrap` locally.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

pub mod batcher;
pub mod broker;
pub mod cluster;
pub mod metrics;
pub mod request;
pub mod server;
pub(crate) mod sync;
pub mod wire;
pub mod worker;

pub use batcher::BatchPolicy;
pub use broker::{Broker, BrokerCfg, Job};
pub use cluster::{ClusterCfg, ClusterClient, ClusterMetrics, ClusterSnapshot, HashRing, ServeCluster};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use request::{Priority, Rejected, ServeRequest, ServeResponse};
pub use server::{Client, PendingDiagnosis, Server, ServerCfg};
pub use wire::{serve_on, TcpServeClient};
