//! # cc19-monitor
//!
//! Longitudinal patient **monitoring** — the second half of the paper's
//! title — built as a layer over the diagnosis pipeline (DESIGN.md §15):
//!
//! * [`digest`] — content-addressed study identity: an FNV-1a/splitmix
//!   digest over the HU volume bytes, the model weights (checkpoint
//!   serialization, same discipline as the CRC-framed checkpoint
//!   format), and the pipeline configuration;
//! * [`cache`] — a dependency-free keyed store memoizing the enhanced
//!   HU volume, the segmentation mask, and the diagnosis per
//!   [`StudyKey`], with deterministic LRU eviction under a byte budget
//!   and hit/miss/eviction counters on the `cc19-obs` registry;
//! * [`burden`] — lesion-burden quantification in physical mL (mask ×
//!   voxel spacing), the fluid-volume-calculation direction;
//! * [`timeline`] — the [`PatientSeries`] API: submit scans in
//!   acquisition order, get a [`DeltaReport`] per scan ("burden 12% →
//!   7%", trend, cache provenance), exported as deterministic CSV/JSON.
//!
//! Repeat submissions of a scan are cache hits: the enhance/segment/
//! classify stages are skipped and the reported diagnosis and burden
//! are bit-identical to the first computation. Scans can also ride
//! through the serving layer ([`PatientSeries::add_scan_served`] /
//! [`PatientSeries::add_scan_clustered`]); the served diagnosis is
//! bit-identical to the direct path, so the resulting reports match
//! byte for byte.
//!
//! This crate sits on the panic-free and determinism lint surfaces
//! (`cc19-lint`): no `unwrap`/`expect` outside tests, no ambient
//! clocks or RNG — all timing flows through the injected registry
//! clock.

// Panic-free surface (cc19-lint panic-surface rule + DESIGN.md §15):
// monitoring runs inside serving deployments; recoverable failures
// must reach the caller as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

pub mod burden;
pub mod cache;
pub mod digest;
pub mod timeline;

pub use burden::LesionBurden;
pub use cache::{CachedStudy, StudyCache};
pub use digest::StudyKey;
pub use timeline::{DeltaReport, PatientSeries, Provenance, ScanRecord};

/// Crate-wide result alias.
pub type Result<T> = cc19_tensor::Result<T>;
