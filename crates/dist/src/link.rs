//! Reliable point-to-point **byte** links — the serve cluster's wire.
//!
//! [`crate::transport`] moves `Vec<f32>` gradient payloads around rings
//! and stars; the serve cluster needs the same reliability guarantees
//! (sequence numbers, CRC, retransmit buffer, deterministic fault
//! injection) for its RPC-style dispatch/reply traffic, whose payloads
//! are encoded request/response bytes, not gradients. This module is that
//! transport gap filled: a single directed link carrying `Vec<u8>` frames
//! with exactly the reliability layer of the f32 transport.
//!
//! Two receive modes exist because the router must never block:
//!
//! - [`ByteRx::recv`] — blocking with jittered exponential backoff and a
//!   hard cap, for a worker waiting on its dispatch queue;
//! - [`ByteRx::try_recv`] — non-blocking, for the router polling many
//!   worker reply links in one event loop. A `None` means "nothing ready";
//!   an `Err(RankDead)` means the peer dropped its sender (died) *and*
//!   every frame it ever sent has been drained — so by the time a death
//!   verdict surfaces, no acknowledged work can be lost.
//!
//! Send-side ordering is determinism-critical: a frame is pushed to the
//! channel *before* its authoritative copy lands in the retransmit slot,
//! so an empty channel plus a buffered `want` can only mean the wire
//! genuinely dropped (or corrupted) that frame — the retransmit-pull
//! counters are then a pure function of the fault plan, which is what
//! lets `obs_report` demand byte-identical metrics across runs.
//!
//! This file is on the cc19-lint panic-surface path: every recoverable
//! failure must surface as a typed [`Error`], never a panic.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::Error;
use crate::fault::{FaultKind, FaultPlan};
use crate::obs::LinkStats;
use crate::transport::{backoff_delay, TimeoutCfg};

/// One message on a byte link: sequence-numbered, checksummed payload.
#[derive(Debug, Clone)]
pub struct ByteFrame {
    /// Sender's node id.
    pub src: usize,
    /// Per-link sequence number.
    pub seq: u64,
    /// CRC-32 of the *original* payload (corrupt faults flip bits in the
    /// wire copy only, so the mismatch is detectable).
    pub crc: u32,
    /// The payload as sent (possibly corrupted in flight).
    pub payload: Vec<u8>,
}

/// Sender-side reliability buffer, shared with the link's receiver.
type ByteSlot = Arc<Mutex<HashMap<u64, Vec<u8>>>>;

/// Poison-tolerant lock (same argument as `transport::lock`: the guarded
/// map holds plain owned data, valid wherever a panicking peer stopped).
fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn crc32_bytes(bytes: &[u8]) -> u32 {
    cc19_nn::checkpoint::crc32(bytes)
}

/// Sending half of a reliable byte link.
pub struct ByteTx {
    src: usize,
    dst: usize,
    seq: u64,
    generation: u64,
    tx: Sender<ByteFrame>,
    slot: ByteSlot,
    faults: FaultPlan,
    stats: LinkStats,
}

/// Receiving half of a reliable byte link.
pub struct ByteRx {
    me: usize,
    peer: usize,
    want: u64,
    rx: Receiver<ByteFrame>,
    slot: ByteSlot,
    stash: HashMap<u64, Vec<u8>>,
    faults: FaultPlan,
    t: TimeoutCfg,
    stats: LinkStats,
}

/// Build a reliable byte link carrying traffic from node `src` to node
/// `dst`, with metrics on the process-global registry.
pub fn byte_link(src: usize, dst: usize, faults: FaultPlan, t: TimeoutCfg) -> (ByteTx, ByteRx) {
    byte_link_in(src, dst, faults, t, cc19_obs::global())
}

/// [`byte_link`] against an explicit `cc19-obs` registry.
pub fn byte_link_in(
    src: usize,
    dst: usize,
    faults: FaultPlan,
    t: TimeoutCfg,
    reg: &cc19_obs::Registry,
) -> (ByteTx, ByteRx) {
    let stats = LinkStats::from_registry(reg);
    let (tx, rx) = unbounded();
    let slot: ByteSlot = Arc::new(Mutex::new(HashMap::new()));
    (
        ByteTx {
            src,
            dst,
            seq: 0,
            generation: 0,
            tx,
            slot: slot.clone(),
            faults,
            stats: stats.clone(),
        },
        ByteRx {
            me: dst,
            peer: src,
            want: 0,
            rx,
            slot,
            stash: HashMap::new(),
            faults,
            t,
            stats,
        },
    )
}

impl ByteTx {
    /// The node id this half sends as.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Ship `payload` down the link. Never blocks and never fails: the
    /// authoritative copy is retained in the retransmit buffer until the
    /// receiver consumes past its sequence number, so even a frame the
    /// fault plan drops or corrupts on the wire is recoverable.
    pub fn send(&mut self, payload: &[u8]) {
        let seq = self.seq;
        self.seq += 1;
        let actions = self.faults.decide(self.src, self.dst, seq, self.generation);
        self.stats.record_faults(&actions);
        if actions.contains(&FaultKind::Drop) {
            // Dropped on the wire: only the reliability buffer gets it.
            lock(&self.slot).insert(seq, payload.to_vec());
            return;
        }
        let crc = crc32_bytes(payload);
        let mut wire = payload.to_vec();
        let mut duplicate = false;
        for a in &actions {
            match a {
                FaultKind::Delay(ms) => std::thread::sleep(Duration::from_millis(*ms)),
                FaultKind::Corrupt => {
                    if let Some(b) = wire.first_mut() {
                        *b ^= 0x40;
                    }
                }
                FaultKind::Duplicate => duplicate = true,
                FaultKind::Drop => {} // handled by the early return above
            }
        }
        let frame = ByteFrame { src: self.src, seq, crc, payload: wire };
        if duplicate {
            let _ = self.tx.send(frame.clone());
        }
        let _ = self.tx.send(frame);
        // Channel push *before* slot insert: an empty channel with a
        // buffered `want` then unambiguously means a wire fault, keeping
        // the receiver's retransmit-pull count deterministic.
        lock(&self.slot).insert(seq, payload.to_vec());
    }
}

impl ByteRx {
    /// The peer node id this half receives from.
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// Non-blocking poll for the next in-sequence payload.
    ///
    /// - `Ok(Some(p))` — the next payload, exactly once, in order;
    /// - `Ok(None)` — nothing deliverable right now;
    /// - `Err(RankDead)` — the peer dropped its sender *and* everything it
    ///   ever sent (wire or retransmit buffer) has been delivered.
    pub fn try_recv(&mut self) -> Result<Option<Vec<u8>>, Error> {
        loop {
            if let Some(p) = self.stash.remove(&self.want) {
                return Ok(Some(self.deliver(p)));
            }
            match self.rx.recv_timeout(Duration::ZERO) {
                Ok(frame) => self.absorb(frame),
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(p) = self.pull_buffered() {
                        return Ok(Some(self.deliver(p)));
                    }
                    return Ok(None);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if let Some(p) = self.pull_buffered() {
                        return Ok(Some(self.deliver(p)));
                    }
                    self.stats.rank_dead.inc();
                    return Err(Error::RankDead { rank: self.peer });
                }
            }
        }
    }

    /// Blocking receive with jittered exponential backoff between wakeups
    /// (retransmit pulls happen on each timeout) and a hard cap.
    ///
    /// Unlike the f32 transport's lockstep receives, an idle byte link has
    /// no outstanding frame it is owed, so backoff wakeups here do not
    /// count toward `dist_recv_timeouts_total` — only genuine reliability
    /// events (pulls, CRC rejects, duplicates) reach the registry, which
    /// keeps the counters a pure function of the fault plan.
    pub fn recv(&mut self) -> Result<Vec<u8>, Error> {
        if let Some(p) = self.stash.remove(&self.want) {
            return Ok(self.deliver(p));
        }
        let start = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            if start.elapsed() > self.t.hard_cap {
                return Err(Error::Timeout { rank: self.me, peer: self.peer, op: "byte recv" });
            }
            let backoff = backoff_delay(
                &self.t,
                self.faults.seed(),
                crate::transport::link_stream(self.peer, self.me),
                attempt,
            );
            match self.rx.recv_timeout(backoff) {
                Ok(frame) => {
                    self.absorb(frame);
                    if let Some(p) = self.stash.remove(&self.want) {
                        return Ok(self.deliver(p));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(p) = self.pull_buffered() {
                        return Ok(self.deliver(p));
                    }
                    attempt = attempt.saturating_add(1);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if let Some(p) = self.pull_buffered() {
                        return Ok(self.deliver(p));
                    }
                    self.stats.rank_dead.inc();
                    return Err(Error::RankDead { rank: self.peer });
                }
            }
        }
    }

    /// Blocking receive bounded by `max_wait` instead of the hard cap:
    /// `Ok(None)` when nothing became deliverable in time. A worker idles
    /// on this with a short bound so it keeps heartbeating between
    /// dispatches instead of vanishing into a long blocking receive.
    pub fn recv_wait(&mut self, max_wait: Duration) -> Result<Option<Vec<u8>>, Error> {
        if let Some(p) = self.stash.remove(&self.want) {
            return Ok(Some(self.deliver(p)));
        }
        let start = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let left = max_wait.saturating_sub(start.elapsed());
            if left.is_zero() {
                if let Some(p) = self.pull_buffered() {
                    return Ok(Some(self.deliver(p)));
                }
                return Ok(None);
            }
            let backoff = backoff_delay(
                &self.t,
                self.faults.seed(),
                crate::transport::link_stream(self.peer, self.me),
                attempt,
            )
            .min(left);
            match self.rx.recv_timeout(backoff) {
                Ok(frame) => {
                    self.absorb(frame);
                    if let Some(p) = self.stash.remove(&self.want) {
                        return Ok(Some(self.deliver(p)));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(p) = self.pull_buffered() {
                        return Ok(Some(self.deliver(p)));
                    }
                    attempt = attempt.saturating_add(1);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if let Some(p) = self.pull_buffered() {
                        return Ok(Some(self.deliver(p)));
                    }
                    self.stats.rank_dead.inc();
                    return Err(Error::RankDead { rank: self.peer });
                }
            }
        }
    }

    /// Classify one wire frame: discard stale duplicates, reject CRC
    /// failures (the retransmit buffer holds the good copy), stash
    /// in-order and reordered-ahead payloads.
    fn absorb(&mut self, frame: ByteFrame) {
        if frame.seq < self.want {
            self.stats.duplicates_discarded.inc();
            return;
        }
        if crc32_bytes(&frame.payload) != frame.crc {
            self.stats.crc_rejects.inc();
            return;
        }
        if frame.seq > self.want {
            self.stats.reorder_stash.inc();
        }
        self.stash.insert(frame.seq, frame.payload);
    }

    /// NACK/retransmit round trip: the authoritative copy of `want` from
    /// the sender's reliability buffer, if it was ever sent.
    fn pull_buffered(&mut self) -> Option<Vec<u8>> {
        let buffered = lock(&self.slot).get(&self.want).cloned();
        if buffered.is_some() {
            self.stats.retransmit_pulls.inc();
        }
        buffered
    }

    fn deliver(&mut self, payload: Vec<u8>) -> Vec<u8> {
        let consumed = self.want;
        self.want += 1;
        lock(&self.slot).retain(|&s, _| s > consumed);
        payload
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::fault::FaultConfig;

    fn fresh_reg() -> cc19_obs::Registry {
        cc19_obs::Registry::new()
    }

    #[test]
    fn bytes_roundtrip_in_order() {
        let reg = fresh_reg();
        let (mut tx, mut rx) =
            byte_link_in(0, 1, FaultPlan::none(), TimeoutCfg::fast(), &reg);
        tx.send(b"alpha");
        tx.send(b"beta");
        assert_eq!(rx.recv().unwrap(), b"alpha");
        assert_eq!(rx.try_recv().unwrap(), Some(b"beta".to_vec()));
        assert_eq!(rx.try_recv().unwrap(), None);
    }

    #[test]
    fn dropped_and_corrupt_frames_recover_from_the_buffer() {
        let reg = fresh_reg();
        let cfg = FaultConfig { p_drop: 0.5, p_corrupt: 0.5, ..FaultConfig::clean() };
        let (mut tx, mut rx) =
            byte_link_in(0, 1, FaultPlan::seeded(5, cfg), TimeoutCfg::fast(), &reg);
        for i in 0..64u8 {
            tx.send(&[i, i.wrapping_mul(3)]);
        }
        for i in 0..64u8 {
            assert_eq!(rx.recv().unwrap(), vec![i, i.wrapping_mul(3)]);
        }
    }

    #[test]
    fn duplicates_are_discarded_exactly_once_delivery() {
        let reg = fresh_reg();
        let cfg = FaultConfig { p_duplicate: 1.0, ..FaultConfig::clean() };
        let (mut tx, mut rx) =
            byte_link_in(0, 1, FaultPlan::seeded(5, cfg), TimeoutCfg::fast(), &reg);
        tx.send(b"x");
        tx.send(b"y");
        assert_eq!(rx.recv().unwrap(), b"x");
        assert_eq!(rx.recv().unwrap(), b"y");
        assert_eq!(rx.try_recv().unwrap(), None);
    }

    #[test]
    fn death_is_reported_only_after_all_sent_frames_drain() {
        let reg = fresh_reg();
        // Drop every frame on the wire: the payloads survive only in the
        // retransmit buffer, and must still all be delivered before the
        // dropped sender turns into a death verdict.
        let cfg = FaultConfig { p_drop: 1.0, ..FaultConfig::clean() };
        let (mut tx, mut rx) =
            byte_link_in(2, 0, FaultPlan::seeded(9, cfg), TimeoutCfg::fast(), &reg);
        tx.send(b"last words");
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), Some(b"last words".to_vec()));
        assert_eq!(rx.try_recv().unwrap_err(), Error::RankDead { rank: 2 });
    }

    #[test]
    fn try_recv_is_nonblocking_on_an_idle_link() {
        let reg = fresh_reg();
        let (_tx, mut rx) =
            byte_link_in(0, 1, FaultPlan::none(), TimeoutCfg::fast(), &reg);
        let t0 = Instant::now();
        assert_eq!(rx.try_recv().unwrap(), None);
        assert!(t0.elapsed() < Duration::from_millis(100));
    }
}
