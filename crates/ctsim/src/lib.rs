//! # cc19-ctsim
//!
//! The CT-physics substrate of the ComputeCOVID19+ reproduction. The paper
//! (§3.1.2) synthesizes low-X-ray-dose CT training data by:
//!
//! 1. forward-projecting existing CT images with **Siddon's ray-driven
//!    method** under **Beer's law** (monochromatic 60 keV source),
//! 2. adding **Poisson noise** `P_i ~ Poisson(b_i * e^{-l_i})` with blank
//!    scan factor `b_i = 1e6` photons/ray,
//! 3. reconstructing with **filtered back projection** (FBP).
//!
//! This crate implements that pipeline end-to-end, for both the paper's
//! fan-beam geometry (source–detector 1500 mm, source–isocenter 1000 mm,
//! 720 views over 360°, 1024 detector pixels) and a parallel-beam geometry
//! used for unit-testable reconstruction, plus procedural chest phantoms
//! standing in for the gated clinical datasets (see DESIGN.md §2).


pub mod fbp;
pub mod fft;
pub mod filter;
pub mod geometry;
pub mod hu;
pub mod io;
pub mod iterative;
pub mod lowdose;
pub mod phantom;
pub mod siddon;
pub mod sinogram;

pub use geometry::{FanBeamGeometry, ParallelBeamGeometry};
pub use phantom::{ChestPhantom, Ellipse, Lesion};
pub use sinogram::Sinogram;

/// Crate-wide result alias (re-uses the tensor error type).
pub type Result<T> = cc19_tensor::Result<T>;
