//! Thread-per-node data-parallel DDnet training — the
//! `DistributedDataParallel` execution model of §4.1, hardened for the
//! fault model of DESIGN.md §9:
//!
//! - every node holds a full model replica (identical seed ⇒ identical
//!   init);
//! - each step, node `r` runs forward/backward on its shard of the global
//!   batch;
//! - gradients are summed with a fault-tolerant ring all-reduce and
//!   averaged over the *live* rank count;
//! - a 1-element "step valid" flag rides the same all-reduce, so a
//!   non-finite loss or gradient on any replica makes **every** replica
//!   skip that optimizer step (instead of silently poisoning them all);
//! - if a rank dies, the survivors agree on the corpse via heartbeats,
//!   rebuild the ring, and continue with rescaled gradient averaging;
//! - rank 0 periodically checkpoints full trainer state (weights, Adam
//!   moments, LR, step counter) and a run can resume from the latest
//!   snapshot with a continuation that is bit-identical to an
//!   uninterrupted run.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use cc19_data::dataset::batch_pairs;
use cc19_data::lowdose_pairs::EnhancementPair;

use cc19_ddnet::{Ddnet, DdnetConfig};
use cc19_nn::checkpoint::Checkpoint;
use cc19_nn::graph::Graph;
use cc19_nn::losses::enhancement_loss;
use cc19_nn::optim::{Adam, AdamState};
use cc19_nn::ssim;

use crate::allreduce::{make_ring_with, ring_allreduce_resilient};
use crate::error::Error;
use crate::fault::FaultPlan;
use crate::transport::{RingTransport, TimeoutCfg};
use crate::Result;

/// Distributed-training configuration (one Table 3 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistConfig {
    /// Number of nodes (worker threads).
    pub nodes: usize,
    /// Global batch size (split across nodes).
    pub batch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-epoch LR decay (paper: 0.8).
    pub lr_decay: f32,
    /// MS-SSIM levels in the loss.
    pub ms_ssim_levels: usize,
    /// Optional global gradient-norm clip applied before the all-reduce.
    pub grad_clip: Option<f32>,
    /// Network configuration.
    pub net_cfg: DdnetConfig,
    /// Weight-init seed (shared by all replicas).
    pub seed: u64,
}

impl DistConfig {
    /// Scaled defaults for a Table 3 row.
    pub fn row(nodes: usize, batch: usize, epochs: usize) -> Self {
        DistConfig {
            nodes,
            batch,
            epochs,
            lr: 1e-3,
            lr_decay: 0.9,
            ms_ssim_levels: 1,
            grad_clip: None,
            net_cfg: DdnetConfig::tiny(),
            seed: 42,
        }
    }
}

/// Periodic trainer-state checkpointing (rank 0 writes, any rank reads).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointCfg {
    /// Directory for snapshots (`latest.ckpt` inside it).
    pub dir: PathBuf,
    /// Write a snapshot every this many optimizer steps.
    pub every_steps: usize,
    /// Load `latest.ckpt` at startup if present and fast-forward to its
    /// step counter.
    pub resume: bool,
    /// Test/ops hook: exit cleanly after this many global steps, as if
    /// the job were preempted at a step boundary.
    pub stop_after_step: Option<usize>,
}

impl CheckpointCfg {
    /// Checkpoint every `every_steps` into `dir`, resuming when possible.
    pub fn new(dir: impl Into<PathBuf>, every_steps: usize) -> Self {
        CheckpointCfg { dir: dir.into(), every_steps, resume: true, stop_after_step: None }
    }

    /// Path of the rolling snapshot.
    pub fn latest_path(&self) -> PathBuf {
        self.dir.join("latest.ckpt")
    }
}

/// Fault-tolerance options for a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct FtOptions {
    /// Injected transport faults (chaos testing); `FaultPlan::none()` for
    /// production behaviour.
    pub faults: FaultPlan,
    /// Transport timeout/retry policy.
    pub timeouts: TimeoutCfg,
    /// Optional periodic checkpoint/resume.
    pub checkpoint: Option<CheckpointCfg>,
}

impl Default for FtOptions {
    fn default() -> Self {
        FtOptions { faults: FaultPlan::none(), timeouts: TimeoutCfg::default(), checkpoint: None }
    }
}

/// Outcome of a distributed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistStats {
    /// Measured wall-clock seconds on this host.
    pub wall_seconds: f64,
    /// Final validation MS-SSIM (percent, paper convention).
    pub final_val_ms_ssim: f64,
    /// Mean training loss per epoch (rank-0 perspective; every epoch is
    /// flushed, including a trailing partial one).
    pub epoch_losses: Vec<f64>,
    /// Number of optimizer-step opportunities this run executed (resumed
    /// runs exclude fast-forwarded steps).
    pub steps: usize,
    /// Steps vetoed by the non-finite guard (every live replica skipped
    /// them together).
    pub skipped_steps: usize,
    /// Ranks that died (killed or evicted) during the run.
    pub dead_ranks: Vec<usize>,
    /// Ring rebuilds + all-reduce restarts performed.
    pub recoveries: usize,
    /// Global step this run resumed from (0 for a fresh run).
    pub resumed_from_step: usize,
    /// Set when `stop_after_step` ended the run early.
    pub stopped_at_step: Option<usize>,
}

/// What one worker thread produced.
enum Outcome {
    /// Ran to completion (or the configured stop point).
    Done {
        snapshot: Vec<f32>,
        epoch_losses: Vec<f64>,
        skipped: usize,
        recoveries: usize,
        executed: usize,
        stopped_at: Option<usize>,
    },
    /// Killed by the fault plan at a step boundary (simulated crash).
    Killed,
    /// Declared dead by the survivors (heartbeat false positive); the
    /// rank bows out so the cluster stays consistent.
    Evicted,
}

/// Run data-parallel training with default fault-tolerance options (no
/// injected faults, no checkpointing); returns the final weight snapshot
/// (shared by all replicas) and run statistics.
pub fn train_distributed(
    train: &[EnhancementPair],
    val: &[EnhancementPair],
    cfg: DistConfig,
) -> Result<(Vec<f32>, DistStats)> {
    train_distributed_ft(train, val, cfg, FtOptions::default())
}

/// Run data-parallel training under an explicit fault model, with
/// optional checkpoint/resume.
pub fn train_distributed_ft(
    train: &[EnhancementPair],
    val: &[EnhancementPair],
    cfg: DistConfig,
    opts: FtOptions,
) -> Result<(Vec<f32>, DistStats)> {
    if cfg.nodes < 1 || cfg.batch < cfg.nodes {
        return Err(Error::InvalidConfig(format!(
            "need at least one image per node (nodes={}, batch={})",
            cfg.nodes, cfg.batch
        )));
    }
    let t0 = Instant::now();
    let steps_per_epoch = if train.is_empty() { 0 } else { train.len().div_ceil(cfg.batch) };
    let total_steps = steps_per_epoch * cfg.epochs;

    // Resume: load the snapshot once, share it with every worker.
    let resume_ck: Option<Arc<Checkpoint>> = match &opts.checkpoint {
        Some(ck_cfg) if ck_cfg.resume && ck_cfg.latest_path().exists() => {
            Some(Arc::new(Checkpoint::load(&ck_cfg.latest_path())?))
        }
        _ => None,
    };
    let start_step = resume_ck
        .as_ref()
        .and_then(|ck| ck.get_u64("dist.step"))
        .unwrap_or(0)
        .min(total_steps as u64) as usize;

    let (_cluster, transports) = make_ring_with(cfg.nodes, opts.faults, opts.timeouts);
    let train_owned: Vec<Vec<Vec<EnhancementPair>>> = shard_steps(train, cfg);
    debug_assert_eq!(train_owned.len(), cfg.nodes);

    let handles: Vec<_> = transports
        .into_iter()
        .zip(train_owned)
        .enumerate()
        .map(|(rank, (ring, my_batches))| {
            let ck_cfg = opts.checkpoint.clone();
            let resume_ck = resume_ck.clone();
            std::thread::spawn(move || {
                run_worker(rank, ring, my_batches, cfg, steps_per_epoch, start_step, ck_cfg, resume_ck)
            })
        })
        .collect();

    let mut finished: Vec<(usize, Vec<f32>, Vec<f64>)> = Vec::new();
    let mut dead_ranks = Vec::new();
    let mut skipped_steps = 0;
    let mut recoveries = 0;
    let mut executed = 0;
    let mut stopped_at = None;
    for (rank, h) in handles.into_iter().enumerate() {
        let outcome = h.join().map_err(|_| Error::WorkerPanicked { rank })??;
        match outcome {
            Outcome::Done { snapshot, epoch_losses, skipped, recoveries: r, executed: e, stopped_at: s } => {
                skipped_steps = skipped_steps.max(skipped);
                recoveries = recoveries.max(r);
                executed = executed.max(e);
                if s.is_some() {
                    stopped_at = s;
                }
                finished.push((rank, snapshot, epoch_losses));
            }
            Outcome::Killed | Outcome::Evicted => dead_ranks.push(rank),
        }
    }
    let Some((_, first_snapshot, losses0)) = finished.first() else {
        return Err(Error::AllRanksDead);
    };
    // All surviving replicas must agree (DDP invariant) — a violation is
    // a typed error now, so callers can fall back to single-node training
    // instead of aborting the process.
    for (rank, snap, _) in finished.iter().skip(1) {
        if snap.len() != first_snapshot.len() {
            return Err(Error::ReplicaDiverged { rank: *rank, max_diff: f32::INFINITY });
        }
        let max_diff = snap
            .iter()
            .zip(first_snapshot.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // NaN-preserving: a NaN max_diff must also count as divergence.
        if max_diff.is_nan() || max_diff >= 1e-5 {
            return Err(Error::ReplicaDiverged { rank: *rank, max_diff });
        }
    }

    let wall = t0.elapsed().as_secs_f64();

    // Evaluate the agreed weights on the validation set.
    let net = Ddnet::new(cfg.net_cfg, cfg.seed);
    net.store.load_snapshot(first_snapshot)?;
    let mut ms = 0.0f64;
    for p in val {
        let enhanced = net.enhance(&p.low)?;
        ms += ssim::ms_ssim_image(&p.full, &enhanced, 1.0)?;
    }
    let losses0 = losses0.clone();
    let snapshot = finished.into_iter().next().map(|(_, s, _)| s).expect("nonempty");
    Ok((
        snapshot,
        DistStats {
            wall_seconds: wall,
            final_val_ms_ssim: 100.0 * ms / val.len().max(1) as f64,
            epoch_losses: losses0,
            steps: executed,
            skipped_steps,
            dead_ranks,
            recoveries,
            resumed_from_step: start_step,
            stopped_at_step: stopped_at,
        },
    ))
}

/// The per-rank training loop.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    rank: usize,
    mut ring: RingTransport,
    my_batches: Vec<Vec<EnhancementPair>>,
    cfg: DistConfig,
    steps_per_epoch: usize,
    start_step: usize,
    ck_cfg: Option<CheckpointCfg>,
    resume_ck: Option<Arc<Checkpoint>>,
) -> Result<Outcome> {
    let net = Ddnet::new(cfg.net_cfg, cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut epoch_losses: Vec<f64> = Vec::new();
    let mut acc = 0.0f64;
    let mut in_epoch = 0usize;
    let mut skipped = 0usize;
    let mut recoveries = 0usize;
    let mut executed = 0usize;

    if let Some(ck) = &resume_ck {
        restore_worker_state(ck, &net, &mut opt, &mut epoch_losses, &mut acc, &mut in_epoch, &mut skipped)?;
    }

    for epoch in 0..cfg.epochs {
        let epoch_first = epoch * steps_per_epoch;
        if epoch_first + steps_per_epoch <= start_step {
            continue; // fully fast-forwarded epoch; its LR decay is baked
                      // into the checkpointed learning rate
        }
        for k in 0..steps_per_epoch {
            let step = epoch_first + k;
            if step < start_step {
                continue;
            }
            if let Some(stop) = ck_cfg.as_ref().and_then(|c| c.stop_after_step) {
                if step >= stop {
                    return Ok(Outcome::Done {
                        snapshot: net.store.snapshot(),
                        epoch_losses,
                        skipped,
                        recoveries,
                        executed,
                        stopped_at: Some(step),
                    });
                }
            }
            if ring.faults().kill_step(rank) == Some(step) {
                return Ok(Outcome::Killed);
            }
            ring.beat();

            let local = &my_batches[step];
            let loss = if local.is_empty() {
                net.store.zero_grad();
                0.0
            } else {
                let (low, full) = batch_pairs(local)?;
                let mut g = Graph::new();
                let x = g.input(low);
                let t = g.input(full);
                let y = net.forward(&mut g, x, true)?;
                let loss = enhancement_loss(&mut g, y, t, cfg.ms_ssim_levels)?;
                let l = g.value(loss).item()? as f64;
                net.store.zero_grad();
                g.backward(loss);
                l
            };
            ring.beat();
            if let Some(clip) = cfg.grad_clip {
                net.store.clip_grad_norm(clip);
            }

            // Gradient all-reduce (sum), with the step-validity flag as a
            // trailing element so all live ranks agree on whether to
            // apply or skip this step.
            let finite = loss.is_finite() && net.store.grads_all_finite();
            let mut flat = net.store.flat_grads();
            flat.push(if finite { 1.0 } else { 0.0 });
            match ring_allreduce_resilient(&mut flat, &mut ring, cfg.nodes) {
                Ok(r) => recoveries += r,
                Err(Error::RankDead { rank: dead }) if dead == rank => {
                    return Ok(Outcome::Evicted);
                }
                Err(e) => return Err(e),
            }
            let live = ring.live();
            let flag_sum = flat.pop().expect("flag element");
            executed += 1;
            if flag_sum >= live as f32 - 0.5 {
                // Average over the *live* rank count: after a rank death
                // the gradient scale follows the survivors.
                let inv = 1.0 / live as f32;
                for v in &mut flat {
                    *v *= inv;
                }
                net.store.load_flat_grads(&flat)?;
                opt.step(&net.store);
            } else {
                // Some replica saw a non-finite loss/gradient; the summed
                // buffer is unusable, so every replica skips in lockstep.
                skipped += 1;
                net.store.zero_grad();
            }

            acc += loss;
            in_epoch += 1;
            if k == steps_per_epoch - 1 {
                // End of epoch — flush (trailing partial epochs included)
                // and decay before any checkpoint at this boundary, so a
                // resumed LR matches the uninterrupted schedule.
                epoch_losses.push(acc / in_epoch.max(1) as f64);
                acc = 0.0;
                in_epoch = 0;
                opt.decay_lr(cfg.lr_decay);
            }
            if rank == 0 {
                if let Some(c) = &ck_cfg {
                    if c.every_steps > 0 && (step + 1).is_multiple_of(c.every_steps) {
                        write_checkpoint(c, &net, &opt, step + 1, &epoch_losses, acc, in_epoch, skipped)?;
                    }
                }
            }
        }
    }
    Ok(Outcome::Done {
        snapshot: net.store.snapshot(),
        epoch_losses,
        skipped,
        recoveries,
        executed,
        stopped_at: None,
    })
}

/// Serialize full trainer state (model + optimizer + counters) and write
/// it atomically to `latest.ckpt`.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    c: &CheckpointCfg,
    net: &Ddnet,
    opt: &Adam,
    next_step: usize,
    epoch_losses: &[f64],
    acc: f64,
    in_epoch: usize,
    skipped: usize,
) -> Result<()> {
    std::fs::create_dir_all(&c.dir)?;
    let mut ck = net.to_checkpoint();
    let st = opt.export_state(&net.store);
    ck.push_u64("dist.step", next_step as u64);
    ck.push_u64("dist.adam.t", st.t);
    ck.push_scalar("dist.adam.lr", st.lr);
    ck.push("dist.adam.m", st.m);
    ck.push("dist.adam.v", st.v);
    ck.push("dist.epoch_losses", epoch_losses.iter().map(|&l| l as f32).collect());
    ck.push_scalar("dist.epoch_acc", acc as f32);
    ck.push_u64("dist.epoch_count", in_epoch as u64);
    ck.push_u64("dist.skipped", skipped as u64);
    ck.save(&c.latest_path())?;
    Ok(())
}

/// Restore worker state from a trainer checkpoint written by
/// [`write_checkpoint`].
fn restore_worker_state(
    ck: &Checkpoint,
    net: &Ddnet,
    opt: &mut Adam,
    epoch_losses: &mut Vec<f64>,
    acc: &mut f64,
    in_epoch: &mut usize,
    skipped: &mut usize,
) -> Result<()> {
    let missing = |what: &str| Error::Checkpoint(format!("missing section {what}"));
    net.load_checkpoint(ck)?;
    let state = AdamState {
        t: ck.get_u64("dist.adam.t").ok_or_else(|| missing("dist.adam.t"))?,
        lr: ck.get_scalar("dist.adam.lr").ok_or_else(|| missing("dist.adam.lr"))?,
        m: ck.get("dist.adam.m").ok_or_else(|| missing("dist.adam.m"))?.to_vec(),
        v: ck.get("dist.adam.v").ok_or_else(|| missing("dist.adam.v"))?.to_vec(),
    };
    opt.load_state(&net.store, &state)?;
    *epoch_losses =
        ck.get("dist.epoch_losses").unwrap_or(&[]).iter().map(|&l| l as f64).collect();
    *acc = ck.get_scalar("dist.epoch_acc").unwrap_or(0.0) as f64;
    *in_epoch = ck.get_u64("dist.epoch_count").unwrap_or(0) as usize;
    *skipped = ck.get_u64("dist.skipped").unwrap_or(0) as usize;
    Ok(())
}

/// Pre-compute each node's local mini-batch for every global step across
/// all epochs (fixed order; the global batch is a contiguous window over
/// the training set, split contiguously across nodes).
fn shard_steps(train: &[EnhancementPair], cfg: DistConfig) -> Vec<Vec<Vec<EnhancementPair>>> {
    let mut per_node: Vec<Vec<Vec<EnhancementPair>>> = vec![Vec::new(); cfg.nodes];
    for _epoch in 0..cfg.epochs {
        let mut i = 0;
        while i < train.len() {
            let global: Vec<EnhancementPair> =
                train[i..(i + cfg.batch).min(train.len())].to_vec();
            let per = global.len().div_ceil(cfg.nodes);
            for (rank, node_batches) in per_node.iter_mut().enumerate() {
                let lo = (rank * per).min(global.len());
                let hi = ((rank + 1) * per).min(global.len());
                node_batches.push(global[lo..hi].to_vec());
            }
            i += cfg.batch;
        }
    }
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_data::lowdose_pairs::{make_pair, PairConfig};
    use cc19_data::sources::{DataSource, Modality, ScanMeta};

    fn pairs(count: usize, n: usize) -> Vec<EnhancementPair> {
        (0..count)
            .map(|i| {
                let meta = ScanMeta {
                    id: 300 + i as u64,
                    source: DataSource::Bimcv,
                    modality: Modality::Ct,
                    positive: false,
                    severity: None,
                    slices: 8,
                    circular_artifact: false,
                    has_projections: false,
                };
                make_pair(&meta, 0.5, PairConfig::reduced(n, 50 + i as u64)).unwrap()
            })
            .collect()
    }

    #[test]
    fn replicas_stay_synchronized_and_loss_falls() {
        let train = pairs(8, 32);
        let val = pairs(2, 32);
        let cfg = DistConfig::row(2, 4, 2);
        let (weights, stats) = train_distributed(&train, &val, cfg).unwrap();
        assert!(!weights.is_empty());
        assert_eq!(stats.epoch_losses.len(), 2);
        assert!(stats.epoch_losses[1] <= stats.epoch_losses[0] * 1.1);
        assert!(stats.final_val_ms_ssim > 50.0, "msssim {}", stats.final_val_ms_ssim);
        assert_eq!(stats.steps, 4);
        assert_eq!(stats.skipped_steps, 0);
        assert!(stats.dead_ranks.is_empty());
    }

    #[test]
    fn single_node_path_works() {
        let train = pairs(4, 32);
        let val = pairs(1, 32);
        let cfg = DistConfig::row(1, 2, 1);
        let (_, stats) = train_distributed(&train, &val, cfg).unwrap();
        assert_eq!(stats.steps, 2);
        assert!(stats.wall_seconds > 0.0);
    }

    #[test]
    fn four_nodes_complete() {
        let train = pairs(8, 32);
        let val = pairs(1, 32);
        let cfg = DistConfig::row(4, 8, 1);
        let (_, stats) = train_distributed(&train, &val, cfg).unwrap();
        assert_eq!(stats.steps, 1);
    }

    #[test]
    fn larger_batch_means_fewer_steps() {
        let train = pairs(8, 32);
        let val = pairs(1, 32);
        let (_, s_small) = train_distributed(&train, &val, DistConfig::row(2, 2, 1)).unwrap();
        let (_, s_large) = train_distributed(&train, &val, DistConfig::row(2, 8, 1)).unwrap();
        assert!(s_large.steps < s_small.steps);
    }

    #[test]
    fn sharding_covers_all_data() {
        let train = pairs(5, 32);
        let cfg = DistConfig::row(2, 4, 1);
        let shards = shard_steps(&train, cfg);
        assert_eq!(shards.len(), 2);
        // both nodes see the same number of steps
        assert_eq!(shards[0].len(), shards[1].len());
        let total: usize =
            shards.iter().map(|n| n.iter().map(|b| b.len()).sum::<usize>()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn partial_epochs_are_flushed_and_decayed() {
        // Regression: train.len() not divisible by batch — the trailing
        // short step must still count toward its epoch and each epoch must
        // flush exactly once (the old accounting dropped trailing steps
        // whenever step counts and epochs drifted apart).
        let train = pairs(5, 32); // batch 2 -> 3 steps/epoch, last is partial
        let val = pairs(1, 32);
        let cfg = DistConfig::row(2, 2, 3);
        let (_, stats) = train_distributed(&train, &val, cfg).unwrap();
        assert_eq!(stats.steps, 9, "3 epochs x ceil(5/2) steps");
        assert_eq!(stats.epoch_losses.len(), 3, "every epoch flushed: {:?}", stats.epoch_losses);
        for l in &stats.epoch_losses {
            assert!(l.is_finite() && *l > 0.0);
        }
    }

    #[test]
    fn invalid_config_is_typed_error() {
        let train = pairs(2, 32);
        let err = train_distributed(&train, &[], DistConfig::row(4, 2, 1)).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn grad_clip_bounds_update_magnitude() {
        let train = pairs(4, 32);
        let val = pairs(1, 32);
        let mut cfg = DistConfig::row(2, 2, 1);
        cfg.grad_clip = Some(0.5);
        let (w_clipped, stats) = train_distributed(&train, &val, cfg).unwrap();
        assert_eq!(stats.skipped_steps, 0);
        assert!(!w_clipped.is_empty());
        // Clipped and unclipped runs should differ (the clip is active for
        // fresh nets with lr 1e-3) but both stay finite.
        cfg.grad_clip = None;
        let (w_free, _) = train_distributed(&train, &val, cfg).unwrap();
        assert!(w_clipped.iter().all(|v| v.is_finite()));
        assert!(w_free.iter().all(|v| v.is_finite()));
    }
}
