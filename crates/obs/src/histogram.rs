//! Fixed-bucket histogram with exact nearest-rank quantiles.
//!
//! This is the **single** quantile implementation in the workspace
//! (`cc19-serve`'s metrics used to carry a private copy): samples are
//! kept exactly, quantiles use the nearest-rank definition
//! `rank = ceil(q * n)` (clamped to `[1, n]`) over a `total_cmp` sort,
//! and a proptest in `crates/obs/tests/` pins the result against a
//! naive sort oracle. Bucket counts (cumulative-bound style) ride along
//! for the Prometheus exporter.

/// Default bucket upper bounds for durations in **seconds**: roughly
/// exponential from 1 µs to 10 s (a `+Inf` bucket is implicit).
pub const DEFAULT_SECONDS_BOUNDS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// An exact-sample histogram with fixed bucket bounds.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `counts[i]` = samples with `v <= bounds[i]` and `> bounds[i-1]`;
    /// one extra slot at the end counts the `+Inf` overflow bucket.
    counts: Vec<u64>,
    samples: Vec<f64>,
    sum: f64,
}

impl Histogram {
    /// Histogram with the given (ascending) bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            samples: Vec::new(),
            sum: 0.0,
        }
    }

    /// Histogram with [`DEFAULT_SECONDS_BOUNDS`].
    pub fn seconds() -> Self {
        Histogram::new(DEFAULT_SECONDS_BOUNDS)
    }

    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.samples.push(v);
        self.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() { 0.0 } else { self.sum / self.samples.len() as f64 }
    }

    /// Largest sample, `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Nearest-rank quantile: the sample at rank `ceil(q * n)` (1-based,
    /// clamped to `[1, n]`) of the `total_cmp`-sorted samples. `0.0`
    /// when empty. `q` is a fraction, e.g. `0.95`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    /// Bucket upper bounds (the `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the `+Inf` bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The raw samples, in observation order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut h = Histogram::new(&[]);
        for v in [5.0, 1.0, 4.0, 2.0, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.50), 3.0);
        assert_eq!(h.quantile(0.95), 5.0);
        assert_eq!(h.quantile(0.20), 1.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 5.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::seconds();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn buckets_partition_samples() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 50.0] {
            h.observe(v);
        }
        // <=1.0: {0.5, 1.0}; <=10.0: {2.0}; +Inf: {50.0}
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }
}
