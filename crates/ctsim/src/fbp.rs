//! Filtered back projection (FBP) — the reconstruction the paper uses for
//! its simulated low-dose data (§3.1.2, ref [37]).
//!
//! Parallel-beam FBP is the textbook inversion; fan-beam FBP for the flat
//! equispaced detector first rebins the detector coordinate to a virtual
//! detector through the isocenter, cosine-weights, ramp-filters, and
//! backprojects with the `1/U^2` distance weight (Kak & Slaney ch. 3).

use rayon::prelude::*;

use cc19_tensor::Tensor;

use crate::filter::{filter_views, Window};
use crate::geometry::{FanBeamGeometry, ParallelBeamGeometry};
use crate::siddon::Grid;
use crate::sinogram::Sinogram;
use crate::Result;

/// Parallel-beam FBP reconstruction onto an `n`×`n` grid.
pub fn fbp_parallel(
    sino: &Sinogram,
    geom: &ParallelBeamGeometry,
    grid: Grid,
    window: Window,
) -> Result<Tensor> {
    let _t = cc19_obs::global().timer_with("ctsim_stage_seconds", &[("stage", "fbp")]);
    let views = geom.views;
    let det = geom.detectors;
    let filtered = filter_views(sino.tensor().data(), views, det, geom.det_pitch, window);

    let n = grid.n;
    let half = grid.half();
    let mut img = Tensor::zeros([n, n]);
    let scale = std::f32::consts::PI / views as f32;
    let inv_pitch = 1.0 / geom.det_pitch;
    let det_center = det as f32 / 2.0 - 0.5;

    // Precompute angles.
    let angles: Vec<(f32, f32)> =
        (0..views).map(|v| { let a = geom.view_angle(v); (a.cos(), a.sin()) }).collect();

    img.data_mut().par_chunks_mut(n).enumerate().for_each(|(r, row)| {
        let y = half - (r as f32 + 0.5) * grid.px;
        for (c, out) in row.iter_mut().enumerate() {
            let x = (c as f32 + 0.5) * grid.px - half;
            let mut acc = 0.0f32;
            for (v, &(cos_t, sin_t)) in angles.iter().enumerate() {
                let s = x * cos_t + y * sin_t;
                let fd = s * inv_pitch + det_center;
                let i0 = fd.floor();
                let frac = fd - i0;
                let i0 = i0 as isize;
                if i0 < 0 || i0 as usize + 1 >= det {
                    continue;
                }
                let base = v * det + i0 as usize;
                acc += filtered[base] * (1.0 - frac) + filtered[base + 1] * frac;
            }
            *out = acc * scale;
        }
    });
    Ok(img)
}

/// Fan-beam FBP reconstruction (flat equispaced detector, full-scan).
pub fn fbp_fan(sino: &Sinogram, geom: &FanBeamGeometry, grid: Grid, window: Window) -> Result<Tensor> {
    let _t = cc19_obs::global().timer_with("ctsim_stage_seconds", &[("stage", "fbp")]);
    let views = geom.views;
    let det = geom.detectors;
    let d = geom.sod; // virtual-detector geometry uses the SOD
    // Rebin pitch to the virtual detector through the isocenter.
    let pitch_v = geom.det_pitch * geom.sod / geom.sdd;

    // Cosine weighting on the virtual detector: D / sqrt(D^2 + u'^2).
    let mut weighted = vec![0.0f32; views * det];
    for v in 0..views {
        let row = sino.view(v);
        for (i, &p) in row.iter().enumerate() {
            let u = (i as f32 + 0.5 - det as f32 / 2.0) * pitch_v;
            weighted[v * det + i] = p * d / (d * d + u * u).sqrt();
        }
    }
    let filtered = filter_views(&weighted, views, det, pitch_v, window);

    let n = grid.n;
    let half = grid.half();
    let mut img = Tensor::zeros([n, n]);
    let dbeta = geom.arc / views as f32;
    let inv_pitch = 1.0 / pitch_v;
    let det_center = det as f32 / 2.0 - 0.5;
    let angles: Vec<(f32, f32)> =
        (0..views).map(|v| { let b = geom.view_angle(v); (b.cos(), b.sin()) }).collect();

    img.data_mut().par_chunks_mut(n).enumerate().for_each(|(r, row)| {
        let y = half - (r as f32 + 0.5) * grid.px;
        for (c, out) in row.iter_mut().enumerate() {
            let x = (c as f32 + 0.5) * grid.px - half;
            let mut acc = 0.0f32;
            for (v, &(cos_b, sin_b)) in angles.iter().enumerate() {
                // distance along the central ray and lateral coordinate
                let u_axis = x * sin_b - y * cos_b + d;
                if u_axis <= 1e-3 {
                    continue;
                }
                let t = x * cos_b + y * sin_b;
                let u = d * t / u_axis;
                let fd = u * inv_pitch + det_center;
                let i0 = fd.floor();
                let frac = fd - i0;
                let i0 = i0 as isize;
                if i0 < 0 || i0 as usize + 1 >= det {
                    continue;
                }
                let base = v * det + i0 as usize;
                let pf = filtered[base] * (1.0 - frac) + filtered[base + 1] * frac;
                acc += pf * (d * d) / (u_axis * u_axis);
            }
            // Full 2*pi scan covers each parallel ray twice -> factor 1/2.
            *out = acc * dbeta * 0.5;
        }
    });
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::siddon::{project_fan, project_parallel};

    fn disk_image(n: usize, grid: Grid, radius: f32, mu: f32) -> Tensor {
        let mut img = Tensor::zeros([n, n]);
        let half = grid.half();
        for r in 0..n {
            for c in 0..n {
                let x = (c as f32 + 0.5) * grid.px - half;
                let y = half - (r as f32 + 0.5) * grid.px;
                if x * x + y * y <= radius * radius {
                    img.set(&[r, c], mu);
                }
            }
        }
        img
    }

    /// Mean relative error inside a region where the phantom is constant.
    fn interior_error(recon: &Tensor, grid: Grid, radius: f32, mu: f32) -> f32 {
        let n = grid.n;
        let half = grid.half();
        let mut err = 0.0f64;
        let mut count = 0usize;
        for r in 0..n {
            for c in 0..n {
                let x = (c as f32 + 0.5) * grid.px - half;
                let y = half - (r as f32 + 0.5) * grid.px;
                // stay well inside the disk to avoid edge ringing
                if x * x + y * y <= (radius * 0.7) * (radius * 0.7) {
                    err += ((recon.at(&[r, c]) - mu) / mu).abs() as f64;
                    count += 1;
                }
            }
        }
        (err / count as f64) as f32
    }

    #[test]
    fn parallel_fbp_recovers_disk() {
        let n = 128;
        let grid = Grid { n, px: 1.0 };
        let mu = 0.02;
        let img = disk_image(n, grid, 40.0, mu);
        let geom = ParallelBeamGeometry::for_image(n, grid.px, 180);
        let sino = project_parallel(&img, grid, &geom).unwrap();
        let recon = fbp_parallel(&sino, &geom, grid, Window::RamLak).unwrap();
        let err = interior_error(&recon, grid, 40.0, mu);
        assert!(err < 0.05, "interior relative error {err}");
        // air region stays near zero
        assert!(recon.at(&[4, 4]).abs() < 0.1 * mu);
    }

    #[test]
    fn fan_fbp_recovers_disk() {
        let n = 128;
        let grid = Grid::fov500(n);
        let mu = 0.02;
        let img = disk_image(n, grid, 100.0, mu);
        let geom = FanBeamGeometry::reduced(360, 256);
        let sino = project_fan(&img, grid, &geom).unwrap();
        let recon = fbp_fan(&sino, &geom, grid, Window::RamLak).unwrap();
        let err = interior_error(&recon, grid, 100.0, mu);
        assert!(err < 0.08, "interior relative error {err}");
        assert!(recon.at(&[4, 4]).abs() < 0.1 * mu);
    }

    #[test]
    fn off_center_feature_is_localized() {
        let n = 128;
        let grid = Grid { n, px: 1.0 };
        let mut img = Tensor::zeros([n, n]);
        // small square at (row 30..38, col 80..88)
        for r in 30..38 {
            for c in 80..88 {
                img.set(&[r, c], 0.03);
            }
        }
        let geom = ParallelBeamGeometry::for_image(n, grid.px, 180);
        let sino = project_parallel(&img, grid, &geom).unwrap();
        let recon = fbp_parallel(&sino, &geom, grid, Window::RamLak).unwrap();
        // Peak of the reconstruction should be inside the square.
        let mut best = (0usize, 0usize);
        let mut best_v = f32::NEG_INFINITY;
        for r in 0..n {
            for c in 0..n {
                let v = recon.at(&[r, c]);
                if v > best_v {
                    best_v = v;
                    best = (r, c);
                }
            }
        }
        assert!(
            (28..40).contains(&best.0) && (78..90).contains(&best.1),
            "peak at {best:?}"
        );
        assert!((best_v - 0.03).abs() / 0.03 < 0.3, "peak value {best_v}");
    }

    #[test]
    fn hann_window_smooths_noise() {
        let n = 96;
        let grid = Grid { n, px: 1.0 };
        let mu = 0.02;
        let img = disk_image(n, grid, 30.0, mu);
        let geom = ParallelBeamGeometry::for_image(n, grid.px, 120);
        let mut sino = project_parallel(&img, grid, &geom).unwrap();
        // add detector noise
        let mut rng = cc19_tensor::rng::Xorshift::new(9);
        for v in sino.tensor_mut().data_mut() {
            *v += rng.normal_ms(0.0, 0.05);
        }
        let ram = fbp_parallel(&sino, &geom, grid, Window::RamLak).unwrap();
        let han = fbp_parallel(&sino, &geom, grid, Window::Hann).unwrap();
        // Compare variance in a uniform interior patch.
        let patch_var = |t: &Tensor| {
            let mut vals = Vec::new();
            for r in n / 2 - 8..n / 2 + 8 {
                for c in n / 2 - 8..n / 2 + 8 {
                    vals.push(t.at(&[r, c]) as f64);
                }
            }
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64
        };
        assert!(
            patch_var(&han) < patch_var(&ram),
            "hann {} vs ramlak {}",
            patch_var(&han),
            patch_var(&ram)
        );
    }
}
