//! MS-SSIM metric and differentiable-loss cost per image size — the loss
//! is computed every training step, so its cost shapes Table 3's compute
//! model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cc19_nn::graph::Graph;
use cc19_nn::losses::enhancement_loss;
use cc19_nn::ssim::{max_levels, ms_ssim};
use cc19_tensor::rng::Xorshift;

fn bench_ms_ssim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ms_ssim");
    for n in [64usize, 128] {
        let mut rng = Xorshift::new(n as u64);
        let a = rng.uniform_tensor([1, 1, n, n], 0.0, 1.0);
        let b = rng.uniform_tensor([1, 1, n, n], 0.0, 1.0);
        let levels = max_levels(n, n);
        group.bench_with_input(BenchmarkId::new("metric", n), &n, |bch, _| {
            bch.iter(|| ms_ssim(&a, &b, levels, 1.0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("loss_with_backward", n), &n, |bch, _| {
            bch.iter(|| {
                let mut g = Graph::new();
                let av = g.input_grad(a.clone());
                let bv = g.input(b.clone());
                let loss = enhancement_loss(&mut g, av, bv, levels).unwrap();
                g.backward(loss);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ms_ssim
}
criterion_main!(benches);
