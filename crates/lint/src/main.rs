//! `cargo run -p cc19-lint` — lint the workspace, exit non-zero on any
//! violation. See `crates/lint/src/lib.rs` and DESIGN.md §11 for the
//! rule catalogue.
//!
//! Flags:
//! * `--only <rule>[,<rule>…]` — run a subset (e.g. the tier-1
//!   whitespace gate runs `--only whitespace`).
//! * `--rule <rule>` — add one rule to the subset (repeatable; merges
//!   with `--only` for local iteration).
//! * `--report <path>` — also write the byte-deterministic JSON report
//!   (`tier1.sh` writes `results/lint_report.json` and `cmp`s two runs).
//! * `--root <dir>` — workspace root (default: search upward from cwd).
//! * `--list-rules` — print rule names and exit.

use std::path::PathBuf;
use std::process::ExitCode;

use cc19_lint::report::{render_json, summary};
use cc19_lint::rules::run_analysis;
use cc19_lint::walk::{collect_manifests, collect_sources, find_root};
use cc19_lint::{LintConfig, RULE_NAMES};

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("cc19-lint: error: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut only: Option<Vec<String>> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut report_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for r in RULE_NAMES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--only" => match args.next() {
                Some(v) => {
                    only.get_or_insert_with(Vec::new).extend(v.split(',').map(str::to_string))
                }
                None => return fail("--only needs a comma-separated rule list"),
            },
            "--rule" => match args.next() {
                Some(v) => only.get_or_insert_with(Vec::new).push(v),
                None => return fail("--rule needs a rule name"),
            },
            "--report" => match args.next() {
                Some(v) => report_arg = Some(PathBuf::from(v)),
                None => return fail("--report needs an output path"),
            },
            "--root" => match args.next() {
                Some(v) => root_arg = Some(PathBuf::from(v)),
                None => return fail("--root needs a directory"),
            },
            other => return fail(format!("unknown argument `{other}`")),
        }
    }

    let enabled: Vec<&str> = match &only {
        None => RULE_NAMES.to_vec(),
        Some(list) => {
            let mut rules = Vec::new();
            for name in list {
                match RULE_NAMES.iter().find(|r| **r == name.as_str()) {
                    Some(r) => rules.push(*r),
                    None => return fail(format!("unknown rule `{name}` (see --list-rules)")),
                }
            }
            rules
        }
    };

    let root = match root_arg.or_else(|| {
        std::env::current_dir().ok().and_then(|d| find_root(&d))
    }) {
        Some(r) => r,
        None => return fail("no workspace root found (run from inside the repo or pass --root)"),
    };

    let cfg = match LintConfig::load(&root.join("lint.toml")) {
        Ok(c) => c,
        Err(e) => return fail(format!("lint.toml: {e}")),
    };
    let files = match collect_sources(&root) {
        Ok(f) => f,
        Err(e) => return fail(format!("collecting sources: {e}")),
    };
    let manifests = match collect_manifests(&root) {
        Ok(m) => m,
        Err(e) => return fail(format!("collecting manifests: {e}")),
    };

    let (violations, artifacts) = run_analysis(&enabled, &files, &manifests, &cfg);
    if let Some(path) = &report_arg {
        let json = render_json(files.len(), &enabled, &violations, &artifacts);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    return fail(format!("creating {}: {e}", dir.display()));
                }
            }
        }
        if let Err(e) = std::fs::write(path, json) {
            return fail(format!("writing {}: {e}", path.display()));
        }
    }
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "cc19-lint: OK — {} files, {} manifests, rules: {}",
            files.len(),
            manifests.len(),
            enabled.join(",")
        );
        ExitCode::SUCCESS
    } else {
        println!("\ncc19-lint: {} violation(s)", violations.len());
        print!("{}", summary(&violations, RULE_NAMES));
        ExitCode::FAILURE
    }
}
