//~ path: crates/serve/src/fixture.rs
//~ expect: blocking-under-lock
//! Fixture: a channel `recv` while a mutex guard is still held. Every
//! other thread that needs `state` now waits on a sender that may
//! never send — the `blocking-under-lock` rule must flag the `recv`
//! and name the held lock.

struct Inbox {
    state: Mutex<u32>,
    rx: Receiver<u32>,
}

impl Inbox {
    fn drain_holding_the_lock(&self) -> u32 {
        let mut g = self.state.lock();
        if let Ok(v) = self.rx.recv() {
            *g += v;
        }
        *g
    }
}
