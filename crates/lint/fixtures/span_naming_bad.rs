//~ path: crates/serve/src/fixture.rs
//~ expect: metric-naming
// Span paths recorded through the cc19-obs tracing surface must be
// dotted snake_case under the recording crate's own namespace
// (DESIGN.md §17): "queue" alone carries no crate namespace, and
// "Monitor.Cache" is neither lowercase nor this crate's. The path is
// the second argument of these ctors and the second call is wrapped
// the way rustfmt wraps it, so this fixture also pins the
// first-literal-in-call extraction across lines.

use cc19_obs::{Registry, SpanStatus, TraceCtx};

pub fn record(reg: &Registry, ctx: TraceCtx) {
    reg.trace_child(ctx, "queue", 0, 1);
    reg.trace_record(
        ctx,
        "Monitor.Cache",
        0,
        1,
        SpanStatus::Ok,
    );
}
