//! Deconvolution (stride-1 transposed convolution) kernel — the paper's
//! star witness for its refactoring optimization (§4.2.1, Fig 9).
//!
//! - Baseline: **scatter** — each input element multiplies the full
//!   filter and accumulates into the output window with a read-modify-
//!   write per tap ("recurring load and store operations ... result in
//!   multiple cache misses").
//! - REF: **gather** via inverse coefficient mapping — each output element
//!   computes which input block affects it, multiply-adds locally, and
//!   stores once.
//!
//! Weights are `(Cin, Cout, K, K)`, matching `conv_transpose2d` in
//! `cc19-tensor` (which is the test oracle).

use rayon::prelude::*;

use crate::conv::ConvShape;
use crate::simd::{self, SimdLevel};
use crate::{DeconvKernel, OptLevel};

/// Output height of the stride-1 deconvolution.
pub fn out_h(s: ConvShape) -> usize {
    s.h + s.k - 1 - 2 * s.pad
}

/// Output width.
pub fn out_w(s: ConvShape) -> usize {
    s.w + s.k - 1 - 2 * s.pad
}

/// Run the deconvolution kernel at an optimization level.
///
/// `s.cin`/`s.cout` are the deconvolution's input/output channels; the
/// weight buffer is `(cin, cout, k, k)`.
pub fn deconv2d(level: OptLevel, input: &[f32], weight: &[f32], bias: &[f32], s: ConvShape) -> Vec<f32> {
    deconv2d_with(level, simd::active(), input, weight, bias, s)
}

/// Run the deconvolution at an explicit `(stage, dispatch)` pair — the
/// parity suite's entry point. The `Baseline` scatter stays scalar even
/// at [`SimdLevel::Avx2`] (see [`OptLevel::deconv_kernel`]); the other
/// AVX2 arms require `simd::detected() == Avx2` and are compiled out on
/// non-x86_64.
pub fn deconv2d_with(
    level: OptLevel,
    simd: SimdLevel,
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
) -> Vec<f32> {
    debug_assert_eq!(input.len(), s.cin * s.h * s.w);
    debug_assert_eq!(weight.len(), s.cin * s.cout * s.k * s.k);
    debug_assert_eq!(bias.len(), s.cout);
    match level.deconv_kernel(simd) {
        DeconvKernel::ScalarScatter => deconv_scatter(input, weight, bias, s),
        DeconvKernel::ScalarGather => deconv_gather(input, weight, bias, s, false, false),
        DeconvKernel::ScalarGatherHoisted => deconv_gather(input, weight, bias, s, true, false),
        DeconvKernel::ScalarGatherHoistedUnrolled => {
            deconv_gather(input, weight, bias, s, true, true)
        }
        DeconvKernel::Avx2Gather => deconv_avx2(input, weight, bias, s, false, false),
        DeconvKernel::Avx2GatherPrefetch => deconv_avx2(input, weight, bias, s, true, false),
        DeconvKernel::Avx2GatherPrefetchUnrolled => deconv_avx2(input, weight, bias, s, true, true),
    }
}

#[cfg(target_arch = "x86_64")]
fn deconv_avx2(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
    prefetch: bool,
    unroll: bool,
) -> Vec<f32> {
    crate::microkernel::deconv2d_avx2(
        input,
        weight,
        bias,
        s,
        crate::microkernel::Mode { prefetch, unroll },
    )
}

#[cfg(not(target_arch = "x86_64"))]
fn deconv_avx2(_: &[f32], _: &[f32], _: &[f32], _: ConvShape, _: bool, _: bool) -> Vec<f32> {
    // `simd::active()` never selects AVX2 off x86_64; only an explicit
    // `deconv2d_with(.., Avx2, ..)` on a non-x86 build can reach this.
    unreachable!("AVX2 dispatch requested on a non-x86_64 build")
}

/// Scatter formulation — the naive OpenCL-baseline translation. One work
/// item per *input* element (the natural scatter decomposition); every
/// filter tap performs a read-modify-write into the shared global output.
/// On a multicore CPU that accumulation must be synchronized, so the
/// faithful port uses atomic adds — which is exactly the recurring
/// global-memory traffic the paper's §4.2.1 identifies as the baseline's
/// pathology and removes with the gather refactoring.
fn deconv_scatter(input: &[f32], weight: &[f32], bias: &[f32], s: ConvShape) -> Vec<f32> {
    use std::sync::atomic::{AtomicU32, Ordering};

    let (oh, ow) = (out_h(s), out_w(s));
    let w_ckk = s.cout * s.k * s.k;
    let out: Vec<AtomicU32> =
        (0..s.cout * oh * ow).map(|i| AtomicU32::new(bias[i / (oh * ow)].to_bits())).collect();

    let atomic_add = |cell: &AtomicU32, v: f32| {
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    };

    // one parallel task per input row across all input channels
    (0..s.cin * s.h).into_par_iter().for_each(|row| {
        let ci = row / s.h;
        let iy = row % s.h;
        for ix in 0..s.w {
            let x = input[ci * s.h * s.w + iy * s.w + ix];
            for co in 0..s.cout {
                let plane = &out[co * oh * ow..(co + 1) * oh * ow];
                for ky in 0..s.k {
                    for kx in 0..s.k {
                        let oy = iy as isize + ky as isize - s.pad as isize;
                        let ox = ix as isize + kx as isize - s.pad as isize;
                        if oy >= 0 && oy < oh as isize && ox >= 0 && ox < ow as isize {
                            atomic_add(
                                &plane[oy as usize * ow + ox as usize],
                                x * weight[ci * w_ckk + co * s.k * s.k + ky * s.k + kx],
                            );
                        }
                    }
                }
            }
        }
    });
    out.into_iter().map(|a| f32::from_bits(a.into_inner())).collect()
}

/// Gather formulation (inverse coefficient mapping): one store per output.
fn deconv_gather(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
    prefetch: bool,
    unroll: bool,
) -> Vec<f32> {
    let (oh, ow) = (out_h(s), out_w(s));
    let (h, w, k, pad, cin) = (s.h, s.w, s.k, s.pad, s.cin);
    let hw = h * w;
    let kk = k * k;
    let w_ckk = s.cout * kk;
    let mut out = vec![0.0f32; s.cout * oh * ow];
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(co, plane)| {
        let b = bias[co];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                if !prefetch {
                    // plain gather: bounds checked per tap
                    for ci in 0..cin {
                        for ky in 0..k {
                            for kx in 0..k {
                                // oy = iy - pad + ky  =>  iy = oy + pad - ky
                                let iy = oy as isize + pad as isize - ky as isize;
                                let ix = ox as isize + pad as isize - kx as isize;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    acc += input[ci * hw + iy as usize * w + ix as usize]
                                        * weight[ci * w_ckk + co * kk + ky * k + kx];
                                }
                            }
                        }
                    }
                } else {
                    // prefetch: hoisted valid tap ranges + sliced rows
                    let ky_lo = (oy + pad + 1).saturating_sub(h);
                    let ky_hi = k.min(oy + pad + 1);
                    let kx_lo = (ox + pad + 1).saturating_sub(w);
                    let kx_hi = k.min(ox + pad + 1);
                    for ci in 0..cin {
                        let iplane = &input[ci * hw..(ci + 1) * hw];
                        let wchan = &weight[ci * w_ckk + co * kk..ci * w_ckk + (co + 1) * kk];
                        for ky in ky_lo..ky_hi {
                            let iy = oy + pad - ky;
                            let irow = &iplane[iy * w..iy * w + w];
                            let wrow = &wchan[ky * k..(ky + 1) * k];
                            if unroll && k == 5 && kx_lo == 0 && kx_hi == 5 {
                                // dedicated 5-wide unrolled path; note the
                                // reversed input traversal of the gather
                                let ix = ox + pad;
                                acc += irow[ix] * wrow[0]
                                    + irow[ix - 1] * wrow[1]
                                    + irow[ix - 2] * wrow[2]
                                    + irow[ix - 3] * wrow[3]
                                    + irow[ix - 4] * wrow[4];
                            } else {
                                for kx in kx_lo..kx_hi {
                                    acc += irow[ox + pad - kx] * wrow[kx];
                                }
                            }
                        }
                    }
                }
                plane[oy * ow + ox] = acc;
            }
        }
    });
    out
}

/// One scalar gather output element in exactly the scalar ladder's
/// accumulation order — the clipped-range traversal of the hoisted
/// `deconv_gather`, including its dedicated reversed ×5 expression when
/// `unroll` (also the surviving-tap order of the plain gather). The AVX2
/// path computes its border ring and vector tail through this helper.
/// `wco` is `&weight[co*k*k..]` (per-`ci` stride stays `cout*k*k`).
#[cfg(target_arch = "x86_64")]
pub(crate) fn deconv_px(
    input: &[f32],
    wco: &[f32],
    s: ConvShape,
    oy: usize,
    ox: usize,
    b: f32,
    unroll: bool,
) -> f32 {
    let (h, w, k, pad, cin) = (s.h, s.w, s.k, s.pad, s.cin);
    let hw = h * w;
    let kk = k * k;
    let w_ckk = s.cout * kk;
    let ky_lo = (oy + pad + 1).saturating_sub(h);
    let ky_hi = k.min(oy + pad + 1);
    let kx_lo = (ox + pad + 1).saturating_sub(w);
    let kx_hi = k.min(ox + pad + 1);
    let mut acc = b;
    for ci in 0..cin {
        let iplane = &input[ci * hw..(ci + 1) * hw];
        let wchan = &wco[ci * w_ckk..ci * w_ckk + kk];
        for ky in ky_lo..ky_hi {
            let iy = oy + pad - ky;
            let irow = &iplane[iy * w..iy * w + w];
            let wrow = &wchan[ky * k..(ky + 1) * k];
            if unroll && k == 5 && kx_lo == 0 && kx_hi == 5 {
                let ix = ox + pad;
                acc += irow[ix] * wrow[0]
                    + irow[ix - 1] * wrow[1]
                    + irow[ix - 2] * wrow[2]
                    + irow[ix - 3] * wrow[3]
                    + irow[ix - 4] * wrow[4];
            } else {
                for kx in kx_lo..kx_hi {
                    acc += irow[ox + pad - kx] * wrow[kx];
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_tensor::conv::{conv_transpose2d, Conv2dSpec};
    use cc19_tensor::rng::Xorshift;
    use cc19_tensor::Tensor;

    fn reference(input: &[f32], weight: &[f32], bias: &[f32], s: ConvShape) -> Vec<f32> {
        let x = Tensor::from_vec([1, s.cin, s.h, s.w], input.to_vec()).unwrap();
        let wt = Tensor::from_vec([s.cin, s.cout, s.k, s.k], weight.to_vec()).unwrap();
        let b = Tensor::from_vec([s.cout], bias.to_vec()).unwrap();
        conv_transpose2d(&x, &wt, Some(&b), Conv2dSpec { stride: 1, padding: s.pad })
            .unwrap()
            .into_vec()
    }

    fn random_case(seed: u64, s: ConvShape) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = Xorshift::new(seed);
        let input: Vec<f32> = (0..s.cin * s.h * s.w).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let weight: Vec<f32> =
            (0..s.cin * s.cout * s.k * s.k).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let bias: Vec<f32> = (0..s.cout).map(|_| rng.uniform(-0.2, 0.2)).collect();
        (input, weight, bias)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn all_levels_match_reference_5x5() {
        let s = ConvShape { cin: 3, cout: 2, h: 11, w: 9, k: 5, pad: 2 };
        let (input, weight, bias) = random_case(1, s);
        let expect = reference(&input, &weight, &bias, s);
        assert_eq!(expect.len(), s.cout * out_h(s) * out_w(s));
        for level in OptLevel::ALL {
            let got = deconv2d(level, &input, &weight, &bias, s);
            assert_close(&got, &expect, 1e-4);
        }
    }

    #[test]
    fn all_levels_match_reference_1x1() {
        let s = ConvShape { cin: 4, cout: 3, h: 7, w: 7, k: 1, pad: 0 };
        let (input, weight, bias) = random_case(2, s);
        let expect = reference(&input, &weight, &bias, s);
        for level in OptLevel::ALL {
            assert_close(&deconv2d(level, &input, &weight, &bias, s), &expect, 1e-4);
        }
    }

    #[test]
    fn scatter_equals_gather_on_larger_image() {
        let s = ConvShape { cin: 2, cout: 2, h: 24, w: 24, k: 5, pad: 2 };
        let (input, weight, bias) = random_case(3, s);
        let scatter = deconv2d(OptLevel::Baseline, &input, &weight, &bias, s);
        for level in [
            OptLevel::Refactored,
            OptLevel::RefactoredPrefetch,
            OptLevel::RefactoredPrefetchUnrolled,
        ] {
            let got = deconv2d(level, &input, &weight, &bias, s);
            assert_close(&got, &scatter, 1e-3);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn deconv_px_is_bitwise_the_scalar_gather() {
        for (k, pad) in [(3usize, 1usize), (5, 2), (3, 0)] {
            let s = ConvShape { cin: 2, cout: 3, h: 12, w: 10, k, pad };
            let (input, weight, bias) = random_case(31 + k as u64, s);
            let (oh, ow) = (out_h(s), out_w(s));
            for unroll in [false, true] {
                let expect = deconv_gather(&input, &weight, &bias, s, true, unroll);
                for co in 0..s.cout {
                    let wco = &weight[co * k * k..];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let got = deconv_px(&input, wco, s, oy, ox, bias[co], unroll);
                            let want = expect[co * oh * ow + oy * ow + ox];
                            assert!(
                                got.to_bits() == want.to_bits(),
                                "({co},{oy},{ox}) k={k} unroll={unroll}: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn no_padding_grows_output() {
        let s = ConvShape { cin: 1, cout: 1, h: 4, w: 4, k: 3, pad: 0 };
        assert_eq!(out_h(s), 6);
        let (input, weight, bias) = random_case(4, s);
        let expect = reference(&input, &weight, &bias, s);
        for level in OptLevel::ALL {
            assert_close(&deconv2d(level, &input, &weight, &bias, s), &expect, 1e-4);
        }
    }
}
