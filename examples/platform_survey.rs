//! Platform survey: where can you deploy DDnet inference, and what does
//! it cost? Combines a *measured* run of the hand kernels on this host
//! with the roofline predictions for the paper's six platforms
//! (Tables 4/5/7 in miniature).
//!
//! ```text
//! cargo run --release -p computecovid19 --example platform_survey
//! ```

use cc19_hetero::{ddnet_class_counts, predict_kernel_times, DEVICES};
use cc19_kernels::ddnet_exec::{run_ddnet_inference, DdnetShape};
use cc19_kernels::OptLevel;

fn main() {
    println!("DDnet inference cost survey (512x512 slice)\n");

    let counts = ddnet_class_counts(DdnetShape::paper());
    println!(
        "workload: {:.1} GFLOP conv, {:.1} GFLOP deconv, {:.1} GFLOP other",
        counts.conv.flops as f64 / 1e9,
        counts.deconv.flops as f64 / 1e9,
        counts.other.flops as f64 / 1e9
    );

    println!("\n{:<32} {:>10} {:>12} {:>14}", "platform", "total (s)", "bound by", "slices/minute");
    for dev in &DEVICES {
        let t = predict_kernel_times(dev, counts, OptLevel::RefactoredPrefetchUnrolled, true);
        let total = t.total();
        // crude bound classification: compare against a pure-compute estimate
        let compute = (counts.conv.flops + counts.deconv.flops) as f64 / dev.effective_flops(false);
        let bound = if compute > total * 0.6 { "compute" } else { "memory" };
        println!("{:<32} {:>10.3} {:>12} {:>14.0}", dev.name, total, bound, 60.0 / total);
    }

    println!("\nmeasured on this host (real kernels, 128x128 for speed):");
    for level in [OptLevel::Baseline, OptLevel::RefactoredPrefetchUnrolled] {
        let t = run_ddnet_inference(DdnetShape::reduced(128), level, 1);
        println!(
            "  {:<26} conv {:>7.3}s  deconv {:>7.3}s  other {:>7.3}s  total {:>7.3}s",
            level.label(),
            t.conv.as_secs_f64(),
            t.deconv.as_secs_f64(),
            t.other.as_secs_f64(),
            t.total().as_secs_f64()
        );
    }
    println!("\ntakeaway (paper §5.1.3): optimized-kernel performance tracks memory");
    println!("bandwidth; the scatter->gather deconvolution refactoring is the big win.");
}
