//~ path: crates/tensor/src/fixture.rs
//~ expect: determinism
// A wall-clock read inside a deterministic numeric crate must trip the
// determinism rule (and only that rule).

use std::time::Instant;

pub fn blocked_matmul_with_sneaky_timer(n: usize) -> f64 {
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += i as f64;
    }
    acc + t0.elapsed().as_secs_f64()
}
