//! Performance model of the paper's training cluster (§5.1.2): Virginia
//! Tech "Infer" nodes, one Nvidia T4 each, gloo over the cluster network.
//!
//! Table 3's runtime column is regenerated from this model: an epoch takes
//! `steps × (compute(local_batch) + allreduce(params))` where compute is
//! calibrated from the paper's single-node run (15:14:46 for 50 epochs ×
//! 5102 images) and the all-reduce cost follows the ring model
//! `2·(N−1)/N · bytes / bw + 2·(N−1) · latency` per step.

/// Interconnect characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-message latency, seconds.
    pub latency_s: f64,
    /// Link bandwidth, bytes/second.
    pub bandwidth_bps: f64,
}

impl Interconnect {
    /// 10 GbE with gloo's TCP overhead — the typical academic-cluster
    /// setup the paper's sub-linear scaling implies.
    pub fn gloo_10gbe() -> Self {
        Interconnect { latency_s: 150e-6, bandwidth_bps: 1.0e9 }
    }

    /// Ring all-reduce time for `bytes` across `n` ranks: 2(N−1) message
    /// rounds, each moving `bytes/N` per rank.
    pub fn ring_allreduce_time(&self, bytes: f64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let rounds = 2.0 * (n as f64 - 1.0);
        rounds * (self.latency_s + bytes / n as f64 / self.bandwidth_bps)
    }

    /// Parameter-server all-reduce time: rank 0 receives and then sends
    /// (N−1) full buffers serially through its single link.
    pub fn naive_allreduce_time(&self, bytes: f64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        2.0 * (n as f64 - 1.0) * (self.latency_s + bytes / self.bandwidth_bps)
    }
}

/// The cluster model used for Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterModel {
    /// Seconds one T4 takes for forward+backward+update on ONE image
    /// (calibrated from the paper's single-node row: 15h14m46s / (50
    /// epochs × 5102 images) ≈ 0.215 s/image).
    pub t4_seconds_per_image: f64,
    /// DDnet parameter count (bytes synchronized per step = 4×params).
    pub params: usize,
    /// Training-set size (images per epoch).
    pub images_per_epoch: usize,
    /// Interconnect.
    pub net: Interconnect,
}

impl ClusterModel {
    /// The paper's configuration (§3.1.2: 5102 training images; §5.1.2:
    /// single-node 50 epochs in 15:14:46).
    pub fn paper() -> Self {
        let single_node_secs = 15.0 * 3600.0 + 14.0 * 60.0 + 46.0;
        let images = 2286 + 2816;
        ClusterModel {
            t4_seconds_per_image: single_node_secs / (50.0 * images as f64),
            params: 175_000, // DDnet parameter count (see cc19-ddnet tests)
            images_per_epoch: images,
            net: Interconnect::gloo_10gbe(),
        }
    }

    /// Predicted wall time (seconds) for `epochs` of training on `nodes`
    /// nodes with a *global* batch of `batch` images.
    ///
    /// Each step processes `batch` images (`batch/nodes` per node in
    /// parallel) and ends with one gradient all-reduce.
    pub fn training_time(&self, nodes: usize, batch: usize, epochs: usize) -> f64 {
        assert!(nodes >= 1 && batch >= 1);
        let local_batch = (batch as f64 / nodes as f64).ceil();
        let steps_per_epoch = (self.images_per_epoch as f64 / batch as f64).ceil();
        let bytes = self.params as f64 * 4.0;
        let step_time = local_batch * self.t4_seconds_per_image
            + self.net.ring_allreduce_time(bytes, nodes);
        epochs as f64 * steps_per_epoch * step_time
    }

    /// Speedup of a configuration vs the single-node batch-1 run at equal
    /// epochs.
    pub fn speedup(&self, nodes: usize, batch: usize) -> f64 {
        self.training_time(1, 1, 50) / self.training_time(nodes, batch, 50)
    }
}

/// Format seconds as the paper's `hh:mm:ss`.
pub fn hhmmss(seconds: f64) -> String {
    let s = seconds.round() as u64;
    format!("{}:{:02}:{:02}", s / 3600, (s % 3600) / 60, s % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_matches_calibration() {
        let m = ClusterModel::paper();
        let t = m.training_time(1, 1, 50);
        let paper = 15.0 * 3600.0 + 14.0 * 60.0 + 46.0;
        assert!((t - paper).abs() / paper < 0.01, "t {t} vs paper {paper}");
    }

    #[test]
    fn table3_shape_four_nodes_batch_8() {
        // Paper: 4 nodes / batch 8 / 50 epochs -> 2:27:49 (~6.2x speedup).
        let m = ClusterModel::paper();
        let t = m.training_time(4, 8, 50);
        let paper = 2.0 * 3600.0 + 27.0 * 60.0 + 49.0;
        // model within 2x of the paper's measurement
        assert!((0.5..2.0).contains(&(t / paper)), "t {t} vs paper {paper}");
    }

    #[test]
    fn speedup_is_sublinear_in_nodes() {
        let m = ClusterModel::paper();
        // fixed global batch 8: 8 nodes are faster than 4, but not 2x
        let t4 = m.training_time(4, 8, 50);
        let t8 = m.training_time(8, 8, 50);
        assert!(t8 < t4);
        assert!(t8 > t4 / 2.0, "communication must keep scaling sublinear: {t4} -> {t8}");
    }

    #[test]
    fn doubling_epochs_doubles_time() {
        let m = ClusterModel::paper();
        let t50 = m.training_time(4, 8, 50);
        let t100 = m.training_time(4, 8, 100);
        assert!((t100 / t50 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_batches_cut_sync_overhead() {
        // 8 nodes, batch 32 vs batch 8: fewer steps, less sync per image.
        let m = ClusterModel::paper();
        assert!(m.training_time(8, 32, 50) < m.training_time(8, 8, 50));
    }

    #[test]
    fn ring_beats_naive_at_scale() {
        let net = Interconnect::gloo_10gbe();
        let bytes = 175_000.0 * 4.0;
        assert!(net.ring_allreduce_time(bytes, 8) < net.naive_allreduce_time(bytes, 8));
        assert_eq!(net.ring_allreduce_time(bytes, 1), 0.0);
    }

    #[test]
    fn hhmmss_formats() {
        assert_eq!(hhmmss(15.0 * 3600.0 + 14.0 * 60.0 + 46.0), "15:14:46");
        assert_eq!(hhmmss(59.4), "0:00:59");
        assert_eq!(hhmmss(3661.0), "1:01:01");
    }
}
