//! Volume file I/O: a small binary container for [`CtVolume`] — the
//! reproduction's stand-in for DICOM series storage, used by the `cc19`
//! CLI to pass studies between commands.
//!
//! Layout (little-endian): magic `CC19VOL1`, then the metadata record,
//! then `D·H·W` f32 HU voxels.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use cc19_ctsim::phantom::Severity;
use cc19_tensor::Tensor;

use crate::sources::{DataSource, Modality, ScanMeta};
use crate::volume::CtVolume;

const MAGIC: &[u8; 8] = b"CC19VOL1";

fn source_code(s: DataSource) -> u8 {
    match s {
        DataSource::Mayo => 0,
        DataSource::Bimcv => 1,
        DataSource::Midrc => 2,
        DataSource::Lidc => 3,
    }
}

fn source_from(code: u8) -> io::Result<DataSource> {
    Ok(match code {
        0 => DataSource::Mayo,
        1 => DataSource::Bimcv,
        2 => DataSource::Midrc,
        3 => DataSource::Lidc,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad source code")),
    })
}

fn severity_code(s: Option<Severity>) -> u8 {
    match s {
        None => 0,
        Some(Severity::Mild) => 1,
        Some(Severity::Moderate) => 2,
        Some(Severity::Severe) => 3,
    }
}

fn severity_from(code: u8) -> io::Result<Option<Severity>> {
    Ok(match code {
        0 => None,
        1 => Some(Severity::Mild),
        2 => Some(Severity::Moderate),
        3 => Some(Severity::Severe),
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad severity code")),
    })
}

/// Save a volume to a `.cc19v` file.
pub fn save_volume(vol: &CtVolume, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let d = vol.hu.dims();
    for &x in &[d[0] as u32, d[1] as u32, d[2] as u32] {
        w.write_all(&x.to_le_bytes())?;
    }
    w.write_all(&vol.meta.id.to_le_bytes())?;
    w.write_all(&[
        source_code(vol.meta.source),
        u8::from(vol.meta.positive),
        severity_code(vol.meta.severity),
        u8::from(vol.meta.circular_artifact),
        u8::from(vol.meta.has_projections),
    ])?;
    for v in vol.hu.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Load a volume written by [`save_volume`].
pub fn load_volume(path: &Path) -> io::Result<CtVolume> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a CC19 volume file"));
    }
    let mut u32buf = [0u8; 4];
    let mut dims = [0usize; 3];
    for d in &mut dims {
        r.read_exact(&mut u32buf)?;
        *d = u32::from_le_bytes(u32buf) as usize;
    }
    let voxels = dims[0]
        .checked_mul(dims[1])
        .and_then(|v| v.checked_mul(dims[2]))
        .filter(|&v| v <= (1 << 30))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "corrupt dimensions"))?;
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let id = u64::from_le_bytes(u64buf);
    let mut flags = [0u8; 5];
    r.read_exact(&mut flags)?;
    let mut bytes = vec![0u8; voxels * 4];
    r.read_exact(&mut bytes)?;
    let data: Vec<f32> =
        bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    let hu = Tensor::from_vec(dims.to_vec(), data)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(CtVolume {
        hu,
        meta: ScanMeta {
            id,
            source: source_from(flags[0])?,
            modality: Modality::Ct,
            positive: flags[1] != 0,
            severity: severity_from(flags[2])?,
            slices: dims[0],
            circular_artifact: flags[3] != 0,
            has_projections: flags[4] != 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cc19_vol_io");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_voxels_and_meta() {
        let meta = ScanMeta {
            id: 4242,
            source: DataSource::Bimcv,
            modality: Modality::Ct,
            positive: true,
            severity: Some(Severity::Moderate),
            slices: 4,
            circular_artifact: true,
            has_projections: false,
        };
        let vol = CtVolume::synthesize(&meta, 32, 4).unwrap();
        let path = tmp("v.cc19v");
        save_volume(&vol, &path).unwrap();
        let loaded = load_volume(&path).unwrap();
        assert_eq!(loaded.hu.dims(), vol.hu.dims());
        assert_eq!(loaded.hu.data(), vol.hu.data());
        assert_eq!(loaded.meta.id, 4242);
        assert_eq!(loaded.meta.source, DataSource::Bimcv);
        assert!(loaded.meta.positive);
        assert_eq!(loaded.meta.severity, Some(Severity::Moderate));
        assert!(loaded.meta.circular_artifact);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("bad.cc19v");
        std::fs::write(&path, b"definitely not a volume").unwrap();
        assert!(load_volume(&path).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let meta = ScanMeta {
            id: 1,
            source: DataSource::Lidc,
            modality: Modality::Ct,
            positive: false,
            severity: None,
            slices: 2,
            circular_artifact: false,
            has_projections: false,
        };
        let vol = CtVolume::synthesize(&meta, 16, 2).unwrap();
        let path = tmp("trunc.cc19v");
        save_volume(&vol, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
        assert!(load_volume(&path).is_err());
    }
}
