//! The patient timeline: scans in, delta reports out.
//!
//! A [`PatientSeries`] owns a diagnosis [`Framework`] and a
//! [`StudyCache`]. Each [`PatientSeries::add_scan`] call content-
//! addresses the submission, serves it from the cache when possible
//! (skipping the enhance/segment/classify stages entirely), quantifies
//! the lesion burden in mL, and emits a [`DeltaReport`] against the
//! previous scan — "burden 12% → 7%", trend direction, and whether the
//! result was computed or replayed from cache.
//!
//! Scans can also ride through the serving layer
//! ([`PatientSeries::add_scan_served`] via a single-node broker,
//! [`PatientSeries::add_scan_clustered`] via the sharded cluster): the
//! served diagnosis is bit-identical to the direct path, so the
//! resulting timeline exports match byte for byte. Reports carry no
//! wall-clock fields — the CSV/JSON exports are deterministic and
//! byte-stable across runs.

use std::sync::Arc;

use cc19_data::volume::CtVolume;
use cc19_obs::{HistogramHandle, Registry, SpanStatus, Timer, TraceCtx};
use cc19_serve::{Client, ClusterClient, ServeRequest};
use cc19_tensor::{Tensor, TensorError};
use computecovid19::framework::{Diagnosis, Framework, Scratch};
use computecovid19::monitoring::Trend;

use crate::burden::{quantify_masked, LesionBurden};
use crate::cache::StudyCache;
use crate::digest::StudyKey;
use crate::Result;

/// How a scan's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The pipeline stages ran (and the result was memoized).
    Computed,
    /// The result was replayed from the content-addressed cache.
    CacheHit,
}

impl Provenance {
    /// Stable lowercase tag for exports.
    pub fn tag(&self) -> &'static str {
        match self {
            Provenance::Computed => "computed",
            Provenance::CacheHit => "cache_hit",
        }
    }
}

/// Stable lowercase tag for a trend.
fn trend_tag(t: Trend) -> &'static str {
    match t {
        Trend::Improving => "improving",
        Trend::Stable => "stable",
        Trend::Progressing => "progressing",
    }
}

/// One scan on the timeline: burden, diagnosis, and provenance.
#[derive(Debug, Clone)]
pub struct ScanRecord {
    /// Caller-supplied label ("day 0", an accession id, …).
    pub label: String,
    /// Quantified lesion burden (mL, physical units).
    pub burden: LesionBurden,
    /// The pipeline diagnosis (cached replays are bit-identical to the
    /// original computation, timings included).
    pub diagnosis: Diagnosis,
    /// Computed or replayed from cache.
    pub provenance: Provenance,
    /// The scan's content address.
    pub key: StudyKey,
}

/// The delta between a scan and its predecessor on the timeline.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// This scan's label.
    pub label: String,
    /// This scan's burden.
    pub burden: LesionBurden,
    /// COVID-positive probability of this scan.
    pub probability: f64,
    /// Decision at the series threshold.
    pub positive: bool,
    /// Computed or replayed from cache.
    pub provenance: Provenance,
    /// Previous scan's label (None for the baseline scan).
    pub prev_label: Option<String>,
    /// Previous scan's lesion fraction.
    pub prev_fraction: Option<f64>,
    /// Previous scan's lesion volume (mL).
    pub prev_lesion_ml: Option<f64>,
    /// Trend vs the previous scan (None for the baseline scan).
    pub trend: Option<Trend>,
}

impl DeltaReport {
    /// Lesion-volume change vs the previous scan (mL); 0 for baseline.
    pub fn delta_ml(&self) -> f64 {
        self.burden.lesion_ml - self.prev_lesion_ml.unwrap_or(self.burden.lesion_ml)
    }

    /// Human-readable one-liner, e.g.
    /// `day 5: burden 12.4% -> 7.1% (improving, cache_hit)`.
    pub fn summary(&self) -> String {
        let pct = self.burden.fraction() * 100.0;
        match (self.prev_fraction, self.trend) {
            (Some(prev), Some(trend)) => format!(
                "{}: burden {:.1}% -> {:.1}% ({}, {})",
                self.label,
                prev * 100.0,
                pct,
                trend_tag(trend),
                self.provenance.tag()
            ),
            _ => format!(
                "{}: burden {:.1}% (baseline, {})",
                self.label,
                pct,
                self.provenance.tag()
            ),
        }
    }
}

/// How a scan's diagnosis is produced on a cache miss.
enum Route<'a> {
    /// Classify in-process on the series' own framework.
    Direct,
    /// Submit through a single-node serving broker.
    Served(&'a Client),
    /// Submit through the sharded serve cluster.
    Clustered(&'a ClusterClient),
}

/// Longitudinal monitoring of one patient over a cached pipeline.
pub struct PatientSeries {
    fw: Framework,
    threshold: f64,
    min_delta: f64,
    cache: StudyCache,
    scratch: Scratch,
    registry: Arc<Registry>,
    burden_ml: HistogramHandle,
    delta_seconds: HistogramHandle,
    records: Vec<ScanRecord>,
    reports: Vec<DeltaReport>,
}

impl PatientSeries {
    /// Series over `fw` at the given decision threshold, with a study
    /// cache of `cache_budget` bytes, counting on the global registry.
    pub fn new(fw: Framework, threshold: f64, cache_budget: usize) -> Self {
        Self::with_registry(fw, threshold, cache_budget, cc19_obs::global_arc())
    }

    /// [`PatientSeries::new`] on an injected `cc19-obs` registry (the
    /// cache counters, burden histogram, and delta timer all land
    /// there, and the timer reads the registry's clock).
    pub fn with_registry(
        fw: Framework,
        threshold: f64,
        cache_budget: usize,
        registry: Arc<Registry>,
    ) -> Self {
        PatientSeries {
            fw,
            threshold,
            min_delta: 0.01,
            cache: StudyCache::with_registry(cache_budget, Arc::clone(&registry)),
            scratch: Scratch::new(),
            burden_ml: registry.histogram("monitor_burden_ml"),
            delta_seconds: registry.histogram("monitor_delta_seconds"),
            registry,
            records: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Minimum absolute lesion-fraction change that counts as a trend
    /// (smaller deltas report [`Trend::Stable`]); default 0.01.
    pub fn with_min_delta(mut self, min_delta: f64) -> Self {
        self.min_delta = min_delta;
        self
    }

    /// The scans recorded so far, in submission order.
    pub fn records(&self) -> &[ScanRecord] {
        &self.records
    }

    /// The delta reports emitted so far, in submission order.
    pub fn reports(&self) -> &[DeltaReport] {
        &self.reports
    }

    /// The underlying study cache (stats, size).
    pub fn cache(&self) -> &StudyCache {
        &self.cache
    }

    /// The framework the series diagnoses with.
    pub fn framework(&self) -> &Framework {
        &self.fw
    }

    /// Submit the next scan of the timeline; diagnosis runs in-process.
    pub fn add_scan(&mut self, label: impl Into<String>, vol: &CtVolume) -> Result<DeltaReport> {
        self.add_scan_routed(label.into(), vol, Route::Direct)
    }

    /// Submit the next scan through a serving broker: on a cache miss
    /// the diagnosis is produced by the server (bit-identical to the
    /// direct path) while enhancement and segmentation artifacts are
    /// captured locally for burden quantification and memoization.
    pub fn add_scan_served(
        &mut self,
        label: impl Into<String>,
        vol: &CtVolume,
        client: &Client,
    ) -> Result<DeltaReport> {
        self.add_scan_routed(label.into(), vol, Route::Served(client))
    }

    /// [`PatientSeries::add_scan_served`] through the sharded serve
    /// cluster; the scan's volume digest is used as the routing study
    /// id, so resubmissions shard identically.
    pub fn add_scan_clustered(
        &mut self,
        label: impl Into<String>,
        vol: &CtVolume,
        client: &ClusterClient,
    ) -> Result<DeltaReport> {
        self.add_scan_routed(label.into(), vol, Route::Clustered(client))
    }

    fn add_scan_routed(
        &mut self,
        label: String,
        vol: &CtVolume,
        route: Route<'_>,
    ) -> Result<DeltaReport> {
        // Every scan gets its own trace rooted at `monitor.scan`; the
        // cache probe, pipeline stages, burden quantification, and any
        // serve/cluster hand-off all land in the same span tree
        // (DESIGN.md §17). Child spans tile the root — each starts
        // where the previous ended — so critical-path segments sum to
        // the scan's end-to-end latency exactly.
        let t0 = self.registry.now_ns();
        let trace = self.registry.trace_begin(None);
        let result = self.scan_traced(label, vol, route, trace, t0);
        let t_end = self.registry.now_ns();
        let status = if result.is_ok() { SpanStatus::Ok } else { SpanStatus::Failed };
        self.registry.trace_record(trace, "monitor.scan", t0, t_end.max(t0), status);
        result
    }

    fn scan_traced(
        &mut self,
        label: String,
        vol: &CtVolume,
        route: Route<'_>,
        trace: TraceCtx,
        t0: u64,
    ) -> Result<DeltaReport> {
        // Times the whole submission (hit or miss) into
        // monitor_delta_seconds on the registry clock.
        let _timer = Timer::start(self.registry.clock(), self.delta_seconds.clone());
        vol.hu.shape().expect_rank(3)?;
        let key = StudyKey::for_study(&self.fw, &vol.hu, self.threshold);
        let spacing = vol.voxel_spacing();

        let (burden, diagnosis, provenance) = match self.cache.get(&key) {
            Some(hit) => {
                let t_cache = self.registry.now_ns();
                self.registry.trace_child(trace, "monitor.cache", t0, t_cache);
                // Recompute burden from the memoized artifacts — the
                // same inputs through the same arithmetic, so the
                // result is bit-identical to the original pass.
                let burden = quantify_masked(&hit.enhanced_hu, &hit.mask, spacing)?;
                let t_b = self.registry.now_ns();
                self.registry.trace_child(trace, "monitor.burden", t_cache, t_b);
                (burden, hit.diagnosis, Provenance::CacheHit)
            }
            None => {
                let t_cache = self.registry.now_ns();
                self.registry.trace_child(trace, "monitor.cache", t0, t_cache);
                let enh = self.fw.run_enhance(&vol.hu, &mut self.scratch)?;
                let t_e = self.registry.now_ns();
                self.registry.trace_child(trace, "monitor.enhance", t_cache, t_e);
                let (seg, capture) = self.fw.run_segment_capturing(enh, &mut self.scratch)?;
                let t_s = self.registry.now_ns();
                self.registry.trace_child(trace, "monitor.segment", t_e, t_s);
                // Reserve the classify span up front so a served or
                // clustered submission can link *under* it: the remote
                // request's subtree nests inside `monitor.classify`
                // instead of widening the root's direct children.
                let cls = self.registry.trace_reserve(trace);
                let diagnosis = match route {
                    Route::Direct => self.fw.run_classify(seg, self.threshold, &mut self.scratch)?,
                    Route::Served(client) => {
                        self.scratch.recycle(seg.masked);
                        submit_serve(client, &vol.hu, cls)?
                    }
                    Route::Clustered(client) => {
                        self.scratch.recycle(seg.masked);
                        submit_cluster(client, key.volume, &vol.hu, cls)?
                    }
                };
                let t_c = self.registry.now_ns();
                self.registry.trace_record(cls, "monitor.classify", t_s, t_c, SpanStatus::Ok);
                let burden = quantify_masked(&capture.enhanced_hu, &capture.mask, spacing)?;
                let t_b = self.registry.now_ns();
                self.registry.trace_child(trace, "monitor.burden", t_c, t_b);
                self.cache.insert(key, &capture.enhanced_hu, &capture.mask, diagnosis.clone())?;
                let t_i = self.registry.now_ns();
                self.registry.trace_child(trace, "monitor.cache_insert", t_b, t_i);
                self.scratch.recycle(capture.enhanced_hu);
                self.scratch.recycle(capture.mask);
                (burden, diagnosis, Provenance::Computed)
            }
        };

        self.burden_ml.observe(burden.lesion_ml);
        let prev = self.records.last();
        let trend = prev.map(|p| {
            let (was, now) = (p.burden.fraction(), burden.fraction());
            if now > was + self.min_delta {
                Trend::Progressing
            } else if now < was - self.min_delta {
                Trend::Improving
            } else {
                Trend::Stable
            }
        });
        let report = DeltaReport {
            label: label.clone(),
            burden,
            probability: diagnosis.probability,
            positive: diagnosis.positive,
            provenance,
            prev_label: prev.map(|p| p.label.clone()),
            prev_fraction: prev.map(|p| p.burden.fraction()),
            prev_lesion_ml: prev.map(|p| p.burden.lesion_ml),
            trend,
        };
        self.records.push(ScanRecord { label, burden, diagnosis, provenance, key });
        self.reports.push(report.clone());
        Ok(report)
    }

    /// The timeline as deterministic CSV (no wall-clock fields; floats
    /// in shortest-round-trip form, so reruns are byte-identical).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scan,label,provenance,lung_ml,lesion_ml,fraction,prev_fraction,delta_ml,trend,probability,positive\n",
        );
        for (i, r) in self.reports.iter().enumerate() {
            let trend = r.trend.map(trend_tag).unwrap_or("");
            let prev = r.prev_fraction.map(|f| format!("{f:?}")).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{:?},{:?},{:?},{},{:?},{},{:?},{}\n",
                i,
                r.label,
                r.provenance.tag(),
                r.burden.lung_ml,
                r.burden.lesion_ml,
                r.burden.fraction(),
                prev,
                r.delta_ml(),
                trend,
                r.probability,
                r.positive,
            ));
        }
        out
    }

    /// The timeline as deterministic JSON (same fields as the CSV).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let trend = r
                .trend
                .map(|t| format!("\"{}\"", trend_tag(t)))
                .unwrap_or_else(|| "null".into());
            let prev = r
                .prev_fraction
                .map(|f| format!("{f:?}"))
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "  {{\"scan\": {}, \"label\": \"{}\", \"provenance\": \"{}\", \
                 \"lung_ml\": {:?}, \"lesion_ml\": {:?}, \"fraction\": {:?}, \
                 \"prev_fraction\": {}, \"delta_ml\": {:?}, \"trend\": {}, \
                 \"probability\": {:?}, \"positive\": {}}}",
                i,
                r.label.replace('"', "\\\""),
                r.provenance.tag(),
                r.burden.lung_ml,
                r.burden.lesion_ml,
                r.burden.fraction(),
                prev,
                r.delta_ml(),
                trend,
                r.probability,
                r.positive,
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// Submit one volume through a serving broker and wait for its reply.
/// The scan's classify-span context links the served request's span
/// tree under the monitor trace when broker and monitor share a
/// registry (a foreign registry records its own subtree instead).
fn submit_serve(client: &Client, vol_hu: &Tensor, link: TraceCtx) -> Result<Diagnosis> {
    let pending = client
        .submit_traced(ServeRequest::routine(vol_hu.clone()), Some(link))
        .map_err(|r| TensorError::Incompatible(format!("serve admission rejected: {r:?}")))?;
    let resp = pending
        .wait()
        .ok_or_else(|| TensorError::Incompatible("serving reply channel closed".into()))?;
    resp.result.map_err(|e| TensorError::Incompatible(format!("served stage failed: {e}")))
}

/// Submit one volume through the sharded cluster and wait for its reply,
/// linking the router-side request trace under the scan's classify span.
fn submit_cluster(
    client: &ClusterClient,
    study_id: u64,
    vol_hu: &Tensor,
    link: TraceCtx,
) -> Result<Diagnosis> {
    let pending = client
        .submit_traced(study_id, ServeRequest::routine(vol_hu.clone()), Some(link))
        .map_err(|r| TensorError::Incompatible(format!("cluster admission rejected: {r:?}")))?;
    let resp = pending
        .wait()
        .ok_or_else(|| TensorError::Incompatible("cluster reply channel closed".into()))?;
    resp.result.map_err(|e| TensorError::Incompatible(format!("clustered stage failed: {e}")))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use cc19_ctsim::phantom::Severity;
    use cc19_data::progression::{progression_volume, ProgressionCourse};

    const PATIENT: u64 = 0x17;

    fn series() -> PatientSeries {
        let fw = Framework::untrained_reduced(PATIENT);
        PatientSeries::with_registry(fw, 0.5, 64 << 20, Arc::new(Registry::new()))
    }

    fn scan(t: usize) -> CtVolume {
        let course = ProgressionCourse::worsening(4);
        progression_volume(PATIENT, t, &course, 32, 4, Severity::Moderate).unwrap()
    }

    #[test]
    fn baseline_then_delta() {
        let mut s = series();
        let r0 = s.add_scan("day 0", &scan(0)).unwrap();
        assert!(r0.trend.is_none());
        assert_eq!(r0.provenance, Provenance::Computed);
        assert!(r0.burden.lesion_ml > 0.0);
        let r1 = s.add_scan("day 5", &scan(3)).unwrap();
        assert_eq!(r1.trend, Some(Trend::Progressing));
        assert!(r1.delta_ml() > 0.0);
        assert_eq!(r1.prev_label.as_deref(), Some("day 0"));
        assert!(r1.summary().contains("progressing"));
        assert_eq!(s.records().len(), 2);
    }

    #[test]
    fn resubmission_hits_the_cache_bit_identically() {
        let mut s = series();
        let r0 = s.add_scan("day 0", &scan(1)).unwrap();
        let r1 = s.add_scan("day 0 again", &scan(1)).unwrap();
        assert_eq!(r1.provenance, Provenance::CacheHit);
        assert_eq!(
            r0.probability.to_bits(),
            r1.probability.to_bits(),
            "cached probability must be bit-identical"
        );
        assert_eq!(r0.burden.lesion_ml.to_bits(), r1.burden.lesion_ml.to_bits());
        assert_eq!(r0.burden.lung_ml.to_bits(), r1.burden.lung_ml.to_bits());
        assert_eq!(s.cache().stats().0, 1);
        // identical scans => stable trend
        assert_eq!(r1.trend, Some(Trend::Stable));
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let mut s = series();
            s.add_scan("t0", &scan(0)).unwrap();
            s.add_scan("t1", &scan(2)).unwrap();
            s.add_scan("t1-again", &scan(2)).unwrap();
            (s.to_csv(), s.to_json())
        };
        let (csv_a, json_a) = build();
        let (csv_b, json_b) = build();
        assert_eq!(csv_a, csv_b);
        assert_eq!(json_a, json_b);
        assert!(csv_a.lines().count() == 4);
        assert!(csv_a.contains("cache_hit"));
        assert!(json_a.contains("\"provenance\": \"cache_hit\""));
    }

    #[test]
    fn wrong_rank_is_rejected() {
        let mut s = series();
        let bad = CtVolume {
            hu: Tensor::zeros([8, 8]),
            meta: scan(0).meta,
        };
        assert!(s.add_scan("bad", &bad).is_err());
    }
}
