//! Poison-tolerant wrappers over `std::sync` locking.
//!
//! The serve dispatch path must never panic (cc19-lint panic-surface
//! rule): a worker thread that dies mid-study must degrade to a failed
//! response for that study, not take the broker lock's poison flag down
//! with it and cascade panics into every other client. All state guarded
//! by these locks is plain owned data (queues, counters, histograms)
//! that remains structurally valid wherever a panicking holder stopped,
//! so recovering the inner value is always sound here.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// `Mutex::lock` that recovers from poisoning instead of panicking.
pub(crate) fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait` that recovers from poisoning instead of panicking.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout` that recovers from poisoning instead of
/// panicking.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur).unwrap_or_else(PoisonError::into_inner)
}
