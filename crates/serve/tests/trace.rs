//! End-to-end distributed-tracing tests (DESIGN.md §17), wired into
//! `scripts/tier1.sh` as the request-tracing stage.
//!
//! The single-node test injects an auto-tick [`ManualClock`] everywhere
//! (registry and framework replicas), so one request's span tree is
//! exactly assertable: parentage, stage-span tiling, and the
//! critical-path invariant that segments sum to the end-to-end latency
//! with no residual.
//!
//! The cluster test runs requests through a 3-worker cluster and
//! asserts the stitched tree — router root → dispatch span → grafted
//! worker subtree — plus a chaos phase where a scheduled worker kill
//! must leave the aborted dispatch span marked `redispatched` rather
//! than dropping it. Under `CC19_OBS_DETERMINISTIC=1` (how tier-1 runs
//! this file, twice) both phases' trees are byte-identical run over
//! run and are written to `results/trace_smoke.jsonl` for the
//! byte-compare; without the flag the worker registries and framework
//! clocks carry wall-clock noise, so no artifact is written.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cc19_dist::{FaultConfig, FaultPlan};
use cc19_obs::trace::{self, SpanRecord};
use cc19_obs::{Clock, ManualClock, Registry, SpanStatus};
use cc19_serve::{
    BatchPolicy, ClusterCfg, ClusterMetrics, ServeCluster, ServeMetrics, ServeRequest, Server,
    ServerCfg,
};
use computecovid19::framework::Framework;

const MODEL_SEED: u64 = 42;
const TICK: u64 = 1_000;

fn results_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results").join(name)
}

fn deterministic_mode() -> bool {
    std::env::var("CC19_OBS_DETERMINISTIC").map(|v| v == "1").unwrap_or(false)
}

fn volume(seed: u64) -> cc19_tensor::Tensor {
    let mut rng = cc19_tensor::rng::Xorshift::new(0x7_12ACE ^ seed);
    rng.uniform_tensor([4, 32, 32], -1000.0, 400.0)
}

fn sorted_spans(reg: &Registry) -> Vec<SpanRecord> {
    let mut spans = reg.trace_records();
    spans.sort_by_key(|r| (r.trace_id, r.span_id));
    spans
}

/// One sequential request through a single-node server whose registry
/// and framework replicas all read the same auto-tick manual clock.
fn run_single_node() -> (String, Vec<SpanRecord>) {
    let clock: Arc<dyn Clock> = Arc::new(ManualClock::with_tick(TICK));
    let reg = Arc::new(Registry::with_clock(Arc::clone(&clock)));
    let metrics = ServeMetrics::with_registry(Arc::clone(&reg));
    let cfg = ServerCfg {
        batch: BatchPolicy { max_batch: 1, max_delay: Duration::ZERO },
        ..ServerCfg::default()
    };
    let fw_clock = Arc::clone(&clock);
    let server = Server::start_with_metrics(
        cfg,
        move || Framework::untrained_reduced(MODEL_SEED).with_clock(Arc::clone(&fw_clock)),
        metrics,
    )
    .expect("server starts");
    let client = server.client();
    let resp = client
        .submit(ServeRequest::routine(volume(1)))
        .expect("admission")
        .wait()
        .expect("reply");
    resp.result.expect("diagnosis");
    server.shutdown();
    (trace::tree_jsonl(&reg), sorted_spans(&reg))
}

#[test]
fn single_node_span_tree_tiles_and_reruns_byte_identical() {
    let (jsonl, spans) = run_single_node();

    // Exactly one trace: the root plus five tiled stage children, span
    // ids in causal order.
    assert_eq!(spans.len(), 6, "unexpected span count:\n{jsonl}");
    let root = &spans[0];
    assert_eq!((root.span_id, root.parent_id, root.path.as_str()), (1, 0, "serve.request"));
    assert_eq!(root.status, SpanStatus::Ok);
    let stages = ["serve.queue", "serve.batch", "serve.enhance", "serve.segment", "serve.classify"];
    let mut cursor = root.start_ns;
    for (i, want) in stages.iter().enumerate() {
        let s = &spans[i + 1];
        assert_eq!(s.path, *want);
        assert_eq!(s.parent_id, root.span_id, "{want} must parent under the root");
        assert_eq!(s.span_id, 2 + i as u64, "span ids follow causal order");
        assert_eq!(s.start_ns, cursor, "{want} must start where the previous span ended");
        assert!(s.end_ns >= s.start_ns);
        cursor = s.end_ns;
    }
    assert_eq!(cursor, root.end_ns, "the last stage span must end the request");

    // Critical-path invariant: tiled children leave no residual, so the
    // segment decomposition sums exactly to the end-to-end latency.
    let (e2e, segs) = trace::trace_segments(&spans, root.trace_id).expect("completed trace");
    assert!(e2e > 0, "auto-tick clock must give nonzero latency");
    assert_eq!(segs.values().sum::<u64>(), e2e);
    assert!(!segs.contains_key("other"), "tiled stage spans must leave no residual: {segs:?}");

    // Registry-clock timestamps and per-trace span-id sequences make the
    // export deterministic: a fresh identical run is byte-identical.
    let (again, _) = run_single_node();
    assert_eq!(jsonl, again, "single-node trace export must be reproducible");
}

/// Requests through a 3-worker cluster against a router registry on an
/// auto-tick manual clock; returns the stitched tree export.
fn run_cluster(studies: u64, kill: Option<(usize, usize)>) -> (String, Vec<SpanRecord>) {
    let reg = Arc::new(Registry::with_clock(Arc::new(ManualClock::with_tick(TICK))));
    let metrics = ClusterMetrics::with_registry(Arc::clone(&reg));
    let cfg = ClusterCfg {
        workers: 3,
        worker: ServerCfg {
            batch: BatchPolicy { max_batch: 1, max_delay: Duration::ZERO },
            ..ServerCfg::default()
        },
        faults: FaultPlan::seeded(1234, FaultConfig { kill, ..FaultConfig::clean() }),
        ..ClusterCfg::default()
    };
    let cluster =
        ServeCluster::start_with_metrics(cfg, || Framework::untrained_reduced(MODEL_SEED), metrics)
            .expect("cluster starts");
    let client = cluster.client();
    for study in 0..studies {
        let resp = client
            .submit(study, ServeRequest::routine(volume(study)))
            .expect("admission")
            .wait()
            .expect("reply");
        resp.result.expect("diagnosis");
    }
    let metrics = cluster.shutdown();
    if let Some((_, _)) = kill {
        let snap = metrics.snapshot();
        assert_eq!(snap.worker_deaths, 1, "the scheduled kill must fire");
        assert!(snap.redispatched >= 1, "the orphan must be re-dispatched");
        assert_eq!(snap.completed, studies, "a study was lost to the kill");
    }
    (trace::tree_jsonl(&reg), sorted_spans(&reg))
}

fn children(spans: &[SpanRecord], trace_id: u64, parent: u64) -> Vec<&SpanRecord> {
    spans.iter().filter(|r| r.trace_id == trace_id && r.parent_id == parent).collect()
}

/// Assert one request's stitched shape: router root → dispatch span(s)
/// → exactly one grafted worker subtree with the five stage spans.
/// Returns how many aborted (`redispatched`) dispatch spans the trace
/// carries.
fn assert_stitched(spans: &[SpanRecord], root: &SpanRecord) -> usize {
    let wires = children(spans, root.trace_id, root.span_id);
    assert!(!wires.is_empty(), "trace {} has no dispatch span", root.trace_id);
    let mut aborted = 0;
    let mut grafted = 0;
    for wire in &wires {
        assert_eq!(wire.path, "serve.cluster.wire");
        match wire.status {
            SpanStatus::Redispatched => {
                aborted += 1;
                // The worker died with these spans; the aborted attempt
                // must still be in the tree, just childless.
                assert!(children(spans, root.trace_id, wire.span_id).is_empty());
            }
            SpanStatus::Ok => {
                let subtree = children(spans, root.trace_id, wire.span_id);
                assert_eq!(subtree.len(), 1, "one grafted worker root per dispatch");
                let wroot = subtree[0];
                assert_eq!(wroot.path, "serve.request");
                let mut paths: Vec<&str> = children(spans, root.trace_id, wroot.span_id)
                    .iter()
                    .map(|r| r.path.as_str())
                    .collect();
                paths.sort_unstable();
                assert_eq!(
                    paths,
                    ["serve.batch", "serve.classify", "serve.enhance", "serve.queue", "serve.segment"],
                    "worker subtree must carry the five stage spans"
                );
                grafted += 1;
            }
            SpanStatus::Failed => panic!("unexpected failed dispatch in trace {}", root.trace_id),
        }
    }
    assert_eq!(grafted, 1, "exactly one dispatch succeeds per request");
    aborted
}

#[test]
fn cluster_trees_stitch_and_mark_killed_attempts_redispatched() {
    const STUDIES: u64 = 12;

    // Healthy phase: every request yields one stitched tree whose
    // segments sum to its end-to-end latency.
    let (healthy_jsonl, spans) = run_cluster(STUDIES, None);
    let roots: Vec<&SpanRecord> =
        spans.iter().filter(|r| r.parent_id == 0 && r.path == "serve.request").collect();
    assert_eq!(roots.len() as u64, STUDIES, "one root per clustered request");
    for root in &roots {
        assert_eq!(root.status, SpanStatus::Ok);
        assert_eq!(assert_stitched(&spans, root), 0, "no aborted dispatch without a kill");
        let (e2e, segs) = trace::trace_segments(&spans, root.trace_id).expect("completed trace");
        assert_eq!(segs.values().sum::<u64>(), e2e, "segments must sum to end-to-end");
    }

    // Chaos phase: worker 1 silently dies on its third dispatch. The
    // orphaned request's aborted dispatch span survives as
    // `redispatched` and its retry carries the full worker subtree.
    let (chaos_jsonl, spans) = run_cluster(STUDIES, Some((1, 2)));
    let roots: Vec<&SpanRecord> =
        spans.iter().filter(|r| r.parent_id == 0 && r.path == "serve.request").collect();
    assert_eq!(roots.len() as u64, STUDIES, "the kill must not lose a trace");
    let aborted: usize = roots.iter().map(|root| assert_stitched(&spans, root)).sum();
    assert!(aborted >= 1, "the killed worker's dispatch span must be marked redispatched");

    if !deterministic_mode() {
        return; // wall-clock worker registries: exports not reproducible
    }

    // Deterministic mode: both phases must replay byte-identically, and
    // the concatenated export is tier-1's byte-compare artifact.
    let (healthy_again, _) = run_cluster(STUDIES, None);
    assert_eq!(healthy_jsonl, healthy_again, "healthy cluster trace must be reproducible");
    let (chaos_again, _) = run_cluster(STUDIES, Some((1, 2)));
    assert_eq!(chaos_jsonl, chaos_again, "chaos cluster trace must be reproducible");
    std::fs::write(results_path("trace_smoke.jsonl"), healthy_jsonl + &chaos_jsonl)
        .expect("write trace smoke artifact");
}
