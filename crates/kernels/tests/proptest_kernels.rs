//! Property-based tests: all kernel optimization stages agree with the
//! `cc19-tensor` reference implementation on random shapes — the safety
//! net that lets the optimized kernels be trusted in the benchmarks.

use proptest::prelude::*;

use cc19_kernels::conv::{conv2d, ConvShape};
use cc19_kernels::deconv::{deconv2d, out_h, out_w};
use cc19_kernels::OptLevel;
use cc19_tensor::conv::{conv2d as ref_conv, conv_transpose2d, Conv2dSpec};
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

fn case(
    seed: u64,
    s: ConvShape,
    transpose: bool,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = Xorshift::new(seed.wrapping_mul(31) + 17);
    let input: Vec<f32> = (0..s.cin * s.h * s.w).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let wlen = s.cin * s.cout * s.k * s.k;
    let weight: Vec<f32> = (0..wlen).map(|_| rng.uniform(-0.5, 0.5)).collect();
    let bias: Vec<f32> = (0..s.cout).map(|_| rng.uniform(-0.2, 0.2)).collect();
    let _ = transpose;
    (input, weight, bias)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every conv optimization stage equals the reference conv.
    #[test]
    fn conv_stages_agree(
        seed in 0u64..1000,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 5usize..12,
        w in 5usize..12,
        kidx in 0usize..3,
    ) {
        let (k, pad) = [(1usize, 0usize), (5, 2), (3, 1)][kidx];
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let s = ConvShape { cin, cout, h, w, k, pad };
        let (input, weight, bias) = case(seed, s, false);

        let x = Tensor::from_vec([1, cin, h, w], input.clone()).unwrap();
        let wt = Tensor::from_vec([cout, cin, k, k], weight.clone()).unwrap();
        let b = Tensor::from_vec([cout], bias.clone()).unwrap();
        let expect = ref_conv(&x, &wt, Some(&b), Conv2dSpec { stride: 1, padding: pad })
            .unwrap()
            .into_vec();

        for level in OptLevel::ALL {
            let got = conv2d(level, &input, &weight, &bias, s);
            prop_assert_eq!(got.len(), expect.len());
            for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                prop_assert!((g - e).abs() < 1e-3, "{:?} idx {}: {} vs {}", level, i, g, e);
            }
        }
    }

    /// Every deconv stage — including the atomic scatter baseline — equals
    /// the reference transposed convolution.
    #[test]
    fn deconv_stages_agree(
        seed in 0u64..1000,
        cin in 1usize..4,
        cout in 1usize..4,
        h in 4usize..10,
        w in 4usize..10,
        kidx in 0usize..3,
    ) {
        let (k, pad) = [(1usize, 0usize), (5, 2), (3, 1)][kidx];
        prop_assume!(h + k > 1 + 2 * pad && w + k > 1 + 2 * pad);
        let s = ConvShape { cin, cout, h, w, k, pad };
        let (input, weight, bias) = case(seed, s, true);

        let x = Tensor::from_vec([1, cin, h, w], input.clone()).unwrap();
        let wt = Tensor::from_vec([cin, cout, k, k], weight.clone()).unwrap();
        let b = Tensor::from_vec([cout], bias.clone()).unwrap();
        let expect = conv_transpose2d(&x, &wt, Some(&b), Conv2dSpec { stride: 1, padding: pad })
            .unwrap()
            .into_vec();
        prop_assert_eq!(expect.len(), s.cout * out_h(s) * out_w(s));

        for level in OptLevel::ALL {
            let got = deconv2d(level, &input, &weight, &bias, s);
            prop_assert_eq!(got.len(), expect.len());
            for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                prop_assert!((g - e).abs() < 1e-3, "{:?} idx {}: {} vs {}", level, i, g, e);
            }
        }
    }

    /// Analytic op counts scale exactly linearly in spatial area.
    #[test]
    fn counts_linear_in_area(h in 2u64..64, w in 2u64..64, c in 1u64..8) {
        use cc19_kernels::count::conv_layer_counts;
        let a = conv_layer_counts(h, w, c, c, 5);
        let b = conv_layer_counts(2 * h, w, c, c, 5);
        prop_assert_eq!(b.loads, 2 * a.loads);
        prop_assert_eq!(b.stores, 2 * a.stores);
        prop_assert_eq!(b.flops, 2 * a.flops);
    }
}
