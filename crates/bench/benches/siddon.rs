//! Siddon forward projection throughput (rays/second), fan and parallel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cc19_ctsim::geometry::{FanBeamGeometry, ParallelBeamGeometry};
use cc19_ctsim::phantom::ChestPhantom;
use cc19_ctsim::siddon::{project_fan, project_parallel, Grid};

fn bench_siddon(c: &mut Criterion) {
    let n = 128;
    let grid = Grid::fov500(n);
    let img = cc19_ctsim::hu::image_hu_to_mu(&ChestPhantom::subject(2, 0.5, None).rasterize_hu(n));

    let fgeom = FanBeamGeometry::reduced(90, 128);
    let pgeom = ParallelBeamGeometry::for_image(n, grid.px, 90);

    let mut group = c.benchmark_group("siddon_projection");
    group.throughput(Throughput::Elements((fgeom.views * fgeom.detectors) as u64));
    group.bench_function("fan_90x128", |b| b.iter(|| project_fan(&img, grid, &fgeom).unwrap()));
    group.throughput(Throughput::Elements((pgeom.views * pgeom.detectors) as u64));
    group.bench_function("parallel_90", |b| b.iter(|| project_parallel(&img, grid, &pgeom).unwrap()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_siddon
}
criterion_main!(benches);
