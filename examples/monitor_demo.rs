//! Longitudinal monitoring demo: a 4-timestep progression series of
//! one patient through [`PatientSeries`], plus a repeat read of the
//! final scan to show the content-addressed study cache at work.
//!
//! ```bash
//! cargo run --release -p cc19-monitor --example monitor_demo
//! ```
//!
//! The patient's lesions grow deterministically over the course (a
//! [`ProgressionCourse::worsening`] schedule scales every lesion's
//! Gaussian σ per timestep), so the reported burden climbs scan over
//! scan and the final resubmission is a cache hit with bit-identical
//! results.

use cc19_ctsim::phantom::Severity;
use cc19_data::progression::{progression_series, ProgressionCourse};
use cc19_monitor::PatientSeries;
use computecovid19::framework::Framework;

const PATIENT: u64 = 0xC19_2026;

fn main() {
    let course = ProgressionCourse::worsening(4);
    let scans = progression_series(PATIENT, &course, 48, 6, Severity::Moderate)
        .expect("progression synthesis");

    // An untrained framework still demonstrates the monitoring flow;
    // burden quantification is segmentation-based, not classifier-based.
    let fw = Framework::untrained_reduced(PATIENT);
    let mut series = PatientSeries::new(fw, 0.5, 256 << 20);

    println!("== patient {PATIENT:#x}: 4-timestep progression ==");
    for (t, vol) in scans.iter().enumerate() {
        let report = series.add_scan(format!("day {}", t * 5), vol).expect("add_scan");
        println!(
            "  {}  [lung {:7.1} mL, lesions {:6.1} mL]",
            report.summary(),
            report.burden.lung_ml,
            report.burden.lesion_ml,
        );
    }

    // A repeat read of the day-15 scan: same bytes, same weights, same
    // config => cache hit, stages skipped, bit-identical report.
    let replay = series.add_scan("day 15 (re-read)", &scans[3]).expect("replay");
    println!("  {}", replay.summary());

    let (hits, misses, evictions) = series.cache().stats();
    println!("\ncache: {hits} hit(s), {misses} miss(es), {evictions} eviction(s)");
    println!("\ntimeline CSV:\n{}", series.to_csv());
}
