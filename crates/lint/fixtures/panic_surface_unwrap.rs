//~ path: crates/serve/src/fixture.rs
//~ expect: panic-surface
// `.unwrap()` / `panic!` in serving dispatch must trip the
// panic-surface rule: admission errors are typed, not fatal.

pub fn dispatch(queue: &mut Vec<u64>) -> u64 {
    let next = queue.pop().unwrap();
    if next == 0 {
        panic!("zero id");
    }
    next
}
