//! Model checkpointing: a small, versioned, dependency-free binary format
//! for parameter snapshots plus auxiliary buffers (batch-norm running
//! statistics).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  "CC19CKPT"            8 bytes
//! version u32                  = 1
//! n_sections u32
//! per section:
//!   name_len u32, name bytes (utf-8)
//!   data_len u32 (f32 count), data bytes (4 * data_len)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CC19CKPT";
const VERSION: u32 = 1;

/// A named collection of f32 buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// `(name, data)` sections, in order.
    pub sections: Vec<(String, Vec<f32>)>,
}

impl Checkpoint {
    /// New empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section.
    pub fn push(&mut self, name: impl Into<String>, data: Vec<f32>) {
        self.sections.push((name.into(), data));
    }

    /// Find a section by name.
    pub fn get(&self, name: &str) -> Option<&[f32]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, d)| d.as_slice())
    }

    /// Serialize to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for (name, data) in &self.sections {
            let nb = name.as_bytes();
            w.write_all(&(nb.len() as u32).to_le_bytes())?;
            w.write_all(nb)?;
            w.write_all(&(data.len() as u32).to_le_bytes())?;
            for v in data {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialize from a reader.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a CC19 checkpoint"));
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        let version = u32::from_le_bytes(u32buf);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        r.read_exact(&mut u32buf)?;
        let n = u32::from_le_bytes(u32buf) as usize;
        // sanity cap: 1e6 sections
        if n > 1_000_000 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt section count"));
        }
        let mut sections = Vec::with_capacity(n);
        for _ in 0..n {
            r.read_exact(&mut u32buf)?;
            let name_len = u32::from_le_bytes(u32buf) as usize;
            if name_len > 4096 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt name length"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 section name"))?;
            r.read_exact(&mut u32buf)?;
            let len = u32::from_le_bytes(u32buf) as usize;
            if len > (1usize << 30) {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt data length"));
            }
            let mut bytes = vec![0u8; len * 4];
            r.read_exact(&mut bytes)?;
            let data: Vec<f32> =
                bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
            sections.push((name, data));
        }
        Ok(Checkpoint { sections })
    }

    /// Save to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)
    }

    /// Load from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        Self::read_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cc19_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let mut c = Checkpoint::new();
        c.push("params", vec![1.0, -2.5, 3.25]);
        c.push("bn.mean", vec![0.5]);
        c.push("bn.var", vec![]);
        let path = tmp("roundtrip.ckpt");
        c.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, c);
        assert_eq!(loaded.get("params").unwrap(), &[1.0, -2.5, 3.25]);
        assert!(loaded.get("missing").is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, b"NOTACKPTxxxxxx").unwrap();
        assert!(Checkpoint::load(&path).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let mut c = Checkpoint::new();
        c.push("w", vec![1.0; 64]);
        let path = tmp("trunc.ckpt");
        c.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
    }

    #[test]
    fn preserves_section_order_and_duplicates() {
        let mut c = Checkpoint::new();
        c.push("a", vec![1.0]);
        c.push("a", vec![2.0]);
        let path = tmp("dup.ckpt");
        c.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.sections.len(), 2);
        assert_eq!(loaded.sections[0].1, vec![1.0]);
        assert_eq!(loaded.sections[1].1, vec![2.0]);
        // get() returns the first
        assert_eq!(loaded.get("a").unwrap(), &[1.0]);
    }
}
