//! Typed errors for the distributed-training substrate.
//!
//! Every failure mode a caller may want to degrade on is a distinct
//! variant — transport timeouts, detected rank death, replica divergence,
//! worker panics — instead of the bare `panic!`/`expect` calls the first
//! version of this crate used.

use std::fmt;

use cc19_tensor::TensorError;

/// Errors surfaced by the distributed trainer and transport layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A tensor-level failure (shape mismatch etc.) inside a worker.
    Tensor(TensorError),
    /// A receive exceeded its retry budget while every peer still looked
    /// alive — the transport cannot distinguish extreme slowness from
    /// livelock, so it gives up deterministically.
    Timeout {
        /// Rank that timed out.
        rank: usize,
        /// Rank it was waiting on.
        peer: usize,
        /// Operation label (e.g. `"ring recv"`).
        op: &'static str,
    },
    /// A peer stopped heartbeating and was declared dead. Recoverable:
    /// the trainer rebuilds the ring around it.
    RankDead {
        /// The rank declared dead.
        rank: usize,
    },
    /// Fewer than one rank remains alive — nothing left to train on.
    AllRanksDead,
    /// The DDP invariant broke: replicas no longer hold identical weights.
    ReplicaDiverged {
        /// Rank whose snapshot diverged from rank 0's.
        rank: usize,
        /// Largest absolute element-wise difference observed.
        max_diff: f32,
    },
    /// A worker thread panicked (bug, not a simulated fault).
    WorkerPanicked {
        /// The rank whose thread panicked.
        rank: usize,
    },
    /// A checkpoint could not be written, read, or validated.
    Checkpoint(String),
    /// The run configuration is unusable (e.g. batch < nodes).
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Timeout { rank, peer, op } => {
                write!(f, "rank {rank}: {op} from rank {peer} exceeded its retry budget")
            }
            Error::RankDead { rank } => write!(f, "rank {rank} declared dead"),
            Error::AllRanksDead => write!(f, "no live ranks remain"),
            Error::ReplicaDiverged { rank, max_diff } => {
                write!(f, "replica {rank} diverged from rank 0 by {max_diff}")
            }
            Error::WorkerPanicked { rank } => write!(f, "worker thread for rank {rank} panicked"),
            Error::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for Error {
    fn from(e: TensorError) -> Self {
        Error::Tensor(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Checkpoint(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Timeout { rank: 2, peer: 1, op: "ring recv" };
        assert!(e.to_string().contains("rank 2"));
        assert!(e.to_string().contains("rank 1"));
        let e = Error::ReplicaDiverged { rank: 3, max_diff: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::LengthMismatch { expected: 4, actual: 2 };
        let e: Error = te.clone().into();
        assert_eq!(e, Error::Tensor(te));
    }
}
