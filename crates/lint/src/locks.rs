//! Lock-site and held-region analysis (DESIGN.md §16).
//!
//! Identifies lock acquisitions (the `sync.rs` poison-recovering
//! helpers, the local `transport.rs` helper, raw `Mutex::lock` /
//! `RwLock::read`/`write` method calls), the token region each guard is
//! held over, and the blocking operations / further acquisitions
//! reachable inside that region — directly and across resolved call
//! edges. The lock-order and blocking-under-lock rules are thin
//! wrappers over this analysis.
//!
//! Lock identity is *name-based*: an acquisition of `self.inner` in
//! `broker.rs` is the lock `broker::inner`. Two paths to the same mutex
//! through different field chains get different names (this can miss a
//! cycle, never invent one); two distinct locks with identical field
//! names in one file would alias (none exist in scope). Held regions
//! are conservative: a guard dropped inside a nested block (`if
//! closed { drop(g); … }`) is treated as held until the enclosing
//! block closes, because the branch may not be taken.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{call_open, file_stem, is_ident, CallGraph};
use crate::rules::SourceFile;
use crate::scanner::Token;

/// Files whose lock discipline the lock rules audit: the serving stack
/// (broker/batcher/sync/cluster/wire), the dist transport, and the
/// monitoring crate. Callees outside these files are not traversed —
/// lock ordering is a module-local protocol, and the numeric crates
/// take no locks.
pub const LOCK_SCOPE: &[&str] =
    &["crates/serve/src/", "crates/dist/src/transport.rs", "crates/monitor/src/"];

/// Lock-primitive function names: call sites *of* these are modeled as
/// acquisitions or condvar waits, so their bodies are never traversed
/// (that would double-count the acquisition they implement).
const LOCK_HELPERS: &[&str] = &["lock", "wait", "wait_timeout"];

/// Method names that block the calling thread: channel receives, thread
/// joins, condvar waits, and TCP I/O.
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_wait",
    "join",
    "wait",
    "wait_timeout",
    "read_exact",
    "write_all",
    "read_to_end",
    "flush",
    "accept",
    "connect",
];

/// Of the blocking names, the condvar-wait family: exempt when the wait
/// is passed the *same* guard that is held (that is how a condvar is
/// used), a violation when any other lock is held across it.
const WAIT_FAMILY: &[&str] = &["wait", "wait_timeout"];

/// One lock acquisition and the region its guard is held over.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Canonical lock name, `<file-stem>::<receiver tail>`.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Token index of the acquisition name.
    pub tok: usize,
    /// Let-bound guard variable, when the binding is a simple ident.
    pub guard_var: Option<String>,
    /// Token range `[start, end]` the guard is considered held over.
    pub region: (usize, usize),
}

/// One blocking operation inside a function body.
#[derive(Debug, Clone)]
pub struct BlockingOp {
    /// Display form, e.g. `.recv()`.
    pub what: String,
    /// Bare callee name (exemption logic keys on this).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Token index of the op name.
    pub tok: usize,
    /// Identifier tokens appearing in the argument list (condvar-guard
    /// exemption: `wait(&cv, guard)` names the guard it atomically
    /// releases).
    pub args: Vec<String>,
}

/// A may-hold-while-acquiring edge between two locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held at the outer acquisition.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// Call chain from the holder to the inner acquisition (fn names).
    pub witness: Vec<String>,
    /// Path of the file containing the inner acquisition.
    pub path: String,
    /// Line of the inner acquisition.
    pub line: usize,
}

/// A blocking operation reachable while a lock is held.
#[derive(Debug, Clone)]
pub struct BlockingHit {
    /// The held lock.
    pub lock: String,
    /// Display form of the blocking op.
    pub what: String,
    /// Call chain from the holder to the op (fn names).
    pub witness: Vec<String>,
    /// Path of the file containing the op.
    pub path: String,
    /// Line of the op.
    pub line: usize,
}

/// The full lock analysis over the scoped files.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Every acquisition site: `(lock, path, line)`, sorted.
    pub sites: Vec<(String, String, usize)>,
    /// May-hold-while-acquiring edges, sorted and deduped by
    /// `(from, to)` keeping the first witness.
    pub edges: Vec<LockEdge>,
    /// Blocking operations under a held lock (live violations).
    pub blocking: Vec<BlockingHit>,
}

/// Is this path inside the lock-audited scope?
pub fn in_scope(path: &str) -> bool {
    LOCK_SCOPE.iter().any(|p| path.starts_with(p))
}

/// Collect identifier tokens of the receiver chain ending at the `.`
/// token `dot` (e.g. `self.ep.prev_slot` → `ep.prev_slot`).
fn receiver_tail(toks: &[Token], dot: usize) -> String {
    let mut idents: Vec<&str> = Vec::new();
    let mut k = dot;
    while let Some(prev) = k.checked_sub(1) {
        let t = toks[prev].text.as_str();
        if t == ")" {
            // Call result receiver: take the callee name as the tail.
            let mut depth = 1usize;
            let mut j = prev;
            while j > 0 && depth > 0 {
                j -= 1;
                match toks[j].text.as_str() {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
            if j > 0 && is_ident(&toks[j - 1].text) {
                idents.push(&toks[j - 1].text);
            }
            break;
        }
        if is_ident(t) || t == "self" {
            idents.push(t);
            if prev >= 2 && toks[prev - 1].text == "." {
                k = prev - 1;
                continue;
            }
        }
        break;
    }
    idents.reverse();
    let tail: Vec<&str> = idents.into_iter().filter(|t| *t != "self").collect();
    if tail.is_empty() {
        "anon".to_string()
    } else {
        tail.join(".")
    }
}

/// Collect the first-argument identifier tail of a helper call
/// (`lock(&self.ep.prev_slot, …)` → `ep.prev_slot`).
fn first_arg_tail(toks: &[Token], open: usize) -> String {
    let mut idents: Vec<&str> = Vec::new();
    let mut depth = 0usize;
    let mut j = open + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" if depth == 0 => break,
            ")" => depth -= 1,
            "," | "[" if depth == 0 => break,
            "&" | "." | "mut" | "self" => {}
            t if is_ident(t) && depth == 0 => idents.push(t),
            _ => {}
        }
        j += 1;
    }
    if idents.is_empty() {
        "anon".to_string()
    } else {
        idents.join(".")
    }
}

/// All identifier tokens in the argument list opening at `open`.
fn arg_idents(toks: &[Token], open: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            t if is_ident(t) => out.push(t.to_string()),
            _ => {}
        }
        j += 1;
    }
    out
}

/// Walk back from `anchor` to the start of its statement; returns the
/// token index of the first statement token.
fn stmt_start(toks: &[Token], anchor: usize, body_start: usize) -> usize {
    let mut k = anchor;
    while k > body_start {
        match toks[k - 1].text.as_str() {
            ";" | "{" | "}" => return k,
            _ => k -= 1,
        }
    }
    k
}

/// Walk forward from `anchor` to the `;` ending its statement (at the
/// anchor's nesting level); returns that token index (or the body end).
fn stmt_end(toks: &[Token], anchor: usize, body_end: usize) -> usize {
    let mut depth = 0isize;
    let mut j = anchor;
    while j <= body_end {
        match toks[j].text.as_str() {
            "(" | "{" | "[" => depth += 1,
            ")" | "}" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    body_end
}

/// The held region of a let-bound guard: from the end of the binding
/// statement to a same-depth `drop(var)` or the close of the enclosing
/// block, whichever comes first.
fn guard_region(toks: &[Token], bind_end: usize, body_end: usize, var: &str) -> (usize, usize) {
    let mut depth = 0isize;
    let mut j = bind_end + 1;
    while j <= body_end {
        match toks[j].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return (bind_end, j);
                }
            }
            "drop"
                if depth == 0
                    && toks.get(j + 1).is_some_and(|t| t.text == "(")
                    && toks.get(j + 2).is_some_and(|t| t.text == var)
                    && toks.get(j + 3).is_some_and(|t| t.text == ")") =>
            {
                return (bind_end, j);
            }
            _ => {}
        }
        j += 1;
    }
    (bind_end, body_end)
}

/// Per-function lock facts.
#[derive(Debug, Default, Clone)]
struct FnLocks {
    acquisitions: Vec<Acquisition>,
    blocking: Vec<BlockingOp>,
}

/// Extract acquisitions and blocking ops from one fn body.
fn scan_fn(file: &SourceFile, body: (usize, usize)) -> FnLocks {
    let toks = &file.tokens;
    let stem = file_stem(&file.path);
    let (b0, b1) = body;
    let mut out = FnLocks::default();
    for t in b0..=b1 {
        if toks[t].in_test {
            continue;
        }
        let text = toks[t].text.as_str();
        // Method acquisition: `recv.lock()` / `.read()` / `.write()`.
        if text == "."
            && toks
                .get(t + 1)
                .is_some_and(|n| matches!(n.text.as_str(), "lock" | "read" | "write"))
            && call_open(toks, t + 1).is_some()
        {
            let tail = receiver_tail(toks, t);
            push_acquisition(&mut out, toks, t + 1, b0, b1, format!("{stem}::{tail}"));
            continue;
        }
        // Helper acquisition: bare `lock(&self.inner, …)`.
        if text == "lock" && call_open(toks, t).is_some() {
            let prev = t.checked_sub(1).map(|k| toks[k].text.as_str());
            if !matches!(prev, Some("." | "fn")) {
                let open = call_open(toks, t).unwrap_or(t + 1);
                let tail = first_arg_tail(toks, open);
                push_acquisition(&mut out, toks, t, b0, b1, format!("{stem}::{tail}"));
                continue;
            }
        }
        // Blocking op: method or bare call of a blocking name.
        if is_ident(text) && BLOCKING_METHODS.contains(&text) {
            let Some(open) = call_open(toks, t) else { continue };
            let prev = t.checked_sub(1).map(|k| toks[k].text.as_str());
            if prev == Some("fn") {
                continue;
            }
            let method = prev == Some(".");
            // Bare calls only count for the sync helper wait family;
            // every other blocking name is a method on a channel,
            // stream, handle, or condvar.
            if !method && !WAIT_FAMILY.contains(&text) && prev != Some(":") {
                continue;
            }
            let what = if method { format!(".{text}()") } else { format!("{text}(…)") };
            out.blocking.push(BlockingOp {
                what,
                name: text.to_string(),
                line: toks[t].line,
                tok: t,
                args: arg_idents(toks, open),
            });
        }
    }
    out
}

/// Record one acquisition (name token at `name_tok`) with its guard
/// binding and held region.
fn push_acquisition(
    out: &mut FnLocks,
    toks: &[Token],
    name_tok: usize,
    body_start: usize,
    body_end: usize,
    lock: String,
) {
    let s = stmt_start(toks, name_tok, body_start);
    let end = stmt_end(toks, name_tok, body_end);
    // A binding only holds the *guard* when the acquisition call is the
    // whole initializer (`let g = lock(&m);`); a chained call
    // (`lock(&m).get(k).cloned()`) drops the temporary at the `;`.
    let call_is_whole_initializer = call_open(toks, name_tok).is_some_and(|open| {
        let mut depth = 0usize;
        let mut j = open;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return toks.get(j + 1).is_some_and(|t| t.text == ";");
                    }
                }
                _ => {}
            }
            j += 1;
        }
        false
    });
    let mut guard_var = None;
    if call_is_whole_initializer && toks.get(s).is_some_and(|t| t.text == "let") {
        let mut k = s + 1;
        if toks.get(k).is_some_and(|t| t.text == "mut") {
            k += 1;
        }
        if toks.get(k).is_some_and(|t| is_ident(&t.text))
            && toks.get(k + 1).is_some_and(|t| t.text == "=")
        {
            guard_var = Some(toks[k].text.clone());
        }
    }
    let region = match &guard_var {
        Some(var) => guard_region(toks, end, body_end, var),
        None => (name_tok, end), // temporary guard: held to statement end
    };
    out.acquisitions.push(Acquisition {
        lock,
        line: toks[name_tok].line,
        tok: name_tok,
        guard_var,
        region,
    });
}

/// Run the lock analysis over the scoped files of the workspace.
pub fn analyze(files: &[SourceFile], graph: &CallGraph) -> LockAnalysis {
    // Per-fn facts for every in-scope, non-test, non-helper fn.
    let mut facts: BTreeMap<usize, FnLocks> = BTreeMap::new();
    for (fi, d) in graph.fns.iter().enumerate() {
        if d.in_test || LOCK_HELPERS.contains(&d.name.as_str()) {
            continue;
        }
        let file = &files[d.file];
        if !in_scope(&file.path) {
            continue;
        }
        let Some(body) = d.body else { continue };
        facts.insert(fi, scan_fn(file, body));
    }

    let mut analysis = LockAnalysis::default();
    for (&fi, fl) in &facts {
        let path = files[graph.fns[fi].file].path.clone();
        for a in &fl.acquisitions {
            analysis.sites.push((a.lock.clone(), path.clone(), a.line));
        }
    }
    analysis.sites.sort();
    analysis.sites.dedup();

    // For each held region: direct nested acquisitions/blocking ops,
    // then a bounded traversal of calls made inside the region.
    let mut edges: Vec<LockEdge> = Vec::new();
    for (&fi, fl) in &facts {
        let holder = &graph.fns[fi];
        let holder_path = files[holder.file].path.clone();
        for a in &fl.acquisitions {
            let (r0, r1) = a.region;
            // Direct nested acquisitions.
            for b in &fl.acquisitions {
                if b.tok != a.tok && (r0..=r1).contains(&b.tok) {
                    edges.push(LockEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        witness: vec![holder.name.clone()],
                        path: holder_path.clone(),
                        line: b.line,
                    });
                }
            }
            // Direct blocking ops (condvar waits on the held guard are
            // the sanctioned use and exempt).
            for op in &fl.blocking {
                if !(r0..=r1).contains(&op.tok) {
                    continue;
                }
                let exempt = WAIT_FAMILY.contains(&op.name.as_str())
                    && a.guard_var.as_ref().is_some_and(|v| op.args.contains(v));
                if !exempt {
                    analysis.blocking.push(BlockingHit {
                        lock: a.lock.clone(),
                        what: op.what.clone(),
                        witness: vec![holder.name.clone()],
                        path: holder_path.clone(),
                        line: op.line,
                    });
                }
            }
            // Transitive: traverse calls made while the guard is held.
            let mut visited: BTreeSet<usize> = BTreeSet::new();
            let mut stack: Vec<(usize, Vec<String>)> = Vec::new();
            for call in &holder.calls {
                if !(r0..=r1).contains(&call.tok) {
                    continue;
                }
                for &g in &call.resolved {
                    if facts.contains_key(&g) && visited.insert(g) {
                        stack.push((g, vec![holder.name.clone(), graph.fns[g].name.clone()]));
                    }
                }
            }
            while let Some((g, chain)) = stack.pop() {
                let gd = &graph.fns[g];
                let g_path = files[gd.file].path.clone();
                let gl = &facts[&g];
                for b in &gl.acquisitions {
                    edges.push(LockEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        witness: chain.clone(),
                        path: g_path.clone(),
                        line: b.line,
                    });
                }
                for op in &gl.blocking {
                    analysis.blocking.push(BlockingHit {
                        lock: a.lock.clone(),
                        what: op.what.clone(),
                        witness: chain.clone(),
                        path: g_path.clone(),
                        line: op.line,
                    });
                }
                if chain.len() >= 8 {
                    continue;
                }
                for call in &gd.calls {
                    for &h in &call.resolved {
                        if facts.contains_key(&h) && visited.insert(h) {
                            let mut next = chain.clone();
                            next.push(graph.fns[h].name.clone());
                            stack.push((h, next));
                        }
                    }
                }
            }
        }
    }
    edges.sort_by(|x, y| {
        (&x.from, &x.to, &x.path, x.line).cmp(&(&y.from, &y.to, &y.path, y.line))
    });
    edges.dedup_by(|x, y| x.from == y.from && x.to == y.to);
    analysis.edges = edges;
    analysis
        .blocking
        .sort_by(|x, y| (&x.path, x.line, &x.lock).cmp(&(&y.path, y.line, &y.lock)));
    analysis.blocking.dedup_by(|x, y| x.path == y.path && x.line == y.line && x.lock == y.lock);
    analysis
}

/// Elementary cycles in the may-hold-while-acquiring graph, each
/// rotated to start at its lexicographically smallest lock; sorted.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS only through nodes >= start, closing back to start: every
        // elementary cycle is found exactly once, rooted at its
        // smallest node.
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<(usize, Vec<&str>)> = vec![(0, path.clone())];
        let _ = &mut path;
        while let Some((_, p)) = stack.pop() {
            let last = p[p.len() - 1];
            let Some(nexts) = adj.get(last) else { continue };
            for &n in nexts {
                if n == start {
                    cycles.insert(p.iter().map(|s| s.to_string()).collect());
                } else if n > start && !p.contains(&n) && p.len() < 6 {
                    let mut np = p.clone();
                    np.push(n);
                    stack.push((0, np));
                }
            }
        }
    }
    cycles.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::SourceFile;

    fn analyze_src(src: &str) -> LockAnalysis {
        let files = vec![SourceFile::new("crates/serve/src/fix.rs", src)];
        let graph = CallGraph::build(&files);
        analyze(&files, &graph)
    }

    #[test]
    fn helper_and_method_acquisitions_get_canonical_names() {
        let src = "fn a(&self) {\n    let g = lock(&self.inner);\n    let h = self.state.lock();\n}\n";
        let a = analyze_src(src);
        let locks: Vec<&str> = a.sites.iter().map(|(l, _, _)| l.as_str()).collect();
        assert_eq!(locks, vec!["fix::inner", "fix::state"]);
    }

    #[test]
    fn nested_acquisition_makes_an_edge_and_opposite_orders_cycle() {
        let src = "impl P {\n    fn fwd(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n    fn bwd(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n}\n";
        let a = analyze_src(src);
        assert!(a.edges.iter().any(|e| e.from == "fix::a" && e.to == "fix::b"), "{:?}", a.edges);
        assert!(a.edges.iter().any(|e| e.from == "fix::b" && e.to == "fix::a"), "{:?}", a.edges);
        let cycles = find_cycles(&a.edges);
        assert_eq!(cycles, vec![vec!["fix::a".to_string(), "fix::b".to_string()]]);
    }

    #[test]
    fn recv_under_held_lock_is_a_blocking_hit() {
        let src = "fn f(&self) {\n    let g = lock(&self.inner);\n    let v = self.rx.recv();\n    drop(g);\n}\n";
        let a = analyze_src(src);
        assert_eq!(a.blocking.len(), 1, "{:?}", a.blocking);
        assert_eq!(a.blocking[0].what, ".recv()");
        assert_eq!(a.blocking[0].lock, "fix::inner");
    }

    #[test]
    fn drop_at_same_depth_ends_the_region() {
        let src = "fn f(&self) {\n    let g = lock(&self.inner);\n    drop(g);\n    let v = self.rx.recv();\n}\n";
        let a = analyze_src(src);
        assert!(a.blocking.is_empty(), "{:?}", a.blocking);
    }

    #[test]
    fn condvar_wait_on_the_held_guard_is_exempt() {
        let src = "fn f(&self) {\n    let mut g = lock(&self.inner);\n    while g.empty { g = wait(&self.cv, g); }\n}\n";
        let a = analyze_src(src);
        assert!(a.blocking.is_empty(), "{:?}", a.blocking);
    }

    #[test]
    fn condvar_wait_on_a_different_guard_is_not_exempt() {
        let src = "fn f(&self) {\n    let outer = lock(&self.a);\n    let mut g = lock(&self.b);\n    g = wait(&self.cv, g);\n    drop(g);\n    drop(outer);\n}\n";
        let a = analyze_src(src);
        // The wait is exempt for the `b` region (its own guard) but a
        // blocking hit for the held `a` region.
        assert_eq!(a.blocking.len(), 1, "{:?}", a.blocking);
        assert_eq!(a.blocking[0].lock, "fix::a");
    }

    #[test]
    fn cross_function_acquisition_carries_a_witness_chain() {
        let src = "impl P {\n    fn outer(&self) { let g = self.a.lock(); self.inner_step(); }\n    fn inner_step(&self) { let h = self.b.lock(); }\n}\n";
        let a = analyze_src(src);
        let e = a
            .edges
            .iter()
            .find(|e| e.from == "fix::a" && e.to == "fix::b")
            .expect("cross-fn edge");
        assert_eq!(e.witness, vec!["outer".to_string(), "inner_step".to_string()]);
    }

    #[test]
    fn temporary_guard_is_held_to_statement_end_only() {
        let src = "fn f(&self) {\n    let v = lock(&self.slot).get(&k).cloned();\n    let w = self.rx.recv();\n}\n";
        let a = analyze_src(src);
        assert!(a.blocking.is_empty(), "recv is after the temporary: {:?}", a.blocking);
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod t {\n    fn f(&self) { let g = lock(&self.a); let v = rx.recv(); }\n}\n";
        let a = analyze_src(src);
        assert!(a.sites.is_empty() && a.blocking.is_empty());
    }
}
