//! Explicit AVX2+FMA microkernels for the conv / gather-deconv ladder —
//! the vector twin of every scalar `OptLevel` stage (DESIGN.md §13).
//!
//! Layout: each output plane (one `co`) is computed independently (rayon
//! fans planes out exactly like the scalar ladder). Within a plane the
//! output is split into an *interior* box — every filter tap in bounds,
//! so the inner loops run without bounds checks over 8-lane f32 vectors
//! — and a *border* ring plus an ≤7-column vector tail, which reuse the
//! scalar per-pixel helpers ([`crate::conv::conv_px`],
//! [`crate::deconv::deconv_px`]) and are therefore bit-identical to the
//! same-stage scalar kernel; only interior lanes differ, by the FMA
//! contraction documented in `tests/simd_parity.rs`.
//!
//! The ladder stages map onto two [`Mode`] flags:
//!
//! - **+PF** — `_mm_prefetch(T0)` of the current input row one column
//!   block ahead and of the next filter row, issued once per `(ci, ky)`
//!   panel (the CPU analogue of the paper's private-memory prefetch);
//! - **+LU** — ×5 register blocking over output columns (5 × 8 = 40
//!   outputs in flight, matching the paper's ×5 unroll factor) plus
//!   *dedicated* monomorphized kernels for the 3×3 and 5×5 extents that
//!   dominate DDnet, whose filter loops unroll away completely and whose
//!   row of broadcast weights stays register-resident.
//!
//! Safety: every `unsafe` block in this file relies on (a) AVX2+FMA
//! presence, asserted at the two safe entry points before any
//! `#[target_feature]` call, and (b) the interior-box bounds proven in
//! `plane_*` before raw-pointer loads. `_mm_prefetch` is a hint and
//! never faults; speculative next-row/next-block addresses are formed
//! with `wrapping_add` so no out-of-allocation pointer arithmetic is
//! performed.
// cc19-lint: allow(unsafe, simd: explicit std::arch AVX2/FMA intrinsics with raw-pointer loads/stores; scalar/SIMD parity is enforced by tests/simd_parity.rs and the forced-scalar tier-1 run)
#![allow(unsafe_code)]

use std::arch::x86_64::*;

use rayon::prelude::*;

use crate::conv::{conv_px, ConvShape};
use crate::deconv::{deconv_px, out_h as deconv_out_h, out_w as deconv_out_w};
use crate::simd::{self, SimdLevel};

/// Which ladder optimizations the microkernel applies (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Mode {
    /// +PF: software prefetch of the next column block / filter row.
    pub prefetch: bool,
    /// +LU: ×5 column register blocking + dedicated 3×3/5×5 kernels.
    pub unroll: bool,
}

/// Hoisted loop geometry shared by the block microkernels.
#[derive(Clone, Copy)]
struct Geom {
    /// Input channels.
    cin: usize,
    /// Input plane stride (`h * w`).
    hw: usize,
    /// Input row stride.
    w: usize,
    /// Filter extent.
    k: usize,
    /// Per-`ci` weight stride (`k*k` for conv, `cout*k*k` for deconv).
    ws: usize,
    /// Software prefetch enabled.
    pf: bool,
}

/// Columns per ×5-unrolled register block (5 accumulators × 8 lanes).
const COLS_LU: usize = 40;

fn assert_avx2() {
    assert!(
        simd::detected() == SimdLevel::Avx2,
        "AVX2 microkernel dispatched on hardware without AVX2+FMA"
    );
}

/// AVX2 convolution (stride 1, zero padding), same contract as the
/// scalar [`crate::conv::conv2d`] stages.
// cc19-hot
pub(crate) fn conv2d_avx2(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
    mode: Mode,
) -> Vec<f32> {
    assert_avx2();
    let (oh, ow) = (s.out_h(), s.out_w());
    // cc19-lint: allow(alloc, "allocating twin: the output buffer is the return value; _into callers reuse theirs")
    let mut out = vec![0.0f32; s.out_len()];
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(co, plane)| {
        // SAFETY: AVX2+FMA presence asserted above; `conv_plane_avx2`
        // confines raw loads to the in-bounds interior box.
        unsafe { conv_plane_avx2(input, weight, bias, s, co, plane, mode) }
    });
    out
}

/// AVX2 gather deconvolution (stride-1 transposed conv), same contract
/// as the scalar gather stages of [`crate::deconv::deconv2d`].
// cc19-hot
pub(crate) fn deconv2d_avx2(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
    mode: Mode,
) -> Vec<f32> {
    assert_avx2();
    let (oh, ow) = (deconv_out_h(s), deconv_out_w(s));
    // cc19-lint: allow(alloc, "allocating twin: the output buffer is the return value; _into callers reuse theirs")
    let mut out = vec![0.0f32; s.cout * oh * ow];
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(co, plane)| {
        // SAFETY: as in `conv2d_avx2`.
        unsafe { deconv_plane_avx2(input, weight, bias, s, co, plane, mode) }
    });
    out
}

/// One convolution output plane: scalar border ring + vector interior.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn conv_plane_avx2(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
    co: usize,
    plane: &mut [f32],
    mode: Mode,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let (h, w, k, pad) = (s.h, s.w, s.k, s.pad);
    let kk = k * k;
    let g = Geom { cin: s.cin, hw: h * w, w, k, ws: kk, pf: mode.prefetch };
    let wbase = &weight[co * s.cin * kk..(co + 1) * s.cin * kk];
    let b = bias[co];

    // Interior box: oy in [y0, y1), ox in [x0, x1) have every tap in
    // bounds (ix = ox + kx - pad ∈ [0, w) for all kx, same for rows).
    let y0 = pad.min(oh);
    let y1 = (h + pad + 1).saturating_sub(k).clamp(y0, oh);
    let x0 = pad.min(ow);
    let x1 = (w + pad + 1).saturating_sub(k).clamp(x0, ow);

    for oy in 0..oh {
        if oy < y0 || oy >= y1 {
            for ox in 0..ow {
                plane[oy * ow + ox] = conv_px(input, wbase, s, oy, ox, b, mode.unroll);
            }
            continue;
        }
        for ox in 0..x0 {
            plane[oy * ow + ox] = conv_px(input, wbase, s, oy, ox, b, mode.unroll);
        }
        for ox in x1..ow {
            plane[oy * ow + ox] = conv_px(input, wbase, s, oy, ox, b, mode.unroll);
        }
        let iy0 = oy - pad;
        let ip = input.as_ptr();
        let wp = wbase.as_ptr();
        let dst = plane.as_mut_ptr().add(oy * ow);
        let mut ox = x0;
        if mode.unroll {
            while ox + COLS_LU <= x1 {
                let ix0 = ox - pad;
                // SAFETY: interior box — lanes ox..ox+40 all have
                // ix0 + kx + lane < w for every kx.
                match k {
                    3 => conv_block_k::<3, 5>(ip, wp, b, g, iy0, ix0, dst.add(ox)),
                    5 => conv_block_k::<5, 5>(ip, wp, b, g, iy0, ix0, dst.add(ox)),
                    _ => conv_block::<5>(ip, wp, b, g, iy0, ix0, dst.add(ox)),
                }
                ox += COLS_LU;
            }
        }
        while ox + 8 <= x1 {
            let ix0 = ox - pad;
            if mode.unroll && k == 3 {
                conv_block_k::<3, 1>(ip, wp, b, g, iy0, ix0, dst.add(ox));
            } else if mode.unroll && k == 5 {
                conv_block_k::<5, 1>(ip, wp, b, g, iy0, ix0, dst.add(ox));
            } else {
                conv_block::<1>(ip, wp, b, g, iy0, ix0, dst.add(ox));
            }
            ox += 8;
        }
        for ox in ox..x1 {
            plane[oy * ow + ox] = conv_px(input, wbase, s, oy, ox, b, mode.unroll);
        }
    }
}

/// Generic-extent convolution block: `NV` 8-lane accumulators over
/// consecutive output columns, weights broadcast per tap.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn conv_block<const NV: usize>(
    ip: *const f32,
    wp: *const f32,
    b: f32,
    g: Geom,
    iy0: usize,
    ix0: usize,
    dst: *mut f32,
) {
    let mut acc = [_mm256_set1_ps(b); NV];
    for ci in 0..g.cin {
        let iplane = ip.add(ci * g.hw);
        let wchan = wp.add(ci * g.ws);
        for ky in 0..g.k {
            let row = iplane.add((iy0 + ky) * g.w + ix0);
            let wrow = wchan.add(ky * g.k);
            if g.pf {
                _mm_prefetch::<_MM_HINT_T0>(row.wrapping_add(8 * NV) as *const i8);
                _mm_prefetch::<_MM_HINT_T0>(wrow.wrapping_add(g.k) as *const i8);
            }
            for kx in 0..g.k {
                let wv = _mm256_set1_ps(*wrow.add(kx));
                for (v, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_fmadd_ps(_mm256_loadu_ps(row.add(kx + 8 * v)), wv, *a);
                }
            }
        }
    }
    for (v, a) in acc.iter().enumerate() {
        _mm256_storeu_ps(dst.add(8 * v), *a);
    }
}

/// Dedicated `K×K` convolution block (the DDnet-dominant 3×3 and 5×5
/// extents): monomorphized, so both filter loops unroll away and the
/// row of broadcast weights stays register-resident — no inner k-loop
/// survives to the machine code.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn conv_block_k<const K: usize, const NV: usize>(
    ip: *const f32,
    wp: *const f32,
    b: f32,
    g: Geom,
    iy0: usize,
    ix0: usize,
    dst: *mut f32,
) {
    let mut acc = [_mm256_set1_ps(b); NV];
    for ci in 0..g.cin {
        let iplane = ip.add(ci * g.hw);
        let wchan = wp.add(ci * g.ws);
        for ky in 0..K {
            let row = iplane.add((iy0 + ky) * g.w + ix0);
            let wrow = wchan.add(ky * K);
            if g.pf {
                _mm_prefetch::<_MM_HINT_T0>(row.wrapping_add(8 * NV) as *const i8);
                _mm_prefetch::<_MM_HINT_T0>(wrow.wrapping_add(K) as *const i8);
            }
            let mut wv = [_mm256_setzero_ps(); K];
            for (kx, wvk) in wv.iter_mut().enumerate() {
                *wvk = _mm256_set1_ps(*wrow.add(kx));
            }
            for (v, a) in acc.iter_mut().enumerate() {
                let base = row.add(8 * v);
                for (kx, wvk) in wv.iter().enumerate() {
                    *a = _mm256_fmadd_ps(_mm256_loadu_ps(base.add(kx)), *wvk, *a);
                }
            }
        }
    }
    for (v, a) in acc.iter().enumerate() {
        _mm256_storeu_ps(dst.add(8 * v), *a);
    }
}

/// One gather-deconvolution output plane: scalar border ring + vector
/// interior (inverse coefficient mapping — `iy = oy + pad - ky`).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn deconv_plane_avx2(
    input: &[f32],
    weight: &[f32],
    bias: &[f32],
    s: ConvShape,
    co: usize,
    plane: &mut [f32],
    mode: Mode,
) {
    let (oh, ow) = (deconv_out_h(s), deconv_out_w(s));
    let (h, w, k, pad) = (s.h, s.w, s.k, s.pad);
    let kk = k * k;
    let g = Geom { cin: s.cin, hw: h * w, w, k, ws: s.cout * kk, pf: mode.prefetch };
    // `co`-offset weight view for the scalar border helper (per-`ci`
    // stride stays `cout*k*k`).
    let wco = &weight[co * kk..];
    let b = bias[co];

    // Interior box: iy = oy + pad - ky ∈ [0, h) and ix = ox + pad - kx
    // ∈ [0, w) for every tap.
    let y0 = (k - 1).saturating_sub(pad).min(oh);
    let y1 = h.saturating_sub(pad).clamp(y0, oh);
    let x0 = (k - 1).saturating_sub(pad).min(ow);
    let x1 = w.saturating_sub(pad).clamp(x0, ow);

    for oy in 0..oh {
        if oy < y0 || oy >= y1 {
            for ox in 0..ow {
                plane[oy * ow + ox] = deconv_px(input, wco, s, oy, ox, b, mode.unroll);
            }
            continue;
        }
        for ox in 0..x0 {
            plane[oy * ow + ox] = deconv_px(input, wco, s, oy, ox, b, mode.unroll);
        }
        for ox in x1..ow {
            plane[oy * ow + ox] = deconv_px(input, wco, s, oy, ox, b, mode.unroll);
        }
        let oy_pad = oy + pad;
        let ip = input.as_ptr();
        // Per-`ci` stride is `g.ws`; this base points at `ci = 0, co`.
        let wp = weight.as_ptr().add(co * kk);
        let dst = plane.as_mut_ptr().add(oy * ow);
        let mut ox = x0;
        if mode.unroll {
            while ox + COLS_LU <= x1 {
                let ox0_pad = ox + pad;
                match k {
                    3 => deconv_block_k::<3, 5>(ip, wp, b, g, oy_pad, ox0_pad, dst.add(ox)),
                    5 => deconv_block_k::<5, 5>(ip, wp, b, g, oy_pad, ox0_pad, dst.add(ox)),
                    _ => deconv_block::<5>(ip, wp, b, g, oy_pad, ox0_pad, dst.add(ox)),
                }
                ox += COLS_LU;
            }
        }
        while ox + 8 <= x1 {
            let ox0_pad = ox + pad;
            if mode.unroll && k == 3 {
                deconv_block_k::<3, 1>(ip, wp, b, g, oy_pad, ox0_pad, dst.add(ox));
            } else if mode.unroll && k == 5 {
                deconv_block_k::<5, 1>(ip, wp, b, g, oy_pad, ox0_pad, dst.add(ox));
            } else {
                deconv_block::<1>(ip, wp, b, g, oy_pad, ox0_pad, dst.add(ox));
            }
            ox += 8;
        }
        for ox in ox..x1 {
            plane[oy * ow + ox] = deconv_px(input, wco, s, oy, ox, b, mode.unroll);
        }
    }
}

/// Generic-extent gather-deconvolution block (reversed tap traversal:
/// the input column for tap `kx` is `ox + pad - kx`).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn deconv_block<const NV: usize>(
    ip: *const f32,
    wp: *const f32,
    b: f32,
    g: Geom,
    oy_pad: usize,
    ox0_pad: usize,
    dst: *mut f32,
) {
    let mut acc = [_mm256_set1_ps(b); NV];
    for ci in 0..g.cin {
        let iplane = ip.add(ci * g.hw);
        let wchan = wp.add(ci * g.ws);
        for ky in 0..g.k {
            let row = iplane.add((oy_pad - ky) * g.w);
            let wrow = wchan.add(ky * g.k);
            if g.pf {
                _mm_prefetch::<_MM_HINT_T0>(row.wrapping_add(ox0_pad + 8 * NV) as *const i8);
                _mm_prefetch::<_MM_HINT_T0>(wrow.wrapping_add(g.k) as *const i8);
            }
            for kx in 0..g.k {
                let wv = _mm256_set1_ps(*wrow.add(kx));
                let base = row.add(ox0_pad - kx);
                for (v, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_fmadd_ps(_mm256_loadu_ps(base.add(8 * v)), wv, *a);
                }
            }
        }
    }
    for (v, a) in acc.iter().enumerate() {
        _mm256_storeu_ps(dst.add(8 * v), *a);
    }
}

/// Dedicated `K×K` gather-deconvolution block — see [`conv_block_k`].
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn deconv_block_k<const K: usize, const NV: usize>(
    ip: *const f32,
    wp: *const f32,
    b: f32,
    g: Geom,
    oy_pad: usize,
    ox0_pad: usize,
    dst: *mut f32,
) {
    let mut acc = [_mm256_set1_ps(b); NV];
    for ci in 0..g.cin {
        let iplane = ip.add(ci * g.hw);
        let wchan = wp.add(ci * g.ws);
        for ky in 0..K {
            let row = iplane.add((oy_pad - ky) * g.w);
            let wrow = wchan.add(ky * K);
            if g.pf {
                _mm_prefetch::<_MM_HINT_T0>(row.wrapping_add(ox0_pad + 8 * NV) as *const i8);
                _mm_prefetch::<_MM_HINT_T0>(wrow.wrapping_add(K) as *const i8);
            }
            let mut wv = [_mm256_setzero_ps(); K];
            for (kx, wvk) in wv.iter_mut().enumerate() {
                *wvk = _mm256_set1_ps(*wrow.add(kx));
            }
            for (v, a) in acc.iter_mut().enumerate() {
                let base = row.add(ox0_pad + 8 * v);
                for (kx, wvk) in wv.iter().enumerate() {
                    *a = _mm256_fmadd_ps(_mm256_loadu_ps(base.sub(kx)), *wvk, *a);
                }
            }
        }
    }
    for (v, a) in acc.iter().enumerate() {
        _mm256_storeu_ps(dst.add(8 * v), *a);
    }
}
