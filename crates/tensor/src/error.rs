//! Error type for tensor operations.

use std::fmt;

/// Errors produced at tensor API boundaries.
///
/// Internal kernels `debug_assert!` their invariants; anything that can be
/// triggered by a caller with bad shapes surfaces as one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// buffer length.
    LengthMismatch {
        /// Elements the shape implies.
        expected: usize,
        /// Elements the buffer holds.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Left operand dims.
        left: Vec<usize>,
        /// Right operand dims.
        right: Vec<usize>,
    },
    /// An operation received a tensor of the wrong rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank it received.
        actual: usize,
    },
    /// A dimension-specific constraint was violated (e.g. channel counts
    /// for convolution, concat axis out of range).
    Incompatible(String),
    /// An empty tensor was passed where data is required.
    Empty(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: shape implies {expected} elements, buffer has {actual}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected rank {expected}, got {actual}")
            }
            TensorError::Incompatible(msg) => write!(f, "incompatible operands: {msg}"),
            TensorError::Empty(what) => write!(f, "empty tensor passed to {what}"),
        }
    }
}

impl std::error::Error for TensorError {}
