//! Property test: `lint.toml` allowlist serialization round-trips.
//!
//! Arbitrary configs — kebab-case rule names, keys/reasons over the full
//! printable-ASCII range including quotes and backslashes — must survive
//! `to_toml` → `parse` bit-exactly, so hand edits and machine rewrites
//! of the allowlist can never drift.

use proptest::prelude::*;

use cc19_lint::LintConfig;

/// Kebab-case rule name, 1–12 chars from [a-z0-9-].
fn rule_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..37, 1..12).prop_map(|v| {
        v.into_iter()
            .map(|i| match i {
                0..=25 => (b'a' + i as u8) as char,
                26..=35 => (b'0' + (i - 26) as u8) as char,
                _ => '-',
            })
            .collect()
    })
}

/// Printable-ASCII string (space..tilde), quotes and backslashes included.
fn printable() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..95, 0..24)
        .prop_map(|v| v.into_iter().map(|i| (b' ' + i as u8) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn allowlist_round_trips(
        sections in proptest::collection::vec(
            (rule_name(), proptest::collection::vec((printable(), printable()), 0..6)),
            0..5,
        )
    ) {
        let mut cfg = LintConfig::default();
        for (rule, entries) in sections {
            let map = cfg.allow.entry(rule).or_default();
            for (key, reason) in entries {
                map.insert(key, reason);
            }
        }
        let text = cfg.to_toml();
        let reparsed = LintConfig::parse(&text);
        prop_assert!(reparsed.is_ok(), "canonical form must parse: {:?}\n{}", reparsed, text);
        prop_assert_eq!(reparsed.ok(), Some(cfg));
    }

    #[test]
    fn is_allowed_matches_contents(rule in rule_name(), key in printable(), other in printable()) {
        prop_assume!(key != other);
        let mut cfg = LintConfig::default();
        cfg.allow.entry(rule.clone()).or_default().insert(key.clone(), "r".into());
        let cfg = LintConfig::parse(&cfg.to_toml()).expect("round-trip");
        prop_assert!(cfg.is_allowed(&rule, &key));
        prop_assert!(!cfg.is_allowed(&rule, &other));
    }
}
