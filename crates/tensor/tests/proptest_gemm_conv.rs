//! Property-based parity tests for the GEMM convolution path.
//!
//! The direct kernels in `cc19_tensor::conv` are the reference
//! implementation; these properties pin the im2col+GEMM lowering
//! (`cc19_tensor::gemm_conv`) and the packed SGEMM engine
//! (`cc19_tensor::gemm`) to it over randomized shapes, strides and
//! paddings, and check the GEMM backward against finite differences
//! of the GEMM forward so the path is validated against calculus, not
//! just against another implementation.

use proptest::prelude::*;

use cc19_tensor::conv::{conv2d, conv2d_backward, conv_transpose2d, Conv2dSpec};
use cc19_tensor::gemm;
use cc19_tensor::gemm_conv::{
    conv2d_gemm, conv2d_gemm_backward, conv_transpose2d_gemm, conv_transpose2d_gemm_backward,
};
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

/// Inner product in f64 for tolerance headroom.
fn dot(a: &Tensor, b: &Tensor) -> f64 {
    a.data().iter().zip(b.data()).map(|(x, y)| (*x as f64) * (*y as f64)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM conv2d forward matches the direct kernel over random
    /// batch/channel/kernel/stride/padding combinations.
    #[test]
    fn gemm_conv2d_forward_matches_direct(
        seed in 0u64..10_000,
        n in 1usize..3,
        cin in 1usize..5,
        cout in 1usize..5,
        k in 1usize..5,
        stride in 1usize..3,
        padding in 0usize..3,
        h in 4usize..10,
    ) {
        prop_assume!(h + 2 * padding >= k);
        let mut rng = Xorshift::new(seed * 11 + 1);
        let spec = Conv2dSpec { stride, padding };
        let x = rng.uniform_tensor([n, cin, h, h], -1.0, 1.0);
        let w = rng.uniform_tensor([cout, cin, k, k], -1.0, 1.0);
        let b = rng.uniform_tensor([cout], -0.5, 0.5);
        let direct = conv2d(&x, &w, Some(&b), spec).unwrap();
        let lowered = conv2d_gemm(&x, &w, Some(&b), spec).unwrap();
        prop_assert_eq!(direct.dims(), lowered.dims());
        prop_assert!(direct.all_close(&lowered, 1e-3));
    }

    /// GEMM conv2d backward matches the direct backward (input, weight
    /// and bias gradients) over random shapes.
    #[test]
    fn gemm_conv2d_backward_matches_direct(
        seed in 0u64..10_000,
        n in 1usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        h in 4usize..9,
    ) {
        prop_assume!(h + 2 * padding >= k);
        let mut rng = Xorshift::new(seed * 17 + 3);
        let spec = Conv2dSpec { stride, padding };
        let x = rng.uniform_tensor([n, cin, h, h], -1.0, 1.0);
        let w = rng.uniform_tensor([cout, cin, k, k], -1.0, 1.0);
        let out = conv2d(&x, &w, None, spec).unwrap();
        let grad = rng.uniform_tensor(out.dims().to_vec(), -1.0, 1.0);
        let (dx, dw, db) = conv2d_backward(&x, &w, &grad, spec).unwrap();
        let (gx, gw, gb) = conv2d_gemm_backward(&x, &w, &grad, spec).unwrap();
        prop_assert!(dx.all_close(&gx, 1e-3));
        prop_assert!(dw.all_close(&gw, 1e-3));
        prop_assert!(db.all_close(&gb, 1e-3));
    }

    /// Finite-difference check: for L = <conv2d_gemm(x, w), G> the
    /// analytic gradients from `conv2d_gemm_backward` match central
    /// differences of the GEMM forward in x and in w. This validates
    /// the backward against calculus rather than another conv kernel.
    #[test]
    fn gemm_backward_matches_finite_differences(
        seed in 0u64..10_000,
        stride in 1usize..3,
        padding in 0usize..2,
        k in 2usize..4,
    ) {
        let h = 6usize;
        prop_assume!(h + 2 * padding >= k);
        let mut rng = Xorshift::new(seed * 29 + 7);
        let spec = Conv2dSpec { stride, padding };
        let x = rng.uniform_tensor([1, 2, h, h], -1.0, 1.0);
        let w = rng.uniform_tensor([3, 2, k, k], -1.0, 1.0);
        let out = conv2d_gemm(&x, &w, None, spec).unwrap();
        let cot = rng.uniform_tensor(out.dims().to_vec(), -1.0, 1.0);
        let (gx, gw, _) = conv2d_gemm_backward(&x, &w, &cot, spec).unwrap();

        let eps = 1e-2f32;
        // Probe a few coordinates of each gradient rather than the full
        // tensor: O(1) forward evaluations per case keeps the property fast.
        for probe in 0..4 {
            let i = (rng.next_u64() as usize) % x.data().len();
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = dot(&conv2d_gemm(&xp, &w, None, spec).unwrap(), &cot);
            let lm = dot(&conv2d_gemm(&xm, &w, None, spec).unwrap(), &cot);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            prop_assert!(
                (fd - gx.data()[i]).abs() < 2e-2 * (1.0 + fd.abs()),
                "dx[{}] probe {}: fd {} vs analytic {}", i, probe, fd, gx.data()[i]
            );

            let j = (rng.next_u64() as usize) % w.data().len();
            let mut wp = w.clone();
            wp.data_mut()[j] += eps;
            let mut wm = w.clone();
            wm.data_mut()[j] -= eps;
            let lp = dot(&conv2d_gemm(&x, &wp, None, spec).unwrap(), &cot);
            let lm = dot(&conv2d_gemm(&x, &wm, None, spec).unwrap(), &cot);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            prop_assert!(
                (fd - gw.data()[j]).abs() < 2e-2 * (1.0 + fd.abs()),
                "dw[{}] probe {}: fd {} vs analytic {}", j, probe, fd, gw.data()[j]
            );
        }
    }

    /// Adjointness of the GEMM transposed convolution:
    /// <conv_transpose2d_gemm(x), y> == <x, conv2d(y)> with the same
    /// weights — the defining property of the transpose, checked with
    /// the *direct* conv2d on the right so the two backends are tied
    /// together rather than each only self-consistent.
    #[test]
    fn gemm_conv_transpose_is_adjoint_of_conv(
        seed in 0u64..10_000,
        stride in 1usize..3,
        padding in 0usize..2,
        k in 1usize..4,
        cin in 1usize..4,
        cout in 1usize..4,
    ) {
        let n = 6usize;
        prop_assume!(n + 2 * padding >= k);
        let mut rng = Xorshift::new(seed * 37 + 11);
        let spec = Conv2dSpec { stride, padding };
        let x = rng.uniform_tensor([1, cin, n, n], -1.0, 1.0);
        let wt = rng.uniform_tensor([cin, cout, k, k], -1.0, 1.0);
        let oh = spec.transposed_out_extent(n, k);
        let y = rng.uniform_tensor([1, cout, oh, oh], -1.0, 1.0);

        let tx = conv_transpose2d_gemm(&x, &wt, None, spec).unwrap();
        let cy = conv2d(&y, &wt, None, spec).unwrap();
        let lhs = dot(&tx, &y);
        let rhs = dot(&cy, &x);
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// GEMM transposed-conv forward and backward match the direct
    /// transposed-conv kernels.
    #[test]
    fn gemm_conv_transpose_matches_direct(
        seed in 0u64..10_000,
        stride in 1usize..3,
        padding in 0usize..2,
        k in 1usize..4,
    ) {
        let n = 5usize;
        prop_assume!(n + 2 * padding >= k);
        // transposed output extent must be positive
        prop_assume!((n - 1) * stride + k > 2 * padding);
        let mut rng = Xorshift::new(seed * 41 + 13);
        let spec = Conv2dSpec { stride, padding };
        let x = rng.uniform_tensor([1, 3, n, n], -1.0, 1.0);
        let wt = rng.uniform_tensor([3, 2, k, k], -1.0, 1.0);
        let b = rng.uniform_tensor([2], -0.5, 0.5);
        let direct = conv_transpose2d(&x, &wt, Some(&b), spec).unwrap();
        let lowered = conv_transpose2d_gemm(&x, &wt, Some(&b), spec).unwrap();
        prop_assert!(direct.all_close(&lowered, 1e-3));

        let grad = rng.uniform_tensor(direct.dims().to_vec(), -1.0, 1.0);
        let (dx, dw, db) =
            cc19_tensor::conv::conv_transpose2d_backward(&x, &wt, &grad, spec).unwrap();
        let (gx, gw, gb) = conv_transpose2d_gemm_backward(&x, &wt, &grad, spec).unwrap();
        prop_assert!(dx.all_close(&gx, 1e-3));
        prop_assert!(dw.all_close(&gw, 1e-3));
        prop_assert!(db.all_close(&gb, 1e-3));
    }

    /// The packed SGEMM matches a naive triple loop for random sizes
    /// around the blocking boundaries (MR/NR/MC ragged tails).
    #[test]
    fn sgemm_matches_naive(
        seed in 0u64..10_000,
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
    ) {
        let mut rng = Xorshift::new(seed * 43 + 17);
        let a = rng.uniform_tensor([m, k], -1.0, 1.0);
        let b = rng.uniform_tensor([k, n], -1.0, 1.0);
        let fast = gemm::matmul(&a, &b).unwrap();
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a.data()[i * k + p];
                for j in 0..n {
                    naive[i * n + j] += aip * b.data()[p * n + j];
                }
            }
        }
        for (f, r) in fast.data().iter().zip(&naive) {
            prop_assert!((f - r).abs() <= 1e-4 * (1.0 + r.abs()), "{} vs {}", f, r);
        }
    }
}
