//! Classification AI — a 3D densely-connected convolutional classifier
//! (DenseNet-121 adapted for 3D volumes in the paper, §2.3.2; a
//! width/depth-reduced DenseNet here, same topology family).
//!
//! Input: `(B, 1, D, H, W)` normalized volumes. Output: one logit per
//! volume; `sigmoid(logit)` is the COVID-positive probability.

use cc19_nn::graph::{Graph, Var};
use cc19_nn::init::Init;
use cc19_nn::layers::{BatchNorm, Conv3d, Linear};
use cc19_nn::param::ParamStore;
use cc19_tensor::conv::Conv2dSpec;
use cc19_tensor::pool::PoolSpec;
use cc19_tensor::rng::Xorshift;
use cc19_tensor::{Tensor, TensorError};

use crate::Result;

/// Classifier hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierConfig {
    /// Stem width.
    pub base: usize,
    /// Dense growth rate.
    pub growth: usize,
    /// Dense layers per block.
    pub per_block: usize,
    /// Number of dense blocks (each followed by transition + pool).
    pub blocks: usize,
    /// Leaky-ReLU slope.
    pub leaky: f32,
}

impl ClassifierConfig {
    /// DenseNet-121-like proportions at reduced width (4 dense blocks, as
    /// in the paper's Figure description).
    pub fn reduced() -> Self {
        ClassifierConfig { base: 8, growth: 8, per_block: 2, blocks: 3, leaky: 0.01 }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        ClassifierConfig { base: 4, growth: 4, per_block: 1, blocks: 2, leaky: 0.01 }
    }
}

struct DenseLayer3d {
    bn_in: BatchNorm,
    conv1: Conv3d,
    bn_mid: BatchNorm,
    conv3: Conv3d,
}

impl DenseLayer3d {
    fn new(store: &mut ParamStore, name: &str, cin: usize, cfg: &ClassifierConfig, rng: &mut Xorshift) -> Self {
        let init = Init::KaimingLeaky { negative_slope: cfg.leaky };
        DenseLayer3d {
            bn_in: BatchNorm::new(store, &format!("{name}.bn_in"), cin),
            conv1: Conv3d::new(
                store,
                &format!("{name}.conv1"),
                cin,
                cfg.growth,
                1,
                Conv2dSpec { stride: 1, padding: 0 },
                init,
                rng,
            ),
            bn_mid: BatchNorm::new(store, &format!("{name}.bn_mid"), cfg.growth),
            conv3: Conv3d::new(
                store,
                &format!("{name}.conv3"),
                cfg.growth,
                cfg.growth,
                3,
                Conv2dSpec { stride: 1, padding: 1 },
                init,
                rng,
            ),
        }
    }

    fn forward(&self, g: &mut Graph, x: Var, leaky: f32, training: bool) -> Result<Var> {
        let h = self.bn_in.forward(g, x, training)?;
        let h = g.leaky_relu(h, leaky);
        let h = self.conv1.forward(g, h)?;
        let h = self.bn_mid.forward(g, h, training)?;
        let h = g.leaky_relu(h, leaky);
        let h = self.conv3.forward(g, h)?;
        g.concat_channels(&[x, h])
    }
}

struct Block3d {
    layers: Vec<DenseLayer3d>,
    transition: Conv3d,
    bn_t: BatchNorm,
}

/// The 3D DenseNet classifier.
pub struct DenseNet3d {
    /// Configuration.
    pub cfg: ClassifierConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    stem: Conv3d,
    bn_stem: BatchNorm,
    blocks: Vec<Block3d>,
    head: Linear,
}

impl DenseNet3d {
    /// Build with a seed.
    pub fn new(cfg: ClassifierConfig, seed: u64) -> Self {
        let mut rng = Xorshift::new(seed);
        let mut store = ParamStore::new();
        let init = Init::KaimingLeaky { negative_slope: cfg.leaky };
        let stem = Conv3d::new(
            &mut store,
            "stem",
            1,
            cfg.base,
            3,
            Conv2dSpec { stride: 1, padding: 1 },
            init,
            &mut rng,
        );
        let bn_stem = BatchNorm::new(&mut store, "bn_stem", cfg.base);

        let mut blocks = Vec::new();
        for b in 0..cfg.blocks {
            let layers = (0..cfg.per_block)
                .map(|i| {
                    DenseLayer3d::new(
                        &mut store,
                        &format!("b{b}.l{i}"),
                        cfg.base + i * cfg.growth,
                        &cfg,
                        &mut rng,
                    )
                })
                .collect();
            let cin = cfg.base + cfg.per_block * cfg.growth;
            let transition = Conv3d::new(
                &mut store,
                &format!("b{b}.trans"),
                cin,
                cfg.base,
                1,
                Conv2dSpec { stride: 1, padding: 0 },
                init,
                &mut rng,
            );
            let bn_t = BatchNorm::new(&mut store, &format!("b{b}.bn_t"), cfg.base);
            blocks.push(Block3d { layers, transition, bn_t });
        }
        let head = Linear::new(&mut store, "head", cfg.base, 1, Init::Gaussian(0.05), &mut rng);
        DenseNet3d { cfg, store, stem, bn_stem, blocks, head }
    }

    /// Forward a `(B, 1, D, H, W)` batch to `(B, 1)` logits.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Result<Var> {
        let dims = g.value(x).dims().to_vec();
        if dims.len() != 5 || dims[1] != 1 {
            return Err(TensorError::Incompatible(format!(
                "classifier expects (B,1,D,H,W), got {dims:?}"
            )));
        }
        let min_extent = 1usize << self.cfg.blocks;
        if dims[2] < min_extent || dims[3] < min_extent || dims[4] < min_extent {
            return Err(TensorError::Incompatible(format!(
                "volume {dims:?} too small for {} pooling stages",
                self.cfg.blocks
            )));
        }
        let leaky = self.cfg.leaky;
        let pool = PoolSpec { kernel: 2, stride: 2, padding: 0 };

        let mut h = self.stem.forward(g, x)?;
        h = self.bn_stem.forward(g, h, training)?;
        h = g.leaky_relu(h, leaky);

        for b in &self.blocks {
            h = g.max_pool3d(h, pool)?;
            for l in &b.layers {
                h = l.forward(g, h, leaky, training)?;
            }
            h = b.transition.forward(g, h)?;
            h = b.bn_t.forward(g, h, training)?;
            h = g.leaky_relu(h, leaky);
        }
        let pooled = g.global_avg_pool(h)?; // (B, base)
        self.head.forward(g, pooled)
    }

    /// COVID-positive probability for one `(D, H, W)` normalized volume.
    pub fn predict_proba(&self, volume: &Tensor) -> Result<f64> {
        volume.shape().expect_rank(3)?;
        let d = volume.dims().to_vec();
        let x = volume.reshape([1, 1, d[0], d[1], d[2]])?;
        let mut g = Graph::new();
        let xv = g.input(x);
        let logit = self.forward(&mut g, xv, false)?;
        let z = g.value(logit).data()[0] as f64;
        Ok(1.0 / (1.0 + (-z).exp()))
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// All batch-norm layers in a fixed order (checkpoint layout).
    fn batch_norms(&self) -> Vec<&BatchNorm> {
        let mut bns: Vec<&BatchNorm> = vec![&self.bn_stem];
        for b in &self.blocks {
            for l in &b.layers {
                bns.push(&l.bn_in);
                bns.push(&l.bn_mid);
            }
            bns.push(&b.bn_t);
        }
        bns
    }

    fn config_fingerprint(&self) -> Vec<f32> {
        vec![
            self.cfg.base as f32,
            self.cfg.growth as f32,
            self.cfg.per_block as f32,
            self.cfg.blocks as f32,
        ]
    }

    /// Save weights + batch-norm running statistics.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.to_checkpoint().save(path)
    }

    /// The classifier's full state (config fingerprint, parameters,
    /// batch-norm running stats) as an in-memory checkpoint — what
    /// [`DenseNet3d::save`] writes to disk, also the weight-identity
    /// input of the monitoring layer's content-addressed study cache.
    pub fn to_checkpoint(&self) -> cc19_nn::checkpoint::Checkpoint {
        let mut ck = cc19_nn::checkpoint::Checkpoint::new();
        ck.push("classifier.config", self.config_fingerprint());
        ck.push("classifier.params", self.store.snapshot());
        for (i, bn) in self.batch_norms().into_iter().enumerate() {
            ck.push(format!("classifier.bn{i}.mean"), bn.running_mean());
            ck.push(format!("classifier.bn{i}.var"), bn.running_var());
        }
        ck
    }

    /// Load a checkpoint written by [`DenseNet3d::save`] into this
    /// (structurally identical) network.
    pub fn load(&self, path: &std::path::Path) -> std::io::Result<()> {
        let ck = cc19_nn::checkpoint::Checkpoint::load(path)?;
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        if ck.get("classifier.config").ok_or_else(|| bad("missing config"))?
            != self.config_fingerprint()
        {
            return Err(bad("checkpoint was saved from a different classifier configuration"));
        }
        let params = ck.get("classifier.params").ok_or_else(|| bad("missing params"))?;
        self.store.load_snapshot(params).map_err(|e| bad(&format!("parameter mismatch: {e}")))?;
        for (i, bn) in self.batch_norms().into_iter().enumerate() {
            let mean =
                ck.get(&format!("classifier.bn{i}.mean")).ok_or_else(|| bad("missing bn mean"))?;
            let var =
                ck.get(&format!("classifier.bn{i}.var")).ok_or_else(|| bad("missing bn var"))?;
            bn.set_running_stats(mean.to_vec(), var.to_vec());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 1);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([2, 1, 8, 16, 16]));
        let y = net.forward(&mut g, x, false).unwrap();
        assert_eq!(g.value(y).dims(), &[2, 1]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 2);
        let mut g = Graph::new();
        let rank4 = g.input(Tensor::zeros([1, 8, 16, 16]));
        assert!(net.forward(&mut g, rank4, false).is_err());
        let too_small = g.input(Tensor::zeros([1, 1, 2, 16, 16]));
        assert!(net.forward(&mut g, too_small, false).is_err());
    }

    #[test]
    fn proba_in_unit_interval() {
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 3);
        let mut rng = Xorshift::new(4);
        let vol = rng.uniform_tensor([8, 16, 16], 0.0, 1.0);
        let p = net.predict_proba(&vol).unwrap();
        assert!((0.0..=1.0).contains(&p), "p {p}");
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 5);
        let mut rng = Xorshift::new(6);
        let x = rng.uniform_tensor([2, 1, 8, 8, 8], 0.0, 1.0);
        let y = Tensor::from_vec([2, 1], vec![1.0, 0.0]).unwrap();
        let mut g = Graph::new();
        let xv = g.input(x);
        let yv = g.input(y);
        let logit = net.forward(&mut g, xv, true).unwrap();
        let loss = g.bce_with_logits_loss(logit, yv).unwrap();
        net.store.zero_grad();
        g.backward(loss);
        for p in net.store.params() {
            let p = p.borrow();
            assert!(p.grad.is_some(), "no grad for {}", p.name);
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = std::env::temp_dir().join("cc19_cls_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cls.ckpt");
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 31);
        let mut rng = Xorshift::new(32);
        let vol = rng.uniform_tensor([8, 16, 16], 0.0, 1.0);
        // warm the BN stats
        {
            let mut g = Graph::new();
            let x = g.input(vol.reshape([1, 1, 8, 16, 16]).unwrap());
            net.forward(&mut g, x, true).unwrap();
        }
        let p_before = net.predict_proba(&vol).unwrap();
        net.save(&path).unwrap();
        let other = DenseNet3d::new(ClassifierConfig::tiny(), 777);
        other.load(&path).unwrap();
        let p_after = other.predict_proba(&vol).unwrap();
        assert!((p_before - p_after).abs() < 1e-9, "{p_before} vs {p_after}");
        // config mismatch rejected
        let wrong = DenseNet3d::new(ClassifierConfig::reduced(), 1);
        assert!(wrong.load(&path).is_err());
    }

    #[test]
    fn learns_blob_presence() {
        // Volumes with a bright blob vs without: the classifier should
        // separate them after a few steps.
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 7);
        let mut opt = cc19_nn::optim::Adam::new(1e-2);
        let make = |seed: u64, blob: bool| {
            let mut rng = Xorshift::new(seed);
            let mut v = rng.uniform_tensor([8, 16, 16], 0.0, 0.3);
            if blob {
                for z in 3..5 {
                    for y in 6..10 {
                        for x in 6..10 {
                            v.set(&[z, y, x], 0.9);
                        }
                    }
                }
            }
            v
        };
        let mut last_loss = f32::INFINITY;
        for step in 0..60 {
            let pos = make(step as u64 * 2, true);
            let neg = make(step as u64 * 2 + 1, false);
            let mut batch = Tensor::zeros([2, 1, 8, 16, 16]);
            batch.data_mut()[..2048].copy_from_slice(pos.data());
            batch.data_mut()[2048..].copy_from_slice(neg.data());
            let labels = Tensor::from_vec([2, 1], vec![1.0, 0.0]).unwrap();
            let mut g = Graph::new();
            let xv = g.input(batch);
            let yv = g.input(labels);
            let logit = net.forward(&mut g, xv, true).unwrap();
            let loss = g.bce_with_logits_loss(logit, yv).unwrap();
            last_loss = g.value(loss).item().unwrap();
            net.store.zero_grad();
            g.backward(loss);
            opt.step(&net.store);
        }
        assert!(last_loss < 0.5, "loss {last_loss}");
        let p_pos = net.predict_proba(&make(1000, true)).unwrap();
        let p_neg = net.predict_proba(&make(1001, false)).unwrap();
        assert!(p_pos > p_neg, "pos {p_pos} neg {p_neg}");
    }
}
