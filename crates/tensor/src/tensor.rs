//! The core `Tensor` type: contiguous, row-major, `f32`.

use crate::{Result, Shape, TensorError};

/// A contiguous, row-major `f32` tensor.
///
/// All ops in this crate produce fresh contiguous tensors; there are no
/// views. This trades some memory traffic for simple, auto-vectorizable
/// kernels and data-race freedom under rayon (see crate docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a shape and a data buffer.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// Rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::new(&[]), data: vec![value] }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Set element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a scalar (or one-element) tensor.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() == 1 {
            Ok(self.data[0])
        } else {
            Err(TensorError::Incompatible(format!(
                "item() requires exactly one element, tensor has {}",
                self.data.len()
            )))
        }
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), actual: self.data.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// In-place reshape (no data copy).
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) -> Result<()> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), actual: self.data.len() });
        }
        self.shape = shape;
        Ok(())
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.shape.expect_same(&other.shape)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Assert elementwise closeness within `tol` (test helper).
    pub fn all_close(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec([2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec([2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 7.5);
        assert_eq!(t.at(&[1, 2]), 7.5);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.data()[5], 7.5);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.0).item().unwrap(), 3.0);
        assert!(Tensor::zeros([2]).item().is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn close_and_diff() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![1.0, 2.5, 3.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.all_close(&b, 0.5));
        assert!(!a.all_close(&b, 0.4));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros([2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
