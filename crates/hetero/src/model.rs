//! The roofline predictor: DDnet per-kernel-class operation totals and
//! per-device time predictions for each optimization stage.

use cc19_kernels::count::{
    batch_norm_counts, concat_counts, conv_layer_counts, leaky_relu_counts, pool_layer_counts,
    unpool_layer_counts,
};
use cc19_kernels::ddnet_exec::DdnetShape;
use cc19_kernels::{OpCounts, OptLevel};

use crate::devices::{Device, DeviceClass};

/// Operation totals per kernel class for one DDnet inference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// All convolution layers.
    pub conv: OpCounts,
    /// All deconvolution layers.
    pub deconv: OpCounts,
    /// Pooling, un-pooling, activations, batch norm, concatenation.
    pub other: OpCounts,
}

/// Walk the Table 2 layer sequence (as `cc19-kernels::ddnet_exec` executes
/// it) and accumulate analytic operation counts per kernel class.
pub fn ddnet_class_counts(shape: DdnetShape) -> ClassCounts {
    let DdnetShape { n, base, growth, per_block } = shape;
    let (n, base, growth) = (n as u64, base as u64, growth as u64);
    let mut cc = ClassCounts::default();

    let conv_bn_act = |cc: &mut ClassCounts, h: u64, cin: u64, cout: u64, k: u64| {
        cc.conv += conv_layer_counts(h, h, cin, cout, k);
        cc.other += batch_norm_counts(h * h * cout) + leaky_relu_counts(h * h * cout);
    };
    let deconv_bn_act = |cc: &mut ClassCounts, h: u64, cin: u64, cout: u64, k: u64| {
        cc.deconv += conv_layer_counts(h, h, cin, cout, k);
        cc.other += batch_norm_counts(h * h * cout) + leaky_relu_counts(h * h * cout);
    };

    // encoder
    conv_bn_act(&mut cc, n, 1, base, 7);
    let mut cur = n;
    for _b in 0..4 {
        cc.other += pool_layer_counts(cur, cur, base);
        cur /= 2;
        let mut ch = base;
        for _l in 0..per_block {
            conv_bn_act(&mut cc, cur, ch, growth, 1);
            conv_bn_act(&mut cc, cur, growth, growth, 5);
            cc.other += concat_counts(cur * cur * (ch + growth));
            ch += growth;
        }
        conv_bn_act(&mut cc, cur, ch, base, 1);
    }

    // decoder (5×5 deconv base -> 2·base, concat skip, 1×1 deconv
    // 3·base -> base|1)
    for s in 0..4 {
        cc.other += unpool_layer_counts(cur, cur, base);
        cur *= 2;
        deconv_bn_act(&mut cc, cur, base, 2 * base, 5);
        cc.other += concat_counts(cur * cur * 3 * base);
        let out_c = if s == 3 { 1 } else { base };
        deconv_bn_act(&mut cc, cur, 3 * base, out_c, 1);
    }
    cc
}

/// Predicted per-class times in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictedTimes {
    /// Convolution kernels.
    pub conv: f64,
    /// Deconvolution kernels.
    pub deconv: f64,
    /// Other kernels.
    pub other: f64,
}

impl PredictedTimes {
    /// Total time.
    pub fn total(&self) -> f64 {
        self.conv + self.deconv + self.other
    }
}

/// Generic-optimization slowdown factors relative to the fully-tuned
/// kernel (Table 7's small PF/LU deltas, calibrated from the paper's CPU
/// column: 1.95 → 1.69 → 1.64 s).
fn level_factor(level: OptLevel) -> f64 {
    match level {
        OptLevel::Baseline | OptLevel::Refactored => 1.19,
        OptLevel::RefactoredPrefetch => 1.03,
        OptLevel::RefactoredPrefetchUnrolled => 1.0,
    }
}

fn roofline(dev: &Device, counts: OpCounts, vector5: bool, tap_reuse: bool) -> f64 {
    let load_frac = if tap_reuse { dev.tap_dram_fraction } else { 1.0 };
    let bytes = (counts.loads as f64 * load_frac + counts.stores as f64) * 4.0;
    let t_mem = bytes / dev.effective_bw();
    let t_cmp = counts.flops as f64 / dev.effective_flops(vector5);
    t_mem.max(t_cmp)
}

/// Predict per-class kernel times for one DDnet inference.
///
/// `fpga_full` enables the §4.2.3 FPGA-specific optimizations
/// (deconvolution vectorization ×5 with dedicated kernels); Table 7's last
/// column explicitly excludes them, Table 5 includes them.
pub fn predict_kernel_times(
    dev: &Device,
    counts: ClassCounts,
    level: OptLevel,
    fpga_full: bool,
) -> PredictedTimes {
    let f = level_factor(level);
    let vector5 = fpga_full && dev.class == DeviceClass::Fpga;

    let conv = roofline(dev, counts.conv, false, true) * f;
    let other = roofline(dev, counts.other, false, false) * f;
    let deconv = if level == OptLevel::Baseline {
        // scatter: one synchronized read-modify-write per filter tap; taps
        // = flops / 2. The optimized-roofline time is a lower bound.
        let taps = counts.deconv.flops as f64 / 2.0;
        (taps / dev.atomic_ops_per_sec).max(roofline(dev, counts.deconv, false, true))
    } else {
        roofline(dev, counts.deconv, vector5, true) * f
    };
    PredictedTimes { conv, deconv, other }
}

/// The Table 7 row for a device: total DDnet time at each optimization
/// stage (generic optimizations only — no FPGA vectorization, matching
/// the paper's footnote).
pub fn predict_table7_row(dev: &Device, shape: DdnetShape) -> [f64; 4] {
    let counts = ddnet_class_counts(shape);
    let mut row = [0.0f64; 4];
    for (i, level) in OptLevel::ALL.into_iter().enumerate() {
        row[i] = predict_kernel_times(dev, counts, level, false).total();
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::DEVICES;

    fn paper_counts() -> ClassCounts {
        ddnet_class_counts(DdnetShape::paper())
    }

    #[test]
    fn counts_are_dominated_by_conv_and_deconv() {
        let cc = paper_counts();
        assert!(cc.conv.flops > 10 * cc.other.flops);
        assert!(cc.deconv.flops > 10 * cc.other.flops);
        // The paper claims conv has ~1.87x the flops of deconv (§5.1.3);
        // with the Table 2 layer shapes the decoder's full-resolution 5×5
        // deconvolutions actually carry slightly *more* flops than the
        // encoder (ratio ~0.6) — recorded as a discrepancy in
        // EXPERIMENTS.md. Either way they are the same order of magnitude.
        let ratio = cc.conv.flops as f64 / cc.deconv.flops as f64;
        assert!((0.3..4.0).contains(&ratio), "conv/deconv flop ratio {ratio}");
    }

    #[test]
    fn optimized_ordering_tracks_bandwidth() {
        // Table 5 ordering: V100 < P100 ~ Vega < T4 < CPU < FPGA.
        let cc = paper_counts();
        let t = |name: &str| {
            predict_kernel_times(
                Device::find(name).unwrap(),
                cc,
                OptLevel::RefactoredPrefetchUnrolled,
                true,
            )
            .total()
        };
        assert!(t("V100") < t("P100"), "V100 {} P100 {}", t("V100"), t("P100"));
        assert!(t("P100") < t("T4"));
        assert!(t("T4") < t("6128"));
        assert!(t("6128") < t("Arria"));
    }

    #[test]
    fn predictions_land_near_paper_table4() {
        // Not exact — but each platform's optimized total should be within
        // ~2.5x of the paper's OpenCL column (V100 0.10, P100 0.25, Vega
        // 0.25, T4 0.29, CPU 1.64, FPGA 16.74 s).
        let cc = paper_counts();
        let paper: [(&str, f64); 6] = [
            ("V100", 0.10),
            ("P100", 0.25),
            ("Vega", 0.25),
            ("T4", 0.29),
            ("6128", 1.64),
            ("Arria", 16.74),
        ];
        for (name, expect) in paper {
            let got = predict_kernel_times(
                Device::find(name).unwrap(),
                cc,
                OptLevel::RefactoredPrefetchUnrolled,
                true,
            )
            .total();
            let ratio = got / expect;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{name}: predicted {got:.3} vs paper {expect:.3} (x{ratio:.2})"
            );
        }
    }

    #[test]
    fn baseline_is_catastrophic_on_gpus_mild_on_cpu() {
        // Table 7 shape: V100 baseline/LU ~ 600x, CPU ~ 4x.
        let v100 = Device::find("V100").unwrap();
        let row = predict_table7_row(v100, DdnetShape::paper());
        let gpu_ratio = row[0] / row[3];
        assert!(gpu_ratio > 50.0, "V100 baseline/LU ratio {gpu_ratio}");

        let cpu = Device::find("6128").unwrap();
        let row = predict_table7_row(cpu, DdnetShape::paper());
        let cpu_ratio = row[0] / row[3];
        assert!((1.5..15.0).contains(&cpu_ratio), "CPU baseline/LU ratio {cpu_ratio}");
    }

    #[test]
    fn table7_rows_are_monotone_nonincreasing() {
        for dev in &DEVICES {
            let row = predict_table7_row(dev, DdnetShape::paper());
            for i in 1..4 {
                assert!(
                    row[i] <= row[i - 1] * 1.0001,
                    "{}: stage {i} regressed: {row:?}",
                    dev.name
                );
            }
        }
    }

    #[test]
    fn fpga_vectorization_flips_conv_deconv_balance() {
        // Table 5: on the FPGA (with vectorized deconv) convolution became
        // the most expensive kernel — opposite of every other platform
        // (§5.1.3).
        let cc = paper_counts();
        let fpga = Device::find("Arria").unwrap();
        let full = predict_kernel_times(fpga, cc, OptLevel::RefactoredPrefetchUnrolled, true);
        assert!(full.conv > full.deconv, "FPGA conv {} deconv {}", full.conv, full.deconv);
        // everywhere else deconv stays at least comparable to conv
        let v100 = Device::find("V100").unwrap();
        let g = predict_kernel_times(v100, cc, OptLevel::RefactoredPrefetchUnrolled, true);
        assert!(g.deconv > 0.5 * g.conv);
        // and without the FPGA-specific kernels the FPGA's deconv
        // dominates again (Table 7 footnote)
        let generic = predict_kernel_times(fpga, cc, OptLevel::RefactoredPrefetchUnrolled, false);
        assert!(generic.deconv > full.deconv);
    }
}
