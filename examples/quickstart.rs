//! Quickstart: diagnose one synthetic CT study with the ComputeCOVID19+
//! pipeline.
//!
//! ```text
//! cargo run --release -p computecovid19 --example quickstart
//! ```
//!
//! This wires the three AI stages together end-to-end (Enhancement →
//! Segmentation → Classification) on an untrained reduced framework — the
//! goal is to show the public API surface; see `low_dose_workflow` and the
//! `cc19-bench` harnesses for *trained* pipelines.

use cc19_data::sources::{DataSource, Modality, ScanMeta};
use cc19_data::volume::CtVolume;
use cc19_ctsim::phantom::Severity;
use computecovid19::framework::Framework;
use computecovid19::turnaround;

fn main() {
    // 1. Obtain a CT study. Real deployments read a scanner's output; the
    //    reproduction synthesizes one from the chest-phantom data source.
    let meta = ScanMeta {
        id: 1234,
        source: DataSource::Midrc,
        modality: Modality::Ct,
        positive: true,
        severity: Some(Severity::Moderate),
        slices: 8,
        circular_artifact: true, // BIMCV/MIDRC-style reconstruction circle
        has_projections: false,
    };
    let mut volume = CtVolume::synthesize(&meta, 64, 8).expect("synthesize study");
    println!("synthesized study {}: {}x{}x{} voxels", meta.id, volume.slices(), volume.n(), volume.n());

    // 2. Data preparation (paper §2.1): remove the circular boundary.
    cc19_data::prep::remove_circular_boundary(&mut volume);
    println!("data prep: circular reconstruction boundary removed");

    // 3. Build the framework and diagnose.
    let framework = Framework::untrained_reduced(42);
    let report = framework.diagnose(&volume.hu, 0.5).expect("diagnose");

    println!("\n--- diagnosis report ---");
    println!("COVID-19 probability : {:.3}", report.probability);
    println!("decision @ 0.5       : {}", if report.positive { "POSITIVE" } else { "negative" });
    println!("enhancement time     : {:?}", report.t_enhance);
    println!("segmentation time    : {:?}", report.t_segment);
    println!("classification time  : {:?}", report.t_classify);

    // 4. The turnaround story (paper §1): CT minutes vs RT-PCR days.
    let cmp = turnaround::compare(report.total_time());
    println!("\n--- turnaround vs RT-PCR ---");
    println!("RT-PCR pathway       : {:.1} hours", cmp.rt_pcr_secs / 3600.0);
    println!("ComputeCOVID19+      : {:.1} minutes", cmp.cc19_secs / 60.0);
    println!("speedup              : {:.0}x", cmp.speedup);
    println!("sensitivity gain     : +{:.0} percentage points", cmp.sensitivity_gain_pp);
}
