//~ path: crates/nn/src/fixture.rs
//~ expect: determinism
// Ambient RNG in the nn crate: weight init must take an explicit seed.

pub fn sloppy_init(buf: &mut [f32]) {
    let mut rng = thread_rng();
    for v in buf.iter_mut() {
        *v = rng.gen_range(-0.1..0.1);
    }
}
