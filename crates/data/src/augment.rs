//! Training-time augmentation for Classification AI (§3.3.1 of the paper):
//!
//! - Gaussian noise with probability 0.75 and variance 0.1;
//! - contrast adjustment with probability 0.5;
//! - intensity scale oscillation with magnitude 0.1.
//!
//! The paper applies these on the Clara pipeline's normalized intensities;
//! we do the same on our normalized volumes.

use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

/// Augmentation configuration (defaults = paper values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of adding Gaussian noise.
    pub noise_prob: f32,
    /// Variance of the Gaussian noise.
    pub noise_var: f32,
    /// Probability of adjusting contrast.
    pub contrast_prob: f32,
    /// Contrast gamma range (log-uniform in `[1/(1+r), 1+r]`).
    pub contrast_range: f32,
    /// Intensity scale magnitude: scale drawn from `[1-m, 1+m]`.
    pub intensity_magnitude: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            noise_prob: 0.75,
            noise_var: 0.1,
            contrast_prob: 0.5,
            contrast_range: 0.3,
            intensity_magnitude: 0.1,
        }
    }
}

/// Apply the augmentation stack in place. Input is assumed normalized to
/// roughly `[0, 1]`; outputs are clamped back into `[0, 1]`.
pub fn augment(volume: &mut Tensor, cfg: AugmentConfig, rng: &mut Xorshift) {
    // Intensity scale oscillation (always applied, magnitude-bounded).
    let scale = 1.0 + rng.uniform(-cfg.intensity_magnitude, cfg.intensity_magnitude);
    for v in volume.data_mut() {
        *v *= scale;
    }

    // Contrast adjustment: gamma curve around the midpoint.
    if rng.next_f32() < cfg.contrast_prob {
        let gamma = if rng.next_f32() < 0.5 {
            1.0 + rng.uniform(0.0, cfg.contrast_range)
        } else {
            1.0 / (1.0 + rng.uniform(0.0, cfg.contrast_range))
        };
        for v in volume.data_mut() {
            *v = v.clamp(0.0, 1.0).powf(gamma);
        }
    }

    // Gaussian noise.
    if rng.next_f32() < cfg.noise_prob {
        let std = cfg.noise_var.sqrt();
        for v in volume.data_mut() {
            *v += rng.normal_ms(0.0, std);
        }
    }

    for v in volume.data_mut() {
        *v = v.clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_stays_in_unit_range() {
        let mut rng = Xorshift::new(1);
        for seed in 0..20u64 {
            let mut r = Xorshift::new(seed);
            let mut vol = r.uniform_tensor([4, 8, 8], 0.0, 1.0);
            augment(&mut vol, AugmentConfig::default(), &mut rng);
            assert!(vol.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn augmentation_changes_the_volume() {
        let mut rng = Xorshift::new(2);
        let mut r = Xorshift::new(3);
        let orig = r.uniform_tensor([4, 8, 8], 0.2, 0.8);
        let mut vol = orig.clone();
        augment(&mut vol, AugmentConfig::default(), &mut rng);
        assert_ne!(orig.data(), vol.data());
    }

    #[test]
    fn noise_disabled_when_prob_zero() {
        let cfg = AugmentConfig {
            noise_prob: 0.0,
            contrast_prob: 0.0,
            intensity_magnitude: 0.0,
            ..Default::default()
        };
        let mut rng = Xorshift::new(4);
        let mut r = Xorshift::new(5);
        let orig = r.uniform_tensor([2, 4, 4], 0.2, 0.8);
        let mut vol = orig.clone();
        augment(&mut vol, cfg, &mut rng);
        assert_eq!(orig.data(), vol.data());
    }

    #[test]
    fn deterministic_per_rng_state() {
        let orig = {
            let mut r = Xorshift::new(6);
            r.uniform_tensor([2, 4, 4], 0.0, 1.0)
        };
        let mut a = orig.clone();
        let mut b = orig.clone();
        augment(&mut a, AugmentConfig::default(), &mut Xorshift::new(7));
        augment(&mut b, AugmentConfig::default(), &mut Xorshift::new(7));
        assert_eq!(a.data(), b.data());
    }
}
