//! Property-based tests for the tensor substrate.

use proptest::prelude::*;

use cc19_tensor::conv::{conv2d, conv_transpose2d, Conv2dSpec};
use cc19_tensor::ops;
use cc19_tensor::pool::{max_pool2d, PoolSpec};
use cc19_tensor::resize::upsample_bilinear2d;
use cc19_tensor::Tensor;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a + b == b + a, elementwise.
    #[test]
    fn add_commutes(data in small_vec(24)) {
        let a = Tensor::from_vec([4, 6], data[..24].to_vec()).unwrap();
        let b = Tensor::from_vec([4, 6], data.iter().rev().cloned().collect::<Vec<_>>()).unwrap();
        let ab = ops::add(&a, &b).unwrap();
        let ba = ops::add(&b, &a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    /// (a - b) + b == a up to float error.
    #[test]
    fn sub_add_roundtrip(data in small_vec(32)) {
        let a = Tensor::from_vec([32], data.clone()).unwrap();
        let b = Tensor::from_vec([32], data.iter().map(|v| v * 0.5 - 1.0).collect::<Vec<_>>()).unwrap();
        let d = ops::sub(&a, &b).unwrap();
        let back = ops::add(&d, &b).unwrap();
        prop_assert!(back.all_close(&a, 1e-4));
    }

    /// scale distributes over add.
    #[test]
    fn scale_distributes(data in small_vec(16), c in -3.0f32..3.0) {
        let a = Tensor::from_vec([16], data[..16].to_vec()).unwrap();
        let b = Tensor::from_vec([16], data.iter().map(|v| v + 1.0).collect::<Vec<_>>()).unwrap();
        let lhs = ops::scale(&ops::add(&a, &b).unwrap(), c);
        let rhs = ops::add(&ops::scale(&a, c), &ops::scale(&b, c)).unwrap();
        prop_assert!(lhs.all_close(&rhs, 1e-3));
    }

    /// concat then split returns the original parts.
    #[test]
    fn concat_split_roundtrip(c1 in 1usize..4, c2 in 1usize..4, data in small_vec(200)) {
        let n = 5usize;
        let a = Tensor::from_vec([1, c1, n, n], data[..c1 * n * n].to_vec()).unwrap();
        let b = Tensor::from_vec([1, c2, n, n], data[c1 * n * n..(c1 + c2) * n * n].to_vec()).unwrap();
        let cat = ops::concat(&[&a, &b], 1).unwrap();
        let parts = ops::split(&cat, 1, &[c1, c2]).unwrap();
        prop_assert_eq!(parts[0].data(), a.data());
        prop_assert_eq!(parts[1].data(), b.data());
    }

    /// matmul with identity is identity.
    #[test]
    fn matmul_identity(rows in 1usize..5, data in small_vec(25)) {
        let a = Tensor::from_vec([rows, 5], data[..rows * 5].to_vec()).unwrap();
        let mut id = Tensor::zeros([5, 5]);
        for i in 0..5 {
            id.set(&[i, i], 1.0);
        }
        let out = ops::matmul(&a, &id).unwrap();
        prop_assert!(out.all_close(&a, 1e-5));
    }

    /// transpose is an involution.
    #[test]
    fn transpose_involution(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
        let mut rng = cc19_tensor::rng::Xorshift::new(seed + 1);
        let a = rng.uniform_tensor([r, c], -5.0, 5.0);
        let att = ops::transpose2(&ops::transpose2(&a).unwrap()).unwrap();
        prop_assert_eq!(att.data(), a.data());
    }

    /// convolution is linear in the input: conv(a*x) == a*conv(x).
    #[test]
    fn conv_is_linear(seed in 0u64..1000, alpha in -2.0f32..2.0) {
        let mut rng = cc19_tensor::rng::Xorshift::new(seed * 7 + 1);
        let x = rng.uniform_tensor([1, 2, 6, 6], -1.0, 1.0);
        let w = rng.uniform_tensor([3, 2, 3, 3], -1.0, 1.0);
        let spec = Conv2dSpec { stride: 1, padding: 1 };
        let lhs = conv2d(&ops::scale(&x, alpha), &w, None, spec).unwrap();
        let rhs = ops::scale(&conv2d(&x, &w, None, spec).unwrap(), alpha);
        prop_assert!(lhs.all_close(&rhs, 1e-3));
    }

    /// <conv(x), y> == <x, conv_transpose(y)> — adjointness for random
    /// shapes, strides and paddings.
    #[test]
    fn conv_adjointness(
        seed in 0u64..500,
        stride in 1usize..3,
        padding in 0usize..2,
        k in 1usize..4,
    ) {
        // keep shapes valid: padded input must fit the kernel
        let n = 6usize;
        prop_assume!(n + 2 * padding >= k);
        let mut rng = cc19_tensor::rng::Xorshift::new(seed * 13 + 5);
        let spec = Conv2dSpec { stride, padding };
        let x = rng.uniform_tensor([1, 2, n, n], -1.0, 1.0);
        let wt = rng.uniform_tensor([2, 3, k, k], -1.0, 1.0);
        let oh = spec.transposed_out_extent(n, k);
        let y = rng.uniform_tensor([1, 3, oh, oh], -1.0, 1.0);

        let tx = conv_transpose2d(&x, &wt, None, spec).unwrap();
        let cy = conv2d(&y, &wt, None, spec).unwrap();
        let lhs: f64 = tx.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = cy.data().iter().zip(x.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// max-pool output values are drawn from the input.
    #[test]
    fn max_pool_values_come_from_input(seed in 0u64..1000) {
        let mut rng = cc19_tensor::rng::Xorshift::new(seed + 3);
        let x = rng.uniform_tensor([1, 2, 8, 8], -5.0, 5.0);
        let (out, arg) = max_pool2d(&x, PoolSpec::DDNET).unwrap();
        for (plane, (&v, &a)) in out.data().iter().zip(&arg).enumerate().map(|(i, p)| (i / 16, p)) {
            let src = x.data()[plane * 64 + a as usize];
            prop_assert_eq!(v, src);
        }
        // and the max of the output equals the max of the input interior
        prop_assert!(cc19_tensor::reduce::max(&out) <= cc19_tensor::reduce::max(&x) + 1e-6);
    }

    /// bilinear upsample stays within the input's value hull.
    #[test]
    fn upsample_respects_hull(seed in 0u64..1000) {
        let mut rng = cc19_tensor::rng::Xorshift::new(seed + 9);
        let x = rng.uniform_tensor([1, 1, 5, 5], -3.0, 3.0);
        let up = upsample_bilinear2d(&x, 2).unwrap();
        let (lo, hi) = (cc19_tensor::reduce::min(&x), cc19_tensor::reduce::max(&x));
        prop_assert!(cc19_tensor::reduce::min(&up) >= lo - 1e-5);
        prop_assert!(cc19_tensor::reduce::max(&up) <= hi + 1e-5);
    }

    /// mse(a, a) == 0, mse symmetric, psnr infinite iff identical.
    #[test]
    fn mse_properties(data in small_vec(16)) {
        let a = Tensor::from_vec([16], data.clone()).unwrap();
        let b = Tensor::from_vec([16], data.iter().map(|v| v + 0.5).collect::<Vec<_>>()).unwrap();
        prop_assert_eq!(cc19_tensor::reduce::mse(&a, &a).unwrap(), 0.0);
        let ab = cc19_tensor::reduce::mse(&a, &b).unwrap();
        let ba = cc19_tensor::reduce::mse(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((ab - 0.25).abs() < 1e-5);
    }
}
