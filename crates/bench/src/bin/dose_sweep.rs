//! Extension experiment (the paper's §7 future work): stress-test the
//! framework across X-ray dose levels — "analyzing the accuracy of
//! diagnosis with such low quality images would be an ideal stress test
//! for our framework."
//!
//! For a sweep of blank-scan factors (dose levels) this harness measures:
//! - raw low-dose image quality (MSE / MS-SSIM vs full dose),
//! - DDnet-enhanced quality (one network per dose, trained at that dose),
//!
//! producing the dose-response curve of the enhancement benefit.

use cc19_bench::{banner, parse_scale, Scale, TablePrinter};
use cc19_data::dataset::EnhancementDataset;
use cc19_data::lowdose_pairs::PairConfig;
use cc19_ddnet::trainer::{evaluate_pairs, train_enhancement, TrainConfig};
use cc19_ddnet::{Ddnet, DdnetConfig};

fn main() {
    let scale = parse_scale();
    banner("Extension: dose sweep", "enhancement benefit vs X-ray dose (§7 future work)", scale);

    let (n, pairs, epochs) = match scale {
        Scale::Full => (48usize, 28usize, 20usize),
        Scale::Quick => (32, 18, 15),
    };
    // blank-scan factors from the paper's 1e6 down to very low dose
    let doses: &[f64] = &[1.0e6, 1.0e5, 3.0e4, 1.0e4, 3.0e3];

    let t = TablePrinter::new(&[12, 13, 14, 13, 14, 12]);
    t.row(&[&"Dose (b)", &"Raw MSE", &"Raw MS-SSIM", &"Enh MSE", &"Enh MS-SSIM", &"MSE cut"]);
    t.sep();
    let mut csv = String::from("blank_scan,raw_mse,raw_ms_ssim,enh_mse,enh_ms_ssim\n");
    let mut improvements = Vec::new();
    for &b in doses {
        let mut pc = PairConfig::reduced(n, 77);
        pc.views = n / 2;
        pc.dose.blank_scan = b;
        let ds = EnhancementDataset::generate(pairs, pc).unwrap();
        let net = Ddnet::new(DdnetConfig::reduced(), 77);
        let mut tc = TrainConfig::quick(epochs);
        tc.lr = 1.5e-3;
        train_enhancement(&net, &ds.train, &ds.val, tc).unwrap();
        let (raw, enh) = evaluate_pairs(&net, &ds.test).unwrap();
        let cut = 1.0 - enh.mse / raw.mse;
        improvements.push((b, cut));
        t.row(&[
            &format!("{b:.0e}"),
            &format!("{:.5}", raw.mse),
            &format!("{:.1} %", raw.ms_ssim * 100.0),
            &format!("{:.5}", enh.mse),
            &format!("{:.1} %", enh.ms_ssim * 100.0),
            &format!("{:.0} %", cut * 100.0),
        ]);
        csv.push_str(&format!("{b},{},{},{},{}\n", raw.mse, raw.ms_ssim, enh.mse, enh.ms_ssim));
    }
    t.sep();
    println!("\nexpected shape: enhancement always helps; the absolute benefit grows as the");
    println!("dose falls (more noise to remove), until the very lowest doses where the");
    println!("signal itself degrades — the paper's motivation for projection-domain work (§7).");
    cc19_bench::write_result("dose_sweep.csv", &csv);
}
