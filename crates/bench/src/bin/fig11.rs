//! Figure 11: training-loss curves for Enhancement AI (11a) and
//! Classification AI (11b). Writes CSV series for plotting.

use cc19_bench::{banner, parse_scale, Scale};
use cc19_analysis::classifier::{ClassifierConfig, DenseNet3d};
use cc19_analysis::train::{train_classifier, ClassTrainConfig, Example};
use cc19_data::dataset::{ClassificationDataset, EnhancementDataset};
use cc19_data::lowdose_pairs::PairConfig;
use cc19_data::prep::{normalize_for_enhancement, PrepConfig};
use cc19_ddnet::trainer::{train_enhancement, TrainConfig};
use cc19_ddnet::{Ddnet, DdnetConfig};

fn main() {
    let scale = parse_scale();
    banner("Fig 11", "training loss curves (Enhancement AI, Classification AI)", scale);

    let (n, pairs, e_epochs, c_epochs, vols) = match scale {
        Scale::Full => (48usize, 32usize, 25usize, 30usize, 24usize),
        Scale::Quick => (32, 16, 12, 15, 12),
    };

    // --- 11a: Enhancement AI ---
    let mut pc = PairConfig::reduced(n, 3);
    pc.views = n / 2;
    let ds = EnhancementDataset::generate(pairs, pc).unwrap();
    let net = Ddnet::new(DdnetConfig::reduced(), 3);
    let mut tc = TrainConfig::quick(e_epochs);
    tc.lr = 2e-3;
    let stats = train_enhancement(&net, &ds.train, &ds.val, tc).unwrap();
    println!("Enhancement AI ({} epochs):", e_epochs);
    println!("  epoch | train loss | val loss | val MS-SSIM");
    let mut csv_a = String::from("epoch,train_loss,val_loss,val_ms_ssim\n");
    for s in &stats {
        println!("  {:>5} | {:.5}    | {:.5}  | {:.2}%", s.epoch, s.train_loss, s.val_loss, s.val_ms_ssim);
        csv_a.push_str(&format!("{},{},{},{}\n", s.epoch, s.train_loss, s.val_loss, s.val_ms_ssim));
    }
    let falling = stats.last().unwrap().train_loss < stats[0].train_loss;
    println!("  -> monotone-ish decreasing: {falling} (paper Fig 11a shows a decreasing curve)\n");
    cc19_bench::write_result("fig11a_enhancement_loss.csv", &csv_a);

    // --- 11b: Classification AI ---
    let cds = ClassificationDataset::generate(vols, 2, n, 8).unwrap();
    let prep = PrepConfig::scaled(1);
    let seg = cc19_analysis::segmentation::LungSegmenter::default();
    let examples: Vec<Example> = cds
        .train
        .iter()
        .map(|item| {
            let unit = normalize_for_enhancement(&item.volume.hu, prep);
            let mask = seg.segment_volume(&item.volume.hu).unwrap();
            let masked = cc19_analysis::segmentation::apply_mask(&unit, &mask).unwrap();
            Example { volume: masked, label: item.label }
        })
        .collect();
    let cls = DenseNet3d::new(ClassifierConfig::tiny(), 4);
    let mut ctc = ClassTrainConfig::quick(c_epochs);
    ctc.lr = 1e-2;
    ctc.augment = None;
    let cstats = train_classifier(&cls, &examples, ctc).unwrap();
    println!("Classification AI ({} epochs):", c_epochs);
    println!("  epoch | train loss (BCE)");
    let mut csv_b = String::from("epoch,train_loss\n");
    for s in &cstats {
        println!("  {:>5} | {:.5}", s.epoch, s.train_loss);
        csv_b.push_str(&format!("{},{}\n", s.epoch, s.train_loss));
    }
    let falling = cstats.last().unwrap().train_loss < cstats[0].train_loss;
    println!("  -> decreasing: {falling} (paper Fig 11b shows a decreasing curve)");
    cc19_bench::write_result("fig11b_classification_loss.csv", &csv_b);
}
