//! Longitudinal disease progression phantoms.
//!
//! The monitoring half of the paper needs *series* of scans of one
//! patient whose lesion burden changes over time in a known way. This
//! module takes the per-slice [`ChestPhantom`] anatomy (stable per
//! patient seed) and rescales its lesions deterministically per
//! timestep: a [`ProgressionCourse`] is a list of per-timestep scale
//! factors applied to every lesion's Gaussian `sigma`, so lesion *area*
//! (and therefore burden) grows as the square of the factor while the
//! patient's anatomy, lesion sites, and texture stay fixed. Factor 1.0
//! reproduces the baseline scan bit-for-bit; factor 0.0 clears the
//! lesions entirely (full recovery).
//!
//! Everything is deterministic in `(patient, timestep)` — the
//! monitoring end-to-end tests compare measured burden deltas against
//! [`ProgressionCourse::programmed_burden`], the closed-form burden the
//! course dialed in.

use rayon::prelude::*;

use cc19_ctsim::phantom::{ChestPhantom, Severity};
use cc19_tensor::Tensor;

use crate::sources::{DataSource, Modality, ScanMeta};
use crate::volume::CtVolume;
use crate::Result;

/// A patient's programmed lesion trajectory: one lesion-size scale
/// factor per timestep. Factors multiply every lesion's `sigma`, so
/// burden ∝ factor² per lesion; `0.0` clears lesions, `1.0` is the
/// untouched baseline anatomy.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressionCourse {
    /// Per-timestep lesion scale factors (each `>= 0`).
    pub factors: Vec<f32>,
}

impl ProgressionCourse {
    /// A strictly worsening course over `steps` timesteps: factors climb
    /// linearly from 0.55 to 1.3, so burden rises monotonically.
    pub fn worsening(steps: usize) -> Self {
        let factors = (0..steps)
            .map(|t| {
                if steps <= 1 {
                    1.0
                } else {
                    0.55 + 0.75 * t as f32 / (steps - 1) as f32
                }
            })
            .collect();
        ProgressionCourse { factors }
    }

    /// A strictly recovering course over `steps` timesteps: factors fall
    /// linearly from 1.3 toward 0.25, so burden shrinks monotonically.
    pub fn recovering(steps: usize) -> Self {
        let mut c = Self::worsening(steps);
        c.factors.reverse();
        ProgressionCourse { factors: c.factors.iter().map(|f| f - 0.3).collect() }
    }

    /// An explicit factor list (clamped to `>= 0`).
    pub fn custom(factors: Vec<f32>) -> Self {
        ProgressionCourse { factors: factors.into_iter().map(|f| f.max(0.0)).collect() }
    }

    /// Number of timesteps.
    pub fn steps(&self) -> usize {
        self.factors.len()
    }

    /// The factor at `timestep` (last factor held for out-of-range
    /// steps, 1.0 for an empty course).
    pub fn factor(&self, timestep: usize) -> f32 {
        match self.factors.get(timestep).or(self.factors.last()) {
            Some(f) => f.max(0.0),
            None => 1.0,
        }
    }

    /// The closed-form lesion burden this course programs at `timestep`
    /// for the given patient: the sum over slices of the phantom's
    /// `lesion_burden` (Σ peak·σ²) after scaling. The e2e tests compare
    /// measured burden ordering against this.
    pub fn programmed_burden(
        &self,
        patient: u64,
        timestep: usize,
        slices: usize,
        severity: Severity,
    ) -> f64 {
        let f = self.factor(timestep) as f64;
        let base: f64 = (0..slices)
            .map(|s| {
                let z = (s as f32 + 0.5) / slices as f32;
                ChestPhantom::subject(patient, z, Some(severity)).lesion_burden() as f64
            })
            .sum();
        base * f * f
    }
}

/// Scale a phantom's lesions in place by `factor` (σ ← factor·σ). A
/// factor at or below zero removes the lesions entirely — a zero-sigma
/// Gaussian is a division by zero in `Lesion::hu_at`, and physically a
/// fully resorbed lesion simply is not there.
fn scale_lesions(phantom: &mut ChestPhantom, factor: f32) {
    if factor <= 0.0 {
        phantom.lesions.clear();
    } else {
        for l in &mut phantom.lesions {
            l.sigma *= factor;
        }
    }
}

/// Catalog metadata for one timestep of a progression series. The scan
/// id is the patient id (the anatomy seed); the timestep only rescales
/// lesions, it never reseeds anatomy.
fn timestep_meta(patient: u64, slices: usize, severity: Severity) -> ScanMeta {
    ScanMeta {
        id: patient,
        source: DataSource::Midrc,
        modality: Modality::Ct,
        positive: true,
        severity: Some(severity),
        slices,
        circular_artifact: false,
        has_projections: false,
    }
}

/// Synthesize the scan of `patient` at `timestep` of `course`:
/// baseline anatomy from the patient seed, lesions rescaled by the
/// course factor, rasterized at `n`×`n` over `slices` slices.
pub fn progression_volume(
    patient: u64,
    timestep: usize,
    course: &ProgressionCourse,
    n: usize,
    slices: usize,
    severity: Severity,
) -> Result<CtVolume> {
    let factor = course.factor(timestep);
    let mut hu = Tensor::zeros([slices, n, n]);
    let plane = n * n;
    hu.data_mut().par_chunks_mut(plane).enumerate().for_each(|(s, out)| {
        let z = (s as f32 + 0.5) / slices as f32;
        let mut phantom = ChestPhantom::subject(patient, z, Some(severity));
        scale_lesions(&mut phantom, factor);
        let img = phantom.rasterize_hu(n);
        out.copy_from_slice(img.data());
    });
    Ok(CtVolume { hu, meta: timestep_meta(patient, slices, severity) })
}

/// The full series of a course: one volume per timestep, in order.
pub fn progression_series(
    patient: u64,
    course: &ProgressionCourse,
    n: usize,
    slices: usize,
    severity: Severity,
) -> Result<Vec<CtVolume>> {
    (0..course.steps())
        .map(|t| progression_volume(patient, t, course, n, slices, severity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATIENT: u64 = 0xC19;

    #[test]
    fn factor_one_reproduces_baseline_bits() {
        let course = ProgressionCourse::custom(vec![1.0]);
        let vol = progression_volume(PATIENT, 0, &course, 48, 4, Severity::Moderate).unwrap();
        let base =
            CtVolume::synthesize(&timestep_meta(PATIENT, 4, Severity::Moderate), 48, 4).unwrap();
        assert_eq!(vol.hu.data(), base.hu.data());
    }

    #[test]
    fn timesteps_are_deterministic_and_distinct() {
        let course = ProgressionCourse::worsening(4);
        let a = progression_volume(PATIENT, 2, &course, 32, 4, Severity::Moderate).unwrap();
        let b = progression_volume(PATIENT, 2, &course, 32, 4, Severity::Moderate).unwrap();
        let c = progression_volume(PATIENT, 3, &course, 32, 4, Severity::Moderate).unwrap();
        assert_eq!(a.hu.data(), b.hu.data());
        assert_ne!(a.hu.data(), c.hu.data());
    }

    #[test]
    fn programmed_burden_is_monotone_in_the_course() {
        let course = ProgressionCourse::worsening(4);
        let burdens: Vec<f64> = (0..4)
            .map(|t| course.programmed_burden(PATIENT, t, 4, Severity::Moderate))
            .collect();
        for w in burdens.windows(2) {
            assert!(w[1] > w[0], "programmed burden not monotone: {burdens:?}");
        }
        let rec = ProgressionCourse::recovering(4);
        let burdens: Vec<f64> =
            (0..4).map(|t| rec.programmed_burden(PATIENT, t, 4, Severity::Moderate)).collect();
        for w in burdens.windows(2) {
            assert!(w[1] < w[0], "recovering burden not monotone: {burdens:?}");
        }
    }

    #[test]
    fn zero_factor_clears_lesions() {
        let course = ProgressionCourse::custom(vec![0.0]);
        let vol = progression_volume(PATIENT, 0, &course, 48, 4, Severity::Severe).unwrap();
        let healthy_meta = ScanMeta {
            positive: false,
            severity: None,
            ..timestep_meta(PATIENT, 4, Severity::Severe)
        };
        // lesions gone ⇒ identical to the healthy synthesis of the same
        // patient (anatomy and texture are lesion-independent)
        let healthy = CtVolume::synthesize(&healthy_meta, 48, 4).unwrap();
        assert_eq!(vol.hu.data(), healthy.hu.data());
        assert_eq!(course.programmed_burden(PATIENT, 0, 4, Severity::Severe), 0.0);
    }

    #[test]
    fn out_of_range_timestep_holds_the_last_factor() {
        let course = ProgressionCourse::custom(vec![0.5, 2.0]);
        assert_eq!(course.factor(1), 2.0);
        assert_eq!(course.factor(7), 2.0);
        assert_eq!(ProgressionCourse::custom(vec![]).factor(0), 1.0);
    }
}
