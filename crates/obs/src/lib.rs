//! # cc19-obs
//!
//! The observability substrate of the ComputeCOVID19+ reproduction
//! (DESIGN.md §12). Dependency-free, three layers:
//!
//! * [`registry`] — thread-safe counters, gauges, and exact-sample
//!   histograms (nearest-rank quantiles, the workspace's single
//!   quantile implementation) addressed by static name + label set;
//! * [`span`] — hierarchical RAII spans ([`span!`]) aggregated by
//!   dotted path, with a bounded trace buffer;
//! * [`trace`] — request-scoped distributed tracing: a [`TraceCtx`]
//!   minted at admission and carried explicitly across thread and wire
//!   hops, a pre-sized span-record ring, sorted-key JSONL tree export,
//!   and the critical-path latency analyzer (DESIGN.md §17);
//! * [`export`] — Prometheus text exposition, CSV, JSON, and JSONL
//!   trace dumps, all sorted-key deterministic.
//!
//! Every timestamp flows through the injectable [`clock::Clock`] trait:
//! binaries read a real [`clock::MonotonicClock`] (the one allowlisted
//! `Instant::now` in the determinism-linted crates), tests and the
//! reproducible bench inject a [`clock::ManualClock`]. Setting
//! `CC19_OBS_DETERMINISTIC=1` makes [`global`] (and every
//! `Registry::new`) auto-tick 1 µs per clock read, so
//! `results/bench_obs.json` is byte-identical across runs.
//!
//! Metric names are `snake_case` with the registering crate's prefix
//! (`tensor_gemm_flops_total`, `ddnet_step_seconds`, …) — enforced by
//! the `metric-naming` rule in `cc19-lint`.

use std::sync::{Arc, OnceLock};

pub mod clock;
pub mod export;
pub mod histogram;
mod lock;
pub mod registry;
pub mod span;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use histogram::Histogram;
pub use registry::{Counter, Entry, Gauge, HistogramHandle, Registry, Snapshot, Timer};
pub use span::{Span, SpanStat};
pub use trace::{SpanRecord, SpanStatus, TraceCtx};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry, created on first use with the
/// environment-selected default clock (see [`clock::default_clock`]).
pub fn global() -> &'static Registry {
    global_arc_ref()
}

fn global_arc_ref() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// The global registry as a shareable `Arc` (what [`span!`] guards and
/// injected subsystems hold).
pub fn global_arc() -> Arc<Registry> {
    Arc::clone(global_arc_ref())
}

/// The global registry's clock — the workspace-wide timing source for
/// instrumented code outside an explicitly injected registry.
pub fn global_clock() -> Arc<dyn Clock> {
    global().clock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("obs_global_probe_total").inc();
        assert!(global_arc()
            .snapshot()
            .counters
            .iter()
            .any(|e| e.name == "obs_global_probe_total" && e.value >= 1));
    }
}
