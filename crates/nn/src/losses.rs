//! Loss functions.
//!
//! - [`Graph::mse_loss`] / [`Graph::l1_loss`] — regression losses;
//! - [`Graph::bce_with_logits_loss`] — Eq (2) of the paper (Classification
//!   AI), in the numerically-stable logits form;
//! - [`enhancement_loss`] — Eq (1) of the paper:
//!   `L = ||y - f(x)||^2 + 0.1 * (1 - MS-SSIM(y, f(x)))`.

use cc19_tensor::Tensor;

use crate::graph::{Graph, Var};
use crate::ssim::ms_ssim_graph;
use crate::Result;

impl Graph {
    /// Mean-squared-error loss (scalar var).
    pub fn mse_loss(&mut self, pred: Var, target: Var) -> Result<Var> {
        let d = self.sub(pred, target)?;
        let sq = self.mul(d, d)?;
        Ok(self.mean(sq))
    }

    /// Mean-absolute-error loss (scalar var). The gradient at exactly zero
    /// is taken as zero.
    pub fn l1_loss(&mut self, pred: Var, target: Var) -> Result<Var> {
        let d = self.sub(pred, target)?;
        let v = cc19_tensor::ops::abs(self.value(d));
        let did = d.0;
        let a = self.record(v, &[d], Box::new(move |vals, g| {
            let s = cc19_tensor::ops::map(&vals[did], |x| {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            });
            vec![(did, cc19_tensor::ops::mul(g, &s).expect("shape"))]
        }));
        Ok(self.mean(a))
    }

    /// Binary cross-entropy over logits (Eq (2) of the paper, stable form):
    ///
    /// `loss = mean( max(z,0) - z*y + ln(1 + exp(-|z|)) )`,
    /// `dloss/dz = (sigmoid(z) - y) / N`.
    ///
    /// `targets` is a constant (no gradient is propagated to it).
    pub fn bce_with_logits_loss(&mut self, logits: Var, targets: Var) -> Result<Var> {
        let z = self.value(logits);
        let y = self.value(targets);
        z.shape().expect_same(y.shape())?;
        let n = z.numel().max(1) as f32;
        let mut acc = 0.0f64;
        for (&zv, &yv) in z.data().iter().zip(y.data()) {
            acc += (zv.max(0.0) - zv * yv + (1.0 + (-zv.abs()).exp()).ln()) as f64;
        }
        let lid = logits.0;
        let tid = targets.0;
        Ok(self.record(
            Tensor::scalar((acc / n as f64) as f32),
            &[logits],
            Box::new(move |vals, g| {
                let gs = g.data()[0] / n;
                let z = &vals[lid];
                let y = &vals[tid];
                let mut dz = Tensor::zeros(z.shape().clone());
                for ((d, &zv), &yv) in dz.data_mut().iter_mut().zip(z.data()).zip(y.data()) {
                    let s = 1.0 / (1.0 + (-zv).exp());
                    *d = gs * (s - yv);
                }
                vec![(lid, dz)]
            }),
        ))
    }
}

/// The paper's Enhancement-AI composite loss, Eq (1):
///
/// `L = MSE(target, pred) + 0.1 * (1 - MS-SSIM(target, pred))`
///
/// `levels` controls the MS-SSIM pyramid depth (5 in the paper; fewer for
/// reduced-resolution training — see DESIGN.md §5).
pub fn enhancement_loss(g: &mut Graph, pred: Var, target: Var, levels: usize) -> Result<Var> {
    let mse = g.mse_loss(pred, target)?;
    let msssim = ms_ssim_graph(g, pred, target, levels, 1.0)?;
    let one_minus = g.scale(msssim, -1.0);
    let one_minus = g.add_scalar(one_minus, 1.0);
    let weighted = g.scale(one_minus, 0.1);
    g.add(mse, weighted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_tensor::rng::Xorshift;

    #[test]
    fn mse_loss_value_and_grad() {
        let mut g = Graph::new();
        let p = g.input_grad(Tensor::from_vec([2], vec![1.0, 3.0]).unwrap());
        let t = g.input(Tensor::from_vec([2], vec![0.0, 0.0]).unwrap());
        let loss = g.mse_loss(p, t).unwrap();
        assert!((g.value(loss).item().unwrap() - 5.0).abs() < 1e-6);
        let grads = g.backward(loss);
        // d/dp mean((p-t)^2) = 2(p-t)/N
        assert_eq!(grads.get(p).unwrap().data(), &[1.0, 3.0]);
    }

    #[test]
    fn l1_loss_value_and_grad() {
        let mut g = Graph::new();
        let p = g.input_grad(Tensor::from_vec([2], vec![2.0, -4.0]).unwrap());
        let t = g.input(Tensor::zeros([2]));
        let loss = g.l1_loss(p, t).unwrap();
        assert!((g.value(loss).item().unwrap() - 3.0).abs() < 1e-6);
        let grads = g.backward(loss);
        assert_eq!(grads.get(p).unwrap().data(), &[0.5, -0.5]);
    }

    #[test]
    fn bce_matches_reference_values() {
        // z = 0, y = 1 -> ln 2
        let mut g = Graph::new();
        let z = g.input(Tensor::scalar(0.0));
        let y = g.input(Tensor::scalar(1.0));
        let loss = g.bce_with_logits_loss(z, y).unwrap();
        assert!((g.value(loss).item().unwrap() - std::f32::consts::LN_2).abs() < 1e-6);

        // confident correct prediction -> near zero
        let mut g = Graph::new();
        let z = g.input(Tensor::scalar(10.0));
        let y = g.input(Tensor::scalar(1.0));
        let loss = g.bce_with_logits_loss(z, y).unwrap();
        assert!(g.value(loss).item().unwrap() < 1e-3);

        // confident wrong prediction -> ~|z|
        let mut g = Graph::new();
        let z = g.input(Tensor::scalar(-10.0));
        let y = g.input(Tensor::scalar(1.0));
        let loss = g.bce_with_logits_loss(z, y).unwrap();
        assert!((g.value(loss).item().unwrap() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let mut rng = Xorshift::new(1);
        let z0 = rng.uniform_tensor([5], -2.0, 2.0);
        let y0 = Tensor::from_vec([5], vec![1.0, 0.0, 1.0, 0.0, 1.0]).unwrap();

        let mut g = Graph::new();
        let z = g.input_grad(z0.clone());
        let y = g.input(y0.clone());
        let loss = g.bce_with_logits_loss(z, y).unwrap();
        let grads = g.backward(loss);
        let analytic = grads.get(z).unwrap().clone();

        let f = |zt: &Tensor| {
            let mut g = Graph::new();
            let z = g.input(zt.clone());
            let y = g.input(y0.clone());
            let loss = g.bce_with_logits_loss(z, y).unwrap();
            g.value(loss).item().unwrap()
        };
        let eps = 1e-2;
        for idx in 0..5 {
            let mut zp = z0.clone();
            zp.data_mut()[idx] += eps;
            let mut zm = z0.clone();
            zm.data_mut()[idx] -= eps;
            let fd = (f(&zp) - f(&zm)) / (2.0 * eps);
            assert!(
                (fd - analytic.data()[idx]).abs() < 1e-3,
                "idx {idx}: fd {fd} vs {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn bce_rejects_shape_mismatch() {
        let mut g = Graph::new();
        let z = g.input(Tensor::zeros([2]));
        let y = g.input(Tensor::zeros([3]));
        assert!(g.bce_with_logits_loss(z, y).is_err());
    }

    #[test]
    fn enhancement_loss_is_zero_for_identical_images() {
        let mut rng = Xorshift::new(2);
        let img = rng.uniform_tensor([1, 1, 32, 32], 0.2, 0.8);
        let mut g = Graph::new();
        let p = g.input(img.clone());
        let t = g.input(img);
        let loss = enhancement_loss(&mut g, p, t, 1).unwrap();
        assert!(g.value(loss).item().unwrap().abs() < 1e-4);
    }

    #[test]
    fn enhancement_loss_increases_with_noise() {
        let mut rng = Xorshift::new(3);
        let clean = rng.uniform_tensor([1, 1, 32, 32], 0.2, 0.8);
        let mut noisy_small = clean.clone();
        let mut noisy_big = clean.clone();
        let mut nrng = Xorshift::new(4);
        for v in noisy_small.data_mut() {
            *v += nrng.normal_ms(0.0, 0.01);
        }
        for v in noisy_big.data_mut() {
            *v += nrng.normal_ms(0.0, 0.1);
        }
        let eval = |a: &Tensor, b: &Tensor| {
            let mut g = Graph::new();
            let p = g.input(a.clone());
            let t = g.input(b.clone());
            let loss = enhancement_loss(&mut g, p, t, 1).unwrap();
            g.value(loss).item().unwrap()
        };
        let ls = eval(&noisy_small, &clean);
        let lb = eval(&noisy_big, &clean);
        assert!(lb > ls, "noisier image should lose more: {lb} vs {ls}");
        assert!(ls > 0.0);
    }
}
