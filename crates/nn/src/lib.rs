//! # cc19-nn
//!
//! A small define-by-run deep-learning framework: tape-based autograd over
//! `cc19-tensor`, the layer set needed by the ComputeCOVID19+ networks
//! (DDnet, 3D DenseNet-121-lite, CNN segmenter), Adam with exponential LR
//! decay, and the paper's losses — MSE, (MS-)SSIM and binary cross-entropy.
//!
//! The engine is deliberately simple: a `Graph` is rebuilt every forward
//! pass (define-by-run, like the PyTorch code the paper used); parallelism
//! lives inside the tensor kernels, not across graph nodes.


pub mod checkpoint;
pub mod graph;
pub mod init;
pub mod layers;
pub mod losses;
pub mod optim;
pub mod param;
pub mod ssim;

pub use cc19_tensor::conv_backend::ConvBackend;
pub use graph::{Graph, Var};
pub use param::{Param, ParamRef, ParamStore};

/// Crate-wide result alias (re-uses the tensor error type).
pub type Result<T> = cc19_tensor::Result<T>;
