//! Consistent-hash ring over worker nodes, with virtual nodes and a
//! generation counter.
//!
//! Each worker owns `vnodes` points on a 64-bit ring (hashed with the
//! workspace's seeded `mix64`, so placement is deterministic and
//! machine-independent); a study id routes to the owner of the first
//! point at or after its hash. Removing a node deletes only that node's
//! points, so only the studies it owned move — the minimal-disruption
//! property that makes re-dispatch after a death cheap — and bumps the
//! ring **generation**, the membership epoch the router exports as a
//! gauge and the fault plan keys its decisions on.

use std::collections::BTreeSet;

use cc19_dist::fault::mix64;

/// Consistent-hash ring: sorted `(hash, node)` points plus the live node
/// set and a generation counter bumped on every membership change.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    points: Vec<(u64, usize)>,
    nodes: BTreeSet<usize>,
    generation: u64,
}

fn point_hash(node: usize, replica: usize) -> u64 {
    mix64(mix64(node as u64 + 1) ^ mix64(replica as u64).rotate_left(17))
}

impl HashRing {
    /// Ring over nodes `0..n`, each with `vnodes` points (at least 1).
    pub fn new(n: usize, vnodes: usize) -> Self {
        let mut ring =
            HashRing { vnodes: vnodes.max(1), points: Vec::new(), nodes: BTreeSet::new(), generation: 0 };
        for node in 0..n {
            ring.insert_points(node);
        }
        ring.generation = 0; // initial membership is generation 0
        ring
    }

    fn insert_points(&mut self, node: usize) {
        if !self.nodes.insert(node) {
            return;
        }
        for replica in 0..self.vnodes {
            self.points.push((point_hash(node, replica), node));
        }
        self.points.sort_unstable();
    }

    /// The owner of `study_id`, or `None` on an empty ring. Pure: the
    /// same id always routes to the same node within a generation.
    pub fn route(&self, study_id: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(study_id);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[idx % self.points.len()];
        Some(node)
    }

    /// Add `node` (a joined worker); bumps the generation if it was not
    /// already a member.
    pub fn add(&mut self, node: usize) {
        if self.nodes.contains(&node) {
            return;
        }
        self.insert_points(node);
        self.generation += 1;
    }

    /// Remove a dead node's points; bumps the generation. Returns `true`
    /// if the node was a member.
    pub fn remove(&mut self, node: usize) -> bool {
        if !self.nodes.remove(&node) {
            return false;
        }
        self.points.retain(|&(_, n)| n != node);
        self.generation += 1;
        true
    }

    /// Membership epoch (bumped on every add/remove).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Live node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `node` is currently a member.
    pub fn contains(&self, node: usize) -> bool {
        self.nodes.contains(&node)
    }

    /// True when no nodes remain.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(4, 16);
        for id in 0..512u64 {
            let a = ring.route(id).unwrap();
            let b = ring.route(id).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn every_node_owns_a_reasonable_share() {
        let ring = HashRing::new(4, 32);
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[ring.route(id).unwrap()] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(
                (400..=2000).contains(&c),
                "node {node} owns {c}/4000 studies — vnode spread is broken"
            );
        }
    }

    #[test]
    fn removal_only_moves_the_dead_nodes_keys() {
        let mut ring = HashRing::new(4, 16);
        let before: Vec<usize> = (0..2000u64).map(|id| ring.route(id).unwrap()).collect();
        assert!(ring.remove(2));
        assert_eq!(ring.generation(), 1);
        for (id, &owner) in before.iter().enumerate() {
            let now = ring.route(id as u64).unwrap();
            if owner != 2 {
                assert_eq!(now, owner, "study {id} moved although its owner survived");
            } else {
                assert_ne!(now, 2, "study {id} still routes to the dead node");
            }
        }
    }

    #[test]
    fn add_restores_membership_and_bumps_generation() {
        let mut ring = HashRing::new(3, 8);
        assert!(ring.remove(1));
        assert!(!ring.contains(1));
        ring.add(1);
        assert!(ring.contains(1));
        assert_eq!(ring.generation(), 2);
        assert_eq!(ring.node_count(), 3);
        // Re-adding is a no-op.
        ring.add(1);
        assert_eq!(ring.generation(), 2);
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let mut ring = HashRing::new(1, 4);
        assert!(ring.remove(0));
        assert_eq!(ring.route(7), None);
        assert!(ring.is_empty());
    }
}
