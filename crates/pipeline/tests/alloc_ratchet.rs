//! Counting-allocator ratchet for the `diagnose` hot path (ROADMAP
//! item 3, DESIGN.md §16).
//!
//! The static `hot-path-alloc` lint rule names every allocation *site*
//! reachable from the `// cc19-hot` seeds; this test pins the number of
//! allocation *events* a warm `diagnose` actually performs. The two
//! cross-validate: the lint's allowlisted inventory is the list of
//! places the events below can come from, and compiled inference plans
//! must drive both to zero. The pin is an upper bound — lowering it is
//! progress, raising it is a regression that needs a written
//! justification here.
//!
//! This file holds exactly one `#[test]`: the counting gate is a
//! process-global, so a second concurrent test in the same binary would
//! pollute the count.
// cc19-lint: allow(unsafe, "#[global_allocator] requires implementing GlobalAlloc, an unsafe trait; the shim delegates every call to std's System allocator unchanged and only bumps atomic counters")
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use cc19_data::dataset::ClassificationDataset;
use computecovid19::framework::Framework;

/// Delegates to [`System`], counting alloc/realloc/alloc_zeroed events
/// while the gate is up. The serial rayon shim keeps `diagnose`
/// single-threaded, so the count is exactly reproducible.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events in one warm `diagnose` of a 32×32×4 study on the
/// reduced untrained pipeline, measured 2026-08: 8194 events, dominated
/// by the tape-based autograd graph's per-op tensors (the 123-site
/// static inventory in `results/lint_report.json` names the sources).
/// ROADMAP item 3's success metric is zero; until the plan compiler
/// lands, this documents how far away we are. Lower freely; raise only
/// with a justification comment.
const WARM_DIAGNOSE_ALLOC_CEILING: u64 = 8194;

#[test]
fn warm_diagnose_allocation_count_is_pinned() {
    let ds = ClassificationDataset::generate(1, 1, 32, 4).expect("dataset");
    let fw = Framework::untrained_reduced(5);
    let vol = &ds.test[0].volume.hu;

    // Warmup: first diagnose pays one-time costs (metric registration,
    // scratch-pool population, lazy tables).
    let warm = fw.diagnose(vol, 0.5).expect("warmup diagnose");

    EVENTS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let hot = fw.diagnose(vol, 0.5).expect("warm diagnose");
    COUNTING.store(false, Ordering::SeqCst);
    let events = EVENTS.load(Ordering::SeqCst);

    assert_eq!(warm.probability, hot.probability, "warm run must be bit-identical");
    assert!(
        events <= WARM_DIAGNOSE_ALLOC_CEILING,
        "warm diagnose performed {events} allocation events, above the pinned \
         ceiling of {WARM_DIAGNOSE_ALLOC_CEILING}; a hot-path change added heap \
         traffic (see the hot-path-alloc inventory in results/lint_report.json) — \
         remove it or justify raising the pin in crates/pipeline/tests/alloc_ratchet.rs"
    );
    assert!(
        events > 0,
        "warm diagnose performed zero allocations: ROADMAP item 3 is done — \
         flip this assert, set the ceiling to 0, and celebrate in CHANGES.md"
    );
}
