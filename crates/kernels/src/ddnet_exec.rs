//! Whole-DDnet inference on the hand-written kernels, with per-kernel-class
//! timing — the measurement behind the CPU rows of Tables 4, 5 and 7.
//!
//! Mirrors the paper's OpenCL execution split (Fig 10): the *convolution
//! kernel* covers convolution + batch norm + activation + pooling; the
//! *deconvolution kernel* covers deconvolution + batch norm + activation +
//! un-pooling. Timings are reported separately for convolution,
//! deconvolution and "other kernels" exactly as in Table 5.

use std::sync::Arc;
use std::time::Duration;

use cc19_obs::Clock;
use cc19_tensor::rng::Xorshift;

use crate::conv::{conv2d, ConvShape};
use crate::deconv::deconv2d;
use crate::others::{batch_norm_inplace, concat_channels, leaky_relu_inplace, max_pool3x3s2, unpool_bilinear2x};
use crate::OptLevel;

/// DDnet shape parameters for the kernel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdnetShape {
    /// Input extent (square).
    pub n: usize,
    /// Stem / transition width (paper: 16).
    pub base: usize,
    /// Dense growth rate (paper: 16).
    pub growth: usize,
    /// Dense layers per block (paper: 4).
    pub per_block: usize,
}

impl DdnetShape {
    /// The paper's 512×512 configuration.
    pub fn paper() -> Self {
        DdnetShape { n: 512, base: 16, growth: 16, per_block: 4 }
    }

    /// Reduced shape for quick runs.
    pub fn reduced(n: usize) -> Self {
        DdnetShape { n, base: 16, growth: 16, per_block: 4 }
    }
}

/// Accumulated per-kernel-class execution time (Table 5 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTimes {
    /// Convolution kernels.
    pub conv: Duration,
    /// Deconvolution kernels.
    pub deconv: Duration,
    /// Everything else: pooling, un-pooling, activation, batch norm,
    /// concatenation.
    pub other: Duration,
}

impl KernelTimes {
    /// Total wall time.
    pub fn total(&self) -> Duration {
        self.conv + self.deconv + self.other
    }
}

struct Ctx {
    level: OptLevel,
    times: KernelTimes,
    rng: Xorshift,
    clock: Arc<dyn Clock>,
}

impl Ctx {
    /// Duration since a `now_ns` reading on the injected clock.
    fn elapsed(&self, t0: u64) -> Duration {
        Duration::from_nanos(self.clock.now_ns().saturating_sub(t0))
    }

    fn rand_w(&mut self, len: usize) -> Vec<f32> {
        (0..len).map(|_| self.rng.uniform(-0.1, 0.1)).collect()
    }

    /// conv + BN + leaky (timed into conv / other)
    fn conv_bn_act(&mut self, input: &[f32], cin: usize, cout: usize, hw: (usize, usize), k: usize) -> Vec<f32> {
        let (h, w) = hw;
        let s = ConvShape { cin, cout, h, w, k, pad: k / 2 };
        let weight = self.rand_w(cout * cin * k * k);
        let bias = self.rand_w(cout);
        let t0 = self.clock.now_ns();
        let mut out = conv2d(self.level, input, &weight, &bias, s);
        let dt = self.elapsed(t0);
        self.times.conv += dt;

        let gamma = vec![1.0f32; cout];
        let beta = vec![0.0f32; cout];
        let mean = vec![0.0f32; cout];
        let var = vec![1.0f32; cout];
        let t0 = self.clock.now_ns();
        batch_norm_inplace(&mut out, cout, h * w, &gamma, &beta, &mean, &var, 1e-5);
        leaky_relu_inplace(&mut out, 0.01);
        let dt = self.elapsed(t0);
        self.times.other += dt;
        out
    }

    /// deconv + BN + leaky (timed into deconv / other)
    fn deconv_bn_act(&mut self, input: &[f32], cin: usize, cout: usize, hw: (usize, usize), k: usize) -> Vec<f32> {
        let (h, w) = hw;
        let s = ConvShape { cin, cout, h, w, k, pad: k / 2 };
        let weight = self.rand_w(cin * cout * k * k);
        let bias = self.rand_w(cout);
        let t0 = self.clock.now_ns();
        let mut out = deconv2d(self.level, input, &weight, &bias, s);
        let dt = self.elapsed(t0);
        self.times.deconv += dt;

        let gamma = vec![1.0f32; cout];
        let beta = vec![0.0f32; cout];
        let mean = vec![0.0f32; cout];
        let var = vec![1.0f32; cout];
        let t0 = self.clock.now_ns();
        batch_norm_inplace(&mut out, cout, h * w, &gamma, &beta, &mean, &var, 1e-5);
        leaky_relu_inplace(&mut out, 0.01);
        let dt = self.elapsed(t0);
        self.times.other += dt;
        out
    }
}

/// Run one DDnet inference (Table 2 layer sequence) at the given
/// optimization level and return the per-kernel-class times.
///
/// Weights are random — kernel timing does not depend on weight values.
pub fn run_ddnet_inference(shape: DdnetShape, level: OptLevel, seed: u64) -> KernelTimes {
    let DdnetShape { n, base, growth, per_block } = shape;
    assert!(n % 16 == 0, "input extent must be divisible by 16");
    let mut ctx = Ctx {
        level,
        times: KernelTimes::default(),
        rng: Xorshift::new(seed),
        clock: cc19_obs::global_clock(),
    };

    // input image
    let input: Vec<f32> = (0..n * n).map(|_| ctx.rng.uniform(0.0, 1.0)).collect();

    // --- encoder ---
    // stem: 7x7 conv
    let c1 = ctx.conv_bn_act(&input, 1, base, (n, n), 7);
    let mut skips: Vec<(Vec<f32>, usize, usize)> = vec![(c1.clone(), base, n)];
    let mut h = c1;
    let mut cur_n = n;
    for b in 0..4 {
        // pooling
        let t0 = ctx.clock.now_ns();
        let pooled = max_pool3x3s2(&h, base, cur_n, cur_n);
        let dt = ctx.elapsed(t0);
        ctx.times.other += dt;
        cur_n /= 2;
        h = pooled;
        // dense block: per_block x (1x1 conv to growth, 5x5 conv growth->growth), concat
        let mut ch = base;
        for _l in 0..per_block {
            let mid = ctx.conv_bn_act(&h, ch, growth, (cur_n, cur_n), 1);
            let newf = ctx.conv_bn_act(&mid, growth, growth, (cur_n, cur_n), 5);
            let t0 = ctx.clock.now_ns();
            h = concat_channels(&h, ch, &newf, growth, cur_n * cur_n);
            let dt = ctx.elapsed(t0);
            ctx.times.other += dt;
            ch += growth;
        }
        // transition 1x1 back to base
        h = ctx.conv_bn_act(&h, ch, base, (cur_n, cur_n), 1);
        if b < 3 {
            skips.push((h.clone(), base, cur_n));
        }
    }

    // --- decoder --- (5×5 deconv base -> 2·base, concat skip, 1×1
    // deconv 3·base -> base|1; see cc19-ddnet::model)
    for s in 0..4 {
        let t0 = ctx.clock.now_ns();
        let up = unpool_bilinear2x(&h, base, cur_n, cur_n);
        let dt = ctx.elapsed(t0);
        ctx.times.other += dt;
        cur_n *= 2;
        let d5 = ctx.deconv_bn_act(&up, base, 2 * base, (cur_n, cur_n), 5);
        let (skip, skip_c, skip_n) = &skips[3 - s];
        debug_assert_eq!(*skip_n, cur_n);
        let t0 = ctx.clock.now_ns();
        let cat = concat_channels(&d5, 2 * base, skip, *skip_c, cur_n * cur_n);
        let dt = ctx.elapsed(t0);
        ctx.times.other += dt;
        let out_c = if s == 3 { 1 } else { base };
        h = ctx.deconv_bn_act(&cat, 3 * base, out_c, (cur_n, cur_n), 1);
    }
    debug_assert_eq!(h.len(), n * n);
    ctx.times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports_times() {
        let shape = DdnetShape::reduced(64);
        let t = run_ddnet_inference(shape, OptLevel::RefactoredPrefetchUnrolled, 1);
        assert!(t.conv > Duration::ZERO);
        assert!(t.deconv > Duration::ZERO);
        assert!(t.other > Duration::ZERO);
        assert_eq!(t.total(), t.conv + t.deconv + t.other);
    }

    #[test]
    fn refactoring_speeds_up_deconvolution() {
        // The paper's headline kernel result (§4.2.1 / Table 7): the
        // gather rewrite makes deconvolution dramatically faster. At 128²
        // the effect is already unambiguous.
        let shape = DdnetShape::reduced(128);
        let base = run_ddnet_inference(shape, OptLevel::Baseline, 2);
        let refd = run_ddnet_inference(shape, OptLevel::Refactored, 2);
        assert!(
            refd.deconv < base.deconv,
            "REF should cut deconv time: {:?} vs {:?}",
            refd.deconv,
            base.deconv
        );
    }

    #[test]
    fn all_levels_complete_at_all_sizes() {
        for level in OptLevel::ALL {
            let t = run_ddnet_inference(DdnetShape::reduced(32), level, 3);
            assert!(t.total() > Duration::ZERO);
        }
    }
}
