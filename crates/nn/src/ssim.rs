//! (Multi-scale) structural similarity — SSIM and MS-SSIM (Wang et al.
//! 2004, ref [42] of the paper).
//!
//! Two entry points:
//! - [`ms_ssim_graph`] / [`ssim_graph`]: differentiable, built from graph
//!   ops (Gaussian-window statistics are computed with `conv2d` against a
//!   constant kernel), used inside the Eq (1) training loss;
//! - [`ms_ssim`] / [`ssim`]: plain metric evaluation on tensors, used for
//!   the Table 3 / Table 8 accuracy columns.
//!
//! Conventions follow the reference implementation: 11×11 Gaussian window
//! with sigma 1.5, valid (un-padded) convolution, `K1 = 0.01`, `K2 = 0.03`,
//! per-scale weights `[0.0448, 0.2856, 0.3001, 0.2363, 0.1333]`, 2×2
//! average-pool between scales.

use cc19_tensor::pool::PoolSpec;
use cc19_tensor::{Tensor, TensorError};

use crate::graph::{Graph, Var};
use crate::Result;

/// Gaussian window extent.
pub const WINDOW: usize = 11;
/// Gaussian sigma.
pub const SIGMA: f32 = 1.5;
/// Standard MS-SSIM per-scale weights.
pub const MS_WEIGHTS: [f32; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// The 11×11 normalized Gaussian window as a `(1,1,11,11)` conv weight.
pub fn gaussian_window() -> Tensor {
    let mut w = vec![0.0f32; WINDOW * WINDOW];
    let c = (WINDOW / 2) as f32;
    let mut sum = 0.0f32;
    for y in 0..WINDOW {
        for x in 0..WINDOW {
            let dy = y as f32 - c;
            let dx = x as f32 - c;
            let v = (-(dx * dx + dy * dy) / (2.0 * SIGMA * SIGMA)).exp();
            w[y * WINDOW + x] = v;
            sum += v;
        }
    }
    for v in &mut w {
        *v /= sum;
    }
    Tensor::from_vec([1, 1, WINDOW, WINDOW], w).expect("static shape")
}

/// Largest MS-SSIM pyramid depth usable for an `h`×`w` image (each scale
/// halves the extent; the window must still fit at the coarsest scale).
pub fn max_levels(h: usize, w: usize) -> usize {
    let mut levels = 0;
    let (mut h, mut w) = (h, w);
    while h >= WINDOW && w >= WINDOW && levels < 5 {
        levels += 1;
        h /= 2;
        w /= 2;
    }
    levels
}

fn expect_single_channel(t: &Tensor) -> Result<()> {
    if t.shape().rank() != 4 || t.dims()[1] != 1 {
        return Err(TensorError::Incompatible(format!(
            "SSIM expects (N,1,H,W) images, got {:?}",
            t.dims()
        )));
    }
    Ok(())
}

/// Differentiable single-scale SSIM. Returns `(ssim_mean, cs_mean)` scalar
/// vars. Images must be `(N, 1, H, W)` with extents ≥ 11.
pub fn ssim_cs_graph(g: &mut Graph, a: Var, b: Var, data_range: f32) -> Result<(Var, Var)> {
    expect_single_channel(g.value(a))?;
    expect_single_channel(g.value(b))?;
    g.value(a).shape().expect_same(g.value(b).shape())?;
    let dims = g.value(a).dims();
    if dims[2] < WINDOW || dims[3] < WINDOW {
        return Err(TensorError::Incompatible(format!(
            "SSIM window {WINDOW} larger than image {}x{}",
            dims[2], dims[3]
        )));
    }

    let c1 = (0.01 * data_range) * (0.01 * data_range);
    let c2 = (0.03 * data_range) * (0.03 * data_range);
    let win = g.input(gaussian_window());
    let spec = cc19_tensor::conv::Conv2dSpec { stride: 1, padding: 0 };

    let mu_a = g.conv2d(a, win, None, spec)?;
    let mu_b = g.conv2d(b, win, None, spec)?;
    let mu_a2 = g.mul(mu_a, mu_a)?;
    let mu_b2 = g.mul(mu_b, mu_b)?;
    let mu_ab = g.mul(mu_a, mu_b)?;

    let a2 = g.mul(a, a)?;
    let b2 = g.mul(b, b)?;
    let ab = g.mul(a, b)?;
    let e_a2 = g.conv2d(a2, win, None, spec)?;
    let e_b2 = g.conv2d(b2, win, None, spec)?;
    let e_ab = g.conv2d(ab, win, None, spec)?;

    let var_a = g.sub(e_a2, mu_a2)?;
    let var_b = g.sub(e_b2, mu_b2)?;
    let cov = g.sub(e_ab, mu_ab)?;

    // cs = (2 cov + C2) / (var_a + var_b + C2)
    let cov2 = g.scale(cov, 2.0);
    let cs_num = g.add_scalar(cov2, c2);
    let var_sum = g.add(var_a, var_b)?;
    let cs_den = g.add_scalar(var_sum, c2);
    let cs_map = g.div(cs_num, cs_den)?;

    // luminance = (2 mu_a mu_b + C1) / (mu_a^2 + mu_b^2 + C1)
    let mu_ab2 = g.scale(mu_ab, 2.0);
    let l_num = g.add_scalar(mu_ab2, c1);
    let mu_sum = g.add(mu_a2, mu_b2)?;
    let l_den = g.add_scalar(mu_sum, c1);
    let l_map = g.div(l_num, l_den)?;

    let ssim_map = g.mul(l_map, cs_map)?;
    let ssim_mean = g.mean(ssim_map);
    let cs_mean = g.mean(cs_map);
    Ok((ssim_mean, cs_mean))
}

/// Differentiable single-scale SSIM (scalar var).
pub fn ssim_graph(g: &mut Graph, a: Var, b: Var, data_range: f32) -> Result<Var> {
    Ok(ssim_cs_graph(g, a, b, data_range)?.0)
}

/// Differentiable MS-SSIM with `levels` scales (1–5). Scale weights are the
/// last `levels` entries of [`MS_WEIGHTS`], renormalized, so that
/// `levels = 5` matches the standard metric and `levels = 1` degrades to
/// plain SSIM.
pub fn ms_ssim_graph(g: &mut Graph, a: Var, b: Var, levels: usize, data_range: f32) -> Result<Var> {
    if levels == 0 || levels > 5 {
        return Err(TensorError::Incompatible(format!("MS-SSIM levels must be 1..=5, got {levels}")));
    }
    // Renormalize the standard weights over the scales in use.
    let weights = &MS_WEIGHTS[MS_WEIGHTS.len() - levels..];
    let wsum: f32 = weights.iter().sum();

    let pool = PoolSpec { kernel: 2, stride: 2, padding: 0 };
    let mut cur_a = a;
    let mut cur_b = b;
    let mut factors: Vec<Var> = Vec::with_capacity(levels);
    for (i, &w) in weights.iter().enumerate() {
        let (ssim_mean, cs_mean) = ssim_cs_graph(g, cur_a, cur_b, data_range)?;
        let base = if i + 1 == levels { ssim_mean } else { cs_mean };
        // clamp positive before pow (cs can be slightly negative)
        let clamped = g.relu(base);
        let stabilized = g.add_scalar(clamped, 1e-6);
        factors.push(g.pow_scalar(stabilized, w / wsum));
        if i + 1 != levels {
            cur_a = g.avg_pool2d(cur_a, pool)?;
            cur_b = g.avg_pool2d(cur_b, pool)?;
        }
    }
    let mut acc = factors[0];
    for &f in &factors[1..] {
        acc = g.mul(acc, f)?;
    }
    Ok(acc)
}

/// SSIM metric on plain tensors `(N,1,H,W)`.
pub fn ssim(a: &Tensor, b: &Tensor, data_range: f32) -> Result<f64> {
    let mut g = Graph::new();
    let av = g.input(a.clone());
    let bv = g.input(b.clone());
    let s = ssim_graph(&mut g, av, bv, data_range)?;
    Ok(g.value(s).item()? as f64)
}

/// MS-SSIM metric on plain tensors `(N,1,H,W)`; `levels` as in
/// [`ms_ssim_graph`]. Use [`max_levels`] to pick a feasible depth.
pub fn ms_ssim(a: &Tensor, b: &Tensor, levels: usize, data_range: f32) -> Result<f64> {
    let mut g = Graph::new();
    let av = g.input(a.clone());
    let bv = g.input(b.clone());
    let s = ms_ssim_graph(&mut g, av, bv, levels, data_range)?;
    Ok(g.value(s).item()? as f64)
}

/// Convenience: MS-SSIM on rank-2 images (adds the `(N,C)` axes and picks
/// the deepest feasible pyramid).
pub fn ms_ssim_image(a: &Tensor, b: &Tensor, data_range: f32) -> Result<f64> {
    a.shape().expect_rank(2)?;
    let (h, w) = (a.dims()[0], a.dims()[1]);
    let levels = max_levels(h, w).max(1);
    let a4 = a.reshape([1, 1, h, w])?;
    let b4 = b.reshape([1, 1, h, w])?;
    ms_ssim(&a4, &b4, levels, data_range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_tensor::rng::Xorshift;

    #[test]
    fn window_is_normalized_and_symmetric() {
        let w = gaussian_window();
        let sum: f32 = w.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        // center is the max
        let center = w.at(&[0, 0, 5, 5]);
        assert!(w.data().iter().all(|&v| v <= center));
        // symmetry
        assert_eq!(w.at(&[0, 0, 2, 3]), w.at(&[0, 0, 8, 3]));
        assert_eq!(w.at(&[0, 0, 2, 3]), w.at(&[0, 0, 2, 7]));
    }

    #[test]
    fn identical_images_have_unit_ssim() {
        let mut rng = Xorshift::new(1);
        let img = rng.uniform_tensor([1, 1, 32, 32], 0.0, 1.0);
        let s = ssim(&img, &img, 1.0).unwrap();
        assert!((s - 1.0).abs() < 1e-5, "ssim {s}");
        let ms = ms_ssim(&img, &img, 2, 1.0).unwrap();
        assert!((ms - 1.0).abs() < 1e-4, "ms-ssim {ms}");
    }

    #[test]
    fn ssim_decreases_with_noise_level() {
        let mut rng = Xorshift::new(2);
        let clean = rng.uniform_tensor([1, 1, 64, 64], 0.3, 0.7);
        let mut nrng = Xorshift::new(3);
        let mut noisy1 = clean.clone();
        for v in noisy1.data_mut() {
            *v += nrng.normal_ms(0.0, 0.02);
        }
        let mut noisy2 = clean.clone();
        for v in noisy2.data_mut() {
            *v += nrng.normal_ms(0.0, 0.10);
        }
        let s1 = ssim(&noisy1, &clean, 1.0).unwrap();
        let s2 = ssim(&noisy2, &clean, 1.0).unwrap();
        assert!(s1 > s2, "{s1} vs {s2}");
        assert!(s1 < 1.0 && s2 > 0.0);
    }

    #[test]
    fn ssim_is_symmetric() {
        let mut rng = Xorshift::new(4);
        let a = rng.uniform_tensor([1, 1, 32, 32], 0.0, 1.0);
        let b = rng.uniform_tensor([1, 1, 32, 32], 0.0, 1.0);
        let sab = ssim(&a, &b, 1.0).unwrap();
        let sba = ssim(&b, &a, 1.0).unwrap();
        assert!((sab - sba).abs() < 1e-6);
    }

    #[test]
    fn ssim_in_unit_interval_for_positive_images() {
        let mut rng = Xorshift::new(5);
        for seed in 0..5u64 {
            let mut r2 = Xorshift::new(seed + 10);
            let a = rng.uniform_tensor([1, 1, 24, 24], 0.0, 1.0);
            let b = r2.uniform_tensor([1, 1, 24, 24], 0.0, 1.0);
            let s = ssim(&a, &b, 1.0).unwrap();
            assert!((-1.0..=1.0).contains(&s), "ssim {s}");
        }
    }

    #[test]
    fn max_levels_logic() {
        assert_eq!(max_levels(512, 512), 5);
        assert_eq!(max_levels(176, 176), 5);
        assert_eq!(max_levels(64, 64), 3);
        assert_eq!(max_levels(11, 11), 1);
        assert_eq!(max_levels(10, 512), 0);
    }

    #[test]
    fn ms_ssim_levels_must_be_valid() {
        let img = Tensor::ones([1, 1, 32, 32]);
        assert!(ms_ssim(&img, &img, 0, 1.0).is_err());
        assert!(ms_ssim(&img, &img, 6, 1.0).is_err());
        // 32x32 supports 2 levels (32 -> 16); 3 levels needs 16 >= 11 -> ok too
        assert!(ms_ssim(&img, &img, 2, 1.0).is_ok());
    }

    #[test]
    fn ms_ssim_gradient_flows() {
        let mut rng = Xorshift::new(6);
        let target = rng.uniform_tensor([1, 1, 32, 32], 0.2, 0.8);
        let mut noisy = target.clone();
        let mut nrng = Xorshift::new(7);
        for v in noisy.data_mut() {
            *v += nrng.normal_ms(0.0, 0.05);
        }
        let mut g = Graph::new();
        let p = g.input_grad(noisy);
        let t = g.input(target);
        let s = ms_ssim_graph(&mut g, p, t, 2, 1.0).unwrap();
        // maximize similarity = minimize -s
        let loss = g.scale(s, -1.0);
        let grads = g.backward(loss);
        let gp = grads.get(p).expect("gradient reaches the image");
        let norm: f32 = gp.data().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(norm > 0.0, "zero gradient");
        assert!(!gp.has_non_finite());
    }

    #[test]
    fn gradient_ascent_on_ssim_improves_it() {
        // A few steps of gradient ascent on SSIM should increase SSIM —
        // end-to-end sanity of the differentiable path.
        let mut rng = Xorshift::new(8);
        let target = rng.uniform_tensor([1, 1, 24, 24], 0.3, 0.7);
        let mut img = rng.uniform_tensor([1, 1, 24, 24], 0.3, 0.7);
        let s0 = ssim(&img, &target, 1.0).unwrap();
        for _ in 0..10 {
            let mut g = Graph::new();
            let p = g.input_grad(img.clone());
            let t = g.input(target.clone());
            let s = ssim_graph(&mut g, p, t, 1.0).unwrap();
            let loss = g.scale(s, -1.0);
            let grads = g.backward(loss);
            let gp = grads.get(p).unwrap();
            cc19_tensor::ops::axpy(-50.0, gp, &mut img).unwrap();
        }
        let s1 = ssim(&img, &target, 1.0).unwrap();
        assert!(s1 > s0 + 0.01, "ssim did not improve: {s0} -> {s1}");
    }
}
