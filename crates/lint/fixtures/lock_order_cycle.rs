//~ path: crates/serve/src/fixture.rs
//~ expect: lock-order
//! Fixture: two functions acquire the same pair of locks in opposite
//! orders. Neither order deadlocks on its own, but a thread in
//! `forward` holding `a` and a thread in `backward` holding `b` wait
//! on each other forever — the `lock-order` rule must report the cycle
//! with both lock names and a witness chain for each leg.

struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    fn forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    fn backward(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga - *gb
    }
}
