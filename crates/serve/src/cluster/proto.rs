//! Cluster wire protocol: the messages the router and worker nodes
//! exchange over reliable [`cc19_dist::link`] byte links.
//!
//! Payload layouts reuse the serve TCP wire encoders ([`crate::wire`])
//! so probabilities keep crossing process boundaries as raw `f64` bits —
//! the cluster inherits the bit-identity guarantee of the single-node
//! wire. Framing integrity (CRC, sequencing, retransmit) lives a layer
//! below, in the byte link itself.
//!
//! | kind | direction | payload |
//! |------|-----------|---------|
//! | `1` dispatch | router → worker | `[req_id u64][encoded ServeRequest]` |
//! | `2` shutdown | router → worker | empty (drain and exit) |
//! | `1` reply-ok | worker → router | `[encode_ok(req_id, diagnosis)]` |
//! | `2` reply-fail | worker → router | `[req_id u64][utf-8 error]` |
//! | `3` reply-reject | worker → router | `[req_id u64][encode_reject]` |

use std::io;

use computecovid19::Diagnosis;

use crate::request::{Rejected, ServeRequest};
use crate::wire;

const KIND_DISPATCH: u8 = 1;
const KIND_SHUTDOWN: u8 = 2;

const REPLY_OK: u8 = 1;
const REPLY_FAIL: u8 = 2;
const REPLY_REJECT: u8 = 3;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn split_u64(payload: &[u8]) -> io::Result<(u64, &[u8])> {
    if payload.len() < 8 {
        return Err(invalid("truncated cluster frame"));
    }
    let (head, rest) = payload.split_at(8);
    let mut b = [0u8; 8];
    b.copy_from_slice(head);
    Ok((u64::from_le_bytes(b), rest))
}

/// Router → worker message.
#[derive(Debug)]
pub(crate) enum Dispatch {
    /// Serve this study and reply with `req_id`.
    Request {
        /// Router-assigned cluster request id.
        req_id: u64,
        /// The study.
        req: ServeRequest,
    },
    /// Drain outstanding work, then exit.
    Shutdown,
}

/// Worker → router message.
#[derive(Debug)]
pub(crate) enum Reply {
    /// Diagnosis completed.
    Ok { req_id: u64, diagnosis: Diagnosis },
    /// Accepted locally but a stage failed.
    Fail { req_id: u64, message: String },
    /// The worker's local admission turned the dispatch away.
    Rejected { req_id: u64, why: Rejected },
}

impl Reply {
    /// The cluster request id this reply answers.
    pub(crate) fn req_id(&self) -> u64 {
        match self {
            Reply::Ok { req_id, .. } | Reply::Fail { req_id, .. } | Reply::Rejected { req_id, .. } => {
                *req_id
            }
        }
    }
}

pub(crate) fn encode_dispatch(req_id: u64, req: &ServeRequest) -> Vec<u8> {
    let body = wire::encode_request(req);
    let mut out = Vec::with_capacity(9 + body.len());
    out.push(KIND_DISPATCH);
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

pub(crate) fn encode_shutdown() -> Vec<u8> {
    vec![KIND_SHUTDOWN]
}

pub(crate) fn decode_dispatch(payload: &[u8]) -> io::Result<Dispatch> {
    let (&kind, rest) = payload.split_first().ok_or_else(|| invalid("empty cluster frame"))?;
    match kind {
        KIND_DISPATCH => {
            let (req_id, body) = split_u64(rest)?;
            Ok(Dispatch::Request { req_id, req: wire::decode_request(body)? })
        }
        KIND_SHUTDOWN => Ok(Dispatch::Shutdown),
        other => Err(invalid(format!("unknown dispatch kind {other}"))),
    }
}

pub(crate) fn encode_reply_ok(req_id: u64, d: &Diagnosis) -> Vec<u8> {
    let mut out = vec![REPLY_OK];
    out.extend_from_slice(&wire::encode_ok(req_id, d));
    out
}

pub(crate) fn encode_reply_fail(req_id: u64, message: &str) -> Vec<u8> {
    let mut out = vec![REPLY_FAIL];
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

pub(crate) fn encode_reply_rejected(req_id: u64, why: &Rejected) -> Vec<u8> {
    let mut out = vec![REPLY_REJECT];
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&wire::encode_reject(why));
    out
}

pub(crate) fn decode_reply(payload: &[u8]) -> io::Result<Reply> {
    let (&kind, rest) = payload.split_first().ok_or_else(|| invalid("empty cluster reply"))?;
    match kind {
        REPLY_OK => {
            let (req_id, diagnosis) = wire::decode_ok(rest)?;
            Ok(Reply::Ok { req_id, diagnosis })
        }
        REPLY_FAIL => {
            let (req_id, msg) = split_u64(rest)?;
            let message = std::str::from_utf8(msg)
                .map_err(|_| invalid("non-UTF-8 failure message"))?
                .to_owned();
            Ok(Reply::Fail { req_id, message })
        }
        REPLY_REJECT => {
            let (req_id, body) = split_u64(rest)?;
            Ok(Reply::Rejected { req_id, why: wire::decode_reject(body)? })
        }
        other => Err(invalid(format!("unknown reply kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::request::Priority;
    use cc19_tensor::Tensor;
    use std::time::Duration;

    #[test]
    fn dispatch_roundtrips_bit_exact() {
        let req = ServeRequest {
            volume: Tensor::from_vec([1, 2, 2], vec![1.5, -2.0, 0.25, 9.0]).unwrap(),
            priority: Priority::Urgent,
            deadline: Some(Duration::from_millis(40)),
        };
        match decode_dispatch(&encode_dispatch(77, &req)).unwrap() {
            Dispatch::Request { req_id, req: back } => {
                assert_eq!(req_id, 77);
                assert_eq!(back.priority, req.priority);
                assert_eq!(back.deadline, req.deadline);
                assert_eq!(back.volume.data(), req.volume.data());
            }
            other => panic!("wrong decode: {other:?}"),
        }
        assert!(matches!(decode_dispatch(&encode_shutdown()).unwrap(), Dispatch::Shutdown));
    }

    #[test]
    fn replies_roundtrip_probability_bits_and_reasons() {
        let d = Diagnosis {
            probability: 0.987654321234,
            positive: true,
            t_queue: Duration::from_micros(3),
            t_enhance: Duration::from_millis(5),
            t_segment: Duration::from_millis(7),
            t_classify: Duration::from_micros(11),
            t_total: Duration::from_millis(13),
        };
        match decode_reply(&encode_reply_ok(5, &d)).unwrap() {
            Reply::Ok { req_id, diagnosis } => {
                assert_eq!(req_id, 5);
                assert_eq!(diagnosis.probability.to_bits(), d.probability.to_bits());
            }
            other => panic!("wrong decode: {other:?}"),
        }
        match decode_reply(&encode_reply_fail(6, "stage exploded")).unwrap() {
            Reply::Fail { req_id, message } => {
                assert_eq!((req_id, message.as_str()), (6, "stage exploded"));
            }
            other => panic!("wrong decode: {other:?}"),
        }
        let why = Rejected::QueueFull { depth: 9, bound: 9 };
        match decode_reply(&encode_reply_rejected(7, &why)).unwrap() {
            Reply::Rejected { req_id, why: back } => assert_eq!((req_id, back), (7, why)),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        assert!(decode_dispatch(&[]).is_err());
        assert!(decode_dispatch(&[KIND_DISPATCH, 1, 2]).is_err());
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[REPLY_FAIL, 0, 1]).is_err());
        assert!(decode_reply(&[9]).is_err());
    }
}
