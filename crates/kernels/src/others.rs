//! The remaining DDnet inference kernels (Table 6's "other kernels"):
//! max pooling, bilinear un-pooling, leaky-ReLU, inference batch
//! normalization, and channel concatenation.

use rayon::prelude::*;

/// 3×3 / stride-2 / pad-1 max pooling (DDnet's pooling layer) on a
/// `(C, H, W)` buffer. Returns `(C, H/2, W/2)` (for even extents).
pub fn max_pool3x3s2(input: &[f32], c: usize, h: usize, w: usize) -> Vec<f32> {
    let oh = (h + 2 - 3) / 2 + 1;
    let ow = (w + 2 - 3) / 2 + 1;
    let mut out = vec![0.0f32; c * oh * ow];
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(ci, plane)| {
        let ibase = &input[ci * h * w..(ci + 1) * h * w];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..3usize {
                    let iy = (oy * 2 + ky) as isize - 1;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..3usize {
                        let ix = (ox * 2 + kx) as isize - 1;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let v = ibase[iy as usize * w + ix as usize];
                        if v > best {
                            best = v;
                        }
                    }
                }
                plane[oy * ow + ox] = best;
            }
        }
    });
    out
}

/// Bilinear ×2 un-pooling (align_corners = false) on a `(C, H, W)` buffer.
pub fn unpool_bilinear2x(input: &[f32], c: usize, h: usize, w: usize) -> Vec<f32> {
    let (oh, ow) = (h * 2, w * 2);
    let mut out = vec![0.0f32; c * oh * ow];
    out.par_chunks_mut(oh * ow).enumerate().for_each(|(ci, plane)| {
        let ibase = &input[ci * h * w..(ci + 1) * h * w];
        for oy in 0..oh {
            let fy = ((oy as f32 + 0.5) * 0.5 - 0.5).max(0.0);
            let y0 = (fy as usize).min(h - 1);
            let y1 = (y0 + 1).min(h - 1);
            let wy = fy - y0 as f32;
            for ox in 0..ow {
                let fx = ((ox as f32 + 0.5) * 0.5 - 0.5).max(0.0);
                let x0 = (fx as usize).min(w - 1);
                let x1 = (x0 + 1).min(w - 1);
                let wx = fx - x0 as f32;
                plane[oy * ow + ox] = ibase[y0 * w + x0] * (1.0 - wy) * (1.0 - wx)
                    + ibase[y0 * w + x1] * (1.0 - wy) * wx
                    + ibase[y1 * w + x0] * wy * (1.0 - wx)
                    + ibase[y1 * w + x1] * wy * wx;
            }
        }
    });
    out
}

/// Leaky-ReLU in place.
pub fn leaky_relu_inplace(buf: &mut [f32], slope: f32) {
    for v in buf.iter_mut() {
        if *v < 0.0 {
            *v *= slope;
        }
    }
}

/// Inference batch normalization: `y = gamma * (x - mean) / sqrt(var+eps)
/// + beta`, per channel, in place.
pub fn batch_norm_inplace(
    buf: &mut [f32],
    c: usize,
    plane: usize,
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    eps: f32,
) {
    debug_assert_eq!(buf.len(), c * plane);
    buf.par_chunks_mut(plane).enumerate().for_each(|(ci, chunk)| {
        let inv = 1.0 / (var[ci] + eps).sqrt();
        let g = gamma[ci];
        let b = beta[ci];
        let m = mean[ci];
        for v in chunk.iter_mut() {
            *v = g * (*v - m) * inv + b;
        }
    });
}

/// Channel concatenation of two `(C?, H, W)` buffers.
pub fn concat_channels(a: &[f32], ca: usize, b: &[f32], cb: usize, plane: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), ca * plane);
    debug_assert_eq!(b.len(), cb * plane);
    // cc19-lint: allow(alloc, "concat output buffer; plan-level fusion (ROADMAP 3) will write both halves into an arena slot")
    let mut out = Vec::with_capacity((ca + cb) * plane);
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_tensor::pool::{max_pool2d, PoolSpec};
    use cc19_tensor::resize::upsample_bilinear2d;
    use cc19_tensor::rng::Xorshift;
    use cc19_tensor::Tensor;

    #[test]
    fn max_pool_matches_tensor_reference() {
        let mut rng = Xorshift::new(1);
        let (c, h, w) = (3usize, 16usize, 12usize);
        let input: Vec<f32> = (0..c * h * w).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let got = max_pool3x3s2(&input, c, h, w);
        let x = Tensor::from_vec([1, c, h, w], input).unwrap();
        let (expect, _) = max_pool2d(&x, PoolSpec::DDNET).unwrap();
        assert_eq!(got, expect.into_vec());
    }

    #[test]
    fn unpool_matches_tensor_reference() {
        let mut rng = Xorshift::new(2);
        let (c, h, w) = (2usize, 8usize, 6usize);
        let input: Vec<f32> = (0..c * h * w).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let got = unpool_bilinear2x(&input, c, h, w);
        let x = Tensor::from_vec([1, c, h, w], input).unwrap();
        let expect = upsample_bilinear2d(&x, 2).unwrap();
        let ev = expect.into_vec();
        assert_eq!(got.len(), ev.len());
        for (g, e) in got.iter().zip(&ev) {
            assert!((g - e).abs() < 1e-5);
        }
    }

    #[test]
    fn leaky_relu_and_bn() {
        let mut buf = vec![-2.0f32, 3.0];
        leaky_relu_inplace(&mut buf, 0.1);
        assert_eq!(buf, vec![-0.2, 3.0]);

        let mut x = vec![1.0f32, 3.0, 10.0, 20.0];
        batch_norm_inplace(&mut x, 2, 2, &[1.0, 2.0], &[0.0, 1.0], &[2.0, 15.0], &[1.0, 25.0], 0.0);
        assert!((x[0] + 1.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
        assert!((x[2] + 1.0).abs() < 1e-6); // 2*(10-15)/5 + 1 = -1
        assert!((x[3] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn concat_layout() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0]; // 2ch x 2 plane
        let b = vec![9.0f32, 8.0]; // 1ch x 2 plane
        let out = concat_channels(&a, 2, &b, 1, 2);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0, 9.0, 8.0]);
    }
}
