//! Dynamic-batching policy and the worker start gate.
//!
//! The batcher is the serving layer's latency/throughput knob (the same
//! control Triton exposes as *max batch size* + *max queue delay*): a
//! dispatch takes whatever is queued, but if fewer than `max_batch`
//! studies are waiting it holds the batch open up to `max_delay` so
//! near-simultaneous arrivals coalesce into one GEMM-friendly unit of
//! work. `max_delay = 0` degenerates to take-what's-there batching;
//! a large `max_delay` maximizes batch occupancy at the cost of p50.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::sync::{lock, wait, RANK_GATE};

/// Coalescing policy for one dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Largest batch a single dispatch may carry.
    pub max_batch: usize,
    /// How long a non-full batch waits for stragglers.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch: 8, max_delay: Duration::from_millis(2) }
    }
}

/// A start gate for worker pipelines: a paused server queues admissions
/// but dispatches nothing until resumed. This makes batching
/// deterministic in tests (queue 64 requests, open the gate, observe
/// full batches) and mirrors a warm-standby deployment.
#[derive(Debug, Default)]
pub(crate) struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    pub(crate) fn new(open: bool) -> Self {
        Gate { open: Mutex::new(open), cv: Condvar::new() }
    }

    /// Block until the gate is open.
    pub(crate) fn wait_open(&self) {
        let mut open = lock(&self.open, &RANK_GATE);
        while !*open {
            open = wait(&self.cv, open);
        }
    }

    /// Open the gate and wake all waiters.
    pub(crate) fn open(&self) {
        *lock(&self.open, &RANK_GATE) = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use std::sync::Arc;

    #[test]
    fn gate_blocks_until_opened() {
        let gate = Arc::new(Gate::new(false));
        let g = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            g.wait_open();
            42
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "worker must hold at the gate");
        gate.open();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn default_policy_is_sane() {
        let p = BatchPolicy::default();
        assert!(p.max_batch >= 2);
        assert!(p.max_delay > Duration::ZERO);
    }
}
