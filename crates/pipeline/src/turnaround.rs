//! Diagnosis turnaround-time model — the paper's "days to minutes" claim
//! (§1, §8): RT-PCR takes ≈4 hours of lab time plus multi-day logistics
//! and has ~67% sensitivity; the CT workflow takes minutes with DDnet
//! inference under a second.

use std::time::Duration;

/// A diagnostic pathway with its latency budget and sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct Pathway {
    /// Display name.
    pub name: &'static str,
    /// Stages as `(label, duration)`.
    pub stages: Vec<(&'static str, Duration)>,
    /// Clinical sensitivity (true-positive rate).
    pub sensitivity: f64,
}

impl Pathway {
    /// Total turnaround.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// RT-PCR per the paper: sample logistics (collection, packaging,
    /// delivery — the multi-day part), ~4 h lab test, reporting; 67%
    /// sensitivity (Kucirka et al., ref [24]).
    pub fn rt_pcr() -> Self {
        Pathway {
            name: "RT-PCR",
            stages: vec![
                ("sample collection", Duration::from_secs(15 * 60)),
                ("packaging & delivery to lab", Duration::from_secs(36 * 3600)),
                ("RT-PCR test", Duration::from_secs(4 * 3600)),
                ("result reporting", Duration::from_secs(12 * 3600)),
            ],
            sensitivity: 0.67,
        }
    }

    /// ComputeCOVID19+ per the paper: a CT scan (on the scanner hospitals
    /// already have), then the three AI stages; ~5 minutes end-to-end,
    /// inference < 1 s; 91% sensitivity.
    pub fn compute_covid19(inference: Duration) -> Self {
        Pathway {
            name: "ComputeCOVID19+",
            stages: vec![
                ("CT scan acquisition", Duration::from_secs(4 * 60)),
                ("reconstruction & transfer", Duration::from_secs(50)),
                ("Enhancement+Segmentation+Classification AI", inference),
            ],
            sensitivity: 0.91,
        }
    }
}

/// Turnaround comparison (the numbers behind the abstract's claim).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// RT-PCR total seconds.
    pub rt_pcr_secs: f64,
    /// ComputeCOVID19+ total seconds.
    pub cc19_secs: f64,
    /// Speedup factor.
    pub speedup: f64,
    /// Sensitivity delta (percentage points).
    pub sensitivity_gain_pp: f64,
}

/// Compare the two pathways given a measured AI inference time.
pub fn compare(inference: Duration) -> Comparison {
    let pcr = Pathway::rt_pcr();
    let cc = Pathway::compute_covid19(inference);
    let rt = pcr.total().as_secs_f64();
    let ct = cc.total().as_secs_f64();
    Comparison {
        rt_pcr_secs: rt,
        cc19_secs: ct,
        speedup: rt / ct,
        sensitivity_gain_pp: (cc.sensitivity - pcr.sensitivity) * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rt_pcr_is_days_cc19_is_minutes() {
        let pcr = Pathway::rt_pcr();
        assert!(pcr.total() > Duration::from_secs(24 * 3600), "RT-PCR must span days");
        let cc = Pathway::compute_covid19(Duration::from_secs(1));
        assert!(cc.total() < Duration::from_secs(10 * 60), "CC19+ must finish in minutes");
    }

    #[test]
    fn headline_numbers() {
        let c = compare(Duration::from_millis(300));
        assert!(c.speedup > 100.0, "speedup {}", c.speedup);
        assert!((c.sensitivity_gain_pp - 24.0).abs() < 1e-9); // 91% - 67%
    }

    #[test]
    fn inference_time_is_a_small_fraction() {
        let cc = Pathway::compute_covid19(Duration::from_secs(1));
        let inference = cc.stages.last().unwrap().1;
        assert!(inference.as_secs_f64() / cc.total().as_secs_f64() < 0.01);
    }
}
