//! §5.1.1: training & inference wall-times of Segmentation AI and
//! Classification AI.
//!
//! Paper (RTX 3090): Classification-AI training 4h28m (100 epochs, 305
//! scans); inference 45.88 s (segmentation) and 5.90 s (classification)
//! per study. We measure the scaled pipeline on this host and scale the
//! classification-training model to the paper's configuration.

use cc19_bench::{banner, parse_scale, Scale};
use cc19_analysis::classifier::{ClassifierConfig, DenseNet3d};
use cc19_analysis::segmentation::LungSegmenter;
use cc19_analysis::train::{train_classifier, ClassTrainConfig, Example};
use cc19_data::dataset::ClassificationDataset;
use cc19_data::prep::{normalize_for_enhancement, PrepConfig};
use computecovid19::framework::Framework;

fn main() {
    let scale = parse_scale();
    banner("Sec 5.1.1", "Segmentation/Classification AI train & inference times", scale);

    let (n, slices, vols, epochs) = match scale {
        Scale::Full => (64usize, 8usize, 24usize, 20usize),
        Scale::Quick => (48, 8, 12, 8),
    };

    // --- training time (measured, scaled) ---
    let ds = ClassificationDataset::generate(vols, 2, n, slices).unwrap();
    let prep = PrepConfig::scaled(1);
    let seg = LungSegmenter::default();
    let examples: Vec<Example> = ds
        .train
        .iter()
        .map(|item| {
            let unit = normalize_for_enhancement(&item.volume.hu, prep);
            let mask = seg.segment_volume(&item.volume.hu).unwrap();
            let masked = cc19_analysis::segmentation::apply_mask(&unit, &mask).unwrap();
            Example { volume: masked, label: item.label }
        })
        .collect();
    let cls = DenseNet3d::new(ClassifierConfig::tiny(), 5);
    let t0 = std::time::Instant::now();
    train_classifier(&cls, &examples, ClassTrainConfig::quick(epochs)).unwrap();
    let train_secs = t0.elapsed().as_secs_f64();
    println!(
        "classification training (measured, {vols} volumes x {epochs} epochs @ {n}^2x{slices}): {train_secs:.1} s"
    );
    println!("  paper: 4h28m for 305 scans x 100 epochs at 512^2 on an RTX 3090");

    // --- inference time (measured per study) ---
    let fw = Framework {
        enhancer: None,
        segmenter: seg,
        classifier: cls,
        prep,
        clock: cc19_obs::global_clock(),
    };
    let test_vol = &ds.test[0].volume.hu;
    let t0 = std::time::Instant::now();
    let d = fw.diagnose(test_vol, 0.5).unwrap();
    let total = t0.elapsed().as_secs_f64();
    println!("\ninference per study (measured, {n}^2x{slices} volume):");
    println!("  segmentation  : {:.3} s   (paper: 45.88 s at 512^2 x full stacks)", d.t_segment.as_secs_f64());
    println!("  classification: {:.3} s   (paper:  5.90 s)", d.t_classify.as_secs_f64());
    println!("  total         : {total:.3} s");
    println!("\nshape check: segmentation dominates classification, as in the paper ({}).",
        if d.t_segment > d.t_classify { "holds" } else { "differs at this scale" });

    let csv = format!(
        "metric,measured_s,paper_s\nclass_training,{train_secs},16080\nsegmentation_inference,{},45.88\nclassification_inference,{},5.90\n",
        d.t_segment.as_secs_f64(),
        d.t_classify.as_secs_f64()
    );
    cc19_bench::write_result("sec511.csv", &csv);
}
