//! Chaos suite: the fault-tolerance guarantees of DESIGN.md §9, checked
//! end-to-end.
//!
//! - property tests pin the ring all-reduce to a reference sum over
//!   random rank counts and buffer lengths (including `len < n` and
//!   zero-length buffers), with and without injected message faults;
//! - training under a seeded drop/delay/duplicate/corrupt mix must
//!   produce **bit-identical** final weights to the fault-free run
//!   (message faults recover exactly — the reliability layer hides them);
//! - killing a rank mid-run must degrade gracefully: survivors agree on
//!   the corpse, rebuild the ring, and finish with synchronized replicas;
//! - interrupting at a step boundary and resuming from the latest
//!   checkpoint must be bit-identical to never having stopped.
//!
//! `CC19_FAULT_SEED` pins the injected-fault seed (tier1.sh exports it)
//! so a failing run reproduces exactly.

use proptest::prelude::*;

use cc19_data::lowdose_pairs::{make_pair, EnhancementPair, PairConfig};
use cc19_data::sources::{DataSource, Modality, ScanMeta};
use cc19_dist::allreduce::make_ring_with;
use cc19_dist::trainer::{train_distributed_ft, CheckpointCfg, DistConfig, FtOptions};
use cc19_dist::transport::TimeoutCfg;
use cc19_dist::{ring_allreduce, FaultConfig, FaultPlan};

fn run_ring(n: usize, len: usize, faults: FaultPlan) -> Vec<Vec<f32>> {
    let (_cluster, rings) = make_ring_with(n, faults, TimeoutCfg::fast());
    let handles: Vec<_> = rings
        .into_iter()
        .enumerate()
        .map(|(rank, mut ring)| {
            std::thread::spawn(move || {
                let mut buf: Vec<f32> =
                    (0..len).map(|i| ((rank * 31 + i * 7) % 13) as f32 - 6.0).collect();
                ring_allreduce(&mut buf, &mut ring).unwrap();
                buf
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn reference_sum(n: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (0..n).map(|rank| ((rank * 31 + i * 7) % 13) as f32 - 6.0).sum())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ring all-reduce equals the reference elementwise sum on every rank
    /// for arbitrary rank counts and buffer lengths — including buffers
    /// shorter than the ring (empty segments) and zero-length buffers.
    #[test]
    fn ring_matches_reference_sum(n in 1usize..6, len in 0usize..40) {
        let expect = reference_sum(n, len);
        for (rank, buf) in run_ring(n, len, FaultPlan::none()).iter().enumerate() {
            for i in 0..len {
                prop_assert!(
                    (buf[i] - expect[i]).abs() < 1e-4,
                    "n={} len={} rank={} i={}: {} vs {}", n, len, rank, i, buf[i], expect[i]
                );
            }
        }
    }

    /// Under a seeded mix of drops, delays, duplicates and corruption the
    /// reliability layer recovers *exactly*: results are bit-identical to
    /// the clean run.
    #[test]
    fn ring_under_faults_is_bit_identical_to_clean(
        n in 2usize..5,
        len in 0usize..32,
        fault_seed in 0u64..1_000,
    ) {
        let clean = run_ring(n, len, FaultPlan::none());
        let noisy = run_ring(n, len, FaultPlan::seeded(fault_seed, FaultConfig::noisy()));
        prop_assert_eq!(clean, noisy);
    }
}

fn pairs(count: usize, n: usize) -> Vec<EnhancementPair> {
    (0..count)
        .map(|i| {
            let meta = ScanMeta {
                id: 700 + i as u64,
                source: DataSource::Bimcv,
                modality: Modality::Ct,
                positive: false,
                severity: None,
                slices: 8,
                circular_artifact: false,
                has_projections: false,
            };
            make_pair(&meta, 0.5, PairConfig::reduced(n, 90 + i as u64)).unwrap()
        })
        .collect()
}

fn fast_opts(faults: FaultPlan) -> FtOptions {
    FtOptions { faults, timeouts: TimeoutCfg::fast(), checkpoint: None }
}

/// Message-level chaos (no kill) must not change the training result at
/// all: every dropped/corrupted frame is retransmitted verbatim, so the
/// gradient stream — and therefore the weight trajectory — is exact.
#[test]
fn training_under_message_chaos_matches_fault_free() {
    let train = pairs(6, 32);
    let val = pairs(1, 32);
    let cfg = DistConfig::row(3, 3, 2);

    let (clean_w, clean_stats) =
        train_distributed_ft(&train, &val, cfg, fast_opts(FaultPlan::none())).unwrap();
    let faults = FaultPlan::from_env(1234, FaultConfig::noisy());
    let (noisy_w, noisy_stats) =
        train_distributed_ft(&train, &val, cfg, fast_opts(faults)).unwrap();

    assert_eq!(clean_w, noisy_w, "message faults must recover bit-exactly (seed {})", faults.seed());
    assert_eq!(clean_stats.steps, noisy_stats.steps);
    assert!(noisy_stats.dead_ranks.is_empty());
}

/// The full chaos mix — drops, delays, duplicates, corruption, *and* one
/// rank kill: survivors detect the death, rebuild the ring, rescale the
/// gradient average, and finish with synchronized replicas whose quality
/// is within tolerance of the fault-free run (the dead rank's shard is
/// lost, so exact bit-identity is not expected here).
#[test]
fn rank_kill_under_chaos_degrades_gracefully() {
    let train = pairs(6, 32);
    let val = pairs(2, 32);
    let cfg = DistConfig::row(3, 3, 3);

    let (_, clean_stats) =
        train_distributed_ft(&train, &val, cfg, fast_opts(FaultPlan::none())).unwrap();

    let chaos = FaultConfig { kill: Some((1, 2)), ..FaultConfig::noisy() };
    let faults = FaultPlan::from_env(7, chaos);
    let (weights, stats) = train_distributed_ft(&train, &val, cfg, fast_opts(faults)).unwrap();

    assert_eq!(stats.dead_ranks, vec![1], "seed {}", faults.seed());
    assert!(stats.recoveries >= 1, "survivors must have rebuilt the ring: {stats:?}");
    assert_eq!(stats.steps, 6, "survivors run all 3 epochs x 2 steps");
    assert!(weights.iter().all(|v| v.is_finite()));
    assert!(
        (stats.final_val_ms_ssim - clean_stats.final_val_ms_ssim).abs() < 10.0,
        "degraded run quality {} should stay within tolerance of fault-free {}",
        stats.final_val_ms_ssim,
        clean_stats.final_val_ms_ssim
    );
}

/// Stop at a step boundary, then resume from the latest checkpoint: the
/// continuation must be bit-identical to an uninterrupted run (weights,
/// Adam moments, LR schedule, and epoch accounting all restored).
#[test]
fn checkpoint_resume_is_bit_identical_to_uninterrupted() {
    let train = pairs(5, 32); // batch 2 -> 3 steps/epoch, trailing partial step
    let val = pairs(1, 32);
    let cfg = DistConfig::row(2, 2, 2);
    let dir = std::env::temp_dir().join("cc19_dist_resume_test");
    let _ = std::fs::remove_dir_all(&dir);

    let (uninterrupted_w, full_stats) =
        train_distributed_ft(&train, &val, cfg, fast_opts(FaultPlan::none())).unwrap();
    assert_eq!(full_stats.steps, 6);

    // Interrupted run: snapshot every step, "preempted" before step 4.
    let mut ck = CheckpointCfg::new(&dir, 1);
    ck.stop_after_step = Some(4);
    let opts = FtOptions {
        faults: FaultPlan::none(),
        timeouts: TimeoutCfg::fast(),
        checkpoint: Some(ck.clone()),
    };
    let (_, stopped) = train_distributed_ft(&train, &val, cfg, opts).unwrap();
    assert_eq!(stopped.stopped_at_step, Some(4));
    assert!(ck.latest_path().exists());

    // Resume: picks up latest.ckpt, fast-forwards to step 4, finishes.
    ck.stop_after_step = None;
    let opts = FtOptions {
        faults: FaultPlan::none(),
        timeouts: TimeoutCfg::fast(),
        checkpoint: Some(ck),
    };
    let (resumed_w, resumed_stats) = train_distributed_ft(&train, &val, cfg, opts).unwrap();
    assert_eq!(resumed_stats.resumed_from_step, 4);
    assert_eq!(resumed_stats.steps, 2, "only the remaining steps execute");
    assert_eq!(
        resumed_stats.epoch_losses.len(),
        full_stats.epoch_losses.len(),
        "restored epoch accounting flushes the same epochs"
    );

    assert_eq!(
        uninterrupted_w, resumed_w,
        "resume must continue the exact weight trajectory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
