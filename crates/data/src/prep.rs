//! The paper's data-preparation pipeline (§2.1):
//!
//! 1. retain only chest **CT** studies (BIMCV mixes in X-rays);
//! 2. remove the circular segmentation at the reconstruction boundary
//!    (Fig 5) by replacing out-of-circle padding with air HU;
//! 3. keep studies with at least `min_slices` slices (128 in the paper) so
//!    the 3D networks see near-isotropic volumes;
//! 4. convert HU to `[0, 1]` floats for Enhancement AI (§3.1.1).

use cc19_ctsim::hu;
use cc19_tensor::Tensor;

use crate::sources::{Modality, ScanMeta};
use crate::volume::{CtVolume, CIRCLE_PADDING_HU};

/// Configuration of the preparation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrepConfig {
    /// Minimum slice count (paper: 128). Scaled experiments lower this
    /// proportionally.
    pub min_slices: usize,
    /// Enhancement-AI normalization window in HU.
    pub window: (f32, f32),
}

impl Default for PrepConfig {
    fn default() -> Self {
        PrepConfig { min_slices: 128, window: hu::LUNG_WINDOW }
    }
}

impl PrepConfig {
    /// Paper configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Scaled configuration for reduced experiments.
    pub fn scaled(min_slices: usize) -> Self {
        PrepConfig { min_slices, window: hu::LUNG_WINDOW }
    }
}

/// Outcome of the catalog-level filter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrepReport {
    /// Studies kept.
    pub kept: usize,
    /// Dropped: not a CT.
    pub dropped_modality: usize,
    /// Dropped: too few slices.
    pub dropped_slices: usize,
}

/// Filter a catalog per rules (1) and (3); artifact removal (2) and
/// normalization (4) are per-volume, see [`remove_circular_boundary`] and
/// [`normalize_for_enhancement`].
pub fn filter_catalog(scans: &[ScanMeta], cfg: PrepConfig) -> (Vec<ScanMeta>, PrepReport) {
    let mut kept = Vec::new();
    let mut report = PrepReport::default();
    for s in scans {
        if s.modality != Modality::Ct {
            report.dropped_modality += 1;
            continue;
        }
        if s.slices < cfg.min_slices {
            report.dropped_slices += 1;
            continue;
        }
        kept.push(s.clone());
        report.kept += 1;
    }
    (kept, report)
}

/// Rule (2): replace out-of-circle padding values with air HU so the
/// networks never see the scanner's sentinel values.
///
/// Detection is value-based (the padding is far below any anatomical HU),
/// which also handles partially-padded reconstructions.
pub fn remove_circular_boundary(vol: &mut CtVolume) {
    let threshold = (CIRCLE_PADDING_HU + hu::HU_AIR) / 2.0; // -1500
    for v in vol.hu.data_mut() {
        if *v < threshold {
            *v = hu::HU_AIR;
        }
    }
    vol.meta.circular_artifact = false;
}

/// Rule (4): HU slice -> `[0, 1]` floats over the configured window.
pub fn normalize_for_enhancement(slice_hu: &Tensor, cfg: PrepConfig) -> Tensor {
    hu::hu_window_to_unit(slice_hu, cfg.window.0, cfg.window.1)
}

/// [`normalize_for_enhancement`] into an existing same-shape tensor
/// (bit-identical; the batch-serving buffer-reuse path).
pub fn normalize_for_enhancement_into(
    slice_hu: &Tensor,
    cfg: PrepConfig,
    dst: &mut Tensor,
) -> cc19_tensor::Result<()> {
    hu::hu_window_to_unit_into(slice_hu, cfg.window.0, cfg.window.1, dst)
}

/// Inverse mapping for display / HU-space metrics.
pub fn denormalize_from_enhancement(slice_unit: &Tensor, cfg: PrepConfig) -> Tensor {
    hu::unit_to_hu_window(slice_unit, cfg.window.0, cfg.window.1)
}

/// [`denormalize_from_enhancement`] into an existing same-shape tensor.
pub fn denormalize_from_enhancement_into(
    slice_unit: &Tensor,
    cfg: PrepConfig,
    dst: &mut Tensor,
) -> cc19_tensor::Result<()> {
    hu::unit_to_hu_window_into(slice_unit, cfg.window.0, cfg.window.1, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{DataSource, SourceCatalog};

    #[test]
    fn bimcv_filtering_drops_xrays_and_thin_stacks() {
        let cat = SourceCatalog::generate(DataSource::Bimcv, 1);
        let (kept, report) = filter_catalog(&cat.scans, PrepConfig::paper());
        assert!(report.dropped_modality > 0, "some X-rays must be dropped");
        assert!(report.dropped_slices > 0, "some thin stacks must be dropped");
        assert_eq!(report.kept, kept.len());
        assert_eq!(report.kept + report.dropped_modality + report.dropped_slices, cat.len());
        assert!(kept.iter().all(|s| s.modality == Modality::Ct && s.slices >= 128));
    }

    #[test]
    fn lidc_loses_only_thin_stacks() {
        let cat = SourceCatalog::generate(DataSource::Lidc, 1);
        let (_, report) = filter_catalog(&cat.scans, PrepConfig::paper());
        assert_eq!(report.dropped_modality, 0);
        assert!(report.dropped_slices > 0);
    }

    #[test]
    fn normalize_into_forms_match_allocating_forms() {
        let cfg = PrepConfig::paper();
        let slice_hu =
            Tensor::from_vec([5], vec![-1200.0, -1000.0, -300.0, 400.0, 900.0]).unwrap();
        // Dirty reused buffers must be fully overwritten, bit for bit.
        let fresh = normalize_for_enhancement(&slice_hu, cfg);
        let mut reused = Tensor::full([5], f32::NAN);
        normalize_for_enhancement_into(&slice_hu, cfg, &mut reused).unwrap();
        assert_eq!(fresh.data(), reused.data());

        let fresh_back = denormalize_from_enhancement(&fresh, cfg);
        let mut reused_back = Tensor::full([5], f32::NAN);
        denormalize_from_enhancement_into(&fresh, cfg, &mut reused_back).unwrap();
        assert_eq!(fresh_back.data(), reused_back.data());
    }

    #[test]
    fn circular_removal_restores_air() {
        let cat = SourceCatalog::generate(DataSource::Midrc, 100);
        let mut vol = CtVolume::synthesize(&cat.scans[0], 64, 4).unwrap();
        assert_eq!(vol.slice(0).at(&[0, 0]), CIRCLE_PADDING_HU);
        remove_circular_boundary(&mut vol);
        assert!((vol.slice(0).at(&[0, 0]) - hu::HU_AIR).abs() < 1e-3);
        assert!(!vol.meta.circular_artifact);
        // anatomy left intact
        assert!(vol.slice(0).at(&[32, 32]) > -1000.0);
    }

    #[test]
    fn normalization_roundtrip_within_window() {
        let cfg = PrepConfig::paper();
        let img = Tensor::from_vec([3], vec![-900.0, -300.0, 200.0]).unwrap();
        let u = normalize_for_enhancement(&img, cfg);
        assert!(u.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = denormalize_from_enhancement(&u, cfg);
        for (a, b) in back.data().iter().zip(img.data()) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn scaled_config_lowers_threshold() {
        let cat = SourceCatalog::generate(DataSource::Bimcv, 1);
        let (kept_paper, _) = filter_catalog(&cat.scans, PrepConfig::paper());
        let (kept_scaled, _) = filter_catalog(&cat.scans, PrepConfig::scaled(16));
        assert!(kept_scaled.len() > kept_paper.len());
    }
}
