//! All-reduce implementations over the fault-tolerant transport.
//!
//! [`ring_allreduce`] is the bandwidth-optimal algorithm gloo/NCCL use:
//! reduce-scatter (N−1 steps, each rank ends owning the full sum of one
//! segment) followed by all-gather (N−1 steps distributing the owned
//! segments). Every rank finishes with the *identical* summed buffer,
//! which is what keeps DDP replicas synchronized bit-for-bit.
//!
//! [`naive_allreduce`] is the parameter-server baseline for the ablation
//! bench: gather everything to rank 0, reduce there, broadcast back.
//!
//! Both run over sequence-numbered, CRC-checked frames with timeout +
//! retransmit recovery (see [`crate::transport`]), and return `Result`
//! instead of panicking: a dead rank surfaces as
//! [`Error::RankDead`](crate::Error::RankDead), which the trainer
//! recovers from by rebuilding the ring and retrying from saved
//! gradients.

use crate::error::Error;
use crate::transport::{RingTransport, StarTransport};

pub use crate::transport::{make_ring, make_ring_in, make_ring_with, make_star, make_star_in, make_star_with};

pub(crate) fn segment_bounds(len: usize, n: usize, seg: usize) -> (usize, usize) {
    let base = len / n;
    let rem = len % n;
    let start = seg * base + seg.min(rem);
    let extra = if seg < rem { 1 } else { 0 };
    (start, start + base + extra)
}

/// Ring all-reduce (sum) of `buf` across the transport's current live
/// ring. Call from every live rank's thread; all ranks return with the
/// identical summed buffer.
///
/// On error the buffer is left partially reduced — callers that want to
/// retry (after [`RingTransport::recover`]) must restart from a saved
/// copy of their local contribution.
pub fn ring_allreduce(buf: &mut [f32], ring: &mut RingTransport) -> Result<(), Error> {
    let n = ring.live();
    let rank = ring.pos();
    if n <= 1 {
        return Ok(());
    }
    let len = buf.len();
    let t0 = ring.stats.clock.now_ns();

    // --- reduce-scatter ---
    // step s: send segment (rank - s), receive and accumulate segment
    // (rank - s - 1).
    for s in 0..n - 1 {
        let send_seg = (rank + n - s) % n;
        let (lo, hi) = segment_bounds(len, n, send_seg);
        ring.send_next(&buf[lo..hi])?;
        let recv_seg = (rank + n - s - 1) % n;
        let (lo, hi) = segment_bounds(len, n, recv_seg);
        let incoming = ring.recv_prev()?;
        debug_assert_eq!(incoming.len(), hi - lo);
        for (b, v) in buf[lo..hi].iter_mut().zip(incoming) {
            *b += v;
        }
    }

    // --- all-gather ---
    // after reduce-scatter, rank owns the fully-reduced segment
    // (rank + 1) % n.
    for s in 0..n - 1 {
        let send_seg = (rank + 1 + n - s) % n;
        let (lo, hi) = segment_bounds(len, n, send_seg);
        ring.send_next(&buf[lo..hi])?;
        let recv_seg = (rank + n - s) % n;
        let (lo, hi) = segment_bounds(len, n, recv_seg);
        let incoming = ring.recv_prev()?;
        debug_assert_eq!(incoming.len(), hi - lo);
        buf[lo..hi].copy_from_slice(&incoming);
    }
    let dt = ring.stats.clock.now_ns().saturating_sub(t0);
    ring.stats.allreduce_seconds.observe(dt as f64 / 1e9);
    Ok(())
}

/// Single-threaded, lockstep ring all-reduce over a whole set of
/// transports: every rank's send for a step is issued before any rank's
/// receive (the channels are unbounded, so sends never block). Produces
/// exactly the same sums as [`ring_allreduce`] run on `n` threads, but
/// with a *causally ordered* sequence of clock reads — which is what lets
/// the deterministic bench (`obs_report`) emit byte-identical timing
/// metrics run over run under the manual clock.
pub fn ring_allreduce_lockstep(
    bufs: &mut [Vec<f32>],
    rings: &mut [RingTransport],
) -> Result<(), Error> {
    let n = rings.len();
    if bufs.len() != n {
        return Err(Error::InvalidConfig(format!(
            "ring_allreduce_lockstep: {} buffers for {n} transports",
            bufs.len()
        )));
    }
    if n <= 1 {
        return Ok(());
    }
    let len = bufs[0].len();
    if bufs.iter().any(|b| b.len() != len) {
        return Err(Error::InvalidConfig("ring_allreduce_lockstep: buffer lengths differ".into()));
    }
    let t0 = rings[0].stats.clock.now_ns();

    // reduce-scatter
    for s in 0..n - 1 {
        for ring in rings.iter_mut() {
            let rank = ring.pos();
            let send_seg = (rank + n - s) % n;
            let (lo, hi) = segment_bounds(len, n, send_seg);
            ring.send_next(&bufs[rank][lo..hi])?;
        }
        for ring in rings.iter_mut() {
            let rank = ring.pos();
            let recv_seg = (rank + n - s - 1) % n;
            let (lo, hi) = segment_bounds(len, n, recv_seg);
            let incoming = ring.recv_prev()?;
            debug_assert_eq!(incoming.len(), hi - lo);
            for (b, v) in bufs[rank][lo..hi].iter_mut().zip(incoming) {
                *b += v;
            }
        }
    }

    // all-gather
    for s in 0..n - 1 {
        for ring in rings.iter_mut() {
            let rank = ring.pos();
            let send_seg = (rank + 1 + n - s) % n;
            let (lo, hi) = segment_bounds(len, n, send_seg);
            ring.send_next(&bufs[rank][lo..hi])?;
        }
        for ring in rings.iter_mut() {
            let rank = ring.pos();
            let recv_seg = (rank + n - s) % n;
            let (lo, hi) = segment_bounds(len, n, recv_seg);
            let incoming = ring.recv_prev()?;
            debug_assert_eq!(incoming.len(), hi - lo);
            bufs[rank][lo..hi].copy_from_slice(&incoming);
        }
    }

    let dt = rings[0].stats.clock.now_ns().saturating_sub(t0);
    rings[0].stats.allreduce_seconds.observe(dt as f64 / 1e9);
    Ok(())
}

/// Ring all-reduce with bounded recovery: on a recoverable fault (a rank
/// died and the ring was rebuilt) the reduce restarts from the caller's
/// original contribution, up to `max_recoveries` times. Returns the
/// number of recoveries performed.
pub fn ring_allreduce_resilient(
    buf: &mut [f32],
    ring: &mut RingTransport,
    max_recoveries: usize,
) -> Result<usize, Error> {
    let original = buf.to_vec();
    let mut recoveries = 0;
    loop {
        match ring_allreduce(buf, ring) {
            Ok(()) => return Ok(recoveries),
            Err(e) => {
                if recoveries >= max_recoveries {
                    return Err(e);
                }
                ring.recover(&e)?;
                recoveries += 1;
                buf.copy_from_slice(&original);
            }
        }
    }
}

/// Naive all-reduce: every rank ships its whole buffer to rank 0, which
/// sums and broadcasts. `2·(n−1)` full-buffer transfers through one link —
/// the bandwidth bottleneck the ring avoids.
pub fn naive_allreduce(buf: &mut [f32], star: &mut StarTransport) -> Result<(), Error> {
    let n = star.n();
    if n <= 1 {
        return Ok(());
    }
    if star.rank() == 0 {
        for (_, incoming) in star.server_gather()? {
            for (b, v) in buf.iter_mut().zip(incoming) {
                *b += v;
            }
        }
        star.server_broadcast(buf)?;
    } else {
        star.send_to_server(buf)?;
        let reduced = star.recv_from_server()?;
        buf.copy_from_slice(&reduced);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan};
    use crate::transport::TimeoutCfg;

    pub(crate) fn run_ring_with(n: usize, len: usize, faults: FaultPlan) -> Vec<Vec<f32>> {
        let (_cluster, rings) = make_ring_with(n, faults, TimeoutCfg::fast());
        let handles: Vec<_> = rings
            .into_iter()
            .enumerate()
            .map(|(rank, mut ring)| {
                std::thread::spawn(move || {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| (rank * len + i) as f32 * 0.5).collect();
                    ring_allreduce(&mut buf, &mut ring).unwrap();
                    buf
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn run_ring(n: usize, len: usize) -> Vec<Vec<f32>> {
        run_ring_with(n, len, FaultPlan::none())
    }

    #[test]
    fn ring_computes_global_sum() {
        for n in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                let results = run_ring(n, len);
                // expected sum per element i: sum over ranks of (rank*len+i)*0.5
                for i in 0..len {
                    let expect: f32 = (0..n).map(|r| (r * len + i) as f32 * 0.5).sum();
                    for (rank, buf) in results.iter().enumerate() {
                        assert!(
                            (buf[i] - expect).abs() < 1e-4,
                            "n={n} len={len} rank={rank} i={i}: {} vs {expect}",
                            buf[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_results_identical_across_ranks() {
        // bit-identity matters for replica synchronization
        let results = run_ring(5, 101);
        for r in 1..5 {
            assert_eq!(results[0], results[r], "rank {r} differs");
        }
    }

    #[test]
    fn ring_survives_message_faults_bit_identically() {
        // Drops, delays, duplicates, and corruption recover exactly: the
        // faulty run must produce the same bits as the clean run.
        let clean = run_ring(4, 57);
        let cfg = FaultConfig {
            p_drop: 0.15,
            p_delay: 0.1,
            delay_ms_max: 2,
            p_duplicate: 0.15,
            p_corrupt: 0.1,
            kill: None,
        };
        let noisy = run_ring_with(4, 57, FaultPlan::seeded(1234, cfg));
        assert_eq!(clean, noisy);
    }

    #[test]
    fn ring_len_smaller_than_ranks() {
        // len < n leaves some segments empty; zero-length messages must
        // still flow.
        for (n, len) in [(4usize, 2usize), (5, 0), (3, 1)] {
            let results = run_ring(n, len);
            for i in 0..len {
                let expect: f32 = (0..n).map(|r| (r * len + i) as f32 * 0.5).sum();
                for buf in &results {
                    assert!((buf[i] - expect).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn naive_matches_ring() {
        let n = 4;
        let len = 37;
        let stars = make_star(n);
        let handles: Vec<_> = stars
            .into_iter()
            .enumerate()
            .map(|(rank, mut star)| {
                std::thread::spawn(move || {
                    let mut buf: Vec<f32> = (0..len).map(|i| ((rank + 1) * (i + 1)) as f32).collect();
                    naive_allreduce(&mut buf, &mut star).unwrap();
                    buf
                })
            })
            .collect();
        let results: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for i in 0..len {
            let expect: f32 = (0..n).map(|r| ((r + 1) * (i + 1)) as f32).sum();
            for buf in &results {
                assert_eq!(buf[i], expect);
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let mut rings = make_ring(1);
        let mut buf = vec![1.0f32, 2.0, 3.0];
        ring_allreduce(&mut buf, &mut rings[0]).unwrap();
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn segment_bounds_partition() {
        for len in [10usize, 16, 17, 3] {
            for n in [2usize, 3, 4] {
                let mut covered = 0;
                for seg in 0..n {
                    let (lo, hi) = segment_bounds(len, n, seg);
                    assert_eq!(lo, covered, "gap at seg {seg}");
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
