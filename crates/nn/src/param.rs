//! Trainable parameters and the flat parameter store.

use std::cell::RefCell;
use std::rc::Rc;

use cc19_tensor::Tensor;

/// A trainable parameter: a value tensor plus its accumulated gradient.
#[derive(Debug)]
pub struct Param {
    /// Human-readable name, e.g. `"conv1.weight"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass (`None` until then).
    pub grad: Option<Tensor>,
}

impl Param {
    /// Create a named parameter.
    pub fn new(name: impl Into<String>, value: Tensor) -> ParamRef {
        Rc::new(RefCell::new(Param { name: name.into(), value, grad: None }))
    }

    /// Zero (drop) the gradient.
    pub fn zero_grad(&mut self) {
        self.grad = None;
    }

    /// Accumulate a gradient contribution.
    pub fn accumulate_grad(&mut self, g: Tensor) {
        match &mut self.grad {
            Some(acc) => {
                cc19_tensor::ops::axpy(1.0, &g, acc).expect("grad shape stable");
            }
            None => self.grad = Some(g),
        }
    }
}

/// Shared handle to a parameter. Models are built per-thread (the
/// distributed trainer gives each worker its own replica), so `Rc` is
/// sufficient and keeps the hot path free of atomics.
pub type ParamRef = Rc<RefCell<Param>>;

/// An ordered collection of parameters — the unit the optimizer steps over
/// and the unit serialized for checkpointing / gradient all-reduce.
#[derive(Default, Debug)]
pub struct ParamStore {
    params: Vec<ParamRef>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter and return its handle.
    pub fn register(&mut self, p: ParamRef) -> ParamRef {
        self.params.push(p.clone());
        p
    }

    /// Extend with all parameters of a sub-module.
    pub fn extend(&mut self, other: &ParamStore) {
        self.params.extend(other.params.iter().cloned());
    }

    /// All parameters, in registration order.
    pub fn params(&self) -> &[ParamRef] {
        &self.params
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.borrow().value.numel()).sum()
    }

    /// Zero all gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.borrow_mut().zero_grad();
        }
    }

    /// Flatten all parameter values into one `Vec<f32>` (checkpoint /
    /// broadcast format for the distributed trainer).
    pub fn snapshot(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for p in &self.params {
            out.extend_from_slice(p.borrow().value.data());
        }
        out
    }

    /// Load a flat snapshot produced by [`ParamStore::snapshot`] on a
    /// structurally identical model.
    pub fn load_snapshot(&self, flat: &[f32]) -> crate::Result<()> {
        let want = self.num_scalars();
        if flat.len() != want {
            return Err(cc19_tensor::TensorError::LengthMismatch { expected: want, actual: flat.len() });
        }
        let mut off = 0;
        for p in &self.params {
            let mut p = p.borrow_mut();
            let n = p.value.numel();
            p.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Flatten all gradients (zeros for params without a gradient) — the
    /// payload of the distributed all-reduce.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for p in &self.params {
            let p = p.borrow();
            match &p.grad {
                Some(g) => out.extend_from_slice(g.data()),
                None => out.extend(std::iter::repeat_n(0.0, p.value.numel())),
            }
        }
        out
    }

    /// Clip the *global* gradient norm to `max_norm` (the standard
    /// stabilizer for small-batch CNN training): if the L2 norm of all
    /// gradients together exceeds `max_norm`, every gradient is scaled by
    /// `max_norm / norm`. Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                if let Some(g) = &mut p.borrow_mut().grad {
                    for v in g.data_mut() {
                        *v *= scale;
                    }
                }
            }
        }
        norm
    }

    /// Global L2 norm of all accumulated gradients (f64 accumulation,
    /// f32 result) — what [`Self::clip_grad_norm`] compares against and
    /// what the trainers export as `ddnet_grad_norm`.
    pub fn grad_norm(&self) -> f32 {
        let mut sq = 0.0f64;
        for p in &self.params {
            if let Some(g) = &p.borrow().grad {
                sq += g.data().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
            }
        }
        sq.sqrt() as f32
    }

    /// True iff every accumulated gradient value is finite (no NaN/Inf).
    /// The trainers use this to veto an optimizer step that would poison
    /// the weights — in the distributed trainer the verdict is all-reduced
    /// so every replica skips (or applies) the same step.
    pub fn grads_all_finite(&self) -> bool {
        self.params.iter().all(|p| match &p.borrow().grad {
            Some(g) => g.data().iter().all(|v| v.is_finite()),
            None => true,
        })
    }

    /// Overwrite gradients from a flat buffer (inverse of
    /// [`ParamStore::flat_grads`], used after all-reduce).
    pub fn load_flat_grads(&self, flat: &[f32]) -> crate::Result<()> {
        let want = self.num_scalars();
        if flat.len() != want {
            return Err(cc19_tensor::TensorError::LengthMismatch { expected: want, actual: flat.len() });
        }
        let mut off = 0;
        for p in &self.params {
            let mut p = p.borrow_mut();
            let n = p.value.numel();
            let g = Tensor::from_vec(p.value.shape().clone(), flat[off..off + n].to_vec())?;
            p.grad = Some(g);
            off += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let mut store = ParamStore::new();
        store.register(Param::new("w", Tensor::zeros([2, 3])));
        store.register(Param::new("b", Tensor::zeros([3])));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
    }

    #[test]
    fn grad_accumulates() {
        let p = Param::new("w", Tensor::zeros([2]));
        p.borrow_mut().accumulate_grad(Tensor::from_vec([2], vec![1.0, 2.0]).unwrap());
        p.borrow_mut().accumulate_grad(Tensor::from_vec([2], vec![0.5, 0.5]).unwrap());
        assert_eq!(p.borrow().grad.as_ref().unwrap().data(), &[1.5, 2.5]);
        p.borrow_mut().zero_grad();
        assert!(p.borrow().grad.is_none());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut store = ParamStore::new();
        store.register(Param::new("a", Tensor::from_vec([2], vec![1.0, 2.0]).unwrap()));
        store.register(Param::new("b", Tensor::from_vec([1], vec![3.0]).unwrap()));
        let snap = store.snapshot();
        assert_eq!(snap, vec![1.0, 2.0, 3.0]);

        store.load_snapshot(&[9.0, 8.0, 7.0]).unwrap();
        assert_eq!(store.params()[0].borrow().value.data(), &[9.0, 8.0]);
        assert_eq!(store.params()[1].borrow().value.data(), &[7.0]);
        assert!(store.load_snapshot(&[1.0]).is_err());
    }

    #[test]
    fn flat_grads_roundtrip() {
        let mut store = ParamStore::new();
        store.register(Param::new("a", Tensor::zeros([2])));
        store.register(Param::new("b", Tensor::zeros([1])));
        // No grads yet -> zeros
        assert_eq!(store.flat_grads(), vec![0.0, 0.0, 0.0]);
        store.load_flat_grads(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(store.flat_grads(), vec![1.0, 2.0, 3.0]);
        assert!(store.load_flat_grads(&[0.0]).is_err());
    }
}
