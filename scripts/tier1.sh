#!/usr/bin/env bash
# Tier-1 verification gate (ROADMAP.md): release build + full test suite
# + chaos/serve smokes + static analysis (cc19-lint, clippy when present).
# Usage: scripts/tier1.sh
# Exits 0 with "TIER-1 PASS" iff every stage succeeds.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

echo "=== tier-1: cargo build --release ==="
if ! cargo build --release; then
    echo "tier-1: BUILD FAILED"
    status=1
fi

echo
echo "=== tier-1: cargo test -q ==="
if [ "$status" -eq 0 ]; then
    if ! cargo test -q; then
        echo "tier-1: TESTS FAILED"
        status=1
    fi
fi

echo
echo "=== tier-1: SIMD kernel parity (auto + forced-scalar dispatch) ==="
# The scalar/AVX2 kernel ladder must agree under both dispatch modes
# (DESIGN.md §13): the plain `cargo test` above already ran the parity
# suite under auto dispatch (AVX2 wherever the host supports it); this
# stage re-runs the cc19-kernels suite in a fresh process with
# CC19_SIMD=scalar, pinning the public entry points to the forced-scalar
# ladder bit-for-bit.
if [ "$status" -eq 0 ]; then
    if ! CC19_SIMD=scalar cargo test -q -p cc19-kernels; then
        echo "tier-1: KERNEL PARITY FAILED (CC19_SIMD=scalar)"
        status=1
    fi
fi

echo
echo "=== tier-1: distributed chaos suite (CC19_FAULT_SEED pinned) ==="
# Pin the fault-injection seed so a chaos failure reproduces exactly
# (DESIGN.md §9); the suite re-runs under faults the same ring/trainer
# paths the plain tests cover fault-free.
if [ "$status" -eq 0 ]; then
    if ! CC19_FAULT_SEED="${CC19_FAULT_SEED:-1234}" cargo test -q -p cc19-dist --test chaos; then
        echo "tier-1: CHAOS SUITE FAILED (CC19_FAULT_SEED=${CC19_FAULT_SEED:-1234})"
        status=1
    fi
fi

echo
echo "=== tier-1: cluster chaos (kill a worker mid-load, CC19_FAULT_SEED pinned) ==="
# Sharded serve cluster under the seeded fault plan (DESIGN.md §14): one
# of three workers dies mid-load with wire drops/duplicates/corruption on
# top; zero lost, zero double-served, and every surviving diagnosis
# bit-identical to the single-node baseline.
if [ "$status" -eq 0 ]; then
    if ! CC19_FAULT_SEED="${CC19_FAULT_SEED:-1234}" cargo test -q -p cc19-serve --test cluster_chaos; then
        echo "tier-1: CLUSTER CHAOS FAILED (CC19_FAULT_SEED=${CC19_FAULT_SEED:-1234})"
        status=1
    fi
fi

echo
echo "=== tier-1: serving smoke (64 mixed-priority requests, byte-identical CSV) ==="
# Deterministic cc19-serve smoke: paused server, 64 seeded requests,
# exactly-once delivery, dynamic batching observed (DESIGN.md §10).
# Under CC19_OBS_DETERMINISTIC=1 the test writes
# results/serve_smoke_metrics.csv from a frozen manual clock — run it
# twice and the files must be byte-identical.
if [ "$status" -eq 0 ]; then
    if ! CC19_OBS_DETERMINISTIC=1 cargo test -q -p cc19-serve --test smoke; then
        echo "tier-1: SERVE SMOKE FAILED (first run)"
        status=1
    else
        cp results/serve_smoke_metrics.csv results/.serve_smoke_metrics.run1.csv
        if ! CC19_OBS_DETERMINISTIC=1 cargo test -q -p cc19-serve --test smoke; then
            echo "tier-1: SERVE SMOKE FAILED (second run)"
            status=1
        elif ! cmp -s results/serve_smoke_metrics.csv results/.serve_smoke_metrics.run1.csv; then
            echo "tier-1: SERVE SMOKE NOT DETERMINISTIC (serve_smoke_metrics.csv differs)"
            diff results/.serve_smoke_metrics.run1.csv results/serve_smoke_metrics.csv | head -20
            status=1
        fi
        rm -f results/.serve_smoke_metrics.run1.csv
    fi
fi

echo
echo "=== tier-1: monitoring smoke (4-timestep progression, byte-identical CSV) ==="
# Deterministic cc19-monitor smoke: a pinned-seed progression series plus
# one content-addressed cache-hit replay through PatientSeries
# (DESIGN.md §15). Under CC19_OBS_DETERMINISTIC=1 the test writes
# results/monitor_timeline.csv from a frozen manual clock — run it twice
# and the files must be byte-identical.
if [ "$status" -eq 0 ]; then
    if ! CC19_OBS_DETERMINISTIC=1 cargo test -q -p cc19-monitor --test smoke; then
        echo "tier-1: MONITOR SMOKE FAILED (first run)"
        status=1
    else
        cp results/monitor_timeline.csv results/.monitor_timeline.run1.csv
        if ! CC19_OBS_DETERMINISTIC=1 cargo test -q -p cc19-monitor --test smoke; then
            echo "tier-1: MONITOR SMOKE FAILED (second run)"
            status=1
        elif ! cmp -s results/monitor_timeline.csv results/.monitor_timeline.run1.csv; then
            echo "tier-1: MONITOR SMOKE NOT DETERMINISTIC (monitor_timeline.csv differs)"
            diff results/.monitor_timeline.run1.csv results/monitor_timeline.csv | head -20
            status=1
        fi
        rm -f results/.monitor_timeline.run1.csv
    fi
fi

echo
echo "=== tier-1: observability report (byte-identical under manual clock) ==="
# obs_report sweeps every instrumented subsystem (GEMM/conv kernels,
# ctsim stages, a tiny training run, a faulty 4-rank all-reduce, a serve
# smoke, a kill-and-recover cluster pass) into the cc19-obs registry and
# exports results/bench_obs.json plus the per-request critical-path
# report results/trace_report.json (DESIGN.md §17).
# Under CC19_OBS_DETERMINISTIC=1 every clock read is causally ordered on
# the auto-ticking manual clock, so two runs must produce byte-identical
# output (DESIGN.md §12) — run it twice and compare both artifacts.
if [ "$status" -eq 0 ]; then
    if ! cargo build -q --release -p cc19-bench --bin obs_report; then
        echo "tier-1: OBS REPORT BUILD FAILED"
        status=1
    fi
fi
if [ "$status" -eq 0 ]; then
    if ! CC19_OBS_DETERMINISTIC=1 ./target/release/obs_report; then
        echo "tier-1: OBS REPORT FAILED (first run)"
        status=1
    else
        cp results/bench_obs.json results/.bench_obs.run1.json
        cp results/trace_report.json results/.trace_report.run1.json
        if ! CC19_OBS_DETERMINISTIC=1 ./target/release/obs_report; then
            echo "tier-1: OBS REPORT FAILED (second run)"
            status=1
        elif ! cmp -s results/bench_obs.json results/.bench_obs.run1.json; then
            echo "tier-1: OBS REPORT NOT DETERMINISTIC (bench_obs.json differs between runs)"
            diff results/.bench_obs.run1.json results/bench_obs.json | head -20
            status=1
        elif ! cmp -s results/trace_report.json results/.trace_report.run1.json; then
            echo "tier-1: OBS REPORT NOT DETERMINISTIC (trace_report.json differs between runs)"
            diff results/.trace_report.run1.json results/trace_report.json | head -20
            status=1
        fi
        rm -f results/.bench_obs.run1.json results/.trace_report.run1.json
    fi
fi

echo
echo "=== tier-1: request tracing (stitched span trees, byte-identical JSONL) ==="
# The cc19-serve trace suite (DESIGN.md §17) runs one request through a
# single-node server on a fully injected manual clock and 2×12 requests
# through a 3-worker cluster (healthy + scheduled-kill phases), asserting
# span parentage, stage tiling, the segments-sum-to-e2e invariant, and
# that a killed worker's orphaned dispatch span is marked `redispatched`.
# Under CC19_OBS_DETERMINISTIC=1 the cluster test writes
# results/trace_smoke.jsonl — run it twice and the exports must be
# byte-identical.
if [ "$status" -eq 0 ]; then
    if ! CC19_OBS_DETERMINISTIC=1 cargo test -q -p cc19-serve --test trace; then
        echo "tier-1: REQUEST TRACING FAILED (first run)"
        status=1
    else
        cp results/trace_smoke.jsonl results/.trace_smoke.run1.jsonl
        if ! CC19_OBS_DETERMINISTIC=1 cargo test -q -p cc19-serve --test trace; then
            echo "tier-1: REQUEST TRACING FAILED (second run)"
            status=1
        elif ! cmp -s results/trace_smoke.jsonl results/.trace_smoke.run1.jsonl; then
            echo "tier-1: REQUEST TRACING NOT DETERMINISTIC (trace_smoke.jsonl differs)"
            diff results/.trace_smoke.run1.jsonl results/trace_smoke.jsonl | head -20
            status=1
        fi
        rm -f results/.trace_smoke.run1.jsonl
    fi
fi

echo
echo "=== tier-1: static analysis ==="
# cc19-lint enforces the repo-specific invariants the compiler can't
# (DESIGN.md §11): determinism (no ambient clocks/RNG in numeric crates
# or in cc19-obs beyond the allowlisted MonotonicClock), metric naming
# (snake_case, crate-prefixed cc19-obs registrations), panic-free
# fault-tolerant paths, *_into/allocating API parity with tests, the
# unsafe budget, doc-coverage opt-in, and the whitespace gate
# (trailing whitespace / tab indent / CR / missing final newline — the
# `cargo fmt --check` stand-in for this vendored toolchain).
# The v2 cross-function rules (DESIGN.md §16) add lock-order cycles,
# blocking-under-lock, and the hot-path allocation closure, and the run
# exports results/lint_report.json. The report is byte-deterministic
# (sorted keys, no timestamps) — run the linter twice and compare, the
# same determinism gate bench_obs.json gets above.
if [ "$status" -eq 0 ]; then
    if ! cargo run -q -p cc19-lint -- --report results/lint_report.json; then
        echo "tier-1: STATIC ANALYSIS FAILED (cc19-lint)"
        status=1
    else
        cp results/lint_report.json results/.lint_report.run1.json
        if ! cargo run -q -p cc19-lint -- --report results/lint_report.json; then
            echo "tier-1: STATIC ANALYSIS FAILED (cc19-lint, second run)"
            status=1
        elif ! cmp -s results/lint_report.json results/.lint_report.run1.json; then
            echo "tier-1: STATIC ANALYSIS NOT DETERMINISTIC (lint_report.json differs between runs)"
            diff results/.lint_report.run1.json results/lint_report.json | head -20
            status=1
        fi
        rm -f results/.lint_report.run1.json
    fi
fi
if [ "$status" -eq 0 ]; then
    if cargo clippy --version >/dev/null 2>&1; then
        if ! cargo clippy --workspace --all-targets -q -- -D warnings; then
            echo "tier-1: STATIC ANALYSIS FAILED (clippy -D warnings)"
            status=1
        fi
    else
        echo "tier-1: NOTICE — clippy not installed in this toolchain; skipping the"
        echo "        clippy -D warnings stage (cc19-lint still ran)."
    fi
fi

echo
if [ "$status" -eq 0 ]; then
    echo "TIER-1 PASS"
else
    echo "TIER-1 FAIL"
fi
exit "$status"
