//~ path: crates/ddnet/src/fixture.rs
//~ expect: api-parity
// Twin exists, but no test names the pair together — the rule requires
// a parity test proving the two stay bit-identical.

pub fn upscale(src: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; src.len()];
    upscale_into(src, &mut out);
    out
}

pub fn upscale_into(src: &[f32], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = 2.0 * *s;
    }
}
