//! # cc19-hetero
//!
//! A performance model for DDnet inference on the paper's six evaluation
//! platforms (Table 4): Nvidia V100 / P100 / T4, AMD Radeon Vega Frontier,
//! Intel Xeon Gold 6128, and the Intel Arria 10 GX 1150 FPGA.
//!
//! We do not have this hardware (see DESIGN.md §2). The paper itself
//! observes that "the performance of our optimized OpenCL kernels across
//! the various platforms tracks with the memory bandwidth of the
//! platforms" (§5.1.3) — i.e., a bandwidth-driven roofline is the paper's
//! own explanatory model. This crate implements that model:
//!
//! - per-kernel-class operation counts are computed exactly from the
//!   Table 2 layer shapes (via `cc19-kernels::count`, validated against
//!   Table 6);
//! - optimized-kernel runtime per class is
//!   `max(flops / (peak_flops · eff), bytes / (bandwidth · eff))`;
//! - the *baseline* (scatter) deconvolution is modeled by device atomic /
//!   read-modify-write throughput, which is what serializes the naive
//!   kernel on real devices;
//! - FPGA compute peaks are built from the paper's own configuration: 2
//!   compute units, ×5 vectorization (deconvolution only), 184 MHz.
//!
//! The Xeon CPU rows in the generated tables come from *measurement* (the
//! real kernels in `cc19-kernels` running on this host), which grounds
//! the model; the accelerator rows are predictions.


pub mod devices;
pub mod host;
pub mod model;
pub mod reconfig;

pub use devices::{Device, DeviceClass, DEVICES};
pub use host::{derive_cpu_device, host_cpu_device, HostCaps};
pub use model::{ddnet_class_counts, predict_kernel_times, predict_table7_row, ClassCounts};
pub use reconfig::{reconfiguration_decision, ReconfigDecision};

/// Crate-wide result alias.
pub type Result<T> = cc19_tensor::Result<T>;
