//! A worker node: one single-node [`Server`] wrapped in a byte-link
//! event loop.
//!
//! The loop heartbeats on every iteration (so the router's staleness
//! sweep only fires for genuinely hung workers), pulls dispatches off
//! the reliable link, submits them to the local server, and forwards
//! completed responses back **in dispatch order** — FIFO forwarding
//! keeps each worker's reply stream deterministic, which the chaos
//! harness and the deterministic bench both rely on.
//!
//! Death simulation: when the cluster's [`FaultPlan`] schedules a kill
//! for this node, the loop breaks out the moment the fatal dispatch
//! arrives — before submitting it — and drops both links without
//! draining, exactly like a crashed process. The router's death signal
//! is the reply link disconnecting (primary) or the heartbeat going
//! stale (secondary, for hung-but-connected workers).
//!
//! [`FaultPlan`]: cc19_dist::FaultPlan

use std::collections::VecDeque;
use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cc19_dist::transport::Cluster;
use cc19_dist::{ByteRx, ByteTx};
use crossbeam::channel::RecvTimeoutError;

use crate::cluster::proto::{self, Dispatch};
use crate::metrics::ServeMetrics;
use crate::server::{PendingDiagnosis, Server, ServerCfg};
use crate::worker::FrameworkFactory;

/// Idle-wait bound per loop iteration. Far below any sane liveness
/// window, so an idle worker still heartbeats many times per window.
const IDLE_WAIT: Duration = Duration::from_millis(20);

/// Poll bound on the oldest pending local response while busy.
const BUSY_POLL: Duration = Duration::from_millis(1);

/// Spawn a worker node thread serving dispatches from `dispatch_rx` and
/// replying on `reply_tx`, heartbeating rank `node` on `hb`.
/// `kill_after` is the fault plan's scheduled silent death for this
/// node: die upon receiving dispatch number `kill_after` (0-based).
pub(crate) fn spawn_node(
    node: usize,
    cfg: ServerCfg,
    factory: FrameworkFactory,
    dispatch_rx: ByteRx,
    reply_tx: ByteTx,
    hb: Arc<Cluster>,
    kill_after: Option<usize>,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("cc19-cluster-node-{node}"))
        .spawn(move || node_loop(node, cfg, factory, dispatch_rx, reply_tx, hb, kill_after))
}

fn node_loop(
    node: usize,
    cfg: ServerCfg,
    factory: FrameworkFactory,
    mut dispatch_rx: ByteRx,
    mut reply_tx: ByteTx,
    hb: Arc<Cluster>,
    kill_after: Option<usize>,
) {
    // Hold the node's own registry so completed requests' span subtrees
    // can be drained (`trace_take`) and shipped home in reply frames.
    let metrics = ServeMetrics::new();
    let reg = Arc::clone(metrics.registry());
    let server = match Server::start_with_metrics(cfg, move || factory(), metrics) {
        Ok(s) => s,
        Err(_) => {
            // Could not even start (thread-spawn exhaustion). Dropping
            // the links is the death signal; the router re-routes.
            drop(reply_tx);
            drop(dispatch_rx);
            return;
        }
    };
    let client = server.client();
    let mut pendings: VecDeque<(u64, u64, PendingDiagnosis)> = VecDeque::new();
    let mut received = 0usize;
    let mut draining = false;

    'outer: loop {
        hb.beat(node);

        // Pull dispatches: block briefly when idle (bounded, so the
        // heartbeat keeps ticking), drain without blocking when busy.
        loop {
            let frame = if pendings.is_empty() && !draining {
                dispatch_rx.recv_wait(IDLE_WAIT)
            } else {
                dispatch_rx.try_recv()
            };
            match frame {
                Ok(Some(payload)) => match proto::decode_dispatch(&payload) {
                    Ok(Dispatch::Request { req_id, ctx, req }) => {
                        if kill_after == Some(received) {
                            break 'outer; // scheduled crash: no drain, no goodbye
                        }
                        received += 1;
                        match client.submit_traced(req, Some(ctx)) {
                            Ok(p) => pendings.push_back((req_id, ctx.trace_id, p)),
                            Err(why) => {
                                // Rejections mint no trace (admission
                                // failed before span minting), so the
                                // reply carries no span section.
                                reply_tx.send(&proto::encode_reply_rejected(req_id, &why));
                            }
                        }
                    }
                    Ok(Dispatch::Shutdown) => draining = true,
                    // CRC-rejected frames never reach us; a frame that
                    // still fails to decode is dropped, not fatal.
                    Err(_) => {}
                },
                Ok(None) => break,
                Err(_) => {
                    // Router hung up: serve what we have, then exit.
                    draining = true;
                    break;
                }
            }
        }

        // Forward completed responses, oldest first. Each reply drains
        // the request's local span subtree and ships it home so the
        // router can graft it under its dispatch span.
        while let Some((req_id, trace_id, p)) = pendings.front() {
            let (req_id, trace_id) = (*req_id, *trace_id);
            match p.wait_timeout(BUSY_POLL) {
                Ok(resp) => {
                    let spans = reg.trace_take(trace_id);
                    let bytes = match &resp.result {
                        Ok(d) => proto::encode_reply_ok(req_id, d, &spans),
                        Err(msg) => proto::encode_reply_fail(req_id, msg, &spans),
                    };
                    reply_tx.send(&bytes);
                    pendings.pop_front();
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    let spans = reg.trace_take(trace_id);
                    reply_tx
                        .send(&proto::encode_reply_fail(req_id, "worker pipeline lost", &spans));
                    pendings.pop_front();
                }
            }
        }

        if draining && pendings.is_empty() {
            break;
        }
    }

    // Links first — for a killed node this *is* the crash as the router
    // sees it; for a graceful exit everything owed has been forwarded.
    drop(reply_tx);
    drop(dispatch_rx);
    // Reap the local pipeline threads. A killed node's queued work may
    // still compute here, but its replies go to dropped receivers and
    // never reach the wire — matching a crashed process's externally
    // observable behavior while keeping the test process leak-free.
    let _ = server.shutdown();
}
