//! Property-based tests for the CT physics substrate.

use proptest::prelude::*;

use cc19_ctsim::geometry::ParallelBeamGeometry;
use cc19_ctsim::lowdose::{apply_poisson_noise, expected_sigma, DoseSettings};
use cc19_ctsim::phantom::{ChestPhantom, Severity};
use cc19_ctsim::siddon::{line_integral, project_parallel, Grid};
use cc19_ctsim::sinogram::Sinogram;
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The line integral is linear in the image.
    #[test]
    fn line_integral_linear(seed in 0u64..500, alpha in 0.1f32..3.0) {
        let mut rng = Xorshift::new(seed + 1);
        let n = 32;
        let grid = Grid { n, px: 1.0 };
        let img = rng.uniform_tensor([n, n], 0.0, 0.1);
        let scaled = cc19_tensor::ops::scale(&img, alpha);
        let p0 = (rng.uniform(-50.0, -20.0), rng.uniform(-10.0, 10.0));
        let p1 = (rng.uniform(20.0, 50.0), rng.uniform(-10.0, 10.0));
        let li = line_integral(img.data(), grid, p0, p1);
        let li_s = line_integral(scaled.data(), grid, p0, p1);
        prop_assert!((li * alpha - li_s).abs() < 1e-3 * (1.0 + li.abs()), "{} vs {}", li * alpha, li_s);
    }

    /// The integral along a ray equals the integral along the reversed ray.
    #[test]
    fn line_integral_direction_invariant(seed in 0u64..500) {
        let mut rng = Xorshift::new(seed + 3);
        let n = 24;
        let grid = Grid { n, px: 1.0 };
        let img = rng.uniform_tensor([n, n], 0.0, 0.1);
        let p0 = (rng.uniform(-40.0, 40.0), -40.0f32);
        let p1 = (rng.uniform(-40.0, 40.0), 40.0f32);
        let fwd = line_integral(img.data(), grid, p0, p1);
        let bwd = line_integral(img.data(), grid, p1, p0);
        prop_assert!((fwd - bwd).abs() < 1e-3 * (1.0 + fwd.abs()), "{} vs {}", fwd, bwd);
    }

    /// Projection mass (sum x pitch) is the same for every view angle.
    #[test]
    fn projection_mass_invariant(seed in 0u64..200) {
        let mut rng = Xorshift::new(seed + 5);
        let n = 48;
        let grid = Grid { n, px: 1.0 };
        // random blob fully inside the FOV
        let mut img = Tensor::zeros([n, n]);
        let cx = rng.uniform(-8.0, 8.0);
        let cy = rng.uniform(-8.0, 8.0);
        let r = rng.uniform(4.0, 10.0);
        for row in 0..n {
            for col in 0..n {
                let x = (col as f32 + 0.5) - n as f32 / 2.0;
                let y = n as f32 / 2.0 - (row as f32 + 0.5);
                if (x - cx).powi(2) + (y - cy).powi(2) < r * r {
                    img.set(&[row, col], 0.05);
                }
            }
        }
        let geom = ParallelBeamGeometry::for_image(n, grid.px, 8);
        let sino = project_parallel(&img, grid, &geom).unwrap();
        let masses: Vec<f32> =
            (0..geom.views).map(|v| sino.view(v).iter().sum::<f32>() * geom.det_pitch).collect();
        let m0 = masses[0];
        prop_assume!(m0 > 0.0);
        for m in &masses {
            prop_assert!((m - m0).abs() / m0 < 0.06, "masses {:?}", masses);
        }
    }

    /// Poisson noise is unbiased and its spread grows as the dose falls.
    #[test]
    fn poisson_noise_statistics(l in 0.5f32..4.0, seed in 0u64..200) {
        let sino = Sinogram::new(Tensor::full([16, 256], l)).unwrap();
        let dose = DoseSettings { blank_scan: 1.0e5, seed };
        let noisy = apply_poisson_noise(&sino, dose);
        let vals: Vec<f64> = noisy.tensor().data().iter().map(|&v| v as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let sd = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
        let sigma = expected_sigma(l, dose.blank_scan);
        prop_assert!((mean - l as f64).abs() < 5.0 * sigma / (vals.len() as f64).sqrt() + 1e-3,
            "bias: mean {} vs l {}", mean, l);
        prop_assert!((sd - sigma).abs() / sigma < 0.15, "sd {} expected {}", sd, sigma);
    }

    /// Phantom HU values live in the physical CT range everywhere.
    #[test]
    fn phantom_hu_in_range(seed in 0u64..200, z in 0.05f32..0.95) {
        let p = ChestPhantom::subject(seed, z, Some(Severity::Severe));
        let img = p.rasterize_hu(48);
        for &v in img.data() {
            prop_assert!((-1100.0..=1500.0).contains(&v), "HU {}", v);
        }
    }

    /// Lesion burden is monotone in severity on average over slices.
    #[test]
    fn severity_monotone_per_subject(seed in 0u64..100) {
        let avg = |sev: Severity| -> f32 {
            [0.3f32, 0.5, 0.7]
                .iter()
                .map(|&z| ChestPhantom::subject(seed, z, Some(sev)).lesion_burden())
                .sum::<f32>()
                / 3.0
        };
        // mild <= severe with margin (moderate may interleave per-slice)
        prop_assert!(avg(Severity::Mild) <= avg(Severity::Severe) * 1.2 + 1.0);
    }

    /// Lung mask is always inside the body (no lung pixels at the border).
    #[test]
    fn lung_mask_interior(seed in 0u64..200) {
        let p = ChestPhantom::subject(seed, 0.5, None);
        let mask = p.lung_mask(48);
        for i in 0..48 {
            prop_assert_eq!(mask.at(&[0, i]), 0.0);
            prop_assert_eq!(mask.at(&[47, i]), 0.0);
            prop_assert_eq!(mask.at(&[i, 0]), 0.0);
            prop_assert_eq!(mask.at(&[i, 47]), 0.0);
        }
    }
}
