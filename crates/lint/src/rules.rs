//! The invariant rules (DESIGN.md §11).
//!
//! Each rule is a pure function from scanned sources (plus the parsed
//! allowlist) to a list of [`Violation`]s, so the golden-fixture suite
//! can drive them with synthetic paths and the binary with the real
//! workspace.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LintConfig;
use crate::graph::{call_open, CallGraph};
use crate::locks::{self, LockAnalysis};
use crate::report::Violation;
use crate::scanner::{tokenize, Token};

/// A scanned workspace source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (e.g. `crates/nn/src/lib.rs`).
    pub path: String,
    /// Raw file contents (whitespace rule, opt-out markers).
    pub raw: String,
    /// Token stream from [`tokenize`].
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Scan `raw` under the given workspace-relative `path`.
    pub fn new(path: impl Into<String>, raw: impl Into<String>) -> SourceFile {
        let raw = raw.into();
        let tokens = tokenize(&raw);
        SourceFile { path: path.into(), raw, tokens }
    }
}

/// All rule names, in report order. The last three are the v2
/// cross-function rules (DESIGN.md §16) built on [`crate::graph`] and
/// [`crate::locks`].
pub const RULE_NAMES: &[&str] = &[
    "determinism",
    "metric-naming",
    "panic-surface",
    "api-parity",
    "unsafe-budget",
    "doc-coverage",
    "whitespace",
    "lock-order",
    "blocking-under-lock",
    "hot-path-alloc",
];

/// The rules that need the workspace call graph / lock analysis.
pub const GRAPH_RULES: &[&str] = &["lock-order", "blocking-under-lock", "hot-path-alloc"];

/// Crates whose numerics must be bit-reproducible: no ambient clocks or
/// ambient RNG (DESIGN.md §9/§11). `obs` is here so that the *only*
/// wall-clock read in the workspace is the allowlisted
/// `MonotonicClock` in `crates/obs/src/clock.rs` — everything else
/// must go through an injected [`cc19_obs::Clock`].
pub const DETERMINISM_CRATES: &[&str] =
    &["tensor", "kernels", "nn", "ddnet", "ctsim", "obs", "monitor"];

/// Registry constructor methods whose first argument is a metric name
/// (the `cc19-obs` registration surface). When that argument is a string
/// literal, the metric-naming rule validates it.
pub const METRIC_CTORS: &[&str] = &[
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
    "histogram_with_bounds",
    "timer",
    "timer_with",
];

/// Tracing constructors whose call carries a span-path string literal
/// (the `cc19-obs` span/trace surface — the path is not always the
/// first argument, so the extractor takes the first literal in the
/// call). When present, the metric-naming rule validates it as a
/// dotted, crate-prefixed span path (DESIGN.md §17).
pub const SPAN_CTORS: &[&str] = &["enter", "enter_on", "trace_child", "trace_record"];

/// Paths that must stay panic-free and use typed errors: the
/// fault-tolerant transport, the whole serving dispatch crate, and
/// checkpoint I/O.
pub const PANIC_PATHS: &[&str] = &[
    "crates/dist/src/transport.rs",
    "crates/serve/src/",
    "crates/nn/src/checkpoint.rs",
    "crates/monitor/src/",
];

/// The per-file `unsafe` opt-out marker (must appear verbatim, typically
/// in a comment near the top of the file, with a reason string).
pub const UNSAFE_OPT_OUT: &str = "cc19-lint: allow(unsafe";

/// The per-site allocation opt-out marker: on (or directly above) an
/// allocation line inside the hot-path closure, with a reason string.
pub const ALLOC_OPT_OUT: &str = "cc19-lint: allow(alloc";

/// Token patterns a rule bans.
enum Needle {
    /// `A::B` path tail (matches any longer prefix, e.g. `std::time::A::B`).
    Path(&'static [&'static str]),
    /// `.name(` method call.
    Method(&'static str),
    /// `name!` macro invocation.
    Macro(&'static str),
    /// Bare identifier.
    Ident(&'static str),
}

impl Needle {
    fn matches_at(&self, toks: &[Token], i: usize) -> bool {
        let text = |k: usize| toks.get(k).map(|t| t.text.as_str());
        match self {
            Needle::Path(parts) => {
                let mut k = i;
                for (n, part) in parts.iter().enumerate() {
                    if text(k) != Some(part) {
                        return false;
                    }
                    k += 1;
                    if n + 1 < parts.len() {
                        if text(k) != Some(":") || text(k + 1) != Some(":") {
                            return false;
                        }
                        k += 2;
                    }
                }
                true
            }
            Needle::Method(name) => {
                text(i) == Some(".") && text(i + 1) == Some(name) && text(i + 2) == Some("(")
            }
            Needle::Macro(name) => text(i) == Some(name) && text(i + 1) == Some("!"),
            Needle::Ident(name) => text(i) == Some(name),
        }
    }

    fn describe(&self) -> String {
        match self {
            Needle::Path(parts) => parts.join("::"),
            Needle::Method(name) => format!(".{name}()"),
            Needle::Macro(name) => format!("{name}!"),
            Needle::Ident(name) => (*name).to_string(),
        }
    }
}

/// Scan non-test tokens for any needle; returns (line, description) hits.
fn find_needles(toks: &[Token], needles: &[Needle]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        for n in needles {
            if n.matches_at(toks, i) {
                hits.push((toks[i].line, n.describe()));
            }
        }
    }
    hits
}

/// One allocation call site reachable from a `// cc19-hot` seed
/// (report artifact; `allowed` sites carry an opt-out and are not
/// violations).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// File containing the allocation.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Display form of the allocating call (`vec!`, `.collect()`, …).
    pub what: String,
    /// Containing function (`stem::Owner::name`).
    pub func: String,
    /// Witness chain from a hot seed.
    pub chain: String,
    /// True when covered by an inline or lint.toml opt-out.
    pub allowed: bool,
}

/// Cross-function analysis artifacts, surfaced in the JSON report.
#[derive(Debug, Default)]
pub struct Artifacts {
    /// Function definitions in the call graph.
    pub graph_fns: usize,
    /// Resolved call edges.
    pub graph_edges: usize,
    /// Display names of the `// cc19-hot` seeds, sorted.
    pub hot_fns: Vec<String>,
    /// Functions transitively reachable from the seeds.
    pub hot_reachable: usize,
    /// Lock acquisition sites `(lock, path, line)`, sorted.
    pub lock_sites: Vec<(String, String, usize)>,
    /// May-hold-while-acquiring edges `(from, to, witness)`, sorted.
    pub lock_edges: Vec<(String, String, String)>,
    /// Allocation sites reachable from hot seeds (allowed and not).
    pub alloc_sites: Vec<AllocSite>,
}

/// Run the `enabled` subset of rules over the scanned workspace.
///
/// `manifests` are `(path, contents)` pairs for the root `Cargo.toml`
/// and every `crates/*/Cargo.toml` (doc-coverage rule); token rules use
/// `files` only.
pub fn run_rules(
    enabled: &[&str],
    files: &[SourceFile],
    manifests: &[(String, String)],
    cfg: &LintConfig,
) -> Vec<Violation> {
    run_analysis(enabled, files, manifests, cfg).0
}

/// [`run_rules`] plus the cross-function [`Artifacts`] for the report.
pub fn run_analysis(
    enabled: &[&str],
    files: &[SourceFile],
    manifests: &[(String, String)],
    cfg: &LintConfig,
) -> (Vec<Violation>, Artifacts) {
    let mut v = Vec::new();
    if enabled.contains(&"determinism") {
        v.extend(determinism(files, cfg));
    }
    if enabled.contains(&"metric-naming") {
        v.extend(metric_naming(files, cfg));
    }
    if enabled.contains(&"panic-surface") {
        v.extend(panic_surface(files, cfg));
    }
    if enabled.contains(&"api-parity") {
        v.extend(api_parity(files, cfg));
    }
    if enabled.contains(&"unsafe-budget") {
        v.extend(unsafe_budget(files, cfg));
    }
    if enabled.contains(&"doc-coverage") {
        v.extend(doc_coverage(manifests));
    }
    if enabled.contains(&"whitespace") {
        v.extend(whitespace(files));
    }
    let mut artifacts = Artifacts::default();
    if GRAPH_RULES.iter().any(|r| enabled.contains(r)) {
        let graph = CallGraph::build(files);
        let analysis = locks::analyze(files, &graph);
        artifacts.graph_fns = graph.fns.len();
        artifacts.graph_edges = graph.edge_count();
        artifacts.hot_fns = graph.hot_seeds().iter().map(|&i| graph.fns[i].display(files)).collect();
        artifacts.hot_fns.sort();
        artifacts.lock_sites = analysis.sites.clone();
        artifacts.lock_edges = analysis
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone(), e.witness.join(" → ")))
            .collect();
        if enabled.contains(&"lock-order") {
            v.extend(lock_order(&analysis, cfg));
        }
        if enabled.contains(&"blocking-under-lock") {
            v.extend(blocking_under_lock(&analysis, cfg));
        }
        if enabled.contains(&"hot-path-alloc") {
            let (hits, sites, reachable) = hot_path_alloc(files, &graph, cfg);
            v.extend(hits);
            artifacts.alloc_sites = sites;
            artifacts.hot_reachable = reachable;
        }
    }
    v.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    (v, artifacts)
}

/// Which deterministic crate (if any) owns this path?
fn determinism_crate(path: &str) -> Option<&'static str> {
    DETERMINISM_CRATES
        .iter()
        .find(|c| path.strip_prefix("crates/").and_then(|p| p.strip_prefix(**c)).is_some_and(|p| p.starts_with('/')))
        .copied()
}

fn determinism(files: &[SourceFile], cfg: &LintConfig) -> Vec<Violation> {
    let needles = [
        Needle::Path(&["Instant", "now"]),
        Needle::Path(&["SystemTime", "now"]),
        Needle::Path(&["rand", "random"]),
        Needle::Ident("thread_rng"),
        Needle::Ident("from_entropy"),
    ];
    let mut out = Vec::new();
    for f in files {
        let Some(krate) = determinism_crate(&f.path) else { continue };
        if cfg.is_allowed("determinism", &f.path) {
            continue;
        }
        for (line, what) in find_needles(&f.tokens, &needles) {
            out.push(Violation {
                rule: "determinism",
                path: f.path.clone(),
                line,
                msg: format!(
                    "`{what}` is ambient nondeterministic state, banned in the \
                     bit-reproducible `{krate}` crate; seed/clock explicitly or \
                     allowlist this file in lint.toml with a reason"
                ),
            });
        }
    }
    out
}

/// Is `name` a legal metric name for a crate with registration prefix
/// `prefix` (snake_case, crate-prefixed — DESIGN.md §12)?
fn is_valid_metric_name(name: &str, prefix: &str) -> bool {
    let snake = name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    snake && name.starts_with(prefix)
}

/// Is `path` a legal span path for crate `krate` — dotted snake_case
/// with the crate name as its first segment (`serve.cluster.wire`,
/// `monitor.cache`), at least two segments (DESIGN.md §17)?
fn is_valid_span_path(path: &str, krate: &str) -> bool {
    let seg_ok = |s: &str| {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    let mut segs = path.split('.');
    let Some(first) = segs.next() else { return false };
    if first != krate.replace('-', "_") || !seg_ok(first) {
        return false;
    }
    let mut rest = 0usize;
    for s in segs {
        if !seg_ok(s) {
            return false;
        }
        rest += 1;
    }
    rest >= 1
}

/// Extract `(ctor, path)` pairs from `window`: every [`SPAN_CTORS`]
/// call starting within the first `limit` bytes whose balanced-paren
/// argument list carries a string literal — the first such literal is
/// the span path (`enter_on(reg, "bench.gemm")` puts it second).
fn extract_span_paths(window: &str, limit: usize) -> Vec<(&'static str, &str)> {
    let bytes = window.as_bytes();
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut out = Vec::new();
    for &ctor in SPAN_CTORS {
        let mut from = 0usize;
        while let Some(pos) = window[from..].find(ctor) {
            let at = from + pos;
            from = at + 1;
            if at >= limit || (at > 0 && ident(bytes[at - 1])) {
                continue;
            }
            let mut j = at + ctor.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) != Some(&b'(') || ident(*bytes.get(at + ctor.len()).unwrap_or(&b' ')) {
                continue;
            }
            // Scan the balanced argument extent for the first literal.
            let mut depth = 1usize;
            j += 1;
            while j < bytes.len() && depth > 0 {
                match bytes[j] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    b'"' => {
                        let lit = j + 1;
                        if let Some(end) = window[lit..].find('"') {
                            out.push((ctor, &window[lit..lit + end]));
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    out
}

/// Extract `(ctor, name)` pairs from `window`: every [`METRIC_CTORS`]
/// call whose first argument is a string literal, where the call starts
/// within the first `limit` bytes (the literal itself may continue past
/// `limit`, e.g. onto a rustfmt-wrapped next line).
fn extract_metric_names(window: &str, limit: usize) -> Vec<(&'static str, &str)> {
    let bytes = window.as_bytes();
    let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut out = Vec::new();
    for &ctor in METRIC_CTORS {
        let mut from = 0usize;
        while let Some(pos) = window[from..].find(ctor) {
            let at = from + pos;
            from = at + 1;
            if at >= limit || (at > 0 && ident(bytes[at - 1])) {
                continue;
            }
            let mut j = at + ctor.len();
            // `counter` must not match inside `counter_with`: the very
            // next non-whitespace byte has to open the call.
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) != Some(&b'(') {
                continue;
            }
            j += 1;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) != Some(&b'"') {
                continue; // dynamic name or a definition site: no obligation
            }
            let lit = j + 1;
            let Some(end) = window[lit..].find('"') else { continue };
            out.push((ctor, &window[lit..lit + end]));
        }
    }
    out
}

fn metric_naming(files: &[SourceFile], cfg: &LintConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let Some(krate) = crate_of(&f.path) else { continue };
        if f.path.contains("/tests/") || f.path.contains("/benches/") {
            continue;
        }
        if cfg.is_allowed("metric-naming", &f.path) {
            continue;
        }
        let prefix = format!("{}_", krate.replace('-', "_"));
        // Lines holding a live (non-test) registration call. The name
        // literal is invisible to the token stream (the scanner strips
        // strings precisely so rules can't be fooled by them), so it is
        // re-extracted from the raw text of those lines only.
        let mut lines: BTreeSet<usize> = BTreeSet::new();
        for (i, t) in f.tokens.iter().enumerate() {
            if !t.in_test
                && METRIC_CTORS.contains(&t.text.as_str())
                && f.tokens.get(i + 1).is_some_and(|n| n.text == "(")
            {
                lines.insert(t.line);
            }
        }
        let raw_lines: Vec<&str> = f.raw.lines().collect();
        for &line in &lines {
            let Some(first) = raw_lines.get(line - 1) else { continue };
            let window: String = raw_lines[line - 1..raw_lines.len().min(line + 1)].join("\n");
            for (ctor, name) in extract_metric_names(&window, first.len() + 1) {
                if !is_valid_metric_name(name, &prefix) {
                    out.push(Violation {
                        rule: "metric-naming",
                        path: f.path.clone(),
                        line,
                        msg: format!(
                            "metric name \"{name}\" (registered via `{ctor}`) must be \
                             snake_case with the `{prefix}` crate prefix (DESIGN.md §12); \
                             rename it or allowlist this file in lint.toml with a reason"
                        ),
                    });
                }
            }
        }
        // Same gate, extended to the tracing surface: span-path
        // literals recorded through the cc19-obs span/trace ctors must
        // be dotted snake_case under the crate's own namespace, so one
        // request's tree reads uniformly across broker, cluster wire,
        // and monitor cache spans (DESIGN.md §17). The window extends a
        // few lines because rustfmt puts the path argument of a
        // wrapped `trace_record` call on its own line.
        let mut span_lines: BTreeSet<usize> = BTreeSet::new();
        for (i, t) in f.tokens.iter().enumerate() {
            if !t.in_test
                && SPAN_CTORS.contains(&t.text.as_str())
                && f.tokens.get(i + 1).is_some_and(|n| n.text == "(")
            {
                span_lines.insert(t.line);
            }
        }
        for &line in &span_lines {
            let Some(first) = raw_lines.get(line - 1) else { continue };
            let window: String = raw_lines[line - 1..raw_lines.len().min(line + 3)].join("\n");
            for (ctor, path) in extract_span_paths(&window, first.len() + 1) {
                if !is_valid_span_path(path, krate) {
                    out.push(Violation {
                        rule: "metric-naming",
                        path: f.path.clone(),
                        line,
                        msg: format!(
                            "span path \"{path}\" (recorded via `{ctor}`) must be dotted \
                             snake_case with the `{krate}.` crate prefix (DESIGN.md §17); \
                             rename it or allowlist this file in lint.toml with a reason"
                        ),
                    });
                }
            }
        }
    }
    out
}

fn panic_surface(files: &[SourceFile], cfg: &LintConfig) -> Vec<Violation> {
    let needles = [
        Needle::Method("unwrap"),
        Needle::Method("expect"),
        Needle::Macro("panic"),
        Needle::Macro("unreachable"),
        Needle::Macro("todo"),
        Needle::Macro("unimplemented"),
    ];
    let mut out = Vec::new();
    for f in files {
        if !PANIC_PATHS.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        if cfg.is_allowed("panic-surface", &f.path) {
            continue;
        }
        for (line, what) in find_needles(&f.tokens, &needles) {
            out.push(Violation {
                rule: "panic-surface",
                path: f.path.clone(),
                line,
                msg: format!(
                    "`{what}` in a fault-tolerant path; return the module's typed \
                     error instead (recoverable failures must reach the caller)"
                ),
            });
        }
    }
    out
}

/// `crates/<name>/…` → `<name>`.
fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/").and_then(|p| p.split('/').next())
}

/// Is the `fn` keyword at token index `i` part of a `pub` item?
fn fn_is_pub(toks: &[Token], i: usize) -> bool {
    // Walk back over qualifiers (`const`, `unsafe`, `async`, `extern`,
    // an ABI string is stripped already) and a `pub(...)` group.
    let mut k = i;
    for _ in 0..8 {
        if k == 0 {
            return false;
        }
        k -= 1;
        match toks[k].text.as_str() {
            "const" | "unsafe" | "async" | "extern" => continue,
            ")" => {
                // Walk back to the matching `(`.
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match toks[k].text.as_str() {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            "pub" => return true,
            _ => return false,
        }
    }
    false
}

fn api_parity(files: &[SourceFile], cfg: &LintConfig) -> Vec<Violation> {
    // Per crate: all fn names, the test-corpus ident set, and the
    // public `*_into` definition sites.
    let mut fns: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut corpus: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut defs: Vec<(&str, &str, &SourceFile, usize)> = Vec::new();
    for f in files {
        let Some(krate) = crate_of(&f.path) else { continue };
        let in_tests_dir = f.path.contains("/tests/");
        for (i, t) in f.tokens.iter().enumerate() {
            if t.in_test || in_tests_dir {
                corpus.entry(krate).or_default().insert(t.text.as_str());
            }
            if t.text == "fn" {
                if let Some(name) = f.tokens.get(i + 1) {
                    fns.entry(krate).or_default().insert(name.text.as_str());
                    if !t.in_test
                        && !in_tests_dir
                        && name.text.len() > "_into".len()
                        && name.text.ends_with("_into")
                        && fn_is_pub(&f.tokens, i)
                    {
                        defs.push((krate, name.text.as_str(), f, name.line));
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for (krate, name, f, line) in defs {
        if cfg.is_allowed("api-parity", name) {
            continue;
        }
        let base = &name[..name.len() - "_into".len()];
        let has_twin = fns.get(krate).is_some_and(|s| s.contains(base));
        if !has_twin {
            out.push(Violation {
                rule: "api-parity",
                path: f.path.clone(),
                line,
                msg: format!(
                    "pub fn `{name}` has no allocating twin `fn {base}` in crate \
                     `{krate}`; every buffer-reuse variant needs one (or an \
                     api-parity allowlist entry keyed by function name)"
                ),
            });
            continue;
        }
        let tested = corpus
            .get(krate)
            .is_some_and(|s| s.contains(name) && s.contains(base));
        if !tested {
            out.push(Violation {
                rule: "api-parity",
                path: f.path.clone(),
                line,
                msg: format!(
                    "parity pair `{base}`/`{name}` is not named together in any \
                     test of crate `{krate}`; add a bit-identity parity test"
                ),
            });
        }
    }
    out
}

fn unsafe_budget(files: &[SourceFile], cfg: &LintConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if cfg.is_allowed("unsafe-budget", &f.path) || f.raw.contains(UNSAFE_OPT_OUT) {
            continue;
        }
        for t in &f.tokens {
            if t.text == "unsafe" {
                out.push(Violation {
                    rule: "unsafe-budget",
                    path: f.path.clone(),
                    line: t.line,
                    msg: format!(
                        "the workspace is `unsafe`-free by policy; opt this file \
                         out explicitly with `// {UNSAFE_OPT_OUT}, \"reason\")`"
                    ),
                });
            }
        }
    }
    out
}

/// Does `section` in this manifest contain `needle`?
fn manifest_section_contains(manifest: &str, section: &str, needle: &str) -> bool {
    let mut in_section = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == section;
            continue;
        }
        if in_section && line.starts_with(needle) {
            return true;
        }
    }
    false
}

fn doc_coverage(manifests: &[(String, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (path, text) in manifests {
        if path == "Cargo.toml" {
            if !manifest_section_contains(text, "[workspace.lints.rust]", "missing_docs") {
                out.push(Violation {
                    rule: "doc-coverage",
                    path: path.clone(),
                    line: 0,
                    msg: "root manifest must carry `missing_docs` in \
                          [workspace.lints.rust] (the enforced doc-coverage floor)"
                        .into(),
                });
            }
        } else if !manifest_section_contains(text, "[lints]", "workspace = true") {
            out.push(Violation {
                rule: "doc-coverage",
                path: path.clone(),
                line: 0,
                msg: "crate must opt into the shared lint table: add a [lints] \
                      section with `workspace = true`"
                    .into(),
            });
        }
    }
    out
}

fn whitespace(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        let mut push = |line: usize, msg: &str| {
            out.push(Violation { rule: "whitespace", path: f.path.clone(), line, msg: msg.into() });
        };
        for (idx, line) in f.raw.lines().enumerate() {
            let n = idx + 1;
            if line.contains('\r') {
                push(n, "carriage return (CRLF line ending)");
                continue;
            }
            if line != line.trim_end() {
                push(n, "trailing whitespace");
            }
            let indent: &str = &line[..line.len() - line.trim_start().len()];
            if indent.contains('\t') {
                push(n, "tab indentation (use spaces)");
            }
        }
        if !f.raw.is_empty() && !f.raw.ends_with('\n') {
            push(f.raw.lines().count(), "missing final newline");
        }
    }
    out
}

fn lock_order(analysis: &LockAnalysis, cfg: &LintConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    for cycle in locks::find_cycles(&analysis.edges) {
        // Describe each leg of the cycle with its witnessing edge.
        let mut legs = Vec::new();
        let mut anchor: Option<(&str, usize)> = None;
        for k in 0..cycle.len() {
            let from = &cycle[k];
            let to = &cycle[(k + 1) % cycle.len()];
            if let Some(e) =
                analysis.edges.iter().find(|e| &e.from == from && &e.to == to)
            {
                legs.push(format!(
                    "`{from}` → `{to}` via {} ({}:{})",
                    e.witness.join(" → "),
                    e.path,
                    e.line
                ));
                if anchor.is_none() {
                    anchor = Some((&e.path, e.line));
                }
            }
        }
        let Some((path, line)) = anchor else { continue };
        if cfg.is_allowed("lock-order", path) {
            continue;
        }
        let ring: Vec<&str> = cycle.iter().map(String::as_str).collect();
        out.push(Violation {
            rule: "lock-order",
            path: path.to_string(),
            line,
            msg: format!(
                "lock-order cycle `{}` → `{}`: {}; a thread interleaving can \
                 deadlock — impose a single acquisition order (see the rank \
                 table in crates/serve/src/sync.rs)",
                ring.join("` → `"),
                cycle[0],
                legs.join("; ")
            ),
        });
    }
    out
}

fn blocking_under_lock(analysis: &LockAnalysis, cfg: &LintConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    for hit in &analysis.blocking {
        if cfg.is_allowed("blocking-under-lock", &hit.path) {
            continue;
        }
        out.push(Violation {
            rule: "blocking-under-lock",
            path: hit.path.clone(),
            line: hit.line,
            msg: format!(
                "`{}` while holding `{}` (via {}): a blocked holder stalls \
                 every other thread on that lock — drop the guard before \
                 blocking, or move the wait out of the critical section",
                hit.what,
                hit.lock,
                hit.witness.join(" → ")
            ),
        });
    }
    out
}

/// Allocation needles scanned inside hot-reachable fn bodies: paths,
/// methods, and macros that reach the heap.
const ALLOC_PATHS: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from"]),
    ("Box", &["new"]),
    ("String", &["new", "from", "with_capacity"]),
    ("Arc", &["new"]),
    ("Rc", &["new"]),
];
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Allocating calls inside one fn body: `(line, display)`.
fn alloc_hits(toks: &[Token], body: (usize, usize)) -> Vec<(usize, String)> {
    let (b0, b1) = body;
    let mut out = Vec::new();
    for i in b0..=b1 {
        if toks[i].in_test {
            continue;
        }
        let t = toks[i].text.as_str();
        if ALLOC_MACROS.contains(&t) && toks.get(i + 1).is_some_and(|n| n.text == "!") {
            out.push((toks[i].line, format!("{t}!")));
            continue;
        }
        if let Some((_, methods)) = ALLOC_PATHS.iter().find(|(p, _)| *p == t) {
            if toks.get(i + 1).is_some_and(|n| n.text == ":")
                && toks.get(i + 2).is_some_and(|n| n.text == ":")
            {
                if let Some(m) = toks.get(i + 3).filter(|m| methods.contains(&m.text.as_str())) {
                    if call_open(toks, i + 3).is_some() {
                        out.push((toks[i].line, format!("{t}::{}", m.text)));
                        continue;
                    }
                }
            }
        }
        if t == "."
            && toks
                .get(i + 1)
                .is_some_and(|n| ALLOC_METHODS.contains(&n.text.as_str()))
            && call_open(toks, i + 1).is_some()
        {
            // `Arc::clone(&x)` never lands here (path form, not covered
            // above); `.clone()` does — owned-buffer clones on the hot
            // path are exactly what the rule exists to name.
            out.push((toks[i + 1].line, format!(".{}()", toks[i + 1].text)));
        }
    }
    out
}

/// Does the raw line of `line` (or the line above) carry the alloc
/// opt-out marker?
fn alloc_opted_out(raw: &str, line: usize) -> bool {
    let lines: Vec<&str> = raw.lines().collect();
    lines.get(line - 1).is_some_and(|l| l.contains(ALLOC_OPT_OUT))
        || (line >= 2 && lines.get(line - 2).is_some_and(|l| l.contains(ALLOC_OPT_OUT)))
}

fn hot_path_alloc(
    files: &[SourceFile],
    graph: &CallGraph,
    cfg: &LintConfig,
) -> (Vec<Violation>, Vec<AllocSite>, usize) {
    let seeds = graph.hot_seeds();
    let (reached, parents) = graph.reachable_from(&seeds);
    let mut out = Vec::new();
    let mut sites = Vec::new();
    for &fi in &reached {
        let d = &graph.fns[fi];
        let Some(body) = d.body else { continue };
        let f = &files[d.file];
        let chain = graph.chain(&parents, fi);
        for (line, what) in alloc_hits(&f.tokens, body) {
            let allowed =
                alloc_opted_out(&f.raw, line) || cfg.is_allowed("hot-path-alloc", &f.path);
            sites.push(AllocSite {
                path: f.path.clone(),
                line,
                what: what.clone(),
                func: d.display(files),
                chain: chain.clone(),
                allowed,
            });
            if !allowed {
                out.push(Violation {
                    rule: "hot-path-alloc",
                    path: f.path.clone(),
                    line,
                    msg: format!(
                        "`{what}` allocates on the hot path (reached via {chain}): \
                         the `// cc19-hot` contract is zero heap traffic after \
                         warmup — hoist the buffer, use an `_into` twin, or opt \
                         out with `// {ALLOC_OPT_OUT}, \"reason\")`"
                    ),
                });
            }
        }
    }
    sites.sort_by(|a, b| (&a.path, a.line, &a.what).cmp(&(&b.path, b.line, &b.what)));
    sites.dedup_by(|a, b| (&a.path, a.line, &a.what) == (&b.path, b.line, &b.what));
    (out, sites, reached.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: &str, path: &str, src: &str) -> Vec<Violation> {
        let files = [SourceFile::new(path, src)];
        run_rules(&[rule], &files, &[], &LintConfig::default())
    }

    #[test]
    fn determinism_scope_is_path_gated() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(run("determinism", "crates/tensor/src/x.rs", src).len(), 1);
        assert!(run("determinism", "crates/serve/src/x.rs", src).is_empty(), "serve not gated");
        assert!(run("determinism", "crates/tensorx/src/x.rs", src).is_empty(), "prefix-safe");
    }

    #[test]
    fn metric_naming_checks_case_and_crate_prefix() {
        let bad = "fn f(reg: &R) { reg.counter(\"StepLoss\"); reg.gauge(\"tensor_lr\"); }\n";
        let v = run("metric-naming", "crates/ddnet/src/x.rs", bad);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].msg.contains("ddnet_"), "{v:?}");
        let ok = "fn f(reg: &R) { reg.counter(\"ddnet_steps_total\"); }\n";
        assert!(run("metric-naming", "crates/ddnet/src/x.rs", ok).is_empty());
    }

    #[test]
    fn span_path_naming_checks_prefix_dots_and_case() {
        // CamelCase segment and another crate's namespace both trip;
        // the path literal is the *second* argument of trace_child and
        // may sit on its own line in a rustfmt-wrapped call.
        let bad = "fn f(reg: &R, ctx: C) {\n\
                       reg.trace_child(ctx, \"Serve.Queue\", 0, 1);\n\
                       reg.trace_record(\n\
                           ctx,\n\
                           \"monitor.cache\",\n\
                           0, 1, S::Ok);\n\
                   }\n";
        let v = run("metric-naming", "crates/serve/src/x.rs", bad);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.msg.contains("serve.")), "{v:?}");
        // Dotted, crate-prefixed paths pass; a single-segment path (no
        // namespace under the crate) does not.
        let ok = "fn f(reg: &R, ctx: C) { reg.trace_child(ctx, \"serve.cluster.wire\", 0, 1); }\n";
        assert!(run("metric-naming", "crates/serve/src/x.rs", ok).is_empty());
        let flat = "fn f(reg: &R, ctx: C) { reg.trace_child(ctx, \"serve\", 0, 1); }\n";
        assert_eq!(run("metric-naming", "crates/serve/src/x.rs", flat).len(), 1);
    }

    #[test]
    fn span_path_naming_ignores_dynamic_paths_and_definitions() {
        let src = "impl Registry { pub fn trace_child(&self, ctx: C, path: &str) { x } }\n\
                   fn g(reg: &R, ctx: C, p: &str) { reg.trace_child(ctx, p, 0, 1); }\n";
        assert!(run("metric-naming", "crates/obs/src/x.rs", src).is_empty());
    }

    #[test]
    fn metric_naming_ignores_dynamic_names_and_definition_sites() {
        // A variable name carries no obligation; neither does the
        // registry's own `pub fn counter(&self, …)` definition.
        let src = "impl Registry { pub fn counter(&self, name: &str) -> Counter { x } }\n\
                   fn g(reg: &R, n: &str) { reg.counter(n); }\n";
        assert!(run("metric-naming", "crates/obs/src/x.rs", src).is_empty());
    }

    #[test]
    fn metric_naming_skips_test_code_and_test_files() {
        let in_test = "#[cfg(test)]\nmod t { fn f(r: &R) { r.counter(\"Bad\"); } }\n";
        assert!(run("metric-naming", "crates/ddnet/src/x.rs", in_test).is_empty());
        let bad = "fn helper(r: &R) { r.counter(\"Bad\"); }\n";
        assert!(run("metric-naming", "crates/ddnet/tests/x.rs", bad).is_empty());
    }

    #[test]
    fn metric_naming_reads_rustfmt_wrapped_literals() {
        let wrapped = "fn f(r: &R) {\n    r.histogram_with_bounds(\n        \"Wrong\",\n        &[],\n        B,\n    );\n}\n";
        let v = run("metric-naming", "crates/serve/src/x.rs", wrapped);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("\"Wrong\""), "{v:?}");
        assert!(v[0].msg.contains("serve_"), "{v:?}");
    }

    #[test]
    fn metric_naming_does_not_confuse_ctor_prefixes() {
        // `counter` must not fire on the `counter_with` call site, and the
        // labels argument must not be mistaken for the name.
        let ok = "fn f(r: &R) { r.counter_with(\"dist_faults_injected_total\", &[(\"kind\", \"drop\")]); }\n";
        assert!(run("metric-naming", "crates/dist/src/x.rs", ok).is_empty());
        let bad = "fn f(r: &R) { r.counter_with(\"Faults\", &[(\"kind\", \"drop\")]); }\n";
        assert_eq!(run("metric-naming", "crates/dist/src/x.rs", bad).len(), 1);
    }

    #[test]
    fn panic_surface_skips_test_tokens() {
        let src = "fn f() -> R { v.get(0) }\n#[cfg(test)]\nmod tests { fn t() { v.unwrap(); } }\n";
        assert!(run("panic-surface", "crates/serve/src/x.rs", src).is_empty());
        let bad = "fn f() { v.unwrap(); }\n";
        assert_eq!(run("panic-surface", "crates/serve/src/x.rs", bad).len(), 1);
    }

    #[test]
    fn panic_surface_covers_the_serve_cluster_module() {
        // The sharded cluster (router, node loop, wire protocol, weight
        // broadcast) lives under crates/serve/src/cluster/ and must stay
        // on the panic-free surface via the crates/serve/src/ prefix.
        for file in ["router.rs", "node.rs", "proto.rs", "ring.rs", "weights.rs", "mod.rs"] {
            let path = format!("crates/serve/src/cluster/{file}");
            assert!(
                PANIC_PATHS.iter().any(|p| path.starts_with(p)),
                "{path} fell off the panic-free surface"
            );
        }
        let bad = "fn f() { v.unwrap(); }\n";
        assert_eq!(run("panic-surface", "crates/serve/src/cluster/router.rs", bad).len(), 1);
    }

    #[test]
    fn monitor_crate_is_pinned_onto_both_rule_sets() {
        // The longitudinal-monitoring subsystem memoizes clinical
        // artifacts: its cache keys and burden numbers must be
        // bit-reproducible, and a panic in the cache path would take
        // down a serving replica mid-study.
        assert!(DETERMINISM_CRATES.contains(&"monitor"), "monitor fell off determinism");
        assert!(
            PANIC_PATHS.iter().any(|p| "crates/monitor/src/cache.rs".starts_with(p)),
            "crates/monitor/src/ fell off the panic-free surface"
        );
        let clocked = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(run("determinism", "crates/monitor/src/timeline.rs", clocked).len(), 1);
        let bad = "fn f() { v.unwrap(); }\n";
        assert_eq!(run("panic-surface", "crates/monitor/src/cache.rs", bad).len(), 1);
        // tests and the demo example stay off the enforced surface
        assert!(run("panic-surface", "crates/monitor/tests/x.rs", bad).is_empty());
    }

    #[test]
    fn expect_field_access_is_not_a_call() {
        // `srv.expect[src]` (a field named `expect`) must not trip the rule.
        let src = "fn f() { let w = srv.expect[src]; }\n";
        assert!(run("panic-surface", "crates/dist/src/transport.rs", src).is_empty());
    }

    #[test]
    fn api_parity_requires_pub_and_twin_and_test() {
        // Private `_into` helpers carry no parity obligation.
        let private = "fn helper_into(a: &mut [f32]) {}\n";
        assert!(run("api-parity", "crates/tensor/src/x.rs", private).is_empty());
        // A pub one without a twin is a violation even when tested.
        let no_twin = "pub fn frob_into(d: &mut T) {}\n#[cfg(test)]\nmod t { fn p() { frob_into(x); frob(x); } }\n";
        let v = run("api-parity", "crates/tensor/src/x.rs", no_twin);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("no allocating twin"));
        // Twin present but never tested together.
        let untested = "pub fn frob_into(d: &mut T) {}\npub fn frob() -> T {}\n";
        let v = run("api-parity", "crates/tensor/src/x.rs", untested);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("parity test"));
        // Twin + parity test: clean.
        let ok = "pub fn frob_into(d: &mut T) {}\npub fn frob() -> T {}\n#[cfg(test)]\nmod t { fn p() { frob_into(x); frob(x); } }\n";
        assert!(run("api-parity", "crates/tensor/src/x.rs", ok).is_empty());
    }

    #[test]
    fn doc_coverage_checks_manifests() {
        let manifests = vec![
            ("Cargo.toml".to_string(), "[workspace.lints.rust]\nmissing_docs = \"warn\"\n".to_string()),
            ("crates/a/Cargo.toml".to_string(), "[package]\nname = \"a\"\n".to_string()),
            ("crates/b/Cargo.toml".to_string(), "[package]\n[lints]\nworkspace = true\n".to_string()),
        ];
        let v = run_rules(&["doc-coverage"], &[], &manifests, &LintConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].path, "crates/a/Cargo.toml");
    }

    #[test]
    fn whitespace_flags_each_kind() {
        let src = "fn a() {} \n\tlet x = 1;\nno_newline";
        let v = run("whitespace", "crates/data/src/x.rs", src);
        let msgs: Vec<&str> = v.iter().map(|x| x.msg.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("trailing")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("tab")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("final newline")), "{msgs:?}");
    }

    #[test]
    fn unsafe_budget_honors_opt_out_marker() {
        let bad = "pub fn f() { unsafe { core(); } }\n";
        assert_eq!(run("unsafe-budget", "crates/data/src/x.rs", bad).len(), 1);
        let opted = format!("// {UNSAFE_OPT_OUT}, \"simd kernel\")\n{bad}");
        assert!(run("unsafe-budget", "crates/data/src/x.rs", &opted).is_empty());
    }

    #[test]
    fn allowlist_suppresses_by_key() {
        let mut cfg = LintConfig::default();
        cfg.allow
            .entry("determinism".into())
            .or_default()
            .insert("crates/nn/src/x.rs".into(), "timing".into());
        let files = [SourceFile::new("crates/nn/src/x.rs", "fn f() { Instant::now(); }\n")];
        assert!(run_rules(&["determinism"], &files, &[], &cfg).is_empty());
    }

    #[test]
    fn lock_order_names_both_locks_and_the_witness() {
        let src = "impl P {\n    fn fwd(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n    fn bwd(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n}\n";
        let v = run("lock-order", "crates/serve/src/pair.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("`pair::a`") && v[0].msg.contains("`pair::b`"), "{v:?}");
        assert!(v[0].msg.contains("fwd") && v[0].msg.contains("bwd"), "{v:?}");
        // Consistent ordering in both functions: no cycle.
        let ok = "impl P {\n    fn fwd(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n    fn again(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n}\n";
        assert!(run("lock-order", "crates/serve/src/pair.rs", ok).is_empty());
    }

    #[test]
    fn blocking_under_lock_flags_recv_but_not_condvar_waits() {
        let bad = "fn f(&self) {\n    let g = lock(&self.inner);\n    let v = self.rx.recv();\n    drop(g);\n}\n";
        let v = run("blocking-under-lock", "crates/serve/src/q.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains(".recv()") && v[0].msg.contains("q::inner"), "{v:?}");
        let ok = "fn f(&self) {\n    let mut g = lock(&self.inner);\n    while g.empty { g = wait(&self.cv, g); }\n}\n";
        assert!(run("blocking-under-lock", "crates/serve/src/q.rs", ok).is_empty());
    }

    #[test]
    fn hot_path_alloc_walks_the_closure_and_honors_opt_outs() {
        let src = "// cc19-hot\npub fn hot(&self) { self.step(); }\nfn step(&self) { let v: Vec<f32> = it.collect(); }\nfn cold() { let v = vec![0.0]; }\n";
        let v = run("hot-path-alloc", "crates/tensor/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains(".collect()"), "{v:?}");
        assert!(v[0].msg.contains("hot → step"), "{v:?}");
        // `cold` is unreachable from the seed: no obligation.
        let opted = "// cc19-hot\npub fn hot(&self) { self.step(); }\nfn step(&self) {\n    // cc19-lint: allow(alloc, \"one-time warmup\")\n    let v: Vec<f32> = it.collect();\n}\n";
        assert!(run("hot-path-alloc", "crates/tensor/src/x.rs", opted).is_empty());
    }

    #[test]
    fn hot_path_alloc_artifacts_list_allowed_sites_too() {
        let src = "// cc19-hot\npub fn hot() {\n    // cc19-lint: allow(alloc, \"pinned\")\n    let v = vec![1];\n}\n";
        let files = [SourceFile::new("crates/tensor/src/x.rs", src)];
        let (v, art) = run_analysis(&["hot-path-alloc"], &files, &[], &LintConfig::default());
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(art.alloc_sites.len(), 1, "{:?}", art.alloc_sites);
        assert!(art.alloc_sites[0].allowed);
        assert_eq!(art.alloc_sites[0].what, "vec!");
        assert_eq!(art.hot_fns, vec!["x::hot".to_string()]);
    }
}
