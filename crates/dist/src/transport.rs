//! Fault-tolerant transport over the crossbeam channel fabric.
//!
//! The first version of this crate wired raw `Vec<f32>` buffers straight
//! through channels; one dropped message deadlocked the ring. This module
//! interposes a reliability layer modelled on TCP-over-lossy-wire:
//!
//! - every frame carries a **sequence number** and a **CRC-32** of its
//!   payload, so duplicates and reorders are detected and discarded, and
//!   corrupted payloads are rejected instead of averaged into gradients;
//! - the sender keeps each outbound payload in a **retransmit buffer**
//!   shared with the receiver; when a receive times out (the injected
//!   "wire" dropped, delayed, or corrupted the frame), the receiver pulls
//!   the authoritative copy from that buffer after an exponential-backoff
//!   wait — the in-process analogue of a NACK/retransmit round trip;
//! - every transport operation updates a per-rank **heartbeat**; a
//!   receive that exhausts its retry budget consults the heartbeats, and
//!   only a rank that has been silent past the liveness threshold is
//!   declared dead ([`Error::RankDead`]);
//! - on a death verdict the first detector **rebuilds the ring** among
//!   survivors under the cluster lock and bumps the membership
//!   generation; every other survivor adopts the new endpoints from its
//!   own error path and the all-reduce restarts from the callers' saved
//!   gradients.
//!
//! Fault injection ([`crate::fault::FaultPlan`]) happens on the wire side
//! only: the retransmit buffer always holds the good copy, which is what
//! makes recovery exact — a chaos run (without kills) finishes with
//! weights bit-identical to a fault-free run.
//!
//! This file is on the cc19-lint panic-surface path: every recoverable
//! failure must surface as a typed [`Error`], never a panic.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::Error;
use crate::fault::{FaultKind, FaultPlan};
use crate::framing::crc32_f32s as payload_crc;
use crate::obs::LinkStats;

/// One message on a link: sequence-numbered, checksummed payload.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Sender's global rank.
    pub src: usize,
    /// Per-directed-link sequence number.
    pub seq: u64,
    /// CRC-32 of the *original* payload bytes (a corrupt fault flips bits
    /// in the wire copy only, so the mismatch is detectable).
    pub crc: u32,
    /// The payload as sent (possibly corrupted in flight).
    pub payload: Vec<f32>,
}

/// Sender-side reliability buffer, shared with the receiver of the link.
type Slot = Arc<Mutex<HashMap<u64, Vec<f32>>>>;

/// Poison-tolerant mutex lock. A panicked *peer* thread (an injected
/// chaos kill, or a genuine bug on another rank) must not cascade into
/// this rank's transport: the guarded maps hold plain owned data that
/// stays valid wherever the panicking thread stopped, so recovering the
/// inner value is always sound here.
fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Timeout/retry policy for one transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutCfg {
    /// First receive timeout; doubled per retry up to [`Self::max_backoff`].
    pub base: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Retries before the liveness oracle is consulted.
    pub retries: u32,
    /// Heartbeat staleness threshold for declaring a rank dead.
    pub liveness: Duration,
    /// Absolute per-receive budget; exceeding it with all peers alive is
    /// a fatal [`Error::Timeout`].
    pub hard_cap: Duration,
    /// Fraction of each backoff step randomized away by deterministic
    /// jitter (0.0 = the fixed exponential schedule, 1.0 = full jitter).
    /// Desynchronizes retry storms when many links time out together;
    /// the jitter derives from the fault-plan seed via [`backoff_delay`],
    /// so chaos runs still reproduce exactly.
    pub jitter: f64,
}

impl Default for TimeoutCfg {
    fn default() -> Self {
        TimeoutCfg {
            base: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            retries: 6,
            liveness: Duration::from_secs(10),
            hard_cap: Duration::from_secs(30),
            jitter: 0.5,
        }
    }
}

impl TimeoutCfg {
    /// A tight policy for tests. The liveness threshold still has to
    /// comfortably exceed a worst-case compute step under CPU contention:
    /// a slow-but-alive peer that blows it gets falsely evicted, which is
    /// exactly the mistake the heartbeat oracle exists to avoid. Death by
    /// dropped endpoints (the common case) is detected instantly via
    /// channel disconnect regardless of this threshold.
    pub fn fast() -> Self {
        TimeoutCfg {
            base: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            retries: 4,
            liveness: Duration::from_secs(3),
            hard_cap: Duration::from_secs(12),
            jitter: 0.5,
        }
    }
}

/// The receive backoff for retry `attempt` on one directed link: the
/// capped exponential step `base * 2^min(attempt, 4)`, with its trailing
/// `jitter` fraction replaced by a deterministic draw in `[0, 1)` hashed
/// from `(seed, stream, attempt)`. The result always lands in
/// `[step * (1 - jitter), step]`, so the schedule keeps its exponential
/// envelope while distinct links (distinct `stream` values) desynchronize
/// instead of retrying in lockstep. Pure: the same inputs always produce
/// the same delay, which keeps seeded chaos runs bit-reproducible.
pub fn backoff_delay(t: &TimeoutCfg, seed: u64, stream: u64, attempt: u32) -> Duration {
    let step = t.base.checked_mul(1u32 << attempt.min(4)).unwrap_or(t.max_backoff).min(t.max_backoff);
    let jitter = t.jitter.clamp(0.0, 1.0);
    if jitter == 0.0 {
        return step;
    }
    let draw = crate::fault::unit01(crate::fault::mix64(
        seed ^ crate::fault::mix64(stream) ^ (u64::from(attempt) | 0xBACC_0FF0_0000_0000),
    ));
    let scale = 1.0 - jitter * draw;
    Duration::from_nanos((step.as_nanos() as f64 * scale) as u64)
}

/// The jitter stream id for the directed link `src -> dst` (keeps draws
/// decorrelated across links without any shared state).
pub(crate) fn link_stream(src: usize, dst: usize) -> u64 {
    ((src as u64) << 32) | dst as u64
}

// ---------------------------------------------------------------------------
// Cluster membership + heartbeats
// ---------------------------------------------------------------------------

/// Per-rank endpoints for one ring generation.
struct Endpoints {
    /// Position within the live ring (0..live).
    pos: usize,
    /// Live rank count for this generation.
    live: usize,
    /// Global rank of the next live rank.
    next_rank: usize,
    /// Global rank of the previous live rank.
    prev_rank: usize,
    to_next: Sender<Frame>,
    next_slot: Slot,
    from_prev: Receiver<Frame>,
    prev_slot: Slot,
}

struct MembershipInner {
    generation: u64,
    alive: Vec<bool>,
    /// Freshly built endpoints per global rank, taken by each survivor
    /// when it adopts the new generation.
    pending: Vec<Option<Endpoints>>,
}

/// Shared cluster state: liveness heartbeats plus ring membership.
pub struct Cluster {
    epoch: Instant,
    hb: Vec<AtomicU64>,
    inner: Mutex<MembershipInner>,
}

impl Cluster {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Cluster {
            epoch: Instant::now(),
            hb: (0..n).map(|_| AtomicU64::new(0)).collect(),
            inner: Mutex::new(MembershipInner {
                generation: 0,
                alive: vec![true; n],
                pending: (0..n).map(|_| None).collect(),
            }),
        })
    }

    /// A membership table used purely as a liveness oracle (heartbeats +
    /// alive flags), without any ring endpoints. The serve cluster router
    /// shares one of these with its worker nodes: workers [`Cluster::beat`]
    /// on every loop iteration, the router consults
    /// [`Cluster::stale_rank`] for hung-but-connected workers and
    /// [`Cluster::mark_dead`] on a death verdict.
    pub fn standalone(n: usize) -> Arc<Self> {
        let c = Cluster::new(n);
        // Every member starts "just heard from" so a slow first loop
        // iteration is not mistaken for silence since process start.
        for r in 0..n {
            c.beat(r);
        }
        c
    }

    /// Flag `rank` as dead. Returns `true` if it was believed alive (the
    /// caller is the first detector and owns the recovery action).
    pub fn mark_dead(&self, rank: usize) -> bool {
        let mut inner = lock(&self.inner);
        if rank < inner.alive.len() && inner.alive[rank] {
            inner.alive[rank] = false;
            true
        } else {
            false
        }
    }

    /// Flag `rank` as alive again (a rejoined worker taking over a
    /// previously-dead slot) and refresh its heartbeat so it does not
    /// immediately read as stale.
    pub fn mark_alive(&self, rank: usize) {
        let mut inner = lock(&self.inner);
        if rank < inner.alive.len() {
            inner.alive[rank] = true;
            drop(inner);
            self.beat(rank);
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Record activity for `rank`.
    pub fn beat(&self, rank: usize) {
        self.hb[rank].store(self.now_ms(), Ordering::Relaxed);
    }

    /// Ranks currently believed alive.
    pub fn live_ranks(&self) -> Vec<usize> {
        let inner = lock(&self.inner);
        inner.alive.iter().enumerate().filter(|(_, a)| **a).map(|(r, _)| r).collect()
    }

    /// The stalest allegedly-alive rank (excluding `me`; pass an
    /// out-of-range rank such as `usize::MAX` to exclude nobody) whose
    /// heartbeat exceeds `liveness`, if any.
    pub fn stale_rank(&self, me: usize, liveness: Duration) -> Option<usize> {
        let now = self.now_ms();
        let thresh = liveness.as_millis() as u64;
        let inner = lock(&self.inner);
        let mut worst: Option<(usize, u64)> = None;
        for (r, alive) in inner.alive.iter().enumerate() {
            if !alive || r == me {
                continue;
            }
            let age = now.saturating_sub(self.hb[r].load(Ordering::Relaxed));
            if age > thresh && worst.map(|(_, w)| age > w).unwrap_or(true) {
                worst = Some((r, age));
            }
        }
        worst.map(|(r, _)| r)
    }
}

/// Build ring links (channel + retransmit slot per directed edge) for the
/// given ordered membership. Returns per-member endpoints.
fn build_ring_endpoints(members: &[usize]) -> Vec<Endpoints> {
    let m = members.len();
    let links: Vec<(Sender<Frame>, Receiver<Frame>, Slot)> = (0..m)
        .map(|_| {
            let (tx, rx) = unbounded();
            (tx, rx, Arc::new(Mutex::new(HashMap::new())))
        })
        .collect();
    // link i carries traffic from members[i] to members[(i+1) % m]
    (0..m)
        .map(|i| {
            let prev_link = (i + m - 1) % m;
            Endpoints {
                pos: i,
                live: m,
                next_rank: members[(i + 1) % m],
                prev_rank: members[prev_link],
                to_next: links[i].0.clone(),
                next_slot: links[i].2.clone(),
                from_prev: links[prev_link].1.clone(),
                prev_slot: links[prev_link].2.clone(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ring transport
// ---------------------------------------------------------------------------

/// One rank's fault-tolerant view of the ring.
pub struct RingTransport {
    rank: usize,
    cluster: Arc<Cluster>,
    ep: Endpoints,
    generation: u64,
    send_seq: u64,
    recv_seq: u64,
    stash: HashMap<u64, Vec<f32>>,
    faults: FaultPlan,
    t: TimeoutCfg,
    pub(crate) stats: LinkStats,
}

/// Build a fault-free ring of `n` transports with default timeouts.
pub fn make_ring(n: usize) -> Vec<RingTransport> {
    make_ring_with(n, FaultPlan::none(), TimeoutCfg::default()).1
}

/// Build a ring with an explicit fault plan and timeout policy. The
/// returned [`Cluster`] is shared by every transport (membership +
/// heartbeats).
pub fn make_ring_with(
    n: usize,
    faults: FaultPlan,
    t: TimeoutCfg,
) -> (Arc<Cluster>, Vec<RingTransport>) {
    make_ring_in(n, faults, t, cc19_obs::global())
}

/// [`make_ring_with`] with transport metrics resolved against an explicit
/// `cc19-obs` registry instead of the process-global one (test isolation;
/// see `tests/obs_counters.rs`).
pub fn make_ring_in(
    n: usize,
    faults: FaultPlan,
    t: TimeoutCfg,
    reg: &cc19_obs::Registry,
) -> (Arc<Cluster>, Vec<RingTransport>) {
    let stats = LinkStats::from_registry(reg);
    let cluster = Cluster::new(n);
    let members: Vec<usize> = (0..n).collect();
    let transports = build_ring_endpoints(&members)
        .into_iter()
        .enumerate()
        .map(|(rank, ep)| RingTransport {
            rank,
            cluster: cluster.clone(),
            ep,
            generation: 0,
            send_seq: 0,
            recv_seq: 0,
            stash: HashMap::new(),
            faults,
            t,
            stats: stats.clone(),
        })
        .collect();
    (cluster, transports)
}

impl RingTransport {
    /// This rank's global id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Position within the current live ring.
    pub fn pos(&self) -> usize {
        self.ep.pos
    }

    /// Live rank count in the current generation.
    pub fn live(&self) -> usize {
        self.ep.live
    }

    /// Current membership generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record that this rank is alive (call during long compute phases so
    /// slow progress is not mistaken for death).
    pub fn beat(&self) {
        self.cluster.beat(self.rank);
    }

    /// The fault plan this transport injects (shared by all ranks).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Send `payload` to the next rank in the ring. Never blocks; the
    /// payload is retained in the retransmit buffer until the receiver
    /// has consumed past it.
    pub fn send_next(&mut self, payload: &[f32]) -> Result<(), Error> {
        let seq = self.send_seq;
        self.send_seq += 1;
        self.beat();
        // Reliability layer: buffer the authoritative copy first.
        lock(&self.ep.next_slot).insert(seq, payload.to_vec());
        let crc = payload_crc(payload);
        let actions = self.faults.decide(self.rank, self.ep.next_rank, seq, self.generation);
        self.stats.record_faults(&actions);
        if actions.contains(&FaultKind::Drop) {
            return Ok(());
        }
        let mut wire = payload.to_vec();
        let mut duplicate = false;
        for a in &actions {
            match a {
                FaultKind::Delay(ms) => std::thread::sleep(Duration::from_millis(*ms)),
                FaultKind::Corrupt => {
                    if let Some(v) = wire.first_mut() {
                        *v = f32::from_bits(v.to_bits() ^ 0x0040_0000);
                    }
                }
                FaultKind::Duplicate => duplicate = true,
                FaultKind::Drop => {} // handled by the early return above
            }
        }
        let frame = Frame { src: self.rank, seq, crc, payload: wire };
        if duplicate {
            let _ = self.ep.to_next.send(frame.clone());
        }
        let _ = self.ep.to_next.send(frame);
        Ok(())
    }

    /// Receive the next in-sequence payload from the previous rank,
    /// retrying through injected faults. Errors are recoverable via
    /// [`RingTransport::recover`] when they name a dead rank.
    pub fn recv_prev(&mut self) -> Result<Vec<f32>, Error> {
        self.beat();
        let want = self.recv_seq;
        if let Some(p) = self.stash.remove(&want) {
            return Ok(self.deliver(p));
        }
        let start = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            if start.elapsed() > self.t.hard_cap {
                return Err(Error::Timeout { rank: self.rank, peer: self.ep.prev_rank, op: "ring recv" });
            }
            let backoff = backoff_delay(
                &self.t,
                self.faults.seed(),
                link_stream(self.ep.prev_rank, self.rank),
                attempt,
            );
            match self.ep.from_prev.recv_timeout(backoff) {
                Ok(frame) => {
                    self.beat();
                    if frame.seq < want {
                        // Duplicate (or late original after a slot fetch) —
                        // already consumed, discard.
                        self.stats.duplicates_discarded.inc();
                        continue;
                    }
                    if payload_crc(&frame.payload) != frame.crc {
                        // Corrupted on the wire; the retransmit buffer has
                        // the good copy, fall through to the timeout path.
                        self.stats.crc_rejects.inc();
                        attempt += 1;
                        continue;
                    }
                    if frame.seq > want {
                        // The wire reordered ahead of a lost frame; stash
                        // and keep waiting for `want`.
                        self.stats.reorder_stash.inc();
                        self.stash.insert(frame.seq, frame.payload);
                        continue;
                    }
                    return Ok(self.deliver(frame.payload));
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.stats.recv_timeouts.inc();
                    // NACK/retransmit round trip: pull from the sender's
                    // reliability buffer if it already sent `want`.
                    let buffered = lock(&self.ep.prev_slot).get(&want).cloned();
                    if let Some(p) = buffered {
                        self.stats.retransmit_pulls.inc();
                        return Ok(self.deliver(p));
                    }
                    self.beat();
                    attempt += 1;
                    if attempt >= self.t.retries {
                        if let Some(dead) = self.cluster.stale_rank(self.rank, self.t.liveness) {
                            self.stats.heartbeat_miss.inc();
                            self.stats.rank_dead.inc();
                            return Err(Error::RankDead { rank: dead });
                        }
                        // Everyone still alive: keep waiting (bounded by
                        // the hard cap) without growing the backoff.
                        attempt = self.t.retries;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The predecessor dropped its endpoints: it either
                    // died or moved to a newer ring generation. Drain the
                    // buffer one last time, then report it dead; recover()
                    // sorts out which case it was.
                    let buffered = lock(&self.ep.prev_slot).get(&want).cloned();
                    if let Some(p) = buffered {
                        self.stats.retransmit_pulls.inc();
                        return Ok(self.deliver(p));
                    }
                    self.stats.rank_dead.inc();
                    return Err(Error::RankDead { rank: self.ep.prev_rank });
                }
            }
        }
    }

    fn deliver(&mut self, payload: Vec<f32>) -> Vec<f32> {
        let consumed = self.recv_seq;
        self.recv_seq += 1;
        // Prune the sender's buffer up to what we consumed.
        lock(&self.ep.prev_slot).retain(|&s, _| s > consumed);
        payload
    }

    /// Attempt to recover from a transport error. Returns `Ok(())` when
    /// the ring has been rebuilt (or a newer generation adopted) and the
    /// caller should retry its collective from saved inputs; returns the
    /// error (or a fatal one) otherwise.
    pub fn recover(&mut self, err: &Error) -> Result<(), Error> {
        let dead_hint = match err {
            Error::RankDead { rank } => Some(*rank),
            Error::Timeout { .. } => None,
            other => return Err(other.clone()),
        };
        let mut inner = lock(&self.cluster.inner);
        if inner.generation > self.generation {
            // Someone already rebuilt; adopt our new endpoints.
            let gen = inner.generation;
            return match inner.pending[self.rank].take() {
                Some(ep) => {
                    drop(inner);
                    self.adopt(ep, gen);
                    Ok(())
                }
                // No endpoints were built for us: the detectors declared
                // *us* dead (false positive under extreme slowness). Bow
                // out; the survivors continue without this rank.
                None => Err(Error::RankDead { rank: self.rank }),
            };
        }
        let Some(dead) = dead_hint else {
            // Hard timeout with every peer still heartbeating — fatal.
            return Err(err.clone());
        };
        if !inner.alive[dead] {
            // Stale report for an already-buried rank in our generation;
            // nothing to do but retry.
            return Ok(());
        }
        inner.alive[dead] = false;
        let survivors: Vec<usize> =
            inner.alive.iter().enumerate().filter(|(_, a)| **a).map(|(r, _)| r).collect();
        if survivors.is_empty() {
            return Err(Error::AllRanksDead);
        }
        inner.generation += 1;
        let gen = inner.generation;
        let eps = build_ring_endpoints(&survivors);
        for slot in inner.pending.iter_mut() {
            *slot = None;
        }
        for (member, ep) in survivors.iter().zip(eps) {
            inner.pending[*member] = Some(ep);
        }
        let mine = inner.pending[self.rank]
            .take()
            .ok_or(Error::RankDead { rank: self.rank })?;
        drop(inner);
        self.adopt(mine, gen);
        Ok(())
    }

    fn adopt(&mut self, ep: Endpoints, generation: u64) {
        self.ep = ep; // drops the old endpoints, waking stalled peers
        self.generation = generation;
        self.send_seq = 0;
        self.recv_seq = 0;
        self.stash.clear();
        self.beat();
    }
}

// ---------------------------------------------------------------------------
// Star (parameter-server) transport
// ---------------------------------------------------------------------------

/// One rank's endpoints for the naive parameter-server reduce. Rank 0 is
/// the server. Fault-tolerant to message faults (drop/delay/dup/corrupt)
/// but not to rank death — the ring path is the production one.
pub struct StarTransport {
    rank: usize,
    n: usize,
    up_tx: Sender<Frame>,
    up_slot: Slot,
    down_rx: Receiver<Frame>,
    down_slot: Slot,
    /// Server side (rank 0 only): shared uplink receiver, per-worker
    /// uplink slots, per-worker downlinks.
    server: Option<StarServer>,
    send_seq: u64,
    recv_seq: u64,
    faults: FaultPlan,
    t: TimeoutCfg,
    stats: LinkStats,
}

struct StarServer {
    up_rx: Receiver<Frame>,
    up_slots: Vec<Slot>,
    down: Vec<(Sender<Frame>, Slot)>,
    /// Next expected uplink seq per worker.
    expect: Vec<u64>,
    /// Downlink send seq per worker.
    down_seq: Vec<u64>,
}

/// Build fault-free star endpoints with default timeouts.
pub fn make_star(n: usize) -> Vec<StarTransport> {
    make_star_with(n, FaultPlan::none(), TimeoutCfg::default())
}

/// Build star endpoints with an explicit fault plan and timeout policy.
pub fn make_star_with(n: usize, faults: FaultPlan, t: TimeoutCfg) -> Vec<StarTransport> {
    make_star_in(n, faults, t, cc19_obs::global())
}

/// [`make_star_with`] against an explicit `cc19-obs` registry.
pub fn make_star_in(
    n: usize,
    faults: FaultPlan,
    t: TimeoutCfg,
    reg: &cc19_obs::Registry,
) -> Vec<StarTransport> {
    let stats = LinkStats::from_registry(reg);
    let (up_tx, up_rx) = unbounded();
    let up_slots: Vec<Slot> = (0..n).map(|_| Arc::new(Mutex::new(HashMap::new()))).collect();
    let down: Vec<(Sender<Frame>, Receiver<Frame>, Slot)> = (0..n)
        .map(|_| {
            let (tx, rx) = unbounded();
            (tx, rx, Arc::new(Mutex::new(HashMap::new())))
        })
        .collect();
    (0..n)
        .map(|rank| StarTransport {
            rank,
            n,
            up_tx: up_tx.clone(),
            up_slot: up_slots[rank].clone(),
            down_rx: down[rank].1.clone(),
            down_slot: down[rank].2.clone(),
            server: (rank == 0).then(|| StarServer {
                up_rx: up_rx.clone(),
                up_slots: up_slots.clone(),
                down: down.iter().map(|(tx, _, slot)| (tx.clone(), slot.clone())).collect(),
                expect: vec![0; n],
                down_seq: vec![0; n],
            }),
            send_seq: 0,
            recv_seq: 0,
            faults,
            t,
            stats: stats.clone(),
        })
        .collect()
}

impl StarTransport {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    #[allow(clippy::too_many_arguments)]
    fn inject_and_send(
        faults: &FaultPlan,
        stats: &LinkStats,
        src: usize,
        dst: usize,
        seq: u64,
        payload: &[f32],
        slot: &Slot,
        tx: &Sender<Frame>,
    ) {
        lock(slot).insert(seq, payload.to_vec());
        let crc = payload_crc(payload);
        let actions = faults.decide(src, dst, seq, 0);
        stats.record_faults(&actions);
        if actions.contains(&FaultKind::Drop) {
            return;
        }
        let mut wire = payload.to_vec();
        let mut duplicate = false;
        for a in &actions {
            match a {
                FaultKind::Delay(ms) => std::thread::sleep(Duration::from_millis(*ms)),
                FaultKind::Corrupt => {
                    if let Some(v) = wire.first_mut() {
                        *v = f32::from_bits(v.to_bits() ^ 0x0040_0000);
                    }
                }
                FaultKind::Duplicate => duplicate = true,
                FaultKind::Drop => {} // handled by the early return above
            }
        }
        let frame = Frame { src, seq, crc, payload: wire };
        if duplicate {
            let _ = tx.send(frame.clone());
        }
        let _ = tx.send(frame);
    }

    /// Worker: ship the buffer up to the server.
    pub fn send_to_server(&mut self, payload: &[f32]) -> Result<(), Error> {
        let seq = self.send_seq;
        self.send_seq += 1;
        Self::inject_and_send(&self.faults, &self.stats, self.rank, 0, seq, payload, &self.up_slot, &self.up_tx);
        Ok(())
    }

    /// Worker: receive the reduced buffer from the server.
    pub fn recv_from_server(&mut self) -> Result<Vec<f32>, Error> {
        let want = self.recv_seq;
        let got = recv_link(
            &self.down_rx,
            &self.down_slot,
            want,
            &self.t,
            self.faults.seed(),
            self.rank,
            0,
            &self.stats,
        )?;
        self.recv_seq += 1;
        lock(&self.down_slot).retain(|&s, _| s > want);
        Ok(got)
    }

    /// Server (rank 0): gather one in-sequence buffer from every worker.
    /// Returns `(worker_rank, payload)` pairs in arrival order.
    pub fn server_gather(&mut self) -> Result<Vec<(usize, Vec<f32>)>, Error> {
        let n = self.n;
        let t = self.t;
        let me = self.rank;
        let seed = self.faults.seed();
        let stats = self.stats.clone();
        let srv = self
            .server
            .as_mut()
            .ok_or_else(|| Error::InvalidConfig("server_gather called on a worker rank".into()))?;
        let mut got: Vec<Option<Vec<f32>>> = vec![None; n];
        let mut missing = n - 1;
        let start = Instant::now();
        let mut attempt: u32 = 0;
        while missing > 0 {
            if start.elapsed() > t.hard_cap {
                let peer = got.iter().enumerate().skip(1).find(|(_, g)| g.is_none()).map(|(r, _)| r);
                return Err(Error::Timeout { rank: me, peer: peer.unwrap_or(0), op: "star gather" });
            }
            let backoff = backoff_delay(&t, seed, link_stream(me, me), attempt);
            match srv.up_rx.recv_timeout(backoff) {
                Ok(frame) => {
                    let src = frame.src;
                    if src == 0 || src >= n || frame.seq < srv.expect[src] || got[src].is_some() {
                        stats.duplicates_discarded.inc();
                        continue; // duplicate or stale
                    }
                    if frame.seq > srv.expect[src] || payload_crc(&frame.payload) != frame.crc {
                        if payload_crc(&frame.payload) != frame.crc {
                            stats.crc_rejects.inc();
                        } else {
                            stats.reorder_stash.inc();
                        }
                        attempt += 1;
                        continue; // reordered-ahead or corrupt: slot has it
                    }
                    got[src] = Some(frame.payload);
                    srv.expect[src] += 1;
                    missing -= 1;
                }
                Err(_) => {
                    stats.recv_timeouts.inc();
                    // Sweep retransmit buffers for everything still missing.
                    for (src, g) in got.iter_mut().enumerate().skip(1) {
                        if g.is_some() {
                            continue;
                        }
                        let want = srv.expect[src];
                        if let Some(p) = lock(&srv.up_slots[src]).get(&want).cloned() {
                            stats.retransmit_pulls.inc();
                            *g = Some(p);
                            srv.expect[src] += 1;
                            missing -= 1;
                        }
                    }
                    attempt += 1;
                }
            }
        }
        for (src, slot) in srv.up_slots.iter().enumerate() {
            lock(slot).retain(|&s, _| s >= srv.expect[src]);
        }
        Ok(got
            .into_iter()
            .enumerate()
            .skip(1)
            .filter_map(|(r, g)| g.map(|p| (r, p)))
            .collect())
    }

    /// Server (rank 0): broadcast the reduced buffer to every worker.
    pub fn server_broadcast(&mut self, payload: &[f32]) -> Result<(), Error> {
        let faults = self.faults;
        let me = self.rank;
        let stats = self.stats.clone();
        let srv = self
            .server
            .as_mut()
            .ok_or_else(|| Error::InvalidConfig("server_broadcast called on a worker rank".into()))?;
        for (dst, (tx, slot)) in srv.down.iter().enumerate() {
            if dst == 0 {
                continue;
            }
            let seq = srv.down_seq[dst];
            srv.down_seq[dst] += 1;
            Self::inject_and_send(&faults, &stats, me, dst, seq, payload, slot, tx);
        }
        Ok(())
    }
}

/// Shared receive loop for a single star link.
#[allow(clippy::too_many_arguments)]
fn recv_link(
    rx: &Receiver<Frame>,
    slot: &Slot,
    want: u64,
    t: &TimeoutCfg,
    seed: u64,
    me: usize,
    peer: usize,
    stats: &LinkStats,
) -> Result<Vec<f32>, Error> {
    let start = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        if start.elapsed() > t.hard_cap {
            return Err(Error::Timeout { rank: me, peer, op: "star recv" });
        }
        let backoff = backoff_delay(t, seed, link_stream(peer, me), attempt);
        match rx.recv_timeout(backoff) {
            Ok(frame) => {
                if frame.seq != want || payload_crc(&frame.payload) != frame.crc {
                    if payload_crc(&frame.payload) != frame.crc {
                        stats.crc_rejects.inc();
                    } else if frame.seq < want {
                        stats.duplicates_discarded.inc();
                    } else {
                        stats.reorder_stash.inc();
                    }
                    if frame.seq >= want {
                        attempt += 1;
                    }
                    continue;
                }
                return Ok(frame.payload);
            }
            Err(RecvTimeoutError::Timeout) => {
                stats.recv_timeouts.inc();
                if let Some(p) = lock(slot).get(&want).cloned() {
                    stats.retransmit_pulls.inc();
                    return Ok(p);
                }
                attempt += 1;
            }
            Err(RecvTimeoutError::Disconnected) => {
                if let Some(p) = lock(slot).get(&want).cloned() {
                    stats.retransmit_pulls.inc();
                    return Ok(p);
                }
                stats.rank_dead.inc();
                return Err(Error::RankDead { rank: peer });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::fault::FaultConfig;

    #[test]
    fn frames_roundtrip_in_order() {
        let (_c, mut tps) = make_ring_with(2, FaultPlan::none(), TimeoutCfg::fast());
        let mut b = tps.pop().unwrap(); // rank 1
        let mut a = tps.pop().unwrap(); // rank 0
        a.send_next(&[1.0, 2.0]).unwrap();
        a.send_next(&[3.0]).unwrap();
        assert_eq!(b.recv_prev().unwrap(), vec![1.0, 2.0]);
        assert_eq!(b.recv_prev().unwrap(), vec![3.0]);
    }

    #[test]
    fn dropped_frames_recover_from_retransmit_buffer() {
        let cfg = FaultConfig { p_drop: 1.0, ..FaultConfig::clean() };
        let (_c, mut tps) = make_ring_with(2, FaultPlan::seeded(3, cfg), TimeoutCfg::fast());
        let mut b = tps.pop().unwrap();
        let mut a = tps.pop().unwrap();
        a.send_next(&[9.0, 8.0]).unwrap();
        assert_eq!(b.recv_prev().unwrap(), vec![9.0, 8.0]);
    }

    #[test]
    fn corrupt_frames_are_rejected_and_recovered() {
        let cfg = FaultConfig { p_corrupt: 1.0, ..FaultConfig::clean() };
        let (_c, mut tps) = make_ring_with(2, FaultPlan::seeded(3, cfg), TimeoutCfg::fast());
        let mut b = tps.pop().unwrap();
        let mut a = tps.pop().unwrap();
        a.send_next(&[5.0; 16]).unwrap();
        // The wire copy is corrupted; the delivered payload must be exact.
        assert_eq!(b.recv_prev().unwrap(), vec![5.0; 16]);
    }

    #[test]
    fn duplicates_are_discarded() {
        let cfg = FaultConfig { p_duplicate: 1.0, ..FaultConfig::clean() };
        let (_c, mut tps) = make_ring_with(2, FaultPlan::seeded(3, cfg), TimeoutCfg::fast());
        let mut b = tps.pop().unwrap();
        let mut a = tps.pop().unwrap();
        a.send_next(&[1.0]).unwrap();
        a.send_next(&[2.0]).unwrap();
        assert_eq!(b.recv_prev().unwrap(), vec![1.0]);
        assert_eq!(b.recv_prev().unwrap(), vec![2.0]);
    }

    #[test]
    fn dead_sender_is_detected_and_ring_rebuilds() {
        let (cluster, mut tps) = make_ring_with(3, FaultPlan::none(), TimeoutCfg::fast());
        let t2 = tps.pop().unwrap();
        let mut t1 = tps.pop().unwrap();
        let mut t0 = tps.pop().unwrap();
        // Rank 2 dies silently; its endpoints drop, so its direct
        // successor (rank 0, whose `from_prev` is rank 2's link) sees the
        // disconnect and names the right corpse.
        drop(t2);
        let err = t0.recv_prev().unwrap_err();
        assert_eq!(err, Error::RankDead { rank: 2 });
        t0.recover(&err).unwrap();
        assert_eq!(t0.live(), 2);
        assert_eq!(cluster.live_ranks(), vec![0, 1]);
        // Rank 0's adoption dropped its old endpoints, so rank 1 wakes
        // with a disconnect of its own and adopts the rebuilt ring.
        let err1 = t1.recv_prev().unwrap_err();
        assert!(matches!(err1, Error::RankDead { .. }), "{err1:?}");
        t1.recover(&err1).unwrap();
        assert_eq!(t1.live(), 2);
        assert_eq!(t0.generation(), t1.generation());
        // The 2-ring works: 0 -> 1 and 1 -> 0.
        t0.send_next(&[7.0]).unwrap();
        assert_eq!(t1.recv_prev().unwrap(), vec![7.0]);
        t1.send_next(&[8.0]).unwrap();
        assert_eq!(t0.recv_prev().unwrap(), vec![8.0]);
    }

    #[test]
    fn star_survives_full_fault_mix() {
        let cfg = FaultConfig {
            p_drop: 0.3,
            p_delay: 0.2,
            delay_ms_max: 2,
            p_duplicate: 0.3,
            p_corrupt: 0.2,
            kill: None,
        };
        let mut tps = make_star_with(3, FaultPlan::seeded(11, cfg), TimeoutCfg::fast());
        let mut t2 = tps.pop().unwrap();
        let mut t1 = tps.pop().unwrap();
        let mut t0 = tps.pop().unwrap();
        let h1 = std::thread::spawn(move || {
            t1.send_to_server(&[1.0, 1.0]).unwrap();
            t1.recv_from_server().unwrap()
        });
        let h2 = std::thread::spawn(move || {
            t2.send_to_server(&[2.0, 2.0]).unwrap();
            t2.recv_from_server().unwrap()
        });
        let gathered = t0.server_gather().unwrap();
        assert_eq!(gathered.len(), 2);
        let mut sum = vec![0.5, 0.5];
        for (_, p) in &gathered {
            for (s, v) in sum.iter_mut().zip(p) {
                *s += v;
            }
        }
        t0.server_broadcast(&sum).unwrap();
        assert_eq!(h1.join().unwrap(), vec![3.5, 3.5]);
        assert_eq!(h2.join().unwrap(), vec![3.5, 3.5]);
    }

    /// The jittered schedule is pinned for a known seed: same inputs, same
    /// delays, forever. If this test breaks, seeded chaos runs stop
    /// reproducing — change the constants only with a DESIGN.md §14 note.
    #[test]
    fn jittered_backoff_schedule_is_pinned_for_seed_1234() {
        let t = TimeoutCfg {
            base: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            retries: 4,
            liveness: Duration::from_secs(3),
            hard_cap: Duration::from_secs(12),
            jitter: 0.5,
        };
        let got: Vec<u64> = (0..6)
            .map(|a| backoff_delay(&t, 1234, link_stream(0, 1), a).as_micros() as u64)
            .collect();
        assert_eq!(got, vec![1987, 2751, 7740, 5119, 5971, 5135]);
        // A different link draws a different (but equally pinned) schedule.
        let other: Vec<u64> = (0..6)
            .map(|a| backoff_delay(&t, 1234, link_stream(1, 0), a).as_micros() as u64)
            .collect();
        assert_ne!(got, other);
    }

    #[test]
    fn jittered_backoff_stays_inside_the_exponential_envelope() {
        let t = TimeoutCfg::default(); // base 5ms, cap 40ms, jitter 0.5
        for seed in [0u64, 7, 99, 12345] {
            for attempt in 0..8u32 {
                let step = t
                    .base
                    .checked_mul(1u32 << attempt.min(4))
                    .unwrap_or(t.max_backoff)
                    .min(t.max_backoff);
                let d = backoff_delay(&t, seed, link_stream(2, 3), attempt);
                assert!(d <= step, "attempt {attempt}: {d:?} > step {step:?}");
                let floor = step.mul_f64(1.0 - t.jitter);
                assert!(d >= floor, "attempt {attempt}: {d:?} < floor {floor:?}");
            }
        }
    }

    #[test]
    fn zero_jitter_reproduces_the_fixed_exponential_schedule() {
        let t = TimeoutCfg { jitter: 0.0, ..TimeoutCfg::default() };
        for attempt in 0..8u32 {
            let want = t
                .base
                .checked_mul(1u32 << attempt.min(4))
                .unwrap_or(t.max_backoff)
                .min(t.max_backoff);
            assert_eq!(backoff_delay(&t, 42, link_stream(0, 1), attempt), want);
        }
    }

    #[test]
    fn standalone_cluster_tracks_staleness_and_death() {
        let c = Cluster::standalone(3);
        assert_eq!(c.live_ranks(), vec![0, 1, 2]);
        // Fresh heartbeats: nobody is stale.
        assert_eq!(c.stale_rank(usize::MAX, Duration::from_millis(50)), None);
        std::thread::sleep(Duration::from_millis(70));
        c.beat(0);
        c.beat(1);
        // Rank 2 has been silent past the threshold.
        assert_eq!(c.stale_rank(usize::MAX, Duration::from_millis(50)), Some(2));
        // First detector wins; the second report is a no-op.
        assert!(c.mark_dead(2));
        assert!(!c.mark_dead(2));
        assert_eq!(c.live_ranks(), vec![0, 1]);
        assert_eq!(c.stale_rank(usize::MAX, Duration::from_millis(50)), None);
    }
}
