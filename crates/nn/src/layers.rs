//! Layer modules: thin structs owning parameters, with a `forward` that
//! records ops on a [`Graph`].
//!
//! Networks (DDnet, the 3D classifier, the CNN segmenter) are hand-wired
//! from these in `cc19-ddnet` and `cc19-analysis`.

use std::cell::RefCell;

use cc19_tensor::conv::Conv2dSpec;
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

use crate::graph::{BnMode, Graph, Var};
use crate::init::Init;
use crate::param::{Param, ParamRef, ParamStore};
use crate::Result;

/// 2D convolution layer.
pub struct Conv2d {
    /// Weight `(Cout, Cin, K, K)`.
    pub weight: ParamRef,
    /// Optional bias `(Cout,)`.
    pub bias: Option<ParamRef>,
    /// Stride / padding.
    pub spec: Conv2dSpec,
}

impl Conv2d {
    /// Create and register parameters. `kernel` is the square kernel
    /// extent.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        kernel: usize,
        spec: Conv2dSpec,
        init: Init,
        rng: &mut Xorshift,
    ) -> Self {
        let weight = store.register(Param::new(
            format!("{name}.weight"),
            init.build([cout, cin, kernel, kernel], rng),
        ));
        let bias = Some(store.register(Param::new(format!("{name}.bias"), Tensor::zeros([cout]))));
        Conv2d { weight, bias, spec }
    }

    /// Record the forward op.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Result<Var> {
        let w = g.param(&self.weight);
        let b = self.bias.as_ref().map(|b| g.param(b));
        g.conv2d(x, w, b, self.spec)
    }
}

/// 2D transposed-convolution ("deconvolution") layer.
pub struct ConvTranspose2d {
    /// Weight `(Cin, Cout, K, K)`.
    pub weight: ParamRef,
    /// Optional bias `(Cout,)`.
    pub bias: Option<ParamRef>,
    /// Stride / padding.
    pub spec: Conv2dSpec,
}

impl ConvTranspose2d {
    /// Create and register parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        kernel: usize,
        spec: Conv2dSpec,
        init: Init,
        rng: &mut Xorshift,
    ) -> Self {
        let weight = store.register(Param::new(
            format!("{name}.weight"),
            init.build([cin, cout, kernel, kernel], rng),
        ));
        let bias = Some(store.register(Param::new(format!("{name}.bias"), Tensor::zeros([cout]))));
        ConvTranspose2d { weight, bias, spec }
    }

    /// Record the forward op.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Result<Var> {
        let w = g.param(&self.weight);
        let b = self.bias.as_ref().map(|b| g.param(b));
        g.conv_transpose2d(x, w, b, self.spec)
    }
}

/// 3D convolution layer.
pub struct Conv3d {
    /// Weight `(Cout, Cin, K, K, K)`.
    pub weight: ParamRef,
    /// Optional bias `(Cout,)`.
    pub bias: Option<ParamRef>,
    /// Stride / padding.
    pub spec: Conv2dSpec,
}

impl Conv3d {
    /// Create and register parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        kernel: usize,
        spec: Conv2dSpec,
        init: Init,
        rng: &mut Xorshift,
    ) -> Self {
        let weight = store.register(Param::new(
            format!("{name}.weight"),
            init.build([cout, cin, kernel, kernel, kernel], rng),
        ));
        let bias = Some(store.register(Param::new(format!("{name}.bias"), Tensor::zeros([cout]))));
        Conv3d { weight, bias, spec }
    }

    /// Record the forward op.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Result<Var> {
        let w = g.param(&self.weight);
        let b = self.bias.as_ref().map(|b| g.param(b));
        g.conv3d(x, w, b, self.spec)
    }
}

/// Channel-wise batch normalization (works for both NCHW and NCDHW).
pub struct BatchNorm {
    /// Scale parameter.
    pub gamma: ParamRef,
    /// Shift parameter.
    pub beta: ParamRef,
    /// Epsilon added to the variance.
    pub eps: f32,
    /// Running-stat update rate.
    pub momentum: f32,
    running_mean: RefCell<Vec<f32>>,
    running_var: RefCell<Vec<f32>>,
    /// False until the first training batch: the first batch's statistics
    /// seed the running stats directly, so eval mode is usable after even
    /// a single step (important for the short scaled training runs).
    warmed_up: std::cell::Cell<bool>,
}

/// How a [`BatchNorm`] layer computes its statistics in `forward_with`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnForward {
    /// Batch statistics; running stats updated (training).
    Train,
    /// Batch (instance) statistics; running stats untouched. The standard
    /// inference mode for image-restoration networks, where small-batch
    /// running statistics are too noisy (instance-norm behaviour).
    InstanceEval,
    /// Running statistics (classic eval).
    RunningEval,
}

impl BatchNorm {
    /// Create with unit gamma / zero beta and fresh running stats.
    pub fn new(store: &mut ParamStore, name: &str, channels: usize) -> Self {
        let gamma = store.register(Param::new(format!("{name}.gamma"), Tensor::ones([channels])));
        let beta = store.register(Param::new(format!("{name}.beta"), Tensor::zeros([channels])));
        BatchNorm {
            gamma,
            beta,
            eps: 1e-5,
            momentum: 0.1,
            running_mean: RefCell::new(vec![0.0; channels]),
            running_var: RefCell::new(vec![1.0; channels]),
            warmed_up: std::cell::Cell::new(false),
        }
    }

    /// Record the forward op. In training mode the running statistics are
    /// updated as a side effect.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Result<Var> {
        self.forward_with(g, x, if training { BnForward::Train } else { BnForward::RunningEval })
    }

    /// Record the forward op with an explicit statistics mode.
    pub fn forward_with(&self, g: &mut Graph, x: Var, mode: BnForward) -> Result<Var> {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        match mode {
            BnForward::Train => {
                let (y, mean, var) = g.batch_norm(x, gamma, beta, self.eps, BnMode::Train)?;
                let mut rm = self.running_mean.borrow_mut();
                let mut rv = self.running_var.borrow_mut();
                let momentum = if self.warmed_up.get() { self.momentum } else { 1.0 };
                self.warmed_up.set(true);
                for (r, &m) in rm.iter_mut().zip(&mean) {
                    *r = (1.0 - momentum) * *r + momentum * m;
                }
                for (r, &v) in rv.iter_mut().zip(&var) {
                    *r = (1.0 - momentum) * *r + momentum * v;
                }
                Ok(y)
            }
            BnForward::InstanceEval => {
                let (y, _, _) = g.batch_norm(x, gamma, beta, self.eps, BnMode::Train)?;
                Ok(y)
            }
            BnForward::RunningEval => {
                let mode = BnMode::Eval {
                    mean: self.running_mean.borrow().clone(),
                    var: self.running_var.borrow().clone(),
                };
                let (y, _, _) = g.batch_norm(x, gamma, beta, self.eps, mode)?;
                Ok(y)
            }
        }
    }

    /// Snapshot of the running mean (tests / checkpoints).
    pub fn running_mean(&self) -> Vec<f32> {
        self.running_mean.borrow().clone()
    }

    /// Snapshot of the running variance.
    pub fn running_var(&self) -> Vec<f32> {
        self.running_var.borrow().clone()
    }

    /// Overwrite running statistics (checkpoint restore).
    pub fn set_running_stats(&self, mean: Vec<f32>, var: Vec<f32>) {
        *self.running_mean.borrow_mut() = mean;
        *self.running_var.borrow_mut() = var;
        self.warmed_up.set(true);
    }
}

/// Fully-connected layer `(N, in) -> (N, out)`.
pub struct Linear {
    /// Weight `(in, out)`.
    pub weight: ParamRef,
    /// Bias `(out,)`.
    pub bias: ParamRef,
}

impl Linear {
    /// Create and register parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim_in: usize,
        dim_out: usize,
        init: Init,
        rng: &mut Xorshift,
    ) -> Self {
        let weight =
            store.register(Param::new(format!("{name}.weight"), init.build([dim_in, dim_out], rng)));
        let bias = store.register(Param::new(format!("{name}.bias"), Tensor::zeros([dim_out])));
        Linear { weight, bias }
    }

    /// Record the forward op.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Result<Var> {
        let w = g.param(&self.weight);
        let b = g.param(&self.bias);
        g.linear(x, w, Some(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn conv2d_layer_trains_toward_identity() {
        // Teach a 1x1 conv to copy its input (w -> 1, b -> 0).
        let mut rng = Xorshift::new(1);
        let mut store = ParamStore::new();
        let layer = Conv2d::new(
            &mut store,
            "c",
            1,
            1,
            1,
            Conv2dSpec::default(),
            Init::Gaussian(0.1),
            &mut rng,
        );
        let mut opt = Adam::new(0.05);
        let mut final_loss = f32::INFINITY;
        for step in 0..150 {
            let x = rng.uniform_tensor([2, 1, 6, 6], -1.0, 1.0);
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = layer.forward(&mut g, xv).unwrap();
            let t = g.input(x);
            let loss = g.mse_loss(y, t).unwrap();
            final_loss = g.value(loss).item().unwrap();
            store.zero_grad();
            g.backward(loss);
            opt.step(&store);
            let _ = step;
        }
        assert!(final_loss < 1e-3, "loss {final_loss}");
        let w = layer.weight.borrow().value.data()[0];
        assert!((w - 1.0).abs() < 0.1, "w {w}");
    }

    #[test]
    fn batch_norm_running_stats_track_input() {
        let mut rng = Xorshift::new(2);
        let mut store = ParamStore::new();
        let bn = BatchNorm::new(&mut store, "bn", 2);
        // Feed inputs with channel means ~ (5, -5)
        for _ in 0..50 {
            let mut x = rng.normal_tensor([4, 2, 4, 4], 0.0, 1.0);
            for n in 0..4 {
                for y in 0..4 {
                    for xx in 0..4 {
                        let v0 = x.at(&[n, 0, y, xx]) + 5.0;
                        x.set(&[n, 0, y, xx], v0);
                        let v1 = x.at(&[n, 1, y, xx]) - 5.0;
                        x.set(&[n, 1, y, xx], v1);
                    }
                }
            }
            let mut g = Graph::new();
            let xv = g.input(x);
            bn.forward(&mut g, xv, true).unwrap();
        }
        let rm = bn.running_mean();
        assert!((rm[0] - 5.0).abs() < 0.5, "running mean {rm:?}");
        assert!((rm[1] + 5.0).abs() < 0.5, "running mean {rm:?}");
    }

    #[test]
    fn batch_norm_eval_uses_running_stats() {
        let mut store = ParamStore::new();
        let bn = BatchNorm::new(&mut store, "bn", 1);
        bn.set_running_stats(vec![10.0], vec![4.0]);
        let x = Tensor::full([1, 1, 2, 2], 12.0);
        let mut g = Graph::new();
        let xv = g.input(x);
        let y = bn.forward(&mut g, xv, false).unwrap();
        // (12 - 10)/2 = 1
        for &v in g.value(y).data() {
            assert!((v - 1.0).abs() < 1e-3, "v {v}");
        }
    }

    #[test]
    fn linear_layer_learns_linear_map() {
        let mut rng = Xorshift::new(3);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "fc", 3, 1, Init::Gaussian(0.1), &mut rng);
        let mut opt = Adam::new(0.05);
        // target: y = 2*x0 - x1 + 0.5*x2 + 1
        let mut final_loss = f32::INFINITY;
        for _ in 0..300 {
            let x = rng.uniform_tensor([8, 3], -1.0, 1.0);
            let mut t = Tensor::zeros([8, 1]);
            for i in 0..8 {
                let v = 2.0 * x.at(&[i, 0]) - x.at(&[i, 1]) + 0.5 * x.at(&[i, 2]) + 1.0;
                t.set(&[i, 0], v);
            }
            let mut g = Graph::new();
            let xv = g.input(x);
            let y = lin.forward(&mut g, xv).unwrap();
            let tv = g.input(t);
            let loss = g.mse_loss(y, tv).unwrap();
            final_loss = g.value(loss).item().unwrap();
            store.zero_grad();
            g.backward(loss);
            opt.step(&store);
        }
        assert!(final_loss < 1e-3, "loss {final_loss}");
        let w = lin.weight.borrow().value.clone();
        assert!((w.at(&[0, 0]) - 2.0).abs() < 0.1);
        assert!((w.at(&[1, 0]) + 1.0).abs() < 0.1);
        assert!((lin.bias.borrow().value.data()[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn conv_transpose_layer_shapes() {
        let mut rng = Xorshift::new(4);
        let mut store = ParamStore::new();
        let deconv = ConvTranspose2d::new(
            &mut store,
            "d",
            4,
            2,
            5,
            Conv2dSpec { stride: 1, padding: 2 },
            Init::PaperGaussian,
            &mut rng,
        );
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 4, 16, 16]));
        let y = deconv.forward(&mut g, x).unwrap();
        // stride 1, kernel 5, padding 2 preserves the extent (Table 2 rows)
        assert_eq!(g.value(y).dims(), &[1, 2, 16, 16]);
    }

    #[test]
    fn conv3d_layer_shapes() {
        let mut rng = Xorshift::new(5);
        let mut store = ParamStore::new();
        let conv = Conv3d::new(
            &mut store,
            "c3",
            1,
            8,
            3,
            Conv2dSpec { stride: 1, padding: 1 },
            Init::KaimingLeaky { negative_slope: 0.0 },
            &mut rng,
        );
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros([1, 1, 8, 16, 16]));
        let y = conv.forward(&mut g, x).unwrap();
        assert_eq!(g.value(y).dims(), &[1, 8, 8, 16, 16]);
        assert_eq!(store.len(), 2);
    }
}
