//! Serving quickstart: stand up the diagnosis service, drive it with a
//! burst of mixed-priority studies from concurrent in-process clients
//! plus one TCP client, and print the serve-side metrics.
//!
//! ```text
//! cargo run --release -p cc19-serve --example serve_demo
//! ```

use std::net::TcpListener;
use std::time::Duration;

use cc19_serve::{
    serve_on, BatchPolicy, Priority, ServeRequest, Server, ServerCfg, TcpServeClient,
};
use cc19_tensor::rng::Xorshift;
use computecovid19::framework::Framework;

fn main() {
    // 1. Start the service: two warm three-stage pipelines, batches of
    //    up to 4 studies coalesced over a 2 ms window, a 32-deep
    //    admission queue.
    let cfg = ServerCfg {
        queue_bound: 32,
        batch: BatchPolicy { max_batch: 4, max_delay: Duration::from_millis(2) },
        pipelines: 2,
        ..ServerCfg::default()
    };
    let server = Server::start(cfg, || Framework::untrained_reduced(7)).expect("server starts");
    println!("server up: 2 pipelines × (enhance → segment → classify), queue bound 32");

    // 2. Expose it over TCP (the same CRC framing the distributed
    //    trainer uses on its wire).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let tcp_client = server.client();
    std::thread::spawn(move || serve_on(listener, tcp_client));

    // 3. A burst of studies from four concurrent in-process clients.
    let priorities = [Priority::Stat, Priority::Urgent, Priority::Routine];
    let handles: Vec<_> = (0..4u64)
        .map(|c| {
            let client = server.client();
            std::thread::spawn(move || {
                let mut rng = Xorshift::new(0xC0FFEE ^ c);
                let mut served = 0usize;
                for i in 0..6u64 {
                    let req = ServeRequest {
                        volume: rng.uniform_tensor([4, 32, 32], -1000.0, 400.0),
                        priority: priorities[((c + i) % 3) as usize],
                        deadline: None,
                    };
                    match client.submit(req) {
                        Ok(pending) => {
                            let resp = pending.wait().expect("server dropped a reply");
                            resp.result.expect("stage failure");
                            served += 1;
                        }
                        Err(why) => println!("client {c}: rejected ({why})"),
                    }
                }
                served
            })
        })
        .collect();

    // 4. One more study over the TCP front end.
    let mut remote = TcpServeClient::connect(addr).expect("connect");
    let mut rng = Xorshift::new(0xBEEF);
    let req = ServeRequest {
        volume: rng.uniform_tensor([4, 32, 32], -1000.0, 400.0),
        priority: Priority::Stat,
        deadline: Some(Duration::from_secs(30)),
    };
    let (id, d) = remote.diagnose(&req).expect("transport").expect("admission");
    println!(
        "tcp study id={id}: p={:.3} positive={} (queue {:?}, total {:?})",
        d.probability,
        d.positive,
        d.t_queue,
        d.t_total
    );

    let served: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!("in-process clients served: {served}/24");

    // 5. Tear down and inspect metrics.
    let metrics = server.shutdown();
    let snap = metrics.snapshot();
    let (p50, p95, p99) = metrics.total_latency_quantiles_ms();
    println!(
        "\nmetrics: accepted={} completed={} rejected={} batches={} max_batch={}",
        snap.accepted, snap.completed, snap.rejected, snap.batches, snap.max_batch
    );
    println!("total latency ms: p50={p50:.2} p95={p95:.2} p99={p99:.2}");
    print!("{}", metrics.to_csv());
}
