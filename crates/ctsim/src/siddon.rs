//! Siddon's ray-driven forward projection (Siddon 1985, ref [39] of the
//! paper): the exact radiological path of a ray through a pixel grid.
//!
//! The image is an `n`×`n` grid of linear attenuation values (1/mm), pixel
//! size `px` mm, centered on the isocenter. Row 0 is the *top* of the image
//! (y = +extent/2), matching the usual display convention.

use rayon::prelude::*;

use cc19_tensor::{Tensor, TensorError};

use crate::geometry::{FanBeamGeometry, ParallelBeamGeometry};
use crate::sinogram::Sinogram;
use crate::Result;

/// Image grid descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    /// Image extent in pixels (square, `n`×`n`).
    pub n: usize,
    /// Pixel size in mm.
    pub px: f32,
}

impl Grid {
    /// Grid for an `n`×`n` image covering a 500 mm field of view (the
    /// paper's 512×512 slices at ~0.98 mm/pixel).
    pub fn fov500(n: usize) -> Self {
        Grid { n, px: 500.0 / n as f32 }
    }

    /// Half-extent of the grid in mm.
    pub fn half(&self) -> f32 {
        self.n as f32 * self.px / 2.0
    }
}

/// Exact line integral of `image` along the segment `p0 -> p1` (Siddon).
///
/// `image` is a row-major `n*n` slice of attenuation values.
pub fn line_integral(image: &[f32], grid: Grid, p0: (f32, f32), p1: (f32, f32)) -> f32 {
    let n = grid.n as isize;
    let half = grid.half();
    let (x0, y0) = (p0.0, p0.1);
    let (x1, y1) = (p1.0, p1.1);
    let dx = x1 - x0;
    let dy = y1 - y0;
    let len = (dx * dx + dy * dy).sqrt();
    if len == 0.0 {
        return 0.0;
    }

    // Parametric entry/exit of the grid bounding box: alpha in [0,1].
    let mut amin = 0.0f32;
    let mut amax = 1.0f32;
    for (p, d) in [(x0, dx), (y0, dy)] {
        if d.abs() < 1e-12 {
            if p < -half || p > half {
                return 0.0;
            }
        } else {
            let a1 = (-half - p) / d;
            let a2 = (half - p) / d;
            amin = amin.max(a1.min(a2));
            amax = amax.min(a1.max(a2));
        }
    }
    if amin >= amax {
        return 0.0;
    }

    // March pixel crossings from amin to amax.
    // Pixel index along x: ix = floor((x + half)/px), row from top: iy_row = n-1 - floor((y+half)/px).
    let inv_px = 1.0 / grid.px;
    let pos = |a: f32| (x0 + a * dx, y0 + a * dy);

    let (sx, sy) = pos(amin);
    let mut ix = (((sx + half) * inv_px).floor() as isize).clamp(0, n - 1);
    let mut iy = (((sy + half) * inv_px).floor() as isize).clamp(0, n - 1);

    // alpha increments per pixel crossing in x / y
    let (step_x, da_x, mut ax) = if dx.abs() < 1e-12 {
        (0isize, f32::INFINITY, f32::INFINITY)
    } else {
        let step = if dx > 0.0 { 1isize } else { -1 };
        let next_boundary = if dx > 0.0 {
            (ix + 1) as f32 * grid.px - half
        } else {
            ix as f32 * grid.px - half
        };
        ((step), (grid.px / dx.abs()), ((next_boundary - x0) / dx))
    };
    let (step_y, da_y, mut ay) = if dy.abs() < 1e-12 {
        (0isize, f32::INFINITY, f32::INFINITY)
    } else {
        let step = if dy > 0.0 { 1isize } else { -1 };
        let next_boundary = if dy > 0.0 {
            (iy + 1) as f32 * grid.px - half
        } else {
            iy as f32 * grid.px - half
        };
        ((step), (grid.px / dy.abs()), ((next_boundary - y0) / dy))
    };

    let mut acc = 0.0f32;
    let mut a_cur = amin;
    // Guard against degenerate floating point: at most 4n crossings.
    let max_steps = 4 * grid.n + 8;
    for _ in 0..max_steps {
        let a_next = ax.min(ay).min(amax);
        if a_next > a_cur {
            let seg = (a_next - a_cur) * len;
            if ix >= 0 && ix < n && iy >= 0 && iy < n {
                // row 0 at top (y = +half)
                let row = (n - 1 - iy) as usize;
                acc += image[row * grid.n + ix as usize] * seg;
            }
            a_cur = a_next;
        }
        if a_cur >= amax - 1e-9 {
            break;
        }
        if ax <= ay {
            ix += step_x;
            ax += da_x;
        } else {
            iy += step_y;
            ay += da_y;
        }
        if ix < 0 || ix >= n || iy < 0 || iy >= n {
            break;
        }
    }
    acc
}

fn expect_square(image: &Tensor, grid: Grid) -> Result<()> {
    image.shape().expect_rank(2)?;
    if image.dims()[0] != grid.n || image.dims()[1] != grid.n {
        return Err(TensorError::Incompatible(format!(
            "image {:?} does not match grid n={}",
            image.dims(),
            grid.n
        )));
    }
    Ok(())
}

/// Fan-beam forward projection: one ray per (view, detector pixel), from
/// the source point to the detector pixel center. Parallelized over views.
pub fn project_fan(image: &Tensor, grid: Grid, geom: &FanBeamGeometry) -> Result<Sinogram> {
    expect_square(image, grid)?;
    let _t = cc19_obs::global().timer_with("ctsim_stage_seconds", &[("stage", "projection")]);
    let img = image.data();
    let mut sino = Sinogram::zeros(geom.views, geom.detectors);
    let det = geom.detectors;
    sino.tensor_mut()
        .data_mut()
        .par_chunks_mut(det)
        .enumerate()
        .for_each(|(v, row)| {
            let src = geom.source_pos(v);
            for (d, out) in row.iter_mut().enumerate() {
                let dst = geom.detector_pos(v, d);
                *out = line_integral(img, grid, src, dst);
            }
        });
    Ok(sino)
}

/// Parallel-beam forward projection (Radon transform sampling).
pub fn project_parallel(image: &Tensor, grid: Grid, geom: &ParallelBeamGeometry) -> Result<Sinogram> {
    expect_square(image, grid)?;
    let _t = cc19_obs::global().timer_with("ctsim_stage_seconds", &[("stage", "projection")]);
    let img = image.data();
    let mut sino = Sinogram::zeros(geom.views, geom.detectors);
    let det = geom.detectors;
    // Ray length: comfortably beyond the grid diagonal.
    let l = grid.half() * 3.0;
    sino.tensor_mut()
        .data_mut()
        .par_chunks_mut(det)
        .enumerate()
        .for_each(|(v, row)| {
            let theta = geom.view_angle(v);
            let (c, s) = (theta.cos(), theta.sin());
            for (d, out) in row.iter_mut().enumerate() {
                let off = geom.detector_s(d);
                // Ray direction (-s, c) offset by `off` along (c, s).
                let p0 = (off * c + l * s, off * s - l * c);
                let p1 = (off * c - l * s, off * s + l * c);
                *out = line_integral(img, grid, p0, p1);
            }
        });
    Ok(sino)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_disk(n: usize, px: f32, radius: f32, mu: f32) -> Tensor {
        let mut img = Tensor::zeros([n, n]);
        let half = n as f32 * px / 2.0;
        for r in 0..n {
            for c in 0..n {
                let x = (c as f32 + 0.5) * px - half;
                let y = half - (r as f32 + 0.5) * px;
                if x * x + y * y <= radius * radius {
                    img.set(&[r, c], mu);
                }
            }
        }
        img
    }

    #[test]
    fn straight_ray_through_uniform_image() {
        // A horizontal ray through a uniform unit-attenuation image of
        // extent E integrates to exactly E.
        let n = 64;
        let grid = Grid { n, px: 1.0 };
        let img = Tensor::ones([n, n]);
        let li = line_integral(img.data(), grid, (-100.0, 0.2), (100.0, 0.2));
        assert!((li - 64.0).abs() < 1e-3, "li {li}");
        // Vertical ray too.
        let li = line_integral(img.data(), grid, (0.2, -100.0), (0.2, 100.0));
        assert!((li - 64.0).abs() < 1e-3, "li {li}");
    }

    #[test]
    fn diagonal_ray_through_uniform_image() {
        let n = 64;
        let grid = Grid { n, px: 1.0 };
        let img = Tensor::ones([n, n]);
        // Main diagonal: length = 64*sqrt(2)
        let li = line_integral(img.data(), grid, (-100.0, -100.0), (100.0, 100.0));
        let expect = 64.0 * std::f32::consts::SQRT_2;
        assert!((li - expect).abs() < 0.1, "li {li} expect {expect}");
    }

    #[test]
    fn ray_missing_the_grid_is_zero() {
        let n = 32;
        let grid = Grid { n, px: 1.0 };
        let img = Tensor::ones([n, n]);
        assert_eq!(line_integral(img.data(), grid, (-100.0, 50.0), (100.0, 50.0)), 0.0);
        assert_eq!(line_integral(img.data(), grid, (40.0, -100.0), (40.0, 100.0)), 0.0);
    }

    #[test]
    fn disk_chord_lengths() {
        // Through a centered disk of radius R, a ray at offset s has chord
        // 2*sqrt(R^2 - s^2). Check projection values against that.
        let n = 256;
        let grid = Grid { n, px: 1.0 };
        let radius = 80.0;
        let mu = 0.02;
        let img = uniform_disk(n, grid.px, radius, mu);
        for &s in &[0.0f32, 30.0, 60.0] {
            let li = line_integral(img.data(), grid, (-200.0, s), (200.0, s));
            let expect = mu * 2.0 * (radius * radius - s * s).sqrt();
            assert!(
                (li - expect).abs() < mu * 3.0, // within ~3 pixels of chord
                "offset {s}: li {li} expect {expect}"
            );
        }
    }

    #[test]
    fn parallel_projection_mass_is_angle_invariant
    () {
        // The total mass of a parallel projection (sum * pitch) equals the
        // image mass (sum * px^2) for every angle.
        let n = 128;
        let grid = Grid { n, px: 1.0 };
        let img = uniform_disk(n, grid.px, 40.0, 0.02);
        let geom = ParallelBeamGeometry::for_image(n, grid.px, 12);
        let sino = project_parallel(&img, grid, &geom).unwrap();
        let image_mass: f32 = img.data().iter().sum::<f32>() * grid.px * grid.px;
        for v in 0..geom.views {
            let view_mass: f32 = sino.view(v).iter().sum::<f32>() * geom.det_pitch;
            assert!(
                (view_mass - image_mass).abs() / image_mass < 0.02,
                "view {v}: {view_mass} vs {image_mass}"
            );
        }
    }

    #[test]
    fn fan_projection_shapes_and_symmetry() {
        let n = 64;
        let grid = Grid::fov500(n);
        let img = uniform_disk(n, grid.px, 100.0, 0.02);
        let geom = FanBeamGeometry::reduced(36, 64);
        let sino = project_fan(&img, grid, &geom).unwrap();
        assert_eq!(sino.views(), 36);
        assert_eq!(sino.detectors(), 64);
        // centered disk: all views look alike
        let v0: f32 = sino.view(0).iter().sum();
        for v in 1..36 {
            let vv: f32 = sino.view(v).iter().sum();
            assert!((vv - v0).abs() / v0 < 0.05, "view {v}: {vv} vs {v0}");
        }
        // center detector sees the longest chord
        let mid = sino.at(0, 32);
        let edge = sino.at(0, 2);
        assert!(mid > edge, "mid {mid} edge {edge}");
    }

    #[test]
    fn grid_fov500() {
        let g = Grid::fov500(512);
        assert!((g.px - 0.9765625).abs() < 1e-6);
        assert!((g.half() - 250.0).abs() < 1e-3);
    }
}
