//! Minimal radix-2 FFT (f64), used by the FBP ramp filtering.
//!
//! Hand-rolled because the allowed dependency set has no FFT crate; the
//! sizes involved (≤ 4096) make an iterative radix-2 implementation more
//! than fast enough.

/// Complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

#[inline]
fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// Next power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
/// `inverse` selects the inverse transform (including the 1/N scale).
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    if n <= 1 {
        return;
    }

    // bit-reversal permutation
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen: Complex = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w: Complex = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = c_mul(data[i + k + len / 2], w);
                data[i + k] = c_add(u, v);
                data[i + k + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
            i += len;
        }
        len <<= 1;
    }

    if inverse {
        let inv_n = 1.0 / n as f64;
        for v in data.iter_mut() {
            v.0 *= inv_n;
            v.1 *= inv_n;
        }
    }
}

/// Forward FFT of a real signal, zero-padded to `m` (power of two).
pub fn rfft_padded(signal: &[f32], m: usize) -> Vec<Complex> {
    assert!(m.is_power_of_two() && m >= signal.len());
    let mut buf: Vec<Complex> = signal.iter().map(|&v| (v as f64, 0.0)).collect();
    buf.resize(m, (0.0, 0.0));
    fft_in_place(&mut buf, false);
    buf
}

/// Circular convolution of a real signal with a real kernel via FFT, both
/// zero-padded to `m`; returns the first `out_len` samples (real parts).
pub fn fft_convolve(signal: &[f32], kernel: &[f64], m: usize, out_len: usize) -> Vec<f32> {
    assert!(m.is_power_of_two() && m >= signal.len() && m >= kernel.len());
    let mut a: Vec<Complex> = signal.iter().map(|&v| (v as f64, 0.0)).collect();
    a.resize(m, (0.0, 0.0));
    let mut b: Vec<Complex> = kernel.iter().map(|&v| (v, 0.0)).collect();
    b.resize(m, (0.0, 0.0));
    fft_in_place(&mut a, false);
    fft_in_place(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = c_mul(*x, *y);
    }
    fft_in_place(&mut a, true);
    a[..out_len].iter().map(|&(re, _)| re as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_recovers_signal() {
        let mut data: Vec<Complex> = (0..64).map(|i| ((i as f64).sin(), (i as f64 * 0.3).cos())).collect();
        let orig = data.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.0 - b.0).abs() < 1e-10 && (a.1 - b.1).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![(0.0, 0.0); 16];
        data[0] = (1.0, 0.0);
        fft_in_place(&mut data, false);
        for &(re, im) in &data {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_peaks_at_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| {
                let ph = 2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                (ph.cos(), 0.0)
            })
            .collect();
        fft_in_place(&mut data, false);
        let mags: Vec<f64> = data.iter().map(|&(re, im)| (re * re + im * im).sqrt()).collect();
        // peak at bins k and n-k
        let max = mags.iter().cloned().fold(0.0, f64::max);
        assert!((mags[k] - max).abs() < 1e-9);
        assert!((mags[n - k] - max).abs() < 1e-9);
        assert!(mags[k] > 10.0 * mags[k + 1]);
    }

    #[test]
    fn parseval_holds() {
        let mut rng = cc19_tensor::rng::Xorshift::new(7);
        let n = 128;
        let data: Vec<Complex> = (0..n).map(|_| (rng.uniform(-1.0, 1.0) as f64, 0.0)).collect();
        let time_energy: f64 = data.iter().map(|&(re, im)| re * re + im * im).sum();
        let mut f = data.clone();
        fft_in_place(&mut f, false);
        let freq_energy: f64 =
            f.iter().map(|&(re, im)| re * re + im * im).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn convolution_matches_direct() {
        let signal = vec![1.0f32, 2.0, 3.0, 4.0, 0.0, -1.0];
        let kernel = vec![0.5f64, -0.25, 0.125];
        let m = next_pow2(signal.len() + kernel.len());
        let got = fft_convolve(&signal, &kernel, m, signal.len());
        // direct (causal) convolution
        for i in 0..signal.len() {
            let mut acc = 0.0f64;
            for (j, &kv) in kernel.iter().enumerate() {
                if i >= j {
                    acc += signal[i - j] as f64 * kv;
                }
            }
            assert!((got[i] as f64 - acc).abs() < 1e-6, "i={i}: {} vs {acc}", got[i]);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut data = vec![(0.0, 0.0); 12];
        fft_in_place(&mut data, false);
    }
}
