//! A small trainable CNN lung segmenter — demonstrates that the
//! segmentation stage can be *learned* (the AH-Net route of the paper)
//! rather than rule-based like [`crate::segmentation::LungSegmenter`].
//!
//! Per-pixel binary classification on 2D slices: three 2D conv layers with
//! batch norm, trained with BCE against the phantom's ground-truth masks.

use cc19_nn::graph::{Graph, Var};
use cc19_nn::init::Init;
use cc19_nn::layers::{BatchNorm, Conv2d};
use cc19_nn::optim::Adam;
use cc19_nn::param::ParamStore;
use cc19_tensor::conv::Conv2dSpec;
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

use crate::Result;

/// Three-layer fully-convolutional segmenter.
pub struct CnnSegmenter {
    /// Trainable parameters.
    pub store: ParamStore,
    conv1: Conv2d,
    bn1: BatchNorm,
    conv2: Conv2d,
    bn2: BatchNorm,
    conv3: Conv2d,
}

impl CnnSegmenter {
    /// Build with `width` hidden channels.
    pub fn new(width: usize, seed: u64) -> Self {
        let mut rng = Xorshift::new(seed);
        let mut store = ParamStore::new();
        let init = Init::KaimingLeaky { negative_slope: 0.01 };
        let spec3 = Conv2dSpec { stride: 1, padding: 1 };
        let conv1 = Conv2d::new(&mut store, "seg.conv1", 1, width, 3, spec3, init, &mut rng);
        let bn1 = BatchNorm::new(&mut store, "seg.bn1", width);
        let conv2 = Conv2d::new(&mut store, "seg.conv2", width, width, 3, spec3, init, &mut rng);
        let bn2 = BatchNorm::new(&mut store, "seg.bn2", width);
        let conv3 = Conv2d::new(
            &mut store,
            "seg.conv3",
            width,
            1,
            1,
            Conv2dSpec { stride: 1, padding: 0 },
            init,
            &mut rng,
        );
        CnnSegmenter { store, conv1, bn1, conv2, bn2, conv3 }
    }

    /// Forward a `(B, 1, H, W)` normalized batch to per-pixel logits.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool) -> Result<Var> {
        let h = self.conv1.forward(g, x)?;
        let h = self.bn1.forward(g, h, training)?;
        let h = g.leaky_relu(h, 0.01);
        let h = self.conv2.forward(g, h)?;
        let h = self.bn2.forward(g, h, training)?;
        let h = g.leaky_relu(h, 0.01);
        self.conv3.forward(g, h)
    }

    /// One training step on `(slice, mask)` pairs; returns the BCE loss.
    pub fn train_step(
        &self,
        slices: &Tensor,
        masks: &Tensor,
        opt: &mut Adam,
    ) -> Result<f32> {
        let mut g = Graph::new();
        let x = g.input(slices.clone());
        let t = g.input(masks.clone());
        let logits = self.forward(&mut g, x, true)?;
        let loss = g.bce_with_logits_loss(logits, t)?;
        let l = g.value(loss).item()?;
        self.store.zero_grad();
        g.backward(loss);
        opt.step(&self.store);
        Ok(l)
    }

    /// Predict a binary mask for one `(H, W)` normalized slice.
    pub fn predict_mask(&self, slice: &Tensor, threshold: f32) -> Result<Tensor> {
        slice.shape().expect_rank(2)?;
        let (h, w) = (slice.dims()[0], slice.dims()[1]);
        let x = slice.reshape([1, 1, h, w])?;
        let mut g = Graph::new();
        let xv = g.input(x);
        let logits = self.forward(&mut g, xv, false)?;
        let probs = cc19_tensor::ops::sigmoid(g.value(logits));
        let mask: Vec<f32> =
            probs.data().iter().map(|&p| if p >= threshold { 1.0 } else { 0.0 }).collect();
        Tensor::from_vec([h, w], mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmentation::dice;
    use cc19_ctsim::phantom::ChestPhantom;
    use cc19_ctsim::hu;

    #[test]
    fn cnn_segmenter_learns_lungs() {
        let seg = CnnSegmenter::new(8, 1);
        let mut opt = Adam::new(1e-2);
        let n = 64;
        // train on a handful of phantom slices
        let mut last = f32::INFINITY;
        for step in 0..100 {
            let p = ChestPhantom::subject(step as u64 % 6, 0.5, None);
            let img = hu::hu_window_to_unit(&p.rasterize_hu(n), -1000.0, 400.0);
            let mask = p.lung_mask(n);
            let x = img.reshape([1, 1, n, n]).unwrap();
            let t = mask.reshape([1, 1, n, n]).unwrap();
            last = seg.train_step(&x, &t, &mut opt).unwrap();
        }
        assert!(last < 0.35, "seg loss {last}");
        // evaluate on an unseen subject
        let p = ChestPhantom::subject(99, 0.5, None);
        let img = hu::hu_window_to_unit(&p.rasterize_hu(n), -1000.0, 400.0);
        let truth = p.lung_mask(n);
        let pred = seg.predict_mask(&img, 0.5).unwrap();
        let d = dice(&pred, &truth).unwrap();
        assert!(d > 0.6, "dice {d}");
    }

    #[test]
    fn predict_mask_is_binary() {
        let seg = CnnSegmenter::new(4, 2);
        let mut rng = Xorshift::new(3);
        let img = rng.uniform_tensor([32, 32], 0.0, 1.0);
        let mask = seg.predict_mask(&img, 0.5).unwrap();
        assert!(mask.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}
