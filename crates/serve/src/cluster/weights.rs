//! Model-weight distribution to joining replicas.
//!
//! A worker that joins a running cluster must hold bit-identical
//! enhancer weights to the replicas already serving, or routing the same
//! study to different workers would produce different diagnoses. Rather
//! than trusting the factory alone, the router snapshots the canonical
//! enhancer as a [`Checkpoint`], pushes it through the **existing
//! allreduce/broadcast path** (a two-rank lockstep ring where the
//! joining side contributes zeros, so the sum *is* the broadcast), and
//! the joining worker loads the received checkpoint over whatever its
//! factory built. This exercises the same CRC-framed, seq-numbered
//! transport the trainer uses, instead of growing a second weight-
//! distribution mechanism.

use std::io;

use cc19_dist::allreduce::make_ring_in;
use cc19_dist::{ring_allreduce_lockstep, FaultPlan, TimeoutCfg};
use cc19_nn::checkpoint::Checkpoint;

/// Section layout of a flattened checkpoint: `(name, len)` per section,
/// in order. Both ends of the broadcast derive it from the same factory,
/// so only the payload floats cross the wire.
pub(crate) type Schema = Vec<(String, usize)>;

/// Flatten a checkpoint into its schema plus one contiguous `f32`
/// buffer (the shape the allreduce path moves).
pub(crate) fn flatten(ck: &Checkpoint) -> (Schema, Vec<f32>) {
    let mut schema = Vec::with_capacity(ck.sections.len());
    let mut flat = Vec::new();
    for (name, data) in &ck.sections {
        schema.push((name.clone(), data.len()));
        flat.extend_from_slice(data);
    }
    (schema, flat)
}

/// Rebuild a checkpoint from a schema and a flat buffer. Truncated
/// buffers yield truncated sections rather than panicking; the loader's
/// own section-length validation catches the mismatch.
pub(crate) fn unflatten(schema: &[(String, usize)], flat: &[f32]) -> Checkpoint {
    let mut ck = Checkpoint::new();
    let mut off = 0usize;
    for (name, len) in schema {
        let hi = (off + len).min(flat.len());
        let lo = off.min(flat.len());
        ck.push(name.clone(), flat[lo..hi].to_vec());
        off += len;
    }
    ck
}

/// Broadcast `ck` over the distributed transport and return what the
/// receiving side reconstructs. Rank 0 contributes the weights, rank 1
/// zeros; after a lockstep ring allreduce both hold the sum — i.e. the
/// weights — so rank 1's buffer is the delivered copy, having crossed
/// the same CRC-framed link path as training traffic.
pub(crate) fn broadcast_checkpoint(ck: &Checkpoint) -> io::Result<Checkpoint> {
    let (schema, flat) = flatten(ck);
    if flat.is_empty() {
        return Ok(unflatten(&schema, &flat));
    }
    let zeros = vec![0.0f32; flat.len()];
    let mut bufs = vec![flat, zeros];
    // Private registry: the broadcast's transport metrics and clock reads
    // must not leak into a deterministic export the caller may be driving.
    let reg = cc19_obs::Registry::new();
    let (_, mut rings) = make_ring_in(2, FaultPlan::none(), TimeoutCfg::fast(), &reg);
    ring_allreduce_lockstep(&mut bufs, &mut rings)
        .map_err(|e| io::Error::other(format!("weight broadcast failed: {e}")))?;
    Ok(unflatten(&schema, &bufs[1]))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn flatten_roundtrips_section_layout() {
        let mut ck = Checkpoint::new();
        ck.push("a", vec![1.0, 2.0, 3.0]);
        ck.push("b", vec![]);
        ck.push("c", vec![-4.5]);
        let (schema, flat) = flatten(&ck);
        assert_eq!(flat, vec![1.0, 2.0, 3.0, -4.5]);
        assert_eq!(unflatten(&schema, &flat), ck);
    }

    #[test]
    fn broadcast_delivers_bit_identical_weights() {
        let mut ck = Checkpoint::new();
        ck.push("w", (0..257).map(|i| (i as f32) * 0.37 - 40.0).collect::<Vec<_>>());
        ck.push("bn.mean", vec![0.125, -7.5, 3.0e-8]);
        let got = broadcast_checkpoint(&ck).unwrap();
        assert_eq!(got.sections.len(), ck.sections.len());
        for ((na, da), (nb, db)) in got.sections.iter().zip(&ck.sections) {
            assert_eq!(na, nb);
            let bits_a: Vec<u32> = da.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u32> = db.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "section {na} changed bits in transit");
        }
    }

    #[test]
    fn empty_checkpoint_broadcasts_to_empty() {
        let got = broadcast_checkpoint(&Checkpoint::new()).unwrap();
        assert!(got.sections.is_empty());
    }
}
