//! 3D CT volumes synthesized from chest phantoms.

use rayon::prelude::*;

use cc19_ctsim::phantom::ChestPhantom;
use cc19_tensor::{Tensor, TensorError};

use crate::sources::{Modality, ScanMeta};
use crate::Result;

/// A 3D CT study: `(slices, n, n)` tensor in Hounsfield units plus its
/// catalog metadata.
#[derive(Debug, Clone)]
pub struct CtVolume {
    /// Voxel data, HU, shape `(D, H, W)`.
    pub hu: Tensor,
    /// Catalog record this volume realizes.
    pub meta: ScanMeta,
}

/// HU value used to paint the area outside the reconstruction circle in
/// BIMCV/MIDRC-style studies (Fig 5 of the paper). Real scanners use
/// -2000/-3024 sentinel values; we use -2000.
pub const CIRCLE_PADDING_HU: f32 = -2000.0;

impl CtVolume {
    /// Synthesize the study described by `meta` at `n`×`n` in-plane
    /// resolution with `slices` slices (overriding `meta.slices` lets the
    /// scaled experiments shrink the z extent while keeping the catalog
    /// metadata intact).
    pub fn synthesize(meta: &ScanMeta, n: usize, slices: usize) -> Result<Self> {
        if meta.modality == Modality::XRay {
            return Err(TensorError::Incompatible(
                "cannot synthesize a CT volume for an X-ray study; data prep should have filtered it"
                    .into(),
            ));
        }
        let mut hu = Tensor::zeros([slices, n, n]);
        let plane = n * n;
        hu.data_mut().par_chunks_mut(plane).enumerate().for_each(|(s, out)| {
            let z = (s as f32 + 0.5) / slices as f32;
            let phantom = ChestPhantom::subject(meta.id, z, meta.severity);
            let img = phantom.rasterize_hu(n);
            out.copy_from_slice(img.data());
        });
        let mut vol = CtVolume { hu, meta: meta.clone() };
        if meta.circular_artifact {
            vol.apply_circular_artifact();
        }
        Ok(vol)
    }

    /// Number of slices.
    pub fn slices(&self) -> usize {
        self.hu.dims()[0]
    }

    /// In-plane extent.
    pub fn n(&self) -> usize {
        self.hu.dims()[1]
    }

    /// One slice as an `(n, n)` tensor (copies).
    pub fn slice(&self, s: usize) -> Tensor {
        let n = self.n();
        let plane = n * n;
        Tensor::from_vec([n, n], self.hu.data()[s * plane..(s + 1) * plane].to_vec())
            .expect("slice extraction")
    }

    /// Paint the region outside the inscribed circle with
    /// [`CIRCLE_PADDING_HU`] — the artifact BIMCV/MIDRC reconstructions
    /// carry (Fig 5).
    pub fn apply_circular_artifact(&mut self) {
        let n = self.n();
        let plane = n * n;
        let c = (n as f32 - 1.0) / 2.0;
        let r2 = (n as f32 / 2.0) * (n as f32 / 2.0);
        self.hu.data_mut().par_chunks_mut(plane).for_each(|sl| {
            for y in 0..n {
                for x in 0..n {
                    let dy = y as f32 - c;
                    let dx = x as f32 - c;
                    if dy * dy + dx * dx > r2 {
                        sl[y * n + x] = CIRCLE_PADDING_HU;
                    }
                }
            }
        });
        self.meta.circular_artifact = true;
    }

    /// Ground-truth lung masks, shape `(D, H, W)` with 1 inside lungs.
    pub fn lung_mask(&self) -> Tensor {
        let n = self.n();
        let slices = self.slices();
        let plane = n * n;
        let mut mask = Tensor::zeros([slices, n, n]);
        mask.data_mut().par_chunks_mut(plane).enumerate().for_each(|(s, out)| {
            let z = (s as f32 + 0.5) / slices as f32;
            let phantom = ChestPhantom::subject(self.meta.id, z, self.meta.severity);
            let img = phantom.lung_mask(n);
            out.copy_from_slice(img.data());
        });
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{DataSource, Modality, ScanMeta};
    use cc19_ctsim::phantom::Severity;

    fn meta(positive: bool, circular: bool) -> ScanMeta {
        ScanMeta {
            id: 42,
            source: if positive { DataSource::Midrc } else { DataSource::Lidc },
            modality: Modality::Ct,
            positive,
            severity: if positive { Some(Severity::Moderate) } else { None },
            slices: 16,
            circular_artifact: circular,
            has_projections: false,
        }
    }

    #[test]
    fn synthesize_shapes() {
        let vol = CtVolume::synthesize(&meta(false, false), 64, 16).unwrap();
        assert_eq!(vol.hu.dims(), &[16, 64, 64]);
        assert_eq!(vol.slices(), 16);
        assert_eq!(vol.n(), 64);
        let s = vol.slice(8);
        assert_eq!(s.dims(), &[64, 64]);
    }

    #[test]
    fn xray_refused() {
        let mut m = meta(true, false);
        m.modality = Modality::XRay;
        assert!(CtVolume::synthesize(&m, 32, 4).is_err());
    }

    #[test]
    fn circular_artifact_paints_corners() {
        let vol = CtVolume::synthesize(&meta(true, true), 64, 4).unwrap();
        let s = vol.slice(0);
        assert_eq!(s.at(&[0, 0]), CIRCLE_PADDING_HU);
        assert_eq!(s.at(&[63, 63]), CIRCLE_PADDING_HU);
        // center untouched (some body HU, not padding)
        assert!(s.at(&[32, 32]) > CIRCLE_PADDING_HU);
        let clean = CtVolume::synthesize(&meta(true, false), 64, 4).unwrap();
        assert!(clean.slice(0).at(&[0, 0]) > CIRCLE_PADDING_HU);
    }

    #[test]
    fn positive_volume_has_higher_lung_hu() {
        let pos = CtVolume::synthesize(&meta(true, false), 64, 8).unwrap();
        let mut m = meta(true, false);
        m.positive = false;
        m.severity = None;
        let neg = CtVolume::synthesize(&m, 64, 8).unwrap();
        let mask = neg.lung_mask();
        let mean_lung = |v: &CtVolume| {
            let mut acc = 0.0f64;
            let mut cnt = 0usize;
            for (h, mk) in v.hu.data().iter().zip(mask.data()) {
                if *mk > 0.5 {
                    acc += *h as f64;
                    cnt += 1;
                }
            }
            acc / cnt as f64
        };
        assert!(mean_lung(&pos) > mean_lung(&neg));
    }

    #[test]
    fn lung_mask_nontrivial_mid_scan() {
        let vol = CtVolume::synthesize(&meta(false, false), 64, 8).unwrap();
        let mask = vol.lung_mask();
        let plane = 64 * 64;
        let mid: f32 = mask.data()[4 * plane..5 * plane].iter().sum();
        assert!(mid > 100.0, "mid-scan lung area {mid}");
    }

    #[test]
    fn determinism() {
        let a = CtVolume::synthesize(&meta(true, false), 32, 4).unwrap();
        let b = CtVolume::synthesize(&meta(true, false), 32, 4).unwrap();
        assert_eq!(a.hu.data(), b.hu.data());
    }
}
