//! Property tests pinning the shared quantile implementation (the one
//! `cc19-serve` migrated onto) against a naive sort oracle.

use cc19_obs::Histogram;
use proptest::prelude::*;

/// The oracle: sort with `total_cmp`, take the nearest-rank element
/// (`rank = ceil(q*n)` clamped to `[1, n]`, 1-based).
fn oracle(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn quantile_matches_sort_oracle(
        samples in proptest::collection::vec(-1.0e6f64..1.0e6, 0..64),
        q in 0.0f64..1.0001,
    ) {
        let mut h = Histogram::new(&[0.0, 100.0]);
        for &v in &samples {
            h.observe(v);
        }
        let got = h.quantile(q);
        let want = oracle(&samples, q);
        prop_assert_eq!(got.to_bits(), want.to_bits(), "q={} samples={:?}", q, samples);
    }

    #[test]
    fn quantile_is_monotone_in_q(
        samples in proptest::collection::vec(-1.0e3f64..1.0e3, 1..32),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new(&[]);
        for &v in &samples {
            h.observe(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }

    #[test]
    fn count_sum_track_observations(
        samples in proptest::collection::vec(0.0f64..1.0e3, 0..32),
    ) {
        let mut h = Histogram::seconds();
        for &v in &samples {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let naive: f64 = samples.iter().sum();
        prop_assert!((h.sum() - naive).abs() <= 1e-9 * naive.abs().max(1.0));
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }
}
