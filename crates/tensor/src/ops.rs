//! Elementwise and linear-algebra primitives.
//!
//! Elementwise ops run serially below [`PAR_THRESHOLD`] elements and switch
//! to rayon `par_chunks` above it; the chunk size is fixed so results do not
//! depend on the worker count.

use rayon::prelude::*;

use crate::{Result, Tensor, TensorError};

/// Below this element count, elementwise kernels run serially (the rayon
/// fork/join overhead dominates for tiny tensors).
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Fixed chunk length for parallel elementwise traversal.
const CHUNK: usize = 1 << 12;

#[inline]
fn zip_map_into(a: &[f32], b: &[f32], out: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    if a.len() < PAR_THRESHOLD {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
    } else {
        out.par_chunks_mut(CHUNK)
            .zip(a.par_chunks(CHUNK))
            .zip(b.par_chunks(CHUNK))
            .for_each(|((o, x), y)| {
                for ((oo, &xx), &yy) in o.iter_mut().zip(x).zip(y) {
                    *oo = f(xx, yy);
                }
            });
    }
}

#[inline]
fn map_into(a: &[f32], out: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), out.len());
    if a.len() < PAR_THRESHOLD {
        for (o, &x) in out.iter_mut().zip(a) {
            *o = f(x);
        }
    } else {
        out.par_chunks_mut(CHUNK).zip(a.par_chunks(CHUNK)).for_each(|(o, x)| {
            for (oo, &xx) in o.iter_mut().zip(x) {
                *oo = f(xx);
            }
        });
    }
}

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, $f:expr) => {
        $(#[$doc])*
        pub fn $name(a: &Tensor, b: &Tensor) -> Result<Tensor> {
            a.shape().expect_same(b.shape())?;
            let mut out = Tensor::zeros(a.shape().clone());
            zip_map_into(a.data(), b.data(), out.data_mut(), $f);
            Ok(out)
        }
    };
}

binary_op!(
    /// Elementwise addition.
    add, |x, y| x + y);
binary_op!(
    /// Elementwise subtraction `a - b`.
    sub, |x, y| x - y);
binary_op!(
    /// Elementwise (Hadamard) product.
    mul, |x, y| x * y);
binary_op!(
    /// Elementwise division `a / b`.
    div, |x, y| x / y);
binary_op!(
    /// Elementwise maximum.
    maximum, |x, y| x.max(y));
binary_op!(
    /// Elementwise minimum.
    minimum, |x, y| x.min(y));

/// `a + alpha * b`, the axpy-like fused update, in place on `a`.
pub fn axpy(alpha: f32, b: &Tensor, a: &mut Tensor) -> Result<()> {
    a.shape().expect_same(b.shape())?;
    let bd = b.data();
    let ad = a.data_mut();
    if ad.len() < PAR_THRESHOLD {
        for (x, &y) in ad.iter_mut().zip(bd) {
            *x += alpha * y;
        }
    } else {
        ad.par_chunks_mut(CHUNK).zip(bd.par_chunks(CHUNK)).for_each(|(x, y)| {
            for (xx, &yy) in x.iter_mut().zip(y) {
                *xx += alpha * yy;
            }
        });
    }
    Ok(())
}

/// Scale by a scalar, producing a new tensor.
pub fn scale(a: &Tensor, alpha: f32) -> Tensor {
    let mut out = Tensor::zeros(a.shape().clone());
    map_into(a.data(), out.data_mut(), |x| x * alpha);
    out
}

/// Add a scalar to every element.
pub fn add_scalar(a: &Tensor, c: f32) -> Tensor {
    let mut out = Tensor::zeros(a.shape().clone());
    map_into(a.data(), out.data_mut(), |x| x + c);
    out
}

/// Apply a unary function elementwise into an existing tensor of the
/// same shape. Runs the exact kernel behind [`map`], so the results are
/// bit-identical to the allocating form — this is the buffer-reuse hook
/// for batch serving (`computecovid19::framework::Scratch`).
pub fn map_to(src: &Tensor, dst: &mut Tensor, f: impl Fn(f32) -> f32 + Sync) -> Result<()> {
    src.shape().expect_same(dst.shape())?;
    map_into(src.data(), dst.data_mut(), f);
    Ok(())
}

/// Elementwise product into an existing tensor of the same shape;
/// bit-identical to [`mul`] (same kernel), without the allocation.
pub fn mul_to(a: &Tensor, b: &Tensor, dst: &mut Tensor) -> Result<()> {
    a.shape().expect_same(b.shape())?;
    a.shape().expect_same(dst.shape())?;
    zip_map_into(a.data(), b.data(), dst.data_mut(), |x, y| x * y);
    Ok(())
}

/// Apply an arbitrary unary function elementwise.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = Tensor::zeros(a.shape().clone());
    map_into(a.data(), out.data_mut(), f);
    out
}

/// Leaky-ReLU with the given negative slope.
pub fn leaky_relu(a: &Tensor, negative_slope: f32) -> Tensor {
    map(a, move |x| if x >= 0.0 { x } else { negative_slope * x })
}

/// ReLU.
pub fn relu(a: &Tensor) -> Tensor {
    map(a, |x| x.max(0.0))
}

/// Logistic sigmoid.
pub fn sigmoid(a: &Tensor) -> Tensor {
    map(a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Elementwise natural exponential.
pub fn exp(a: &Tensor) -> Tensor {
    map(a, f32::exp)
}

/// Elementwise natural log.
pub fn ln(a: &Tensor) -> Tensor {
    map(a, f32::ln)
}

/// Elementwise square.
pub fn square(a: &Tensor) -> Tensor {
    map(a, |x| x * x)
}

/// Elementwise square root.
pub fn sqrt(a: &Tensor) -> Tensor {
    map(a, f32::sqrt)
}

/// Elementwise absolute value.
pub fn abs(a: &Tensor) -> Tensor {
    map(a, f32::abs)
}

/// Clamp all elements into `[lo, hi]`.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    map(a, move |x| x.clamp(lo, hi))
}

/// Dense matrix multiply: `a` is `(m, k)`, `b` is `(k, n)`, result `(m, n)`.
///
/// Delegates to the blocked, packed engine in [`crate::gemm`]. The old
/// in-place ikj kernel that lived here skipped work when `a[i][k] == 0.0`;
/// that branch is gone on purpose — a data-dependent branch in the
/// innermost loop blocks auto-vectorization and mispredicts on dense
/// data, costing far more than the multiplies it saves (see the
/// `crate::gemm` module docs for the full rationale).
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    crate::gemm::matmul(a, b)
}

/// Matrix transpose of a rank-2 tensor.
///
/// Cache-blocked: walks `TB x TB` tiles so both the strided reads and the
/// contiguous writes stay within a tile that fits in L1, instead of
/// striding through the whole source per output row. Parallel over
/// output row blocks (disjoint contiguous chunks).
pub fn transpose2(a: &Tensor) -> Result<Tensor> {
    /// Tile edge: `TB*TB` f32 = 4 KiB, two tiles fit in L1 comfortably.
    const TB: usize = 32;
    a.shape().expect_rank(2)?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = Tensor::zeros([n, m]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let ad = a.data();
    out.data_mut().par_chunks_mut(TB * m).enumerate().for_each(|(jb, chunk)| {
        let j0 = jb * TB;
        let jlen = chunk.len() / m;
        for i0 in (0..m).step_by(TB) {
            let ilen = (m - i0).min(TB);
            for dj in 0..jlen {
                let row = &mut chunk[dj * m + i0..dj * m + i0 + ilen];
                let j = j0 + dj;
                for (di, o) in row.iter_mut().enumerate() {
                    *o = ad[(i0 + di) * n + j];
                }
            }
        }
    });
    Ok(out)
}

/// Concatenate along an axis. All inputs must agree on every other axis.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor> {
    if tensors.is_empty() {
        return Err(TensorError::Empty("concat"));
    }
    let rank = tensors[0].shape().rank();
    if axis >= rank {
        return Err(TensorError::Incompatible(format!("concat axis {axis} out of range for rank {rank}")));
    }
    let mut out_dims = tensors[0].dims().to_vec();
    let mut axis_total = 0usize;
    for t in tensors {
        if t.shape().rank() != rank {
            return Err(TensorError::RankMismatch { expected: rank, actual: t.shape().rank() });
        }
        for (d, (&a, &b)) in tensors[0].dims().iter().zip(t.dims()).enumerate() {
            if d != axis && a != b {
                return Err(TensorError::ShapeMismatch {
                    left: tensors[0].dims().to_vec(),
                    right: t.dims().to_vec(),
                });
            }
        }
        axis_total += t.dims()[axis];
    }
    out_dims[axis] = axis_total;

    // Treat each tensor as (outer, slice) where slice = axis_len * inner.
    let outer: usize = out_dims[..axis].iter().product();
    let inner: usize = out_dims[axis + 1..].iter().product();
    let out_slice = axis_total * inner;
    let mut out = Tensor::zeros(out_dims.clone());
    let od = out.data_mut();
    let mut axis_off = 0usize;
    for t in tensors {
        let t_axis = t.dims()[axis];
        let t_slice = t_axis * inner;
        let td = t.data();
        for o in 0..outer {
            let src = &td[o * t_slice..(o + 1) * t_slice];
            let dst = &mut od[o * out_slice + axis_off * inner..o * out_slice + axis_off * inner + t_slice];
            dst.copy_from_slice(src);
        }
        axis_off += t_axis;
    }
    Ok(out)
}

/// Split along an axis into pieces of the given extents (inverse of
/// [`concat`]).
pub fn split(t: &Tensor, axis: usize, extents: &[usize]) -> Result<Vec<Tensor>> {
    let rank = t.shape().rank();
    if axis >= rank {
        return Err(TensorError::Incompatible(format!("split axis {axis} out of range for rank {rank}")));
    }
    let total: usize = extents.iter().sum();
    if total != t.dims()[axis] {
        return Err(TensorError::Incompatible(format!(
            "split extents sum to {total}, axis has {}",
            t.dims()[axis]
        )));
    }
    let outer: usize = t.dims()[..axis].iter().product();
    let inner: usize = t.dims()[axis + 1..].iter().product();
    let in_slice = t.dims()[axis] * inner;
    let td = t.data();
    let mut parts = Vec::with_capacity(extents.len());
    let mut axis_off = 0usize;
    for &e in extents {
        let mut dims = t.dims().to_vec();
        dims[axis] = e;
        let mut part = Tensor::zeros(dims);
        let pd = part.data_mut();
        let p_slice = e * inner;
        for o in 0..outer {
            let src = &td[o * in_slice + axis_off * inner..o * in_slice + axis_off * inner + p_slice];
            pd[o * p_slice..(o + 1) * p_slice].copy_from_slice(src);
        }
        axis_off += e;
        parts.push(part);
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(dims.to_vec(), v).unwrap()
    }

    #[test]
    fn elementwise_basics() {
        let a = t(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(&[4], vec![4.0, 3.0, 2.0, 1.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(sub(&a, &b).unwrap().data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(div(&a, &b).unwrap().data(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
        assert_eq!(maximum(&a, &b).unwrap().data(), &[4.0, 3.0, 3.0, 4.0]);
        assert_eq!(minimum(&a, &b).unwrap().data(), &[1.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_rejected() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = t(&[3], vec![1.0, 1.0, 1.0]);
        let b = t(&[3], vec![1.0, 2.0, 3.0]);
        axpy(0.5, &b, &mut a).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Large enough to take the parallel path.
        let n = PAR_THRESHOLD * 2 + 37;
        let a = Tensor::from_vec([n], (0..n).map(|i| i as f32 * 0.5).collect()).unwrap();
        let b = Tensor::from_vec([n], (0..n).map(|i| (n - i) as f32 * 0.25).collect()).unwrap();
        let got = add(&a, &b).unwrap();
        for i in (0..n).step_by(997) {
            assert_eq!(got.data()[i], a.data()[i] + b.data()[i]);
        }
    }

    #[test]
    fn activations() {
        let a = t(&[4], vec![-2.0, -0.5, 0.0, 3.0]);
        assert_eq!(relu(&a).data(), &[0.0, 0.0, 0.0, 3.0]);
        assert_eq!(leaky_relu(&a, 0.1).data(), &[-0.2, -0.05, 0.0, 3.0]);
        let s = sigmoid(&Tensor::scalar(0.0));
        assert!((s.item().unwrap() - 0.5).abs() < 1e-7);
    }

    #[test]
    fn matmul_small() {
        let a = t(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = t(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i).unwrap().data(), a.data());
        assert_eq!(matmul(&i, &a).unwrap().data(), a.data());
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[2, 3], (0..6).map(|x| x as f32).collect());
        let at = transpose2(&a).unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(transpose2(&at).unwrap(), a);
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = t(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = t(&[1, 2], vec![5.0, 6.0]);
        let c0 = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.dims(), &[3, 2]);
        assert_eq!(c0.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);

        let d = t(&[2, 1], vec![9.0, 10.0]);
        let c1 = concat(&[&a, &d], 1).unwrap();
        assert_eq!(c1.dims(), &[2, 3]);
        assert_eq!(c1.data(), &[1.0, 2.0, 9.0, 3.0, 4.0, 10.0]);
    }

    #[test]
    fn concat_rejects_mismatched_other_axes() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([2, 3]);
        assert!(concat(&[&a, &b], 0).is_err());
        assert!(concat(&[&a, &b], 1).is_ok());
    }

    #[test]
    fn split_inverts_concat() {
        let a = t(&[2, 3], (0..6).map(|x| x as f32).collect());
        let b = t(&[2, 2], (6..10).map(|x| x as f32).collect());
        let c = concat(&[&a, &b], 1).unwrap();
        let parts = split(&c, 1, &[3, 2]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn split_rejects_bad_extents() {
        let a = Tensor::zeros([2, 4]);
        assert!(split(&a, 1, &[3, 2]).is_err());
    }
}
