//! # cc19-ddnet
//!
//! DDnet — the DenseNet + Deconvolution network for CT image enhancement
//! that is the core of the ComputeCOVID19+ framework (§2.2 of the paper,
//! adapted from Zhang et al., IEEE TMI 2018).
//!
//! Architecture (Table 2): a convolution network of 37 convolution layers
//! — a 7×7 stem plus four dense blocks (4 densely-connected BN → LeakyReLU
//! → 1×1 conv → BN → LeakyReLU → 5×5 conv layers each) with 3×3/stride-2
//! pooling and 1×1 transition convolutions — followed by a deconvolution
//! network of 8 deconvolution layers in four stages, each stage being
//! bilinear un-pooling (×2), concatenation with the encoder feature map of
//! matching resolution (the *global shortcut connections*), a 5×5
//! deconvolution and a 1×1 deconvolution.
//!
//! The network is fully convolutional: any input extent divisible by 16
//! works; the paper's configuration is 512×512 with 16 base channels and
//! growth 16 (dense-block output 80 channels).


pub mod baselines;
pub mod model;
pub mod projection;
pub mod trainer;

pub use model::{Ddnet, DdnetConfig, LayerRow};
pub use trainer::{evaluate_pairs, train_enhancement, EnhancementMetrics, EpochStats, TrainConfig};

/// Crate-wide result alias.
pub type Result<T> = cc19_tensor::Result<T>;
