//! Poison-recovering `Mutex` locking for the observability stores.
//!
//! Mirrors the `cc19_serve::sync` pattern: all state guarded by obs
//! locks is plain owned data (metric maps, span aggregates, the trace
//! ring) that stays structurally valid wherever a panicking holder
//! stopped, so recovering the inner value is always sound. Routing
//! every acquisition through [`lock`] means a panicked instrumented
//! thread can never blank a trace dump or a snapshot — the exporters
//! see whatever state the store had, instead of an error arm quietly
//! returning empty output.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// `Mutex::lock` that recovers from poisoning instead of panicking.
pub(crate) fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_state_written_before_a_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let mut g = m2.lock().expect("first lock");
            *g = 7;
            panic!("poison the mutex");
        })
        .join();
        // A plain .lock().unwrap() would panic here; the helper hands
        // back the last written state.
        assert_eq!(*lock(&m), 7);
    }
}
