//! GEMM-based convolution (im2col + matrix multiply) — the lowering most
//! deep-learning frameworks use for convolution, provided as an
//! alternative to the direct kernels in [`crate::conv`].
//!
//! The direct path wins for DDnet's small channel counts on CPU (less
//! memory traffic); the GEMM path wins as channels grow. The
//! `gemm_vs_direct` bench in `cc19-bench` measures the crossover — an
//! ablation of a design choice the paper's OpenCL kernels implicitly make
//! (they are direct-style kernels).

use crate::conv::Conv2dSpec;
use crate::{ops, Result, Tensor, TensorError};

/// Lower a `(N, C, H, W)` input into the im2col matrix of shape
/// `(N * OH * OW, C * K * K)`: each row is the receptive field of one
/// output position.
pub fn im2col(input: &Tensor, k: usize, spec: Conv2dSpec) -> Result<Tensor> {
    if input.shape().rank() != 4 {
        return Err(TensorError::Incompatible("im2col expects rank-4 NCHW input".into()));
    }
    let d = input.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = spec.out_extent(h, k);
    let ow = spec.out_extent(w, k);
    let cols = c * k * k;
    let mut out = Tensor::zeros([n * oh * ow, cols]);
    let ind = input.data();
    let od = out.data_mut();
    let p = spec.padding as isize;

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * cols;
                for ci in 0..c {
                    let ibase = (ni * c + ci) * h * w;
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - p;
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - p;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                ind[ibase + iy as usize * w + ix as usize]
                            } else {
                                0.0
                            };
                            od[row + ci * k * k + ky * k + kx] = v;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// GEMM-backed convolution, same semantics as [`crate::conv::conv2d`]
/// (square kernels).
pub fn conv2d_gemm(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    if weight.shape().rank() != 4 {
        return Err(TensorError::Incompatible("conv2d_gemm expects rank-4 weight".into()));
    }
    let wd = weight.dims();
    let (cout, cin, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    if kh != kw {
        return Err(TensorError::Incompatible("conv2d_gemm supports square kernels only".into()));
    }
    let d = input.dims();
    if d[1] != cin {
        return Err(TensorError::Incompatible(format!(
            "conv2d_gemm: input has {} channels, weight expects {cin}",
            d[1]
        )));
    }
    let (n, h, w) = (d[0], d[2], d[3]);
    let oh = spec.out_extent(h, kh);
    let ow = spec.out_extent(w, kw);

    // (N*OH*OW, C*K*K) x (C*K*K, Cout) = (N*OH*OW, Cout)
    let cols = im2col(input, kh, spec)?;
    let wmat = weight.reshape([cout, cin * kh * kw])?;
    let wmat_t = ops::transpose2(&wmat)?;
    let prod = ops::matmul(&cols, &wmat_t)?;

    // transpose the layout (N*OH*OW, Cout) -> (N, Cout, OH, OW)
    let mut out = Tensor::zeros([n, cout, oh, ow]);
    let pd = prod.data();
    let od = out.data_mut();
    for ni in 0..n {
        for pos in 0..oh * ow {
            let src = (ni * oh * ow + pos) * cout;
            for co in 0..cout {
                od[(ni * cout + co) * oh * ow + pos] = pd[src + co];
            }
        }
    }
    if let Some(b) = bias {
        if b.numel() != cout {
            return Err(TensorError::Incompatible(format!(
                "conv2d_gemm: bias has {} elements, want {cout}",
                b.numel()
            )));
        }
        let bd = b.data();
        for ni in 0..n {
            for co in 0..cout {
                let base = (ni * cout + co) * oh * ow;
                let bb = bd[co];
                for v in &mut od[base..base + oh * ow] {
                    *v += bb;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;
    use crate::rng::Xorshift;

    #[test]
    fn im2col_shapes_and_content() {
        // 1x1x3x3 input, k=2, stride 1, no padding: 4 rows of 4
        let input = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let cols = im2col(&input, 2, Conv2dSpec { stride: 1, padding: 0 }).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // first receptive field: [1,2,4,5]
        assert_eq!(&cols.data()[..4], &[1.0, 2.0, 4.0, 5.0]);
        // last: [5,6,8,9]
        assert_eq!(&cols.data()[12..], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_zero_pads(){
        let input = Tensor::ones([1, 1, 2, 2]);
        let cols = im2col(&input, 3, Conv2dSpec { stride: 1, padding: 1 }).unwrap();
        assert_eq!(cols.dims(), &[4, 9]);
        // top-left output: receptive field has 5 padded zeros, 4 ones
        let first: f32 = cols.data()[..9].iter().sum();
        assert_eq!(first, 4.0);
    }

    #[test]
    fn gemm_matches_direct_conv() {
        let mut rng = Xorshift::new(1);
        for (stride, padding, k) in [(1usize, 1usize, 3usize), (2, 2, 5), (1, 0, 1)] {
            let spec = Conv2dSpec { stride, padding };
            let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
            let wgt = rng.uniform_tensor([4, 3, k, k], -0.5, 0.5);
            let b = rng.uniform_tensor([4], -0.2, 0.2);
            let direct = conv2d(&x, &wgt, Some(&b), spec).unwrap();
            let gemm = conv2d_gemm(&x, &wgt, Some(&b), spec).unwrap();
            assert_eq!(direct.dims(), gemm.dims());
            assert!(
                direct.all_close(&gemm, 1e-4),
                "mismatch at stride {stride} pad {padding} k {k}: max diff {}",
                direct.max_abs_diff(&gemm).unwrap()
            );
        }
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let x = Tensor::zeros([1, 2, 4, 4]);
        let w_bad_cin = Tensor::zeros([4, 3, 3, 3]);
        assert!(conv2d_gemm(&x, &w_bad_cin, None, Conv2dSpec::default()).is_err());
        let w_rect = Tensor::zeros([4, 2, 3, 5]);
        assert!(conv2d_gemm(&x, &w_rect, None, Conv2dSpec::default()).is_err());
    }
}
