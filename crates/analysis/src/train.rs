//! Classification-AI training (§3.3 of the paper): BCE loss (Eq 2), Adam,
//! §3.3.1 augmentations, per-epoch loss tracking for Fig 11b.

use cc19_data::augment::{augment, AugmentConfig};
use cc19_nn::graph::Graph;
use cc19_nn::optim::Adam;
use cc19_tensor::rng::Xorshift;
use cc19_tensor::Tensor;

use crate::classifier::DenseNet3d;
use crate::Result;

/// One preprocessed training example: normalized `(D, H, W)` volume and
/// label.
#[derive(Debug, Clone)]
pub struct Example {
    /// Normalized volume in `[0, 1]`.
    pub volume: Tensor,
    /// Ground truth.
    pub label: bool,
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassTrainConfig {
    /// Epochs (paper: 100).
    pub epochs: usize,
    /// Learning rate (paper: 1e-6 on the full problem; scaled runs need a
    /// workable rate for their few steps).
    pub lr: f32,
    /// Volumes per batch.
    pub batch_size: usize,
    /// Augmentation settings (None disables augmentation).
    pub augment: Option<AugmentConfig>,
    /// RNG seed for shuffling / augmentation.
    pub seed: u64,
}

impl ClassTrainConfig {
    /// Scaled defaults. The paper's augmentation noise (variance 0.1,
    /// §3.3.1) is calibrated to 512-resolution volumes; at reduced
    /// resolution the GGO contrast shrinks toward the noise floor, so the
    /// scaled config uses a proportionally smaller variance (see
    /// EXPERIMENTS.md).
    pub fn quick(epochs: usize) -> Self {
        ClassTrainConfig {
            epochs,
            lr: 5e-3,
            batch_size: 4,
            augment: Some(AugmentConfig { noise_var: 0.01, ..AugmentConfig::default() }),
            seed: 1,
        }
    }
}

/// Per-epoch training record (Fig 11b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEpochStats {
    /// Epoch index, 1-based.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

fn stack_batch(examples: &[&Example]) -> Result<(Tensor, Tensor)> {
    let dims = examples[0].volume.dims();
    let (d, h, w) = (dims[0], dims[1], dims[2]);
    let b = examples.len();
    let vox = d * h * w;
    let mut x = Tensor::zeros([b, 1, d, h, w]);
    let mut y = Tensor::zeros([b, 1]);
    for (i, ex) in examples.iter().enumerate() {
        x.data_mut()[i * vox..(i + 1) * vox].copy_from_slice(ex.volume.data());
        y.data_mut()[i] = if ex.label { 1.0 } else { 0.0 };
    }
    Ok((x, y))
}

/// Train the classifier; returns per-epoch stats.
pub fn train_classifier(
    net: &DenseNet3d,
    examples: &[Example],
    cfg: ClassTrainConfig,
) -> Result<Vec<ClassEpochStats>> {
    assert!(!examples.is_empty());
    let mut opt = Adam::new(cfg.lr);
    let mut rng = Xorshift::new(cfg.seed);
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut stats = Vec::with_capacity(cfg.epochs);

    for epoch in 1..=cfg.epochs {
        let t0 = std::time::Instant::now();
        // Fisher-Yates shuffle
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut loss_acc = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let batch: Vec<Example> = chunk
                .iter()
                .map(|&i| {
                    let mut ex = examples[i].clone();
                    if let Some(acfg) = cfg.augment {
                        augment(&mut ex.volume, acfg, &mut rng);
                    }
                    ex
                })
                .collect();
            let refs: Vec<&Example> = batch.iter().collect();
            let (x, y) = stack_batch(&refs)?;
            let mut g = Graph::new();
            let xv = g.input(x);
            let yv = g.input(y);
            let logit = net.forward(&mut g, xv, true)?;
            let loss = g.bce_with_logits_loss(logit, yv)?;
            loss_acc += g.value(loss).item()? as f64;
            batches += 1;
            net.store.zero_grad();
            g.backward(loss);
            opt.step(&net.store);
        }
        stats.push(ClassEpochStats {
            epoch,
            train_loss: loss_acc / batches.max(1) as f64,
            seconds: t0.elapsed().as_secs_f64(),
        });
    }
    Ok(stats)
}

/// Score a set of examples: returns `(probabilities, labels)` ready for
/// the metrics module.
pub fn score_examples(net: &DenseNet3d, examples: &[Example]) -> Result<(Vec<f64>, Vec<bool>)> {
    let mut scores = Vec::with_capacity(examples.len());
    let mut labels = Vec::with_capacity(examples.len());
    for ex in examples {
        scores.push(net.predict_proba(&ex.volume)?);
        labels.push(ex.label);
    }
    Ok((scores, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierConfig;
    use crate::metrics::auc_roc;

    fn blob_examples(count: usize, seed: u64) -> Vec<Example> {
        (0..count)
            .map(|i| {
                let mut rng = Xorshift::new(seed + i as u64);
                let label = i % 2 == 0;
                let mut v = rng.uniform_tensor([8, 16, 16], 0.0, 0.3);
                if label {
                    for z in 2..6 {
                        for y in 5..11 {
                            for x in 5..11 {
                                v.set(&[z, y, x], 0.85);
                            }
                        }
                    }
                }
                Example { volume: v, label }
            })
            .collect()
    }

    #[test]
    fn training_improves_auc() {
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 11);
        let train = blob_examples(12, 100);
        let test = blob_examples(8, 900);
        let cfg = ClassTrainConfig { epochs: 8, lr: 5e-3, batch_size: 4, augment: None, seed: 3 };
        let stats = train_classifier(&net, &train, cfg).unwrap();
        assert_eq!(stats.len(), 8);
        assert!(
            stats.last().unwrap().train_loss < stats[0].train_loss,
            "loss trajectory {:?}",
            stats.iter().map(|s| s.train_loss).collect::<Vec<_>>()
        );
        let (scores, labels) = score_examples(&net, &test).unwrap();
        let auc = auc_roc(&scores, &labels);
        assert!(auc > 0.8, "auc {auc}");
    }

    #[test]
    fn augmentation_path_runs() {
        let net = DenseNet3d::new(ClassifierConfig::tiny(), 12);
        let train = blob_examples(4, 200);
        let cfg = ClassTrainConfig::quick(1);
        let stats = train_classifier(&net, &train, cfg).unwrap();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].train_loss.is_finite());
    }
}
