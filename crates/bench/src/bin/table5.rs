//! Table 5: event-based time of the optimized OpenCL kernels
//! (convolution / deconvolution / other) per platform.
//!
//! Paper-platform rows are roofline predictions; a measured row from this
//! host's real kernels is appended.

use cc19_bench::{banner, fmt_secs, parse_scale, Scale, TablePrinter};
use cc19_hetero::{ddnet_class_counts, predict_kernel_times, DEVICES};
use cc19_kernels::ddnet_exec::{run_ddnet_inference, DdnetShape};
use cc19_kernels::OptLevel;

fn main() {
    let scale = parse_scale();
    banner("Table 5", "per-kernel event time (conv / deconv / other)", scale);

    // paper values: (conv, deconv, other)
    let paper = [
        (0.036, 0.059, 0.004),
        (0.075, 0.169, 0.005),
        (0.082, 0.170, 0.005),
        (0.123, 0.153, 0.016),
        (0.495, 1.078, 0.057),
        (9.819, 2.839, 3.991),
    ];

    let counts = ddnet_class_counts(DdnetShape::paper());
    let t = TablePrinter::new(&[30, 12, 12, 12, 22]);
    t.row(&[&"Platform", &"Conv (s)", &"Deconv (s)", &"Other (s)", &"Paper (conv/deconv/other)"]);
    t.sep();
    let mut csv = String::from("platform,conv_s,deconv_s,other_s,paper_conv,paper_deconv,paper_other\n");
    for (i, dev) in DEVICES.iter().enumerate() {
        let p = predict_kernel_times(dev, counts, OptLevel::RefactoredPrefetchUnrolled, true);
        t.row(&[
            &dev.name,
            &fmt_secs(p.conv),
            &fmt_secs(p.deconv),
            &fmt_secs(p.other),
            &format!("{}/{}/{}", paper[i].0, paper[i].1, paper[i].2),
        ]);
        csv.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            dev.name, p.conv, p.deconv, p.other, paper[i].0, paper[i].1, paper[i].2
        ));
    }
    t.sep();

    let shape = match scale {
        Scale::Full => DdnetShape::paper(),
        Scale::Quick => DdnetShape::reduced(256),
    };
    let m = run_ddnet_inference(shape, OptLevel::RefactoredPrefetchUnrolled, 3);
    t.row(&[
        &format!("this host (measured, n={})", shape.n),
        &fmt_secs(m.conv.as_secs_f64()),
        &fmt_secs(m.deconv.as_secs_f64()),
        &fmt_secs(m.other.as_secs_f64()),
        &"-",
    ]);
    csv.push_str(&format!(
        "this host (n={}),{},{},{},,,\n",
        shape.n,
        m.conv.as_secs_f64(),
        m.deconv.as_secs_f64(),
        m.other.as_secs_f64()
    ));
    cc19_bench::write_result("table5.csv", &csv);
}
