//! # cc19-dist
//!
//! The distributed-training substrate of the ComputeCOVID19+ reproduction.
//! The paper parallelizes Enhancement-AI training with PyTorch
//! `DistributedDataParallel` over gloo on up to 8 single-T4 nodes (§4.1),
//! and studies node-count / batch-size scaling in Table 3.
//!
//! This crate provides:
//!
//! - [`allreduce`] — a real **ring all-reduce** (reduce-scatter +
//!   all-gather) over crossbeam channels, plus a naive parameter-server
//!   reduce for the ablation bench;
//! - [`trainer`] — a thread-per-node data-parallel DDnet trainer whose
//!   replicas stay bit-identical through deterministic gradient averaging
//!   (the DDP execution model);
//! - [`cluster`] — a performance model of the paper's cluster (per-step
//!   compute time × communication time from an interconnect model), used
//!   to regenerate Table 3's runtime column at the paper's scale, since
//!   this host cannot physically run 8 GPU nodes (DESIGN.md §2).

#![warn(missing_docs)]

pub mod allreduce;
pub mod cluster;
pub mod trainer;

pub use allreduce::{naive_allreduce, ring_allreduce};
pub use cluster::{ClusterModel, Interconnect};
pub use trainer::{train_distributed, DistConfig, DistStats};

/// Crate-wide result alias.
pub type Result<T> = cc19_tensor::Result<T>;
