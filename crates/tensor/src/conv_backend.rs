//! Shape-aware dispatch between the direct convolution kernels
//! ([`crate::conv`]) and the GEMM lowering ([`crate::gemm_conv`]).
//!
//! Neither backend dominates: direct convolution keeps its working set
//! small and wins when the reduction depth `Cin*K*K` is short, while the
//! GEMM path amortizes im2col/layout traffic over a register-tiled
//! packed matrix multiply and wins once the reduction is deep and there
//! are enough output positions to fill macro-tiles. [`ConvBackend::Auto`]
//! encodes that crossover as a cheap per-shape heuristic; `Direct` and
//! `Gemm` force a side (for benchmarking and for pinning behavior).
//!
//! The environment variable `CC19_CONV_BACKEND` (`auto` / `direct` /
//! `gemm`) overrides whatever the caller selected — it is read at
//! dispatch time so a training run can be flipped without recompiling.

use crate::conv::{
    conv2d, conv2d_backward, conv_transpose2d, conv_transpose2d_backward, Conv2dSpec,
};
use crate::gemm_conv::{
    conv2d_gemm, conv2d_gemm_backward, conv_transpose2d_gemm, conv_transpose2d_gemm_backward,
};
use crate::{Result, Tensor};

/// Which convolution implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvBackend {
    /// Pick per shape: GEMM for deep reductions over many output
    /// positions, direct otherwise (see [`ConvBackend::prefers_gemm`]).
    #[default]
    Auto,
    /// Always use the direct kernels in [`crate::conv`].
    Direct,
    /// Always use the im2col+GEMM path in [`crate::gemm_conv`].
    Gemm,
}

/// Reduction depth (`C*K*K`) above which the GEMM path is preferred.
/// Set from the `gemm_vs_direct` bench (`conv_backend_small_3x3` group,
/// results/matmul_bench.md): direct wins at 1 channel 3x3 (ckk=9,
/// ~1.3-1.5x), the two tie at ckk=18, and GEMM wins 1.9x by ckk=36 —
/// so the crossover sits in the 18..36 band and 32 splits it.
const GEMM_MIN_REDUCTION: usize = 32;

/// Minimum output positions (`N*OH*OW`) for the GEMM path: below this
/// the GEMM has too few rows to amortize packing, and direct's cache
/// residency wins regardless of depth.
const GEMM_MIN_POSITIONS: usize = 64;

impl ConvBackend {
    /// Parse a backend name (`auto` / `direct` / `gemm`, case-insensitive).
    pub fn parse(s: &str) -> Option<ConvBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(ConvBackend::Auto),
            "direct" => Some(ConvBackend::Direct),
            "gemm" => Some(ConvBackend::Gemm),
            _ => None,
        }
    }

    /// Backend forced via the `CC19_CONV_BACKEND` environment variable,
    /// if set to a recognized value.
    pub fn from_env() -> Option<ConvBackend> {
        std::env::var("CC19_CONV_BACKEND").ok().and_then(|v| ConvBackend::parse(&v))
    }

    /// The backend that will actually run: the env override if present,
    /// otherwise `self`.
    pub fn effective(self) -> ConvBackend {
        ConvBackend::from_env().unwrap_or(self)
    }

    /// The `Auto` heuristic: GEMM when the per-output reduction
    /// (`c_reduce = C*K*K`) is deep enough *and* there are enough output
    /// positions to fill GEMM macro-tiles.
    pub fn prefers_gemm(c_reduce: usize, out_positions: usize) -> bool {
        c_reduce >= GEMM_MIN_REDUCTION && out_positions >= GEMM_MIN_POSITIONS
    }

    /// Resolve `Auto` for a conv2d shape (after applying the env
    /// override); returns `Direct` or `Gemm`, never `Auto`.
    pub fn resolve_conv2d(self, input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> ConvBackend {
        match self.effective() {
            ConvBackend::Auto => {
                let (d, wd) = (input.dims(), weight.dims());
                if d.len() != 4 || wd.len() != 4 {
                    return ConvBackend::Direct; // let the backend report the error
                }
                let (cin, k) = (wd[1], wd[2]);
                let oh = spec.out_extent(d[2], k);
                let ow = spec.out_extent(d[3], wd[3]);
                if ConvBackend::prefers_gemm(cin * wd[2] * wd[3], d[0] * oh * ow) {
                    ConvBackend::Gemm
                } else {
                    ConvBackend::Direct
                }
            }
            other => other,
        }
    }

    /// Resolve `Auto` for a conv_transpose2d shape (weight is
    /// `(Cin, Cout, K, K)`; the GEMM's reduction depth going backward is
    /// `Cout*K*K` and its row count is the *input* grid `N*H*W`).
    pub fn resolve_conv_transpose2d(self, input: &Tensor, weight: &Tensor) -> ConvBackend {
        match self.effective() {
            ConvBackend::Auto => {
                let (d, wd) = (input.dims(), weight.dims());
                if d.len() != 4 || wd.len() != 4 {
                    return ConvBackend::Direct;
                }
                let (cout, kh, kw) = (wd[1], wd[2], wd[3]);
                if ConvBackend::prefers_gemm(cout * kh * kw, d[0] * d[2] * d[3]) {
                    ConvBackend::Gemm
                } else {
                    ConvBackend::Direct
                }
            }
            other => other,
        }
    }
}

/// conv2d through the selected backend.
pub fn conv2d_dispatch(
    backend: ConvBackend,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    match backend.resolve_conv2d(input, weight, spec) {
        ConvBackend::Gemm => conv2d_gemm(input, weight, bias, spec),
        _ => conv2d(input, weight, bias, spec),
    }
}

/// conv2d backward through the selected backend.
pub fn conv2d_backward_dispatch(
    backend: ConvBackend,
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    match backend.resolve_conv2d(input, weight, spec) {
        ConvBackend::Gemm => conv2d_gemm_backward(input, weight, grad_out, spec),
        _ => conv2d_backward(input, weight, grad_out, spec),
    }
}

/// conv_transpose2d through the selected backend.
pub fn conv_transpose2d_dispatch(
    backend: ConvBackend,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    match backend.resolve_conv_transpose2d(input, weight) {
        ConvBackend::Gemm => conv_transpose2d_gemm(input, weight, bias, spec),
        _ => conv_transpose2d(input, weight, bias, spec),
    }
}

/// conv_transpose2d backward through the selected backend.
pub fn conv_transpose2d_backward_dispatch(
    backend: ConvBackend,
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    match backend.resolve_conv_transpose2d(input, weight) {
        ConvBackend::Gemm => conv_transpose2d_gemm_backward(input, weight, grad_out, spec),
        _ => conv_transpose2d_backward(input, weight, grad_out, spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xorshift;

    #[test]
    fn parse_names() {
        assert_eq!(ConvBackend::parse("auto"), Some(ConvBackend::Auto));
        assert_eq!(ConvBackend::parse(" DIRECT "), Some(ConvBackend::Direct));
        assert_eq!(ConvBackend::parse("Gemm"), Some(ConvBackend::Gemm));
        assert_eq!(ConvBackend::parse("opencl"), None);
    }

    #[test]
    fn auto_resolves_by_shape() {
        let spec = Conv2dSpec { stride: 1, padding: 1 };
        // 3 channels, 3x3 kernel: shallow reduction -> direct.
        let small_x = Tensor::zeros([1, 3, 32, 32]);
        let small_w = Tensor::zeros([8, 3, 3, 3]);
        assert_eq!(
            ConvBackend::Auto.resolve_conv2d(&small_x, &small_w, spec),
            ConvBackend::Direct
        );
        // 64 channels, 3x3 kernel: deep reduction -> gemm.
        let big_x = Tensor::zeros([1, 64, 32, 32]);
        let big_w = Tensor::zeros([64, 64, 3, 3]);
        assert_eq!(ConvBackend::Auto.resolve_conv2d(&big_x, &big_w, spec), ConvBackend::Gemm);
        // Forced backends resolve to themselves regardless of shape.
        assert_eq!(ConvBackend::Gemm.resolve_conv2d(&small_x, &small_w, spec), ConvBackend::Gemm);
        assert_eq!(ConvBackend::Direct.resolve_conv2d(&big_x, &big_w, spec), ConvBackend::Direct);
    }

    #[test]
    fn all_backends_agree_forward_and_backward() {
        let mut rng = Xorshift::new(9);
        let spec = Conv2dSpec { stride: 2, padding: 1 };
        let x = rng.uniform_tensor([2, 3, 9, 9], -1.0, 1.0);
        let w = rng.uniform_tensor([5, 3, 3, 3], -0.5, 0.5);
        let b = rng.uniform_tensor([5], -0.1, 0.1);
        let outs: Vec<Tensor> = [ConvBackend::Auto, ConvBackend::Direct, ConvBackend::Gemm]
            .iter()
            .map(|&be| conv2d_dispatch(be, &x, &w, Some(&b), spec).unwrap())
            .collect();
        assert!(outs[0].all_close(&outs[1], 1e-4));
        assert!(outs[0].all_close(&outs[2], 1e-4));

        let grad = rng.uniform_tensor(outs[0].dims().to_vec(), -1.0, 1.0);
        let grads: Vec<_> = [ConvBackend::Auto, ConvBackend::Direct, ConvBackend::Gemm]
            .iter()
            .map(|&be| conv2d_backward_dispatch(be, &x, &w, &grad, spec).unwrap())
            .collect();
        for (gx, gw, gb) in &grads[1..] {
            assert!(grads[0].0.all_close(gx, 1e-3));
            assert!(grads[0].1.all_close(gw, 1e-3));
            assert!(grads[0].2.all_close(gb, 1e-3));
        }
    }

    #[test]
    fn transpose_backends_agree() {
        let mut rng = Xorshift::new(10);
        let spec = Conv2dSpec { stride: 2, padding: 1 };
        let x = rng.uniform_tensor([1, 4, 6, 6], -1.0, 1.0);
        let w = rng.uniform_tensor([4, 2, 3, 3], -0.5, 0.5);
        let d = conv_transpose2d_dispatch(ConvBackend::Direct, &x, &w, None, spec).unwrap();
        let g = conv_transpose2d_dispatch(ConvBackend::Gemm, &x, &w, None, spec).unwrap();
        assert!(d.all_close(&g, 1e-3));

        let grad = rng.uniform_tensor(d.dims().to_vec(), -1.0, 1.0);
        let (dx, dw, db) =
            conv_transpose2d_backward_dispatch(ConvBackend::Direct, &x, &w, &grad, spec).unwrap();
        let (gx, gw, gb) =
            conv_transpose2d_backward_dispatch(ConvBackend::Gemm, &x, &w, &grad, spec).unwrap();
        assert!(dx.all_close(&gx, 1e-3));
        assert!(dw.all_close(&gw, 1e-3));
        assert!(db.all_close(&gb, 1e-3));
    }
}
