//! Cross-crate integration tests: data sources → prep → CT simulation →
//! networks → pipeline, exercised through the public APIs.

use cc19_analysis::metrics;
use cc19_analysis::segmentation::{dice, LungSegmenter};
use cc19_ctsim::phantom::{ChestPhantom, Severity};
use cc19_data::dataset::{ClassificationDataset, EnhancementDataset};
use cc19_data::lowdose_pairs::PairConfig;
use cc19_data::prep::{filter_catalog, PrepConfig};
use cc19_data::sources::{DataSource, SourceCatalog};
use cc19_data::volume::CtVolume;
use cc19_ddnet::{Ddnet, DdnetConfig};
use computecovid19::framework::Framework;
use computecovid19::turnaround;

/// Table 1 → §2.1 → synthesis: the whole data layer holds together.
#[test]
fn data_layer_end_to_end() {
    let cat = SourceCatalog::generate(DataSource::Bimcv, 1);
    assert_eq!(cat.len(), 34, "Table 1: BIMCV has 34 patients");
    let (kept, report) = filter_catalog(&cat.scans, PrepConfig::paper());
    assert!(report.dropped_modality > 0);
    assert!(!kept.is_empty());
    // every kept study synthesizes into a clean volume
    let mut vol = CtVolume::synthesize(&kept[0], 32, 4).unwrap();
    assert!(vol.meta.circular_artifact);
    cc19_data::prep::remove_circular_boundary(&mut vol);
    assert!(vol.hu.data().iter().all(|&v| v > -1500.0));
}

/// Phantom → Siddon → Poisson → FBP → normalized pair: the §3.1.2 chain.
#[test]
fn lowdose_simulation_chain() {
    let ds = EnhancementDataset::generate(6, PairConfig::reduced(32, 3)).unwrap();
    assert_eq!(ds.train.len() + ds.val.len() + ds.test.len(), 6);
    for p in ds.train.iter().chain(&ds.val).chain(&ds.test) {
        assert_eq!(p.low.dims(), &[32, 32]);
        assert!(p.low.data().iter().all(|v| (0.0..=1.0).contains(v)));
        let m = cc19_tensor::reduce::mse(&p.low, &p.full).unwrap();
        assert!(m > 0.0 && m < 0.1, "pair quality out of range: {m}");
    }
}

/// The segmentation stand-in reaches AH-Net-like quality on phantoms.
#[test]
fn segmentation_quality_across_subjects() {
    let seg = LungSegmenter::default();
    let mut worst: f64 = 1.0;
    for seed in 0..6u64 {
        let p = ChestPhantom::subject(seed, 0.5, if seed % 2 == 0 { Some(Severity::Moderate) } else { None });
        let d = dice(&seg.segment_slice(&p.rasterize_hu(96)).unwrap(), &p.lung_mask(96)).unwrap();
        worst = worst.min(d);
    }
    assert!(worst > 0.7, "worst-case dice {worst}");
}

/// DDnet built at paper config matches the paper's structural numbers.
#[test]
fn ddnet_matches_paper_structure() {
    let net = Ddnet::new(DdnetConfig::paper(), 1);
    assert_eq!(net.conv_layer_count(), 37);
    assert_eq!(net.deconv_layer_count(), 8);
    let rows = net.layer_table(512);
    assert_eq!(rows.iter().find(|r| r.layer == "Dense Block 1").unwrap().output, (256, 256, 80));
}

/// Untrained pipeline diagnoses any well-formed study and the turnaround
/// model produces the paper's days→minutes story.
#[test]
fn pipeline_and_turnaround() {
    let ds = ClassificationDataset::generate(2, 2, 32, 4).unwrap();
    let fw = Framework::untrained_reduced(5);
    for item in &ds.test {
        let d = fw.diagnose(&item.volume.hu, 0.5).unwrap();
        assert!((0.0..=1.0).contains(&d.probability));
        let cmp = turnaround::compare(d.total_time());
        assert!(cmp.speedup > 50.0);
    }
}

/// Metrics glue: the scores produced by the pipeline feed the Eq (3)-(5)
/// metrics without shape trouble.
#[test]
fn metrics_pipeline_glue() {
    let scores = vec![0.9, 0.2, 0.7, 0.4];
    let labels = vec![true, false, true, false];
    let auc = metrics::auc_roc(&scores, &labels);
    assert_eq!(auc, 1.0);
    let cm = metrics::confusion_at(&scores, &labels, metrics::optimal_threshold(&scores, &labels));
    assert_eq!(cm.accuracy(), 1.0);
}
