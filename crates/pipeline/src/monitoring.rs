//! Disease **monitoring** — the second half of the paper's title:
//! "ComputeCOVID19+ can deliver better and more timely diagnostic
//! monitoring for progressing COVID-19 patients" (§2).
//!
//! Given a longitudinal series of CT studies of one patient, this module
//! quantifies the lesion burden of each study (the fraction of lung
//! voxels whose HU is pulled above healthy parenchyma — GGO/consolidation
//! territory) and classifies the trend.

use cc19_analysis::segmentation::LungSegmenter;
use cc19_data::volume::VoxelSpacing;
use cc19_tensor::Tensor;

use crate::Result;

/// Lung-voxel HU above this is lesion territory (healthy parenchyma is
/// ~-850; GGOs start around -700).
pub const LESION_HU_THRESHOLD: f32 = -650.0;

/// Quantified involvement of one study. Volumes are reported in
/// physical units (mL, via the phantom [`VoxelSpacing`]) — raw voxel
/// counts are kept only as the dimensionless inputs of
/// [`Involvement::fraction`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Involvement {
    /// Number of lung voxels.
    pub lung_voxels: usize,
    /// Number of lesion-range lung voxels.
    pub lesion_voxels: usize,
    /// Mean HU inside the lungs (rises with disease).
    pub mean_lung_hu: f64,
    /// Physical volume of one voxel in mL (phantom geometry).
    pub voxel_ml: f64,
}

impl Involvement {
    /// Lesion fraction of the lung volume (0..1).
    pub fn fraction(&self) -> f64 {
        if self.lung_voxels == 0 {
            return 0.0;
        }
        self.lesion_voxels as f64 / self.lung_voxels as f64
    }

    /// Segmented lung volume in mL.
    pub fn lung_ml(&self) -> f64 {
        self.lung_voxels as f64 * self.voxel_ml
    }

    /// Lesion (GGO/consolidation) volume in mL.
    pub fn lesion_ml(&self) -> f64 {
        self.lesion_voxels as f64 * self.voxel_ml
    }
}

/// Quantify the lesion burden of one `(D, H, W)` HU volume. Voxel
/// spacing is derived from the phantom geometry for the volume's dims
/// (500 mm in-plane FOV, 300 mm axial coverage), so the mL figures are
/// physical; use [`quantify_with_spacing`] when the caller knows the
/// true spacing.
pub fn quantify(volume_hu: &Tensor, segmenter: &LungSegmenter) -> Result<Involvement> {
    volume_hu.shape().expect_rank(3)?;
    let dims = volume_hu.dims();
    quantify_with_spacing(volume_hu, segmenter, VoxelSpacing::for_volume_dims(dims[0], dims[1]))
}

/// [`quantify`] with an explicit voxel spacing.
pub fn quantify_with_spacing(
    volume_hu: &Tensor,
    segmenter: &LungSegmenter,
    spacing: VoxelSpacing,
) -> Result<Involvement> {
    volume_hu.shape().expect_rank(3)?;
    let mask = segmenter.segment_volume(volume_hu)?;
    let mut lung_voxels = 0usize;
    let mut lesion_voxels = 0usize;
    let mut hu_acc = 0.0f64;
    for (&hu, &m) in volume_hu.data().iter().zip(mask.data()) {
        if m > 0.5 {
            lung_voxels += 1;
            hu_acc += hu as f64;
            if hu > LESION_HU_THRESHOLD {
                lesion_voxels += 1;
            }
        }
    }
    Ok(Involvement {
        lung_voxels,
        lesion_voxels,
        mean_lung_hu: if lung_voxels > 0 { hu_acc / lung_voxels as f64 } else { 0.0 },
        voxel_ml: spacing.voxel_ml(),
    })
}

/// Direction of a patient's trajectory between two studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// Lesion fraction fell materially.
    Improving,
    /// No material change.
    Stable,
    /// Lesion fraction rose materially.
    Progressing,
}

/// A longitudinal series of quantified studies.
#[derive(Debug, Clone, Default)]
pub struct MonitoringSeries {
    /// `(label, involvement)` per time point, in acquisition order.
    pub points: Vec<(String, Involvement)>,
}

impl MonitoringSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantify and append a study.
    pub fn add_study(
        &mut self,
        label: impl Into<String>,
        volume_hu: &Tensor,
        segmenter: &LungSegmenter,
    ) -> Result<Involvement> {
        let inv = quantify(volume_hu, segmenter)?;
        self.points.push((label.into(), inv));
        Ok(inv)
    }

    /// Trend between the last two studies. Changes below
    /// `min_delta` (absolute lesion-fraction change) count as stable.
    pub fn latest_trend(&self, min_delta: f64) -> Option<Trend> {
        if self.points.len() < 2 {
            return None;
        }
        let prev = self.points[self.points.len() - 2].1.fraction();
        let last = self.points[self.points.len() - 1].1.fraction();
        Some(if last > prev + min_delta {
            Trend::Progressing
        } else if last < prev - min_delta {
            Trend::Improving
        } else {
            Trend::Stable
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc19_ctsim::phantom::Severity;
    use cc19_data::sources::{DataSource, Modality, ScanMeta};
    use cc19_data::volume::CtVolume;

    fn vol(seed: u64, severity: Option<Severity>) -> Tensor {
        let meta = ScanMeta {
            id: seed,
            source: DataSource::Midrc,
            modality: Modality::Ct,
            positive: severity.is_some(),
            severity,
            slices: 6,
            circular_artifact: false,
            has_projections: false,
        };
        CtVolume::synthesize(&meta, 48, 6).unwrap().hu
    }

    #[test]
    fn lesion_fraction_tracks_severity() {
        let seg = LungSegmenter::default();
        let healthy = quantify(&vol(3, None), &seg).unwrap();
        let severe = quantify(&vol(3, Some(Severity::Severe)), &seg).unwrap();
        assert!(healthy.lung_voxels > 0);
        assert!(
            severe.fraction() > healthy.fraction() + 0.02,
            "severe {} vs healthy {}",
            severe.fraction(),
            healthy.fraction()
        );
        assert!(severe.mean_lung_hu > healthy.mean_lung_hu);
    }

    #[test]
    fn series_detects_progression_and_recovery() {
        let seg = LungSegmenter::default();
        let mut series = MonitoringSeries::new();
        assert!(series.latest_trend(0.01).is_none());
        series.add_study("day 0", &vol(7, Some(Severity::Mild)), &seg).unwrap();
        series.add_study("day 5", &vol(7, Some(Severity::Severe)), &seg).unwrap();
        assert_eq!(series.latest_trend(0.01), Some(Trend::Progressing));
        series.add_study("day 15", &vol(7, Some(Severity::Mild)), &seg).unwrap();
        assert_eq!(series.latest_trend(0.01), Some(Trend::Improving));
        series.add_study("day 20", &vol(7, Some(Severity::Mild)), &seg).unwrap();
        assert_eq!(series.latest_trend(0.01), Some(Trend::Stable));
        assert_eq!(series.points.len(), 4);
    }

    #[test]
    fn empty_lungs_are_handled() {
        let seg = LungSegmenter::default();
        // an all-air volume: no lungs found
        let air = Tensor::full([2, 16, 16], -1000.0);
        let inv = quantify(&air, &seg).unwrap();
        assert_eq!(inv.fraction(), 0.0);
        assert_eq!(inv.lung_voxels, 0);
        assert_eq!(inv.lung_ml(), 0.0);
    }

    #[test]
    fn burden_is_reported_in_physical_ml() {
        let seg = LungSegmenter::default();
        let inv = quantify(&vol(3, Some(Severity::Severe)), &seg).unwrap();
        let spacing = cc19_data::volume::VoxelSpacing::for_volume_dims(6, 48);
        assert_eq!(inv.voxel_ml, spacing.voxel_ml());
        assert!((inv.lung_ml() - inv.lung_voxels as f64 * spacing.voxel_ml()).abs() < 1e-12);
        assert!(inv.lesion_ml() > 0.0);
        assert!(inv.lesion_ml() < inv.lung_ml());
        // adult-plausible magnitude: segmented lungs land in the
        // hundreds-of-mL-to-litres range, not voxel-count territory
        assert!(inv.lung_ml() > 100.0 && inv.lung_ml() < 10_000.0, "lung {} mL", inv.lung_ml());
    }
}
