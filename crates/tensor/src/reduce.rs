//! Reductions and summary statistics.
//!
//! Accumulation happens in `f64` so the results are robust for the large
//! (512×512×N) CT tensors, then narrowed at the boundary.

use rayon::prelude::*;

use crate::{Result, Tensor, TensorError};

/// Threshold above which reductions go parallel.
const PAR_THRESHOLD: usize = 1 << 15;
/// Fixed chunking so parallel sums are reproducible.
const CHUNK: usize = 1 << 12;

/// Sum of all elements (f64 accumulation).
pub fn sum(t: &Tensor) -> f64 {
    let d = t.data();
    if d.len() < PAR_THRESHOLD {
        d.iter().map(|&v| v as f64).sum()
    } else {
        d.par_chunks(CHUNK).map(|c| c.iter().map(|&v| v as f64).sum::<f64>()).sum()
    }
}

/// Mean of all elements.
pub fn mean(t: &Tensor) -> f64 {
    if t.numel() == 0 {
        return 0.0;
    }
    sum(t) / t.numel() as f64
}

/// Population variance of all elements.
pub fn variance(t: &Tensor) -> f64 {
    if t.numel() == 0 {
        return 0.0;
    }
    let m = mean(t);
    let d = t.data();
    let ss: f64 = if d.len() < PAR_THRESHOLD {
        d.iter().map(|&v| (v as f64 - m) * (v as f64 - m)).sum()
    } else {
        d.par_chunks(CHUNK)
            .map(|c| c.iter().map(|&v| (v as f64 - m) * (v as f64 - m)).sum::<f64>())
            .sum()
    };
    ss / t.numel() as f64
}

/// Minimum element (NaN-propagating min is avoided; NaNs are ignored).
pub fn min(t: &Tensor) -> f32 {
    t.data().iter().copied().filter(|v| !v.is_nan()).fold(f32::INFINITY, f32::min)
}

/// Maximum element (NaNs ignored).
pub fn max(t: &Tensor) -> f32 {
    t.data().iter().copied().filter(|v| !v.is_nan()).fold(f32::NEG_INFINITY, f32::max)
}

/// Dot product of two equally-shaped tensors (f64 accumulation).
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f64> {
    a.shape().expect_same(b.shape())?;
    let ad = a.data();
    let bd = b.data();
    Ok(if ad.len() < PAR_THRESHOLD {
        ad.iter().zip(bd).map(|(&x, &y)| x as f64 * y as f64).sum()
    } else {
        ad.par_chunks(CHUNK)
            .zip(bd.par_chunks(CHUNK))
            .map(|(x, y)| x.iter().zip(y).map(|(&a, &b)| a as f64 * b as f64).sum::<f64>())
            .sum()
    })
}

/// Mean squared error between two tensors.
pub fn mse(a: &Tensor, b: &Tensor) -> Result<f64> {
    a.shape().expect_same(b.shape())?;
    let n = a.numel();
    if n == 0 {
        return Err(TensorError::Empty("mse"));
    }
    let ad = a.data();
    let bd = b.data();
    let ss: f64 = if n < PAR_THRESHOLD {
        ad.iter().zip(bd).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
    } else {
        ad.par_chunks(CHUNK)
            .zip(bd.par_chunks(CHUNK))
            .map(|(x, y)| x.iter().zip(y).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>())
            .sum()
    };
    Ok(ss / n as f64)
}

/// Root mean squared error.
pub fn rmse(a: &Tensor, b: &Tensor) -> Result<f64> {
    Ok(mse(a, b)?.sqrt())
}

/// Peak signal-to-noise ratio, assuming the given dynamic range.
pub fn psnr(a: &Tensor, b: &Tensor, data_range: f64) -> Result<f64> {
    let m = mse(a, b)?;
    if m == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (data_range * data_range / m).log10())
}

/// L2 norm.
pub fn l2_norm(t: &Tensor) -> f64 {
    dot(t, t).expect("same tensor").sqrt()
}

/// Softmax over the last axis of a rank-2 tensor `(N, K)`.
pub fn softmax_rows(t: &Tensor) -> Result<Tensor> {
    t.shape().expect_rank(2)?;
    let (n, k) = (t.dims()[0], t.dims()[1]);
    let mut out = Tensor::zeros([n, k]);
    let ind = t.data();
    let od = out.data_mut();
    for i in 0..n {
        let row = &ind[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - m).exp();
            od[i * k + j] = e;
            z += e;
        }
        for j in 0..k {
            od[i * k + j] /= z;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_variance() {
        let t = Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(sum(&t), 10.0);
        assert_eq!(mean(&t), 2.5);
        assert_eq!(variance(&t), 1.25);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let n = PAR_THRESHOLD * 2 + 123;
        let t = Tensor::from_vec([n], (0..n).map(|i| (i % 17) as f32 * 0.125).collect()).unwrap();
        let serial: f64 = t.data().iter().map(|&v| v as f64).sum();
        assert!((sum(&t) - serial).abs() < 1e-6);
    }

    #[test]
    fn min_max_ignore_nan() {
        let t = Tensor::from_vec([4], vec![3.0, f32::NAN, -1.0, 2.0]).unwrap();
        assert_eq!(min(&t), -1.0);
        assert_eq!(max(&t), 3.0);
    }

    #[test]
    fn mse_and_psnr() {
        let a = Tensor::zeros([4]);
        let b = Tensor::from_vec([4], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(mse(&a, &b).unwrap(), 1.0);
        assert_eq!(psnr(&a, &a, 1.0).unwrap(), f64::INFINITY);
        // psnr for mse=1, range=1 is 0 dB
        assert!((psnr(&a, &b, 1.0).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn dot_and_norm() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 2.0]).unwrap();
        assert_eq!(dot(&a, &a).unwrap(), 9.0);
        assert_eq!(l2_norm(&a), 3.0);
    }

    #[test]
    fn softmax_rows_sane() {
        let t = Tensor::from_vec([2, 3], vec![0.0, 0.0, 0.0, 1000.0, 0.0, -1000.0]).unwrap();
        let s = softmax_rows(&t).unwrap();
        // uniform row
        for j in 0..3 {
            assert!((s.at(&[0, j]) - 1.0 / 3.0).abs() < 1e-6);
        }
        // saturated row, numerically stable
        assert!((s.at(&[1, 0]) - 1.0).abs() < 1e-6);
        assert!(s.at(&[1, 2]) < 1e-6);
        let row_sum: f32 = (0..3).map(|j| s.at(&[1, j])).sum();
        assert!((row_sum - 1.0).abs() < 1e-6);
    }
}
