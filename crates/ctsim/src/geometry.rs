//! Acquisition geometries.
//!
//! The paper's geometry (§3.1.2) is fan-beam: source–detector distance
//! 1500 mm, source–isocenter 1000 mm, 720 evenly-spaced projections over
//! 360°, 1024 detector pixels. A parallel-beam geometry is provided as
//! well: it admits the textbook FBP inversion used by the reconstruction
//! unit tests, and is the default for the reduced-scale training data.

/// Fan-beam geometry with a flat (equispaced) detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanBeamGeometry {
    /// Source-to-isocenter distance (mm).
    pub sod: f32,
    /// Source-to-detector distance (mm).
    pub sdd: f32,
    /// Number of projection angles over the full scan.
    pub views: usize,
    /// Total scan arc in radians (the paper uses 2π).
    pub arc: f32,
    /// Number of detector pixels.
    pub detectors: usize,
    /// Detector pixel pitch (mm) at the detector plane.
    pub det_pitch: f32,
}

impl FanBeamGeometry {
    /// The paper's acquisition setup (§3.1.2): SOD 1000 mm, SDD 1500 mm,
    /// 720 views / 360°, 1024 detector pixels. The pitch is chosen so the
    /// fan covers a 500 mm-diameter field of view with ~10% margin.
    pub fn paper() -> Self {
        let sod = 1000.0;
        let sdd = 1500.0;
        // half-fan to cover radius 250 mm with margin 1.1 at the isocenter:
        let gamma = (250.0f32 * 1.1 / sod).asin();
        let half_width = sdd * gamma.tan();
        let detectors = 1024;
        FanBeamGeometry {
            sod,
            sdd,
            views: 720,
            arc: std::f32::consts::TAU,
            detectors,
            det_pitch: 2.0 * half_width / detectors as f32,
        }
    }

    /// A scaled-down variant for fast tests / reduced-resolution training.
    pub fn reduced(views: usize, detectors: usize) -> Self {
        let mut g = Self::paper();
        g.views = views;
        g.detectors = detectors;
        let gamma = (250.0f32 * 1.1 / g.sod).asin();
        let half_width = g.sdd * gamma.tan();
        g.det_pitch = 2.0 * half_width / detectors as f32;
        g
    }

    /// Angle (radians) of view `v`.
    pub fn view_angle(&self, v: usize) -> f32 {
        self.arc * v as f32 / self.views as f32
    }

    /// Source position for view `v` (isocenter coordinates, mm).
    pub fn source_pos(&self, v: usize) -> (f32, f32) {
        let beta = self.view_angle(v);
        (-self.sod * beta.sin(), self.sod * beta.cos())
    }

    /// Center of detector pixel `d` for view `v` (mm).
    pub fn detector_pos(&self, v: usize, d: usize) -> (f32, f32) {
        let beta = self.view_angle(v);
        // Detector center is opposite the source at distance (sdd - sod)
        // from the isocenter; the detector line is perpendicular to the
        // source->isocenter axis.
        let cx = (self.sdd - self.sod) * beta.sin();
        let cy = -(self.sdd - self.sod) * beta.cos();
        let u = (d as f32 + 0.5 - self.detectors as f32 / 2.0) * self.det_pitch;
        // unit vector along the detector
        let (tx, ty) = (beta.cos(), beta.sin());
        (cx + u * tx, cy + u * ty)
    }

    /// Signed detector coordinate (mm) of pixel `d`.
    pub fn detector_u(&self, d: usize) -> f32 {
        (d as f32 + 0.5 - self.detectors as f32 / 2.0) * self.det_pitch
    }
}

/// Parallel-beam geometry (Radon transform sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelBeamGeometry {
    /// Number of projection angles over `[0, pi)`.
    pub views: usize,
    /// Number of detector bins.
    pub detectors: usize,
    /// Detector bin pitch (mm).
    pub det_pitch: f32,
}

impl ParallelBeamGeometry {
    /// Geometry sized for an `n`×`n` image with pixel size `px` mm: the
    /// detector spans the image diagonal.
    pub fn for_image(n: usize, px: f32, views: usize) -> Self {
        let diag = (n as f32) * px * std::f32::consts::SQRT_2;
        let detectors = (n as f32 * std::f32::consts::SQRT_2).ceil() as usize + 2;
        ParallelBeamGeometry { views, detectors, det_pitch: diag / detectors as f32 }
    }

    /// Angle (radians) of view `v`, evenly spread over `[0, pi)`.
    pub fn view_angle(&self, v: usize) -> f32 {
        std::f32::consts::PI * v as f32 / self.views as f32
    }

    /// Signed detector coordinate (mm) of bin `d`.
    pub fn detector_s(&self, d: usize) -> f32 {
        (d as f32 + 0.5 - self.detectors as f32 / 2.0) * self.det_pitch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_parameters() {
        let g = FanBeamGeometry::paper();
        assert_eq!(g.views, 720);
        assert_eq!(g.detectors, 1024);
        assert_eq!(g.sod, 1000.0);
        assert_eq!(g.sdd, 1500.0);
        // detector must cover the 550 mm FOV projected to the detector plane
        let span = g.det_pitch * g.detectors as f32;
        assert!(span > 550.0, "span {span}");
    }

    #[test]
    fn source_rotates_on_circle() {
        let g = FanBeamGeometry::paper();
        for v in [0, 180, 360, 540] {
            let (x, y) = g.source_pos(v);
            let r = (x * x + y * y).sqrt();
            assert!((r - g.sod).abs() < 1e-2, "view {v}: r {r}");
        }
        // view 0 source at (0, +sod)
        let (x0, y0) = g.source_pos(0);
        assert!(x0.abs() < 1e-3 && (y0 - g.sod).abs() < 1e-3);
    }

    #[test]
    fn detector_opposite_source() {
        let g = FanBeamGeometry::paper();
        for v in [0usize, 97, 333] {
            let (sx, sy) = g.source_pos(v);
            let (dx, dy) = g.detector_pos(v, g.detectors / 2);
            // source and central detector pixel are nearly collinear with origin
            let dot = sx * dx + sy * dy;
            assert!(dot < 0.0, "detector should be on the far side");
            let dist = ((sx - dx).powi(2) + (sy - dy).powi(2)).sqrt();
            assert!((dist - g.sdd).abs() < g.det_pitch, "view {v}: dist {dist}");
        }
    }

    #[test]
    fn parallel_geometry_covers_diagonal() {
        let g = ParallelBeamGeometry::for_image(128, 1.0, 180);
        let span = g.det_pitch * g.detectors as f32;
        assert!(span >= 128.0 * std::f32::consts::SQRT_2 - 1e-3);
        // symmetric detector coordinates
        assert!((g.detector_s(0) + g.detector_s(g.detectors - 1)).abs() < 1e-3);
    }
}
