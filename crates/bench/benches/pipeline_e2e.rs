//! End-to-end pipeline latency per study (the "<1 second inference" claim
//! of §2, measured at reduced scale, broken down per AI stage).

use criterion::{criterion_group, criterion_main, Criterion};

use cc19_data::sources::{DataSource, Modality, ScanMeta};
use cc19_data::volume::CtVolume;
use computecovid19::framework::Framework;

fn bench_pipeline(c: &mut Criterion) {
    let fw = Framework::untrained_reduced(1);
    let meta = ScanMeta {
        id: 9,
        source: DataSource::Midrc,
        modality: Modality::Ct,
        positive: true,
        severity: Some(cc19_ctsim::phantom::Severity::Moderate),
        slices: 8,
        circular_artifact: false,
        has_projections: false,
    };
    let vol = CtVolume::synthesize(&meta, 48, 8).unwrap();

    let mut group = c.benchmark_group("pipeline");
    group.bench_function("diagnose_48x48x8", |b| {
        b.iter(|| fw.diagnose(&vol.hu, 0.5).unwrap())
    });

    let mut fw_no_enh = Framework::untrained_reduced(1);
    fw_no_enh.without_enhancement();
    group.bench_function("diagnose_no_enhancement", |b| {
        b.iter(|| fw_no_enh.diagnose(&vol.hu, 0.5).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
