#!/usr/bin/env bash
# Regenerate every paper table/figure plus the extension experiments.
# Usage: scripts/run_all_experiments.sh [--full]
set -uo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:---quick}"
BINS=(table2 table3 table4 table5 table6 table7 table8 table9_fig13 table10 \
      fig2 fig8 fig11 fig12 sec511 dose_sweep projection_domain other_maladies baselines \
      serve_load kernel_ladder)

mkdir -p results
for bin in "${BINS[@]}"; do
    echo
    echo "================================================================"
    echo ">>> $bin $SCALE"
    echo "================================================================"
    cargo run --release -p cc19-bench --bin "$bin" -- "$SCALE" 2>&1 | tee "results/${bin}.log"
done
echo
echo "All experiment outputs are under results/."
