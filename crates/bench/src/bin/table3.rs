//! Table 3: Enhancement-AI distributed-training scaling — runtime and
//! final MS-SSIM per (nodes, batch, epochs) configuration.
//!
//! Two parts:
//! 1. the *cluster model* column reproduces the paper's runtimes at full
//!    scale (single-T4 calibration + gloo ring-all-reduce model), since
//!    this host has no 8-node GPU cluster;
//! 2. the *measured* section actually runs thread-per-node DDP training
//!    (`cc19-dist`) at reduced scale and reports the real MS-SSIM trend
//!    versus batch size — the paper's accuracy column.

use cc19_bench::{banner, parse_scale, Scale, TablePrinter};
use cc19_data::dataset::EnhancementDataset;
use cc19_data::lowdose_pairs::PairConfig;
use cc19_dist::cluster::{hhmmss, ClusterModel};
use cc19_dist::trainer::{train_distributed, DistConfig};

fn main() {
    let scale = parse_scale();
    banner("Table 3", "distributed Enhancement-AI training scaling", scale);

    // (nodes, batch, epochs, paper runtime hh:mm:ss, paper MS-SSIM %)
    let rows = [
        (1usize, 1usize, 50usize, "15:14:46", 98.71),
        (4, 8, 50, "2:27:49", 96.35),
        (4, 8, 100, "4:58:52", 96.30),
        (4, 16, 50, "2:07:58", 95.18),
        (8, 8, 50, "2:21:49", 95.46),
        (8, 8, 100, "4:43:26", 95.78),
        (8, 32, 50, "1:17:25", 92.04),
        (8, 64, 50, "1:12:24", 88.02),
    ];

    println!("cluster-model runtimes (paper scale: 5102 images, T4 nodes, gloo):\n");
    let model = ClusterModel::paper();
    let t = TablePrinter::new(&[7, 10, 8, 16, 14, 12]);
    t.row(&[&"Nodes", &"Batch", &"Epochs", &"Model runtime", &"Paper runtime", &"Speedup"]);
    t.sep();
    let mut csv =
        String::from("nodes,batch,epochs,model_runtime_s,paper_runtime,measured_ms_ssim,paper_ms_ssim\n");
    let mut model_secs = Vec::new();
    for (nodes, batch, epochs, paper_rt, _) in rows {
        let secs = model.training_time(nodes, batch, epochs);
        model_secs.push(secs);
        t.row(&[
            &nodes,
            &batch,
            &epochs,
            &hhmmss(secs),
            &paper_rt,
            &format!("{:.2}x", model.speedup(nodes, batch)),
        ]);
    }
    t.sep();

    // Measured: real DDP threads at reduced scale; MS-SSIM trend vs batch.
    let (n, pairs_n, epochs) = match scale {
        Scale::Full => (48usize, 36usize, 10usize),
        Scale::Quick => (32, 24, 6),
    };
    println!("\nmeasured thread-per-node DDP at reduced scale ({pairs_n} pairs, {n}x{n}, {epochs} epochs):\n");
    let mut pc = PairConfig::reduced(n, 11);
    pc.views = n / 2; // sparse views: enough enhancement signal for the
                      // batch-size/accuracy trend to be visible
    let ds = EnhancementDataset::generate(pairs_n, pc).unwrap();

    let t2 = TablePrinter::new(&[7, 10, 14, 16, 14]);
    t2.row(&[&"Nodes", &"Batch", &"Wall (s)", &"MS-SSIM (%)", &"Paper MS-SSIM"]);
    t2.sep();
    for (i, (nodes, batch, _, _, paper_ms)) in rows.iter().enumerate() {
        // scale the batch to the reduced dataset (cap at half the data)
        let batch = (*batch).min(ds.train.len()).max(*nodes);
        let cfg = DistConfig::row(*nodes, batch, epochs);
        let (_, stats) = train_distributed(&ds.train, &ds.val, cfg).unwrap();
        t2.row(&[
            nodes,
            &batch,
            &format!("{:.1}", stats.wall_seconds),
            &format!("{:.2}", stats.final_val_ms_ssim),
            &format!("{paper_ms:.2}"),
        ]);
        csv.push_str(&format!(
            "{},{},{},{:.1},{},{:.2},{}\n",
            nodes, batch, epochs, model_secs[i], rows[i].3, stats.final_val_ms_ssim, paper_ms
        ));
    }
    t2.sep();
    println!("\nshape checks: runtime falls with nodes (sub-linearly); MS-SSIM falls as the");
    println!("effective batch grows (fewer optimizer steps) — both as in the paper.");
    cc19_bench::write_result("table3.csv", &csv);
}
