//! FBP reconstruction: parallel vs fan beam, Ram-Lak vs Hann
//! (the CT-substrate design ablations of DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};

use cc19_ctsim::fbp::{fbp_fan, fbp_parallel};
use cc19_ctsim::filter::Window;
use cc19_ctsim::geometry::{FanBeamGeometry, ParallelBeamGeometry};
use cc19_ctsim::phantom::ChestPhantom;
use cc19_ctsim::siddon::{project_fan, project_parallel, Grid};

fn bench_fbp(c: &mut Criterion) {
    let n = 128;
    let grid = Grid::fov500(n);
    let img = cc19_ctsim::hu::image_hu_to_mu(&ChestPhantom::subject(1, 0.5, None).rasterize_hu(n));

    let pgeom = ParallelBeamGeometry::for_image(n, grid.px, 180);
    let psino = project_parallel(&img, grid, &pgeom).unwrap();
    let fgeom = FanBeamGeometry::reduced(180, 192);
    let fsino = project_fan(&img, grid, &fgeom).unwrap();

    let mut group = c.benchmark_group("fbp_128");
    group.bench_function("parallel_ramlak", |b| {
        b.iter(|| fbp_parallel(&psino, &pgeom, grid, Window::RamLak).unwrap())
    });
    group.bench_function("parallel_hann", |b| {
        b.iter(|| fbp_parallel(&psino, &pgeom, grid, Window::Hann).unwrap())
    });
    group.bench_function("fan_ramlak", |b| {
        b.iter(|| fbp_fan(&fsino, &fgeom, grid, Window::RamLak).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fbp
}
criterion_main!(benches);
